"""Cross-cutting edge cases: error hierarchy, degenerate app inputs,
and the paper-profile dataset smoke check."""

import pytest

from repro import (
    DatasetError,
    EstimationError,
    GraphFormatError,
    GraphValidationError,
    IntractableError,
    ReproError,
)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for error in (
            GraphValidationError, GraphFormatError, IntractableError,
            EstimationError, DatasetError,
        ):
            assert issubclass(error, ReproError)

    def test_value_errors_catchable_as_builtin(self):
        for error in (GraphValidationError, GraphFormatError, DatasetError):
            assert issubclass(error, ValueError)

    def test_runtime_errors_catchable_as_builtin(self):
        for error in (IntractableError, EstimationError):
            assert issubclass(error, RuntimeError)

    def test_one_handler_for_everything(self, figure1):
        from repro.core import exact_mpmb_by_worlds

        with pytest.raises(ReproError):
            exact_mpmb_by_worlds(figure1, max_worlds=2)


class TestDegenerateAppInputs:
    def test_compare_groups_with_no_butterflies(self, no_butterfly_graph):
        from repro.apps import compare_groups

        tc_analysis, asd_analysis, ratio = compare_groups(
            no_butterfly_graph, no_butterfly_graph,
            k=3, n_trials=50, n_prepare=10, rng=0,
        )
        assert tc_analysis.findings == ()
        assert asd_analysis.findings == ()
        assert ratio == 0.0
        assert tc_analysis.mean_intensity == 0.0

    def test_recommend_with_no_butterflies(self):
        from repro.apps import recommend

        # A single user cannot form butterflies.
        interactions = [("solo", f"item{i}", 0.5) for i in range(4)]
        assert recommend(interactions, n_trials=50, rng=0) == []

    def test_analyse_brain_k_larger_than_candidates(self, square):
        from repro.apps import analyse_brain

        analysis = analyse_brain(square, k=50, n_trials=50,
                                 n_prepare=10, rng=0)
        assert len(analysis.findings) == 1


class TestSingleEdgeGraphs:
    def test_all_methods_on_single_edge(self):
        from repro import find_mpmb
        from .conftest import build_graph

        graph = build_graph([("a", "x", 1.0, 0.7)])
        for method in ("mc-vp", "os", "ols", "ols-kl", "exact-worlds"):
            result = find_mpmb(graph, method=method, n_trials=20, rng=0)
            assert result.best is None

    def test_counting_on_single_edge(self):
        from repro.counting import (
            exact_count_distribution,
            expected_butterfly_count,
        )
        from .conftest import build_graph

        graph = build_graph([("a", "x", 1.0, 0.7)])
        assert expected_butterfly_count(graph) == 0.0
        assert exact_count_distribution(graph) == {0: 1.0}


class TestPaperProfile:
    def test_abide_paper_profile_full_size(self):
        """The one Table III dataset cheap enough to generate and touch
        at full size in the test suite."""
        from repro.datasets import load_dataset
        from repro.core import ordering_sampling

        graph = load_dataset("abide", "paper", rng=0)
        assert graph.n_left == graph.n_right == 58
        assert graph.n_edges == 58 * 58  # the complete bipartite graph
        result = ordering_sampling(graph, 20, rng=1)
        assert result.best is not None
