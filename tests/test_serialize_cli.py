"""Tests for result serialisation and the package CLI."""

import json

import pytest

from repro import find_mpmb
from repro.core import (
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)
from repro.graph import save_graph
from repro.__main__ import build_parser, main


class TestResultSerialisation:
    def test_round_trip(self, figure1, tmp_path):
        result = find_mpmb(figure1, method="os", n_trials=500, rng=3,
                           track=[(0, 1, 1, 2)])
        path = tmp_path / "result.json"
        save_result(result, path)
        loaded = load_result(path, figure1)
        assert loaded.method == result.method
        assert loaded.n_trials == result.n_trials
        assert loaded.estimates == result.estimates
        assert loaded.stats == result.stats
        assert loaded.traces[(0, 1, 1, 2)].checkpoints == (
            result.traces[(0, 1, 1, 2)].checkpoints
        )

    def test_json_valid(self, figure1, tmp_path):
        result = find_mpmb(figure1, method="exact-worlds")
        path = tmp_path / "result.json"
        save_result(result, path)
        payload = json.loads(path.read_text())
        assert payload["format"] == 1
        assert payload["method"] == "exact-worlds"
        assert payload["butterflies"][0]["probability"] == pytest.approx(
            0.11424
        )
        # Labels, not indices.
        assert payload["butterflies"][0]["labels"] == [
            "u1", "u2", "v2", "v3",
        ]

    def test_records_sorted_by_probability(self, figure1):
        result = find_mpmb(figure1, method="exact-worlds")
        payload = result_to_dict(result)
        probabilities = [r["probability"] for r in payload["butterflies"]]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_unknown_format_rejected(self, figure1):
        with pytest.raises(ValueError, match="format"):
            result_from_dict({"format": 99}, figure1)

    def test_foreign_butterfly_rejected(self, figure1, square):
        result = find_mpmb(square, method="exact-worlds")
        payload = result_to_dict(result)
        with pytest.raises(ValueError, match="does not exist"):
            result_from_dict(payload, figure1)


class TestPackageCli:
    def test_parser(self):
        args = build_parser().parse_args(
            ["search", "--dataset", "abide", "--trials", "100"]
        )
        assert args.command == "search"
        assert args.dataset == "abide"

    def test_search_on_file(self, figure1, tmp_path, capsys):
        path = tmp_path / "g.tsv"
        save_graph(figure1, path)
        code = main([
            "search", str(path), "--method", "os",
            "--trials", "2000", "--top", "3", "--seed", "7",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "'u1', 'u2', 'v2', 'v3'" in out
        assert "Top-3 MPMB" in out

    def test_search_on_dataset(self, capsys):
        code = main([
            "search", "--dataset", "abide", "--method", "ols",
            "--trials", "200", "--prepare", "20", "--seed", "1",
        ])
        assert code == 0
        assert "ROI_" in capsys.readouterr().out

    def test_search_without_butterfly(self, no_butterfly_graph, tmp_path,
                                      capsys):
        path = tmp_path / "g.tsv"
        save_graph(no_butterfly_graph, path)
        code = main(["search", str(path), "--trials", "50"])
        assert code == 1
        assert "No butterfly" in capsys.readouterr().out

    def test_stats(self, figure1, tmp_path, capsys):
        path = tmp_path / "g.tsv"
        save_graph(figure1, path)
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "|E|" in out and "6" in out

    def test_rejects_two_sources(self, capsys):
        with pytest.raises(SystemExit):
            main(["search", "path.tsv", "--dataset", "abide"])

    def test_no_source_falls_back_to_default_dataset(self, capsys):
        code = main([
            "search", "--method", "os", "--trials", "20", "--seed", "0",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "defaulting to --dataset abide" in captured.err
        assert "abide-bench" in captured.out

    def test_flag_led_invocation_implies_search(self, capsys):
        code = main(["--method", "os", "--trials", "20", "--seed", "0"])
        assert code == 0
        assert "Top-1 MPMB via os" in capsys.readouterr().out
