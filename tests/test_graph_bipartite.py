"""Unit tests for the core graph data structure."""

import numpy as np
import pytest

from repro import EdgeSpec, GraphValidationError, UncertainBipartiteGraph
from repro.graph.edges import as_edge_specs

from .conftest import FIGURE_1_EDGES, build_graph


class TestConstruction:
    def test_from_edges_basic(self, figure1):
        assert figure1.n_left == 2
        assert figure1.n_right == 3
        assert figure1.n_edges == 6
        assert figure1.n_vertices == 5
        assert figure1.name == "figure-1"

    def test_labels_round_trip(self, figure1):
        for label in ("u1", "u2"):
            assert figure1.left_label(figure1.left_index(label)) == label
        for label in ("v1", "v2", "v3"):
            assert figure1.right_label(figure1.right_index(label)) == label

    def test_label_tuples(self, figure1):
        assert figure1.left_labels == ("u1", "u2")
        assert figure1.right_labels == ("v1", "v2", "v3")

    def test_unknown_label_raises(self, figure1):
        with pytest.raises(KeyError, match="unknown left"):
            figure1.left_index("nope")
        with pytest.raises(KeyError, match="unknown right"):
            figure1.right_index("nope")

    def test_explicit_labels_allow_isolated_vertices(self):
        graph = UncertainBipartiteGraph.from_edges(
            [("a", "x", 1.0, 0.5)],
            left_labels=["a", "lonely"],
            right_labels=["x"],
        )
        assert graph.n_left == 2
        assert graph.degree_left(graph.left_index("lonely")) == 0

    def test_edge_arrays_read_only(self, figure1):
        for array in (
            figure1.weights, figure1.probs,
            figure1.edge_left, figure1.edge_right,
        ):
            with pytest.raises(ValueError):
                array[0] = 0

    def test_empty_graph(self):
        graph = UncertainBipartiteGraph.from_edges([])
        assert graph.n_edges == 0
        assert graph.n_vertices == 0
        assert graph.top_weight_sum() == 0.0

    def test_edge_spec_round_trip(self, figure1):
        specs = list(figure1.iter_edge_specs())
        assert specs[0] == EdgeSpec("u1", "v1", 2.0, 0.5)
        assert len(specs) == 6

    def test_equality(self, figure1):
        other = build_graph(FIGURE_1_EDGES, name="figure-1")
        assert figure1 == other
        assert figure1 != build_graph(FIGURE_1_EDGES[:5])
        assert figure1.__eq__(42) is NotImplemented


class TestValidation:
    def test_negative_weight_rejected(self):
        with pytest.raises(GraphValidationError, match="weight"):
            build_graph([("a", "x", -1.0, 0.5)])

    def test_zero_weight_rejected(self):
        with pytest.raises(GraphValidationError, match="weight"):
            build_graph([("a", "x", 0.0, 0.5)])

    def test_probability_above_one_rejected(self):
        with pytest.raises(GraphValidationError, match="probability"):
            build_graph([("a", "x", 1.0, 1.5)])

    def test_probability_below_zero_rejected(self):
        with pytest.raises(GraphValidationError, match="probability"):
            build_graph([("a", "x", 1.0, -0.1)])

    def test_nan_weight_rejected(self):
        with pytest.raises(GraphValidationError):
            UncertainBipartiteGraph.from_edges(
                [("a", "x", float("nan"), 0.5)]
            )

    def test_duplicate_edge_rejected(self):
        with pytest.raises(GraphValidationError, match="[Dd]uplicate"):
            UncertainBipartiteGraph.from_edges([
                ("a", "x", 1.0, 0.5),
                ("a", "x", 2.0, 0.6),
            ])

    def test_overlapping_partitions_rejected(self):
        with pytest.raises(GraphValidationError, match="both partitions"):
            UncertainBipartiteGraph.from_edges(
                [("a", "x", 1.0, 0.5)],
                left_labels=["a"],
                right_labels=["a", "x"],
            )

    def test_unknown_edge_endpoint_rejected(self):
        with pytest.raises(GraphValidationError, match="not a left"):
            UncertainBipartiteGraph.from_edges(
                [("ghost", "x", 1.0, 0.5)],
                left_labels=["a"],
                right_labels=["x"],
            )

    def test_malformed_edge_tuple_rejected(self):
        with pytest.raises(ValueError, match="4-tuple"):
            list(as_edge_specs([("a", "x", 1.0)]))

    def test_probability_bounds_inclusive(self):
        graph = build_graph([
            ("a", "x", 1.0, 0.0),
            ("a", "y", 1.0, 1.0),
        ])
        assert graph.probs.tolist() == [0.0, 1.0]


class TestDerivedIndexes:
    def test_adjacency_left(self, figure1):
        adjacency = figure1.adjacency_left
        u1 = figure1.left_index("u1")
        neighbours = {figure1.right_label(v) for v, _e in adjacency[u1]}
        assert neighbours == {"v1", "v2", "v3"}

    def test_adjacency_right(self, figure1):
        adjacency = figure1.adjacency_right
        v2 = figure1.right_index("v2")
        neighbours = {figure1.left_label(u) for u, _e in adjacency[v2]}
        assert neighbours == {"u1", "u2"}

    def test_edge_between(self, figure1):
        u1 = figure1.left_index("u1")
        v3 = figure1.right_index("v3")
        edge = figure1.edge_between(u1, v3)
        assert edge is not None
        assert figure1.weights[edge] == 1.0
        assert figure1.edge_between(u1, 99) is None

    def test_edge_endpoints(self, figure1):
        for e in range(figure1.n_edges):
            u, v = figure1.edge_endpoints(e)
            assert 0 <= u < figure1.n_left
            assert 0 <= v < figure1.n_right

    def test_edges_by_weight_desc(self, figure1):
        order = figure1.edges_by_weight_desc
        weights = figure1.weights[order]
        assert all(weights[i] >= weights[i + 1] for i in range(len(weights) - 1))

    def test_weight_order_stable_for_ties(self, figure1):
        order = figure1.edges_by_weight_desc
        weights = figure1.weights
        # Within each weight class, edge indices ascend.
        for i in range(len(order) - 1):
            if weights[order[i]] == weights[order[i + 1]]:
                assert order[i] < order[i + 1]

    def test_top_weight_sum(self, figure1):
        # Weights are [2, 2, 1, 3, 3, 1] -> top three are 3 + 3 + 2.
        assert figure1.top_weight_sum(3) == 8.0
        assert figure1.top_weight_sum(1) == 3.0
        assert figure1.top_weight_sum(100) == 12.0


class TestDegrees:
    def test_degrees(self, figure1):
        assert figure1.degrees_left().tolist() == [3, 3]
        assert figure1.degrees_right().tolist() == [2, 2, 2]
        assert figure1.degree_left(0) == 3
        assert figure1.degree_right(2) == 2

    def test_expected_degrees(self, figure1):
        expected_left = figure1.expected_degrees_left()
        # u1: 0.5 + 0.6 + 0.8; u2: 0.3 + 0.4 + 0.7
        assert expected_left == pytest.approx([1.9, 1.4])
        expected_right = figure1.expected_degrees_right()
        assert expected_right == pytest.approx([0.8, 1.0, 1.5])

    def test_expected_degree_sums_match(self, figure1):
        assert figure1.expected_degrees_left().sum() == pytest.approx(
            figure1.expected_degrees_right().sum()
        )
        assert np.isclose(
            figure1.expected_degrees_left().sum(), figure1.probs.sum()
        )
