"""Scripted chaos scenarios: no injected fault crashes the service.

The acceptance invariant (see ``docs/service.md``): under each scripted
:class:`~repro.runtime.faults.ServiceFaultPlan`, every well-formed
request resolves to success, an explicit backpressure/breaker
rejection, or a degraded result with re-widened guarantees — and
scalar results served through the broker stay bit-identical to the
CLI execution path.
"""

from __future__ import annotations

import pytest

from repro.core import find_mpmb
from repro.core.serialize import result_to_dict
from repro.datasets import load_dataset
from repro.errors import ConfigurationError
from repro.service import GraphRegistry, QueryBroker, QueryRequest
from repro.service.chaos import (
    SCENARIOS,
    FakeClock,
    main,
    run_scenario,
)


class TestScriptedScenarios:
    @pytest.mark.parametrize(
        "name", [scenario.name for scenario in SCENARIOS]
    )
    def test_scenario_passes(self, name):
        report = run_scenario(name)
        assert report.passed, report.failures
        assert report.checks  # the scenario actually asserted things

    def test_unknown_scenario_is_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            run_scenario("nope")

    def test_main_runs_all_scenarios(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        for scenario in SCENARIOS:
            assert f"[PASS] {scenario.name}" in out

    def test_fake_clock_steps_manually(self):
        clock = FakeClock(5.0)
        assert clock() == 5.0
        clock.advance(2.5)
        assert clock() == 7.5


class TestServiceCliEquivalence:
    """Scalar service answers are bit-identical to the CLI path."""

    @pytest.mark.parametrize("method", ["mc-vp", "os", "ols", "ols-kl"])
    def test_scalar_results_match_direct_execution(self, method):
        trials = 4 if method == "mc-vp" else 60
        graph = load_dataset("abide", "bench", rng=0)
        direct = find_mpmb(
            graph, method=method, n_trials=trials, n_prepare=30, rng=13
        )
        registry = GraphRegistry(["abide"])
        registry.load_all()
        broker = QueryBroker(registry, sleep=lambda _: None)
        response = broker.handle(QueryRequest(
            dataset="abide", method=method, trials=trials, prepare=30,
            seed=13, top_k=10_000, use_cache=False,
        ))
        assert response.status == "ok"
        assert response.n_trials == direct.n_trials
        expected = [
            {
                "labels": list(labels),
                "weight": float(weight),
                "probability": float(probability),
            }
            for labels, weight, probability
            in direct.labelled_ranking(10_000)
        ]
        assert response.ranking == expected
        # The registry's own graph reproduces the direct run exactly.
        entry = registry.get("abide")
        replay = find_mpmb(
            entry.graph, method=method, n_trials=trials, n_prepare=30,
            rng=13,
        )
        assert result_to_dict(replay) == result_to_dict(direct)

    def test_batched_results_match_direct_batched_execution(self):
        graph = load_dataset("abide", "bench", rng=0)
        direct = find_mpmb(
            graph, method="os", n_trials=64, rng=5, block_size=16
        )
        registry = GraphRegistry(["abide"])
        registry.load_all()
        broker = QueryBroker(registry, sleep=lambda _: None)
        response = broker.handle(QueryRequest(
            dataset="abide", method="os", trials=64, seed=5,
            block_size=16, top_k=10_000, use_cache=False,
        ))
        assert response.status == "ok"
        expected = [
            {
                "labels": list(labels),
                "weight": float(weight),
                "probability": float(probability),
            }
            for labels, weight, probability
            in direct.labelled_ranking(10_000)
        ]
        assert response.ranking == expected
