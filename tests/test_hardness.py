"""Tests for the Monotone #2-SAT machinery and the Lemma III.1 reduction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import IntractableError, exact_probability
from repro.hardness import (
    Monotone2SAT,
    build_reduction,
    clean_random_instance,
    has_spurious_butterflies,
    random_formula,
)


class TestMonotone2SAT:
    def test_evaluate(self):
        formula = Monotone2SAT.from_clauses(3, [(1, 2), (3, 3)])
        assert formula.evaluate([True, False, True])
        assert not formula.evaluate([False, False, True])
        assert not formula.evaluate([True, True, False])

    def test_count_models_tautology(self):
        formula = Monotone2SAT(3, ())
        assert formula.count_models() == 8

    def test_count_models_known(self):
        # (y1 v y2) over 2 vars: 3 models.
        formula = Monotone2SAT.from_clauses(2, [(1, 2)])
        assert formula.count_models() == 3
        # Adding the unit clause (y1): models {10, 11} -> 2.
        formula = Monotone2SAT.from_clauses(2, [(1, 2), (1, 1)])
        assert formula.count_models() == 2

    def test_count_matches_evaluate(self):
        rng = np.random.default_rng(0)
        formula = random_formula(5, 4, rng)
        expected = sum(
            formula.evaluate([(bits >> i) & 1 == 1 for i in range(5)])
            for bits in range(32)
        )
        assert formula.count_models() == expected

    def test_invalid_clause_rejected(self):
        with pytest.raises(ValueError):
            Monotone2SAT(2, ((1, 3),))
        with pytest.raises(ValueError):
            Monotone2SAT(-1, ())

    def test_wrong_assignment_length(self):
        formula = Monotone2SAT(2, ())
        with pytest.raises(ValueError):
            formula.evaluate([True])

    def test_budget_guard(self):
        formula = Monotone2SAT(40, ())
        with pytest.raises(IntractableError):
            formula.count_models(max_assignments=1 << 10)

    def test_random_formula_distinct_clauses(self):
        rng = np.random.default_rng(1)
        formula = random_formula(6, 10, rng)
        assert len(set(formula.clauses)) == formula.n_clauses

    def test_variable_pairs(self):
        formula = Monotone2SAT.from_clauses(3, [(1, 2), (3, 3)])
        assert formula.variable_pairs() == frozenset({(1, 2)})


class TestReduction:
    def test_structure(self):
        formula = Monotone2SAT.from_clauses(3, [(1, 2), (2, 3)])
        instance = build_reduction(formula)
        graph = instance.graph
        # Variables: 3 uncertain edges; clauses: 4 certain edges;
        # target: 4 certain edges.
        assert graph.n_edges == 3 + 4 + 4
        uncertain = [
            spec for spec in graph.iter_edge_specs() if spec.prob == 0.5
        ]
        assert len(uncertain) == 3
        assert instance.target.weight == 2.0
        assert all(b.weight == 4.0 for b in instance.clause_butterflies)

    def test_unit_clause_gadget(self):
        formula = Monotone2SAT.from_clauses(2, [(1, 1)])
        instance = build_reduction(formula)
        labels = instance.clause_butterflies[0].labels(instance.graph)
        assert "u0" in labels and "v0" in labels

    def test_exactness_on_clean_instances(self):
        cases = [
            Monotone2SAT.from_clauses(2, [(1, 2)]),
            Monotone2SAT.from_clauses(3, [(1, 2), (3, 3)]),
            Monotone2SAT.from_clauses(4, [(1, 2), (3, 4)]),
            Monotone2SAT.from_clauses(3, [(1, 1), (2, 2), (3, 3)]),
        ]
        for formula in cases:
            instance = build_reduction(formula)
            assert not has_spurious_butterflies(instance)
            probability = exact_probability(instance.graph, instance.target)
            assert probability == pytest.approx(
                instance.expected_target_probability()
            ), formula

    def test_spurious_detection(self):
        # Clauses (1,3),(1,4),(2,3),(2,4) complete the always-present
        # butterfly B(u1, u2, v3, v4) — a spurious gadget (see the
        # reduction module docstring).
        formula = Monotone2SAT.from_clauses(
            4, [(1, 3), (1, 4), (2, 3), (2, 4)]
        )
        instance = build_reduction(formula)
        assert has_spurious_butterflies(instance)
        # And the identity indeed breaks: the spurious certain butterfly
        # beats the target in every world.
        probability = exact_probability(instance.graph, instance.target)
        assert probability == 0.0
        assert instance.expected_target_probability() > 0.0

    def test_clean_random_instance_search(self):
        rng = np.random.default_rng(3)
        instance = clean_random_instance(
            lambda: random_formula(4, 2, rng), attempts=50
        )
        assert instance is not None
        assert not has_spurious_butterflies(instance)

    def test_clean_search_can_fail(self):
        # A factory that always produces the known-spurious formula.
        formula = Monotone2SAT.from_clauses(
            4, [(1, 3), (1, 4), (2, 3), (2, 4)]
        )
        assert clean_random_instance(lambda: formula, attempts=3) is None


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_property_reduction_exact_on_clean_instances(seed):
    """On spurious-free instances, P(target) = #models / 2^n."""
    rng = np.random.default_rng(seed)
    formula = random_formula(
        int(rng.integers(2, 5)), int(rng.integers(1, 4)), rng
    )
    instance = build_reduction(formula)
    if has_spurious_butterflies(instance):
        return  # the identity provably only holds on clean instances
    probability = exact_probability(instance.graph, instance.target)
    assert probability == pytest.approx(
        instance.expected_target_probability(), abs=1e-10
    )
