"""The benchmark harness survives individual method crashes."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

_BENCH_PATH = (
    Path(__file__).resolve().parent.parent
    / "benchmarks" / "run_bench.py"
)


@pytest.fixture(scope="module")
def run_bench():
    spec = importlib.util.spec_from_file_location(
        "run_bench_under_test", _BENCH_PATH
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    yield module
    sys.modules.pop(spec.name, None)


def _args(run_bench, **overrides):
    parser = run_bench.build_parser()
    argv = [
        "--datasets", "abide", "--trials", "30", "--mcvp-trials", "2",
        "--prepare", "10", "--methods", "os", "ols",
    ]
    args = parser.parse_args(argv)
    for key, value in overrides.items():
        setattr(args, key, value)
    return args


class TestCrashIsolation:
    def test_one_crashing_method_does_not_void_the_sweep(
        self, run_bench, monkeypatch
    ):
        real = run_bench.bench_entry

        def exploding(dataset, method, config, label=None):
            if method == "os":
                raise RuntimeError("simulated estimator crash")
            return real(dataset, method, config, label=label)

        monkeypatch.setattr(run_bench, "bench_entry", exploding)
        document = run_bench.run_suite(_args(run_bench))
        entries = {e["method"]: e for e in document["entries"]}
        assert set(entries) == {"os", "ols"}
        failed = entries["os"]
        assert failed["error"].startswith("RuntimeError:")
        assert failed["dataset"] == "abide"
        assert "wall_seconds" not in failed
        # The surviving method carries the full measurement schema.
        assert entries["ols"]["n_trials"] == 30
        assert "error" not in entries["ols"]

    def test_clean_sweep_has_no_error_entries(self, run_bench):
        document = run_bench.run_suite(
            _args(run_bench, methods=["os"])
        )
        (entry,) = document["entries"]
        assert "error" not in entry
        assert entry["wall_seconds"] > 0
