"""Unit tests for the fault-tolerant query service components."""

from __future__ import annotations

import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.core import find_mpmb
from repro.datasets import load_dataset
from repro.errors import (
    AdmissionRejectedError,
    CircuitOpenError,
    ConfigurationError,
    GraphUnavailableError,
    ServiceError,
)
from repro.observability import Observer
from repro.runtime.faults import FaultPlan, ServiceFaultPlan
from repro.sampling.bounds import monte_carlo_trial_bound
from repro.service import (
    AdmissionController,
    BreakerBoard,
    CircuitBreaker,
    GraphRegistry,
    QueryBroker,
    QueryRequest,
    ResultCache,
    TokenBucket,
    graph_checksum,
)
from repro.service.chaos import FakeClock
from repro.service.http import make_server


def _request(**overrides) -> QueryRequest:
    params = dict(dataset="abide", method="os", trials=40, seed=7)
    params.update(overrides)
    return QueryRequest(**params)


@pytest.fixture(scope="module")
def abide_graph():
    return load_dataset("abide", "bench", rng=0)


@pytest.fixture()
def broker():
    registry = GraphRegistry(["abide"])
    registry.load_all()
    return QueryBroker(registry, sleep=lambda _: None)


class TestRequestSchema:
    def test_defaults_and_validation(self):
        request = _request()
        assert request.method == "os"
        assert request.resolved_trials() == 40

    def test_epsilon_delta_sizing(self):
        request = _request(
            trials=None, mu=0.05, epsilon=0.5, delta=0.1
        )
        assert request.resolved_trials() == monte_carlo_trial_bound(
            0.05, 0.5, 0.1
        )

    @pytest.mark.parametrize("overrides", [
        dict(dataset=""),
        dict(method="nope"),
        dict(trials=None),                      # no budget at all
        dict(epsilon=0.5),                      # epsilon without delta
        dict(trials=40, epsilon=0.5, delta=0.1),  # both budgets
        dict(trials=0),                         # only ols-kl takes 0
        dict(top_k=0),
        dict(prepare=0),
        dict(block_size=0),
        dict(deadline_seconds=0.0),
        dict(workers=0),
        dict(workers=2, method="ols-kl"),       # not poolable
        dict(method="exact-worlds", trials=None, deadline_seconds=5.0),
        dict(epsilon=-1.0, delta=0.1, trials=None),  # Theorem IV.1 range
    ])
    def test_invalid_requests_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            _request(**overrides)

    def test_from_dict_rejects_unknown_fields_and_non_objects(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            QueryRequest.from_dict(
                {"dataset": "abide", "trials": 5, "bogus": 1}
            )
        with pytest.raises(ConfigurationError, match="object"):
            QueryRequest.from_dict(["abide"])

    def test_canonical_params_ignore_presentation_fields(self):
        base = _request(top_k=1).canonical_params()
        assert _request(top_k=10).canonical_params() == base
        assert _request(use_cache=False).canonical_params() == base
        assert _request(
            deadline_seconds=9.0
        ).canonical_params() == base
        assert _request(seed=8).canonical_params() != base

    def test_ols_kl_accepts_dynamic_zero_budget(self):
        request = _request(method="ols-kl", trials=0)
        assert request.resolved_trials() == 0


class TestRegistry:
    def test_checksum_is_content_stable(self, abide_graph):
        again = load_dataset("abide", "bench", rng=0)
        assert graph_checksum(abide_graph) == graph_checksum(again)
        other = load_dataset("abide", "bench", rng=1)
        assert graph_checksum(other) != graph_checksum(abide_graph)

    def test_load_get_and_versioning(self):
        registry = GraphRegistry(["abide"])
        assert not registry.ready()
        entry = registry.get("abide")  # lazy first load
        assert entry.status == "ready"
        assert entry.version == 1
        assert entry.checksum is not None
        assert len(entry.backbone) > 0
        assert registry.ready()
        registry.reload("abide")
        assert registry.get("abide").version == 2

    def test_unknown_dataset_is_explicit(self):
        registry = GraphRegistry(["abide"])
        with pytest.raises(GraphUnavailableError, match="unknown"):
            registry.get("nope")

    def test_corrupt_artifact_is_quarantined_not_fatal(self):
        observer = Observer()
        registry = GraphRegistry(
            ["abide", "movielens"],
            faults=ServiceFaultPlan(corrupt_artifacts=("abide",)),
            observer=observer,
        )
        registry.load_all()
        with pytest.raises(GraphUnavailableError, match="quarantined"):
            registry.get("abide")
        # The other dataset is untouched by the quarantine.
        assert registry.get("movielens").status == "ready"
        assert not registry.ready()
        counters = observer.export_document("t", "t")["counters"]
        assert counters["service.registry.quarantined"] == 1.0

    def test_transient_load_failures_are_retried(self):
        registry = GraphRegistry(
            ["abide"],
            faults=ServiceFaultPlan(load_failures={"abide": 2}),
            max_load_attempts=3,
        )
        assert registry.get("abide").status == "ready"

    def test_persistent_load_failures_mark_entry_failed(self):
        registry = GraphRegistry(
            ["abide"],
            faults=ServiceFaultPlan(load_failures={"abide": 99}),
            max_load_attempts=2,
        )
        registry.load_all()
        with pytest.raises(GraphUnavailableError, match="failed"):
            registry.get("abide")

    def test_concurrent_first_gets_load_once(self):
        registry = GraphRegistry(
            ["abide"],
            faults=ServiceFaultPlan(
                load_delay_seconds={"abide": 0.05}
            ),
        )
        barrier = threading.Barrier(2)
        errors = []

        def racer():
            barrier.wait()
            try:
                registry.get("abide")
            except Exception as error:  # pragma: no cover - fail loud
                errors.append(error)

        threads = [threading.Thread(target=racer) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # The loser of the lazy-load race reuses the winner's load:
        # exactly one version bump, so version-keyed cache entries
        # written in between stay reachable.
        assert registry.get("abide").version == 1

    def test_describe_rows_are_probe_stable(self):
        registry = GraphRegistry(["abide"])
        registry.load_all()
        (row,) = registry.describe()
        assert tuple(row) == type(
            registry.get("abide")
        ).DESCRIBE_KEYS


class TestAdmission:
    def test_token_bucket_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(1.0)
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_controller_bounds_inflight(self):
        clock = FakeClock()
        controller = AdmissionController(
            rate=1000.0, burst=1000.0, max_inflight=2, clock=clock
        )
        controller.admit()
        controller.admit()
        with pytest.raises(AdmissionRejectedError, match="capacity"):
            controller.admit()
        controller.release()
        controller.admit()
        assert controller.inflight == 2

    def test_controller_rejects_when_bucket_empty(self):
        clock = FakeClock()
        controller = AdmissionController(
            rate=1.0, burst=1.0, max_inflight=10, clock=clock
        )
        controller.admit()
        with pytest.raises(AdmissionRejectedError, match="rate"):
            controller.admit()

    def test_bad_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ConfigurationError):
            AdmissionController(max_inflight=0)


class TestBreaker:
    def test_open_half_open_close_cycle(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=2, cooldown_seconds=5.0, clock=clock
        )
        breaker.allow()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.open_transitions == 1
        with pytest.raises(CircuitOpenError, match="open"):
            breaker.allow()
        clock.advance(5.0)
        assert breaker.state == "half-open"
        breaker.allow()  # probe slot
        with pytest.raises(CircuitOpenError, match="probe"):
            breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        breaker.allow()

    def test_failed_probe_reopens_with_fresh_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=5.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(5.0)
        breaker.allow()  # probe
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.open_transitions == 2
        clock.advance(4.0)
        with pytest.raises(CircuitOpenError):
            breaker.allow()

    def test_cancel_probe_returns_slot(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=5.0, clock=clock
        )
        breaker.cancel_probe()  # closed: a no-op
        breaker.record_failure()
        clock.advance(5.0)
        breaker.allow()  # takes the single probe slot
        with pytest.raises(CircuitOpenError, match="probe"):
            breaker.allow()
        breaker.cancel_probe()
        breaker.allow()  # the slot is available again, not leaked
        assert breaker.state == "half-open"

    def test_board_isolates_datasets(self):
        clock = FakeClock()
        board = BreakerBoard(failure_threshold=1, clock=clock)
        board.get("a").record_failure()
        assert board.states() == {"a": "open"}
        board.get("b").allow()  # unaffected

    def test_service_errors_share_a_base(self):
        assert issubclass(AdmissionRejectedError, ServiceError)
        assert issubclass(CircuitOpenError, ServiceError)
        assert issubclass(GraphUnavailableError, ServiceError)


class TestResultCache:
    def test_lru_eviction_and_hit_rate(self):
        cache = ResultCache(max_entries=2)
        cache.put((1, ("a",)), {"n": 1})
        cache.put((1, ("b",)), {"n": 2})
        assert cache.get((1, ("a",))) == {"n": 1}  # refresh recency
        cache.put((1, ("c",)), {"n": 3})           # evicts ("b",)
        assert cache.get((1, ("b",))) is None
        assert cache.get((1, ("a",))) is not None
        assert 0.0 < cache.hit_rate < 1.0

    def test_version_keyed_entries_miss_after_bump(self):
        cache = ResultCache()
        cache.put((1, ("a",)), {"n": 1})
        assert cache.get((2, ("a",))) is None

    def test_zero_capacity_disables_caching(self):
        cache = ResultCache(max_entries=0)
        cache.put((1, ("a",)), {"n": 1})
        assert cache.get((1, ("a",))) is None
        assert len(cache) == 0


class TestBroker:
    def test_ok_response_matches_cli_bit_for_bit(
        self, broker, abide_graph
    ):
        cli = find_mpmb(
            abide_graph, method="os", n_trials=40, rng=7
        )
        response = broker.handle(_request(top_k=3))
        assert response.status == "ok"
        assert response.n_trials == cli.n_trials
        expected = [
            {
                "labels": list(labels),
                "weight": float(weight),
                "probability": float(probability),
            }
            for labels, weight, probability in cli.labelled_ranking(3)
        ]
        assert response.ranking == expected
        assert response.graph_version == 1

    def test_cache_hit_and_top_k_slicing(self, broker):
        first = broker.handle(_request(top_k=5))
        assert not first.cache_hit
        second = broker.handle(_request(top_k=2))
        assert second.cache_hit
        assert second.ranking == first.ranking[:2]
        bypass = broker.handle(_request(top_k=5, use_cache=False))
        assert not bypass.cache_hit
        assert bypass.ranking == first.ranking

    def test_reload_invalidates_cache(self, broker):
        broker.handle(_request())
        broker.reload("abide")
        response = broker.handle(_request())
        assert not response.cache_hit
        assert response.graph_version == 2

    def test_unknown_dataset_fails_explicitly(self, broker):
        response = broker.handle(_request(dataset="movielens"))
        assert response.status == "failed"
        assert response.reason == "graph-unavailable"

    @pytest.mark.parametrize("overrides", [
        dict(profile="paper"),
        dict(dataset_seed=3),
    ])
    def test_graph_identity_mismatch_fails_explicitly(
        self, broker, overrides
    ):
        # The registry's single graph per dataset was built with the
        # server's --profile/--dataset-seed; a request for a different
        # identity must not be served that graph's results.
        response = broker.handle(_request(use_cache=False, **overrides))
        assert response.status == "failed"
        assert response.reason == "graph-unavailable"
        assert "dataset_seed" in response.detail

    def test_admission_rejection_returns_half_open_probe_slot(self):
        registry = GraphRegistry(["abide"])
        registry.load_all()
        clock = FakeClock()
        admission = AdmissionController(
            rate=1.0, burst=1.0, max_inflight=4, clock=clock
        )
        breakers = BreakerBoard(
            failure_threshold=1, cooldown_seconds=5.0, clock=clock
        )
        broker = QueryBroker(
            registry, admission=admission, breakers=breakers,
            sleep=lambda _: None, clock=clock,
        )
        breaker = breakers.get("abide")
        breaker.record_failure()  # open
        clock.advance(5.0)        # half-open: one probe slot
        admission.admit()         # drain the token bucket
        response = broker.handle(_request(use_cache=False))
        assert (response.status, response.reason) == (
            "rejected", "admission-rejected"
        )
        # The shed request handed its probe slot back; the breaker is
        # not wedged half-open — a later probe can still get through.
        breaker.allow()

    def test_parallel_deadline_is_propagated_to_pool(
        self, monkeypatch, abide_graph
    ):
        registry = GraphRegistry(["abide"])
        registry.load_all()
        clock = FakeClock()
        broker = QueryBroker(registry, sleep=lambda _: None, clock=clock)
        result = find_mpmb(abide_graph, method="os", n_trials=40, rng=7)
        captured = {}

        def fake_pool(graph, trials, workers, **kwargs):
            captured.update(kwargs)
            return result

        monkeypatch.setattr(
            "repro.service.broker.run_parallel_trials", fake_pool
        )
        response = broker.handle(
            _request(workers=2, deadline_seconds=2.5, use_cache=False)
        )
        assert response.status == "ok"
        # The remaining budget reaches the pool as a straggler cut-off,
        # and in-pool retries are disabled (they could only finish past
        # the deadline).
        assert captured["straggler_timeout"] == pytest.approx(2.5)
        assert captured["max_attempts"] == 1

    def test_parallel_without_deadline_keeps_pool_retries(
        self, monkeypatch, abide_graph
    ):
        registry = GraphRegistry(["abide"])
        registry.load_all()
        broker = QueryBroker(registry, sleep=lambda _: None)
        result = find_mpmb(abide_graph, method="os", n_trials=40, rng=7)
        captured = {}

        def fake_pool(graph, trials, workers, **kwargs):
            captured.update(kwargs)
            return result

        monkeypatch.setattr(
            "repro.service.broker.run_parallel_trials", fake_pool
        )
        response = broker.handle(_request(workers=2, use_cache=False))
        assert response.status == "ok"
        assert "straggler_timeout" not in captured
        assert "max_attempts" not in captured

    def test_transient_worker_failure_is_retried(self):
        registry = GraphRegistry(["abide"])
        registry.load_all()
        slept = []
        observer = Observer()
        broker = QueryBroker(
            registry, observer=observer, retry_attempts=2,
            retry_rng=3, sleep=slept.append,
            faults=ServiceFaultPlan(
                request_faults=FaultPlan(
                    worker_crash_attempts={0: 99, 1: 99}
                ),
            ),
        )
        response = broker.handle(_request(workers=2, use_cache=False))
        assert response.status == "failed"
        assert response.reason == "worker-failure"
        counters = observer.export_document("t", "t")["counters"]
        assert counters["service.retries"] == 1.0
        assert counters["service.requests.failed"] == 1.0

    def test_exact_method_through_service(self, broker):
        response = broker.handle(
            QueryRequest(dataset="abide", method="exact-worlds")
        )
        # The bench abide graph exceeds the exact enumeration budget;
        # either outcome must be explicit, never an exception.
        assert response.status in ("ok", "failed")
        if response.status == "failed":
            assert response.reason == "execution-error"

    def test_metrics_and_probes(self, broker):
        observer = Observer()
        broker.observer = observer
        broker.handle(_request())
        counters = observer.export_document("t", "t")["counters"]
        assert counters["service.requests.total"] == 1.0
        assert counters["service.requests.ok"] == 1.0
        assert counters["service.cache.misses"] == 1.0
        assert broker.health()["status"] == "alive"
        readiness = broker.readiness()
        assert readiness["ready"] is True
        assert readiness["datasets"][0]["dataset"] == "abide"


class TestHttpFrontend:
    @pytest.fixture()
    def server(self, broker):
        server = make_server(broker, port=0)
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        yield server
        server.shutdown()
        server.server_close()

    def _url(self, server, path):
        host, port = server.server_address[:2]
        return f"http://{host}:{port}{path}"

    def _get(self, server, path):
        with urllib.request.urlopen(self._url(server, path)) as reply:
            return reply.status, json.loads(reply.read())

    def test_probes_and_query(self, server):
        status, payload = self._get(server, "/healthz")
        assert (status, payload["status"]) == (200, "alive")
        status, payload = self._get(server, "/readyz")
        assert status == 200 and payload["ready"]

        body = json.dumps(
            {"dataset": "abide", "method": "os", "trials": 40,
             "seed": 7}
        ).encode()
        request = urllib.request.Request(
            self._url(server, "/query"), data=body, method="POST"
        )
        with urllib.request.urlopen(request) as reply:
            payload = json.loads(reply.read())
        assert reply.status == 200
        assert payload["status"] == "ok"
        assert payload["kind"] == "repro-query-response"
        assert len(payload["ranking"]) == 1

    def test_malformed_request_is_400(self, server):
        request = urllib.request.Request(
            self._url(server, "/query"),
            data=b'{"dataset": "abide"}', method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400
        assert "budget" in json.loads(excinfo.value.read())["error"]

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(self._url(server, "/nope"))
        assert excinfo.value.code == 404

    def test_malformed_content_length_is_400(self, server):
        host, port = server.server_address[:2]
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(
                b"POST /query HTTP/1.1\r\n"
                b"Host: test\r\n"
                b"Content-Length: nope\r\n"
                b"\r\n"
            )
            reply = sock.recv(4096)
        status_line = reply.split(b"\r\n", 1)[0]
        assert b"400" in status_line
