"""Checkpoint/resume determinism and graceful degradation (runtime engine).

The acceptance bar for the resilient runtime: a run killed mid-sampling
and resumed from its checkpoint must produce the *same* estimate as an
uninterrupted run with the same seed — for all four sampling methods —
and a deadline-expired run must come back flagged ``degraded=True`` with
its ε-δ guarantee recomputed from the trials actually completed.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import CheckpointError, FaultPlan, RuntimePolicy, TrialBudgetExceeded
from repro.core import (
    load_result,
    mc_vp,
    ordering_listing_sampling,
    ordering_sampling,
    result_from_dict,
    result_to_dict,
    save_result,
)
from repro.runtime import (
    InjectedCrash,
    LoopReport,
    read_checkpoint,
    recompute_guarantee,
    require_complete,
    write_checkpoint,
)
from repro.sampling import rng_state_payload, restore_rng_state
from repro.sampling.bounds import achievable_epsilon
from repro.worlds import WorldSampler

from .conftest import FIGURE_1_EDGES, build_graph


@pytest.fixture
def graph():
    return build_graph(FIGURE_1_EDGES, name="figure-1")


def _crash_policy(path, crash_at, every=5):
    return RuntimePolicy(
        checkpoint_path=path,
        checkpoint_every=every,
        faults=FaultPlan(crash_before_trial=crash_at),
    )


def _resume_policy(path, every=5):
    return RuntimePolicy(
        checkpoint_path=path, checkpoint_every=every, resume_from=path
    )


class TestResumeDeterminism:
    """Crash mid-run, resume, and compare bit-for-bit with a clean run."""

    def test_mc_vp(self, graph, tmp_path):
        baseline = result_to_dict(mc_vp(graph, 40, rng=7))
        path = tmp_path / "mc.json"
        with pytest.raises(InjectedCrash):
            mc_vp(graph, 40, rng=7, runtime=_crash_policy(path, 23))
        resumed = mc_vp(graph, 40, rng=7, runtime=_resume_policy(path))
        assert result_to_dict(resumed) == baseline

    def test_os(self, graph, tmp_path):
        baseline = result_to_dict(ordering_sampling(graph, 40, rng=3))
        path = tmp_path / "os.json"
        with pytest.raises(InjectedCrash):
            ordering_sampling(
                graph, 40, rng=3, runtime=_crash_policy(path, 17)
            )
        resumed = ordering_sampling(
            graph, 40, rng=3, runtime=_resume_policy(path)
        )
        assert result_to_dict(resumed) == baseline

    def test_os_antithetic_pending_uniforms(self, graph, tmp_path):
        """A crash between antithetic pair halves must not lose the
        buffered uniforms."""
        baseline = result_to_dict(
            ordering_sampling(graph, 30, rng=9, antithetic=True)
        )
        path = tmp_path / "anti.json"
        # Odd checkpoint interval so snapshots land mid-pair.
        with pytest.raises(InjectedCrash):
            ordering_sampling(
                graph, 30, rng=9, antithetic=True,
                runtime=_crash_policy(path, 12, every=3),
            )
        resumed = ordering_sampling(
            graph, 30, rng=9, antithetic=True,
            runtime=_resume_policy(path, every=3),
        )
        assert result_to_dict(resumed) == baseline

    def test_ols_optimized(self, graph, tmp_path):
        baseline = result_to_dict(
            ordering_listing_sampling(
                graph, 60, n_prepare=20, estimator="optimized", rng=11
            )
        )
        path = tmp_path / "ols.json"
        with pytest.raises(InjectedCrash):
            ordering_listing_sampling(
                graph, 60, n_prepare=20, estimator="optimized", rng=11,
                runtime=_crash_policy(path, 41, every=10),
            )
        # Resume rebuilds the candidate set from the checkpoint itself
        # and skips the preparing phase entirely.
        resumed = ordering_listing_sampling(
            graph, 60, n_prepare=20, estimator="optimized", rng=11,
            runtime=_resume_policy(path, every=10),
        )
        payload = result_to_dict(resumed)
        assert resumed.stats["resumed_candidates"] == 1.0
        del payload["stats"]["resumed_candidates"]
        assert payload == baseline

    def test_ols_karp_luby(self, graph, tmp_path):
        baseline = result_to_dict(
            ordering_listing_sampling(
                graph, 50, n_prepare=20, estimator="karp-luby", rng=13
            )
        )
        path = tmp_path / "kl.json"
        # Crash before the last candidate; checkpoints are per candidate.
        with pytest.raises(InjectedCrash):
            ordering_listing_sampling(
                graph, 50, n_prepare=20, estimator="karp-luby", rng=13,
                runtime=_crash_policy(path, 2, every=1),
            )
        document = read_checkpoint(path)
        assert document["unit"] == "candidate"
        resumed = ordering_listing_sampling(
            graph, 50, n_prepare=20, estimator="karp-luby", rng=13,
            runtime=_resume_policy(path, every=1),
        )
        payload = result_to_dict(resumed)
        del payload["stats"]["resumed_candidates"]
        assert payload == baseline

    def test_missing_resume_file_starts_fresh(self, graph, tmp_path):
        path = tmp_path / "never-written.json"
        result = mc_vp(
            graph, 20, rng=7,
            runtime=RuntimePolicy(resume_from=path, checkpoint_path=None),
        )
        assert result.n_trials == 20
        assert not result.degraded


class TestCheckpointValidation:
    def test_method_mismatch_rejected(self, graph, tmp_path):
        path = tmp_path / "os.json"
        ordering_sampling(
            graph, 10, rng=1,
            runtime=RuntimePolicy(checkpoint_path=path),
        )
        with pytest.raises(CheckpointError, match="method"):
            mc_vp(graph, 10, rng=1, runtime=_resume_policy(path))

    def test_target_mismatch_rejected(self, graph, tmp_path):
        path = tmp_path / "os.json"
        ordering_sampling(
            graph, 10, rng=1,
            runtime=RuntimePolicy(checkpoint_path=path),
        )
        with pytest.raises(CheckpointError, match="target"):
            ordering_sampling(graph, 99, rng=1, runtime=_resume_policy(path))

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(CheckpointError):
            read_checkpoint(path)

    def test_foreign_json_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": 1}), encoding="utf-8")
        with pytest.raises(CheckpointError):
            read_checkpoint(path)

    def test_missing_file_is_none(self, tmp_path):
        assert read_checkpoint(tmp_path / "absent.json") is None


class TestAtomicWrites:
    def test_injected_write_failure_keeps_previous_snapshot(
        self, graph, tmp_path
    ):
        path = tmp_path / "cp.json"
        policy = RuntimePolicy(
            checkpoint_path=path,
            checkpoint_every=5,
            on_checkpoint_error="continue",
            faults=FaultPlan(checkpoint_failures=(2, 3)),
        )
        result = mc_vp(graph, 30, rng=7)
        faulty = mc_vp(graph, 30, rng=7, runtime=policy)
        # Failed writes were tolerated and the run still completed.
        assert result_to_dict(faulty) == result_to_dict(result)
        document = read_checkpoint(path)
        assert document["completed"] in (5, 20, 25, 30)

    def test_write_failure_raises_by_default(self, graph, tmp_path):
        policy = RuntimePolicy(
            checkpoint_path=tmp_path / "cp.json",
            checkpoint_every=5,
            faults=FaultPlan(checkpoint_failures=(1,)),
        )
        with pytest.raises(CheckpointError):
            mc_vp(graph, 30, rng=7, runtime=policy)

    def test_failed_write_leaves_no_tmp_file(self, tmp_path):
        path = tmp_path / "cp.json"

        def boom():
            raise OSError("disk full")

        with pytest.raises(CheckpointError):
            write_checkpoint(path, {"x": 1}, fail_hook=boom)
        assert list(tmp_path.iterdir()) == []


class TestDeadlineDegradation:
    def _ticking_clock(self, step):
        state = {"now": 0.0}

        def clock():
            state["now"] += step
            return state["now"]

        return clock

    def test_os_degrades_with_rewidened_epsilon(self, graph):
        policy = RuntimePolicy(
            timeout_seconds=10.0, clock=self._ticking_clock(1.0)
        )
        result = ordering_sampling(graph, 1000, rng=5, runtime=policy)
        assert result.degraded
        assert result.degraded_reason == "deadline"
        assert 0 < result.n_trials < 1000
        assert result.target_trials == 1000
        guarantee = result.guarantee
        assert guarantee is not None
        assert guarantee.achieved_trials == result.n_trials
        assert guarantee.target_trials == 1000
        assert guarantee.epsilon == pytest.approx(
            achievable_epsilon(0.05, result.n_trials, 0.1)
        )
        assert not guarantee.complete

    def test_degraded_estimates_normalise_over_achieved(self, graph):
        policy = RuntimePolicy(
            timeout_seconds=10.0, clock=self._ticking_clock(1.0)
        )
        result = ordering_sampling(graph, 1000, rng=5, runtime=policy)
        # Winner frequencies must divide by achieved trials, not target.
        total = sum(result.estimates.values())
        assert total <= len(result.estimates) * 1.0
        baseline = ordering_sampling(graph, result.n_trials, rng=5)
        assert baseline.estimates == result.estimates

    def test_ols_kl_degrades_mid_candidate(self, graph):
        policy = RuntimePolicy(
            timeout_seconds=3.0,
            clock=self._ticking_clock(1.0),
            guarantee_mu=0.05,
        )
        result = ordering_listing_sampling(
            graph, 5000, n_prepare=20, estimator="karp-luby", rng=13,
            runtime=policy,
        )
        assert result.degraded
        assert result.degraded_reason == "deadline"
        assert result.guarantee is not None
        assert result.guarantee.achieved_trials == result.n_trials
        assert result.n_trials < result.guarantee.target_trials

    def test_interrupt_degrades_gracefully(self, graph):
        policy = RuntimePolicy(
            faults=FaultPlan(interrupt_before_trial=8)
        )
        result = ordering_sampling(graph, 100, rng=5, runtime=policy)
        assert result.degraded
        assert result.degraded_reason == "interrupted"
        assert result.n_trials == 7

    def test_zero_trial_deadline_certifies_nothing(self, graph):
        policy = RuntimePolicy(
            timeout_seconds=0.5, clock=self._ticking_clock(1.0)
        )
        result = ordering_sampling(graph, 100, rng=5, runtime=policy)
        assert result.n_trials == 0
        assert result.estimates == {}
        assert result.guarantee.epsilon == float("inf")


class TestDegradedSerialisation:
    def test_round_trip_preserves_degradation(self, graph, tmp_path):
        policy = RuntimePolicy(
            faults=FaultPlan(interrupt_before_trial=10)
        )
        result = ordering_sampling(graph, 100, rng=5, runtime=policy)
        target = tmp_path / "degraded.json"
        save_result(result, target)
        loaded = load_result(target, graph)
        assert loaded.degraded
        assert loaded.degraded_reason == "interrupted"
        assert loaded.target_trials == 100
        assert loaded.guarantee == result.guarantee

    def test_complete_results_stay_format_compatible(self, graph):
        payload = result_to_dict(ordering_sampling(graph, 20, rng=5))
        assert payload["format"] == 1
        assert "degraded" not in payload
        rebuilt = result_from_dict(payload, graph)
        assert not rebuilt.degraded
        assert rebuilt.guarantee is None


class TestRngStatePayload:
    def test_generator_round_trip(self):
        generator = np.random.default_rng(42)
        generator.random(17)
        payload = json.loads(json.dumps(rng_state_payload(generator)))
        expected = generator.random(8).tolist()
        fresh = np.random.default_rng(0)
        restore_rng_state(fresh, payload)
        assert fresh.random(8).tolist() == expected

    def test_world_sampler_antithetic_round_trip(self, graph):
        sampler = WorldSampler(graph, 7, antithetic=True)
        sampler.sample_mask()  # leaves the antithetic half pending
        payload = json.loads(json.dumps(sampler.state_payload()))
        expected = [sampler.sample_mask().tolist() for _ in range(4)]
        fresh = WorldSampler(graph, 0, antithetic=True)
        fresh.restore_state(payload)
        assert [fresh.sample_mask().tolist() for _ in range(4)] == expected


class TestEngineContracts:
    def test_non_positive_target_rejected(self, graph):
        with pytest.raises(ValueError, match="must be positive"):
            mc_vp(graph, 0, rng=1)

    def test_require_complete_raises_on_degraded(self):
        report = LoopReport(completed=5, target=10, stop_reason="deadline")
        with pytest.raises(TrialBudgetExceeded):
            require_complete(report)
        assert require_complete(LoopReport(completed=10, target=10)) is not None

    def test_recompute_guarantee_matches_inverted_bound(self):
        guarantee = recompute_guarantee(500, 2000, mu=0.05, delta=0.1)
        assert guarantee.epsilon == pytest.approx(
            achievable_epsilon(0.05, 500, 0.1)
        )
        assert not guarantee.complete
        round_tripped = type(guarantee).from_dict(guarantee.to_dict())
        assert round_tripped == guarantee
