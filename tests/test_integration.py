"""Cross-module integration tests: every sampling method against the
exact solvers on randomised instances, end-to-end pipelines, and the
Lemma VI.5 error bound observed empirically."""

import numpy as np
import pytest

from repro import (
    CandidateSet,
    exact_mpmb_by_worlds,
    find_mpmb,
    ordering_listing_sampling,
    prepare_candidates,
    sample_vertices,
)
from repro.core import backbone_butterflies
from repro.core.bounds import lemma_vi5_error_bound
from repro.datasets import load_dataset
from repro.graph import loads_graph, dumps_graph

from .conftest import random_small_graph

SAMPLING_METHODS = ("mc-vp", "os", "ols", "ols-kl")


class TestMethodsMatchExactOnRandomGraphs:
    """The central correctness claim: all four samplers estimate the same
    quantity the exact solvers compute."""

    @pytest.fixture(scope="class")
    def instances(self):
        cases = []
        # Seeds chosen so the random instances contain 2+ butterflies.
        for seed in (2, 3, 4, 10, 15):
            graph = random_small_graph(np.random.default_rng(seed), 4, 4)
            exact = exact_mpmb_by_worlds(graph)
            if exact.estimates:
                cases.append((seed, graph, exact))
        assert len(cases) >= 3
        return cases

    @pytest.mark.parametrize("method", SAMPLING_METHODS)
    def test_estimates_within_tolerance(self, instances, method):
        for seed, graph, exact in instances:
            result = find_mpmb(
                graph, method=method, n_trials=15_000,
                n_prepare=300, rng=seed,
            )
            for key, true_value in exact.estimates.items():
                estimated = result.probability(key)
                # OLS variants may omit never-winning candidates; their
                # estimate is then 0, which must match a small truth.
                assert estimated == pytest.approx(
                    true_value, abs=0.025
                ), (
                    f"seed={seed} method={method} butterfly={key}: "
                    f"estimated {estimated} vs exact {true_value}"
                )

    def test_best_butterfly_agreement(self, instances):
        """When the exact winner is clear-cut, every method finds it."""
        for seed, graph, exact in instances:
            ranked = exact.ranked()
            if len(ranked) > 1 and ranked[0][1] - ranked[1][1] < 0.05:
                continue  # ambiguous instance; skip the argmax check
            for method in SAMPLING_METHODS:
                result = find_mpmb(
                    graph, method=method, n_trials=15_000,
                    n_prepare=300, rng=seed,
                )
                assert result.best is not None
                assert result.best.key == ranked[0][0].key, (
                    f"seed={seed} method={method}"
                )


class TestLemmaVI5Empirically:
    def test_ols_overestimate_bounded(self):
        """With a truncated candidate set, the OLS estimate exceeds the
        exact value by at most the mass of missing heavier butterflies."""
        graph = random_small_graph(np.random.default_rng(10), 4, 4)
        exact = exact_mpmb_by_worlds(graph)
        butterflies = backbone_butterflies(graph)
        if len(butterflies) < 3:
            pytest.skip("instance too small to truncate")
        full = CandidateSet(graph, butterflies)
        # Drop one middle-weight candidate to create a known omission.
        kept = [b for i, b in enumerate(full) if i != 1]
        truncated = CandidateSet(graph, kept)
        result = ordering_listing_sampling(
            graph, 40_000, candidates=truncated, rng=3
        )
        ordered = list(full)
        weights = [b.weight for b in ordered]
        in_set = [b.key in {k.key for k in kept} for b in ordered]
        exact_probs = [exact.estimates[b.key] for b in ordered]
        for index, butterfly in enumerate(ordered):
            if not in_set[index]:
                continue
            bound = lemma_vi5_error_bound(
                exact_probs, in_set, weights, index
            )
            overestimate = (
                result.probability(butterfly.key) - exact_probs[index]
            )
            assert overestimate <= bound + 0.02, (
                f"butterfly {butterfly.key}: overestimate {overestimate} "
                f"exceeds Lemma VI.5 bound {bound}"
            )


class TestPipelines:
    def test_io_then_solve(self, figure1):
        """Serialise, reload, and solve — results unchanged."""
        reloaded = loads_graph(dumps_graph(figure1))
        original = find_mpmb(figure1, method="os", n_trials=500, rng=5)
        roundtrip = find_mpmb(reloaded, method="os", n_trials=500, rng=5)
        assert original.estimates == roundtrip.estimates

    def test_subsample_then_solve(self):
        """The Figure 9 pipeline: vertex-sample a dataset, then run OLS."""
        graph = load_dataset("abide", "bench", rng=0)
        sub = sample_vertices(graph, 0.5, np.random.default_rng(1))
        result = ordering_listing_sampling(sub, 500, n_prepare=50, rng=2)
        assert result.method == "ols"
        # A complete-bipartite brain graph always has butterflies.
        assert result.best is not None

    def test_candidates_reused_across_estimators(self):
        """One preparing phase can feed both estimators (Figure 8)."""
        graph = load_dataset("protein", "bench", rng=0)
        candidates = prepare_candidates(graph, 60, rng=1)
        optimised = ordering_listing_sampling(
            graph, 1_000, candidates=candidates, rng=2
        )
        karp = ordering_listing_sampling(
            graph, 200, candidates=candidates, estimator="karp-luby", rng=2
        )
        assert set(optimised.estimates) == set(karp.estimates)

    @pytest.mark.parametrize("name", ["abide", "movielens", "protein"])
    def test_bench_datasets_end_to_end(self, name):
        graph = load_dataset(name, "bench", rng=0)
        result = find_mpmb(
            graph, method="ols", n_trials=400, n_prepare=40, rng=1
        )
        assert result.best is not None
        assert 0.0 < result.best_probability <= 1.0
