"""Tests for the single-butterfly conditional probability estimator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import exact_mpmb_by_worlds, make_butterfly
from repro.core import estimate_probability
from repro.sampling import monte_carlo_trial_bound

from .conftest import build_graph, random_small_graph


class TestEstimateProbability:
    def test_figure1_target(self, figure1):
        butterfly = make_butterfly(figure1, 0, 1, 1, 2)
        estimate = estimate_probability(figure1, butterfly, 20_000, rng=3)
        assert estimate.probability == pytest.approx(0.11424, abs=0.01)
        assert estimate.existence_probability == pytest.approx(0.1344)
        assert estimate.conditional_probability == pytest.approx(
            estimate.probability / estimate.existence_probability
        )

    def test_unblocked_heaviest(self, figure1):
        # The weight-10 butterfly is blocked by nothing: conditional
        # probability is exactly 1.
        butterfly = make_butterfly(figure1, 0, 1, 0, 1)
        estimate = estimate_probability(figure1, butterfly, 500, rng=1)
        assert estimate.conditional_probability == 1.0
        assert estimate.probability == pytest.approx(
            butterfly.existence_probability(figure1)
        )

    def test_certain_butterfly(self, square):
        butterfly = make_butterfly(square, 0, 1, 0, 1)
        estimate = estimate_probability(square, butterfly, 100, rng=0)
        assert estimate.probability == 1.0

    def test_impossible_butterfly(self):
        graph = build_graph([
            ("a", "x", 1.0, 0.0), ("a", "y", 1.0, 0.5),
            ("b", "x", 1.0, 0.5), ("b", "y", 1.0, 0.5),
        ])
        butterfly = make_butterfly(graph, 0, 1, 0, 1)
        estimate = estimate_probability(graph, butterfly, 100, rng=0)
        assert estimate.probability == 0.0
        assert estimate.existence_probability == 0.0

    def test_trace_recorded(self, figure1):
        butterfly = make_butterfly(figure1, 0, 1, 1, 2)
        estimate = estimate_probability(
            figure1, butterfly, 200, rng=0, checkpoints=5
        )
        assert len(estimate.trace.checkpoints) == 5
        assert estimate.trace.final_estimate == pytest.approx(
            estimate.probability
        )

    def test_trial_bound_beats_direct(self, figure1):
        """The conditional estimator's Theorem IV.1 budget is smaller
        than direct estimation's by the existence-probability factor."""
        butterfly = make_butterfly(figure1, 0, 1, 1, 2)
        estimate = estimate_probability(figure1, butterfly, 5_000, rng=2)
        direct_bound = monte_carlo_trial_bound(estimate.probability)
        assert estimate.trial_bound() < direct_bound

    def test_validation(self, figure1, square):
        butterfly = make_butterfly(figure1, 0, 1, 1, 2)
        with pytest.raises(ValueError):
            estimate_probability(figure1, butterfly, 0)
        # A butterfly from a larger graph has out-of-range edge indices.
        big = build_graph(
            [(f"L{u}", f"R{v}", 1.0, 0.5) for u in range(4)
             for v in range(4)]
        )
        foreign = make_butterfly(big, 2, 3, 2, 3)
        with pytest.raises(ValueError, match="outside"):
            estimate_probability(square, foreign, 10)


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 5_000))
def test_property_matches_exact(seed):
    """The conditional estimator converges to Equation 4 on random
    instances (checked for every backbone butterfly)."""
    graph = random_small_graph(np.random.default_rng(seed), 4, 4)
    exact = exact_mpmb_by_worlds(graph)
    for key, true_value in exact.estimates.items():
        butterfly = exact.butterflies[key]
        estimate = estimate_probability(
            graph, butterfly, 4_000, rng=seed + 1
        )
        assert estimate.probability == pytest.approx(
            true_value, abs=0.035
        ), key
