"""Additional hypothesis property tests across module boundaries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import exact_probability, find_mpmb
from repro.core import condition_graph, conditional_mpmb
from repro.core.serialize import result_from_dict, result_to_dict
from repro.graph import dumps_graph, loads_graph

from .conftest import random_small_graph


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_property_io_round_trip(seed):
    """Graphs survive TSV serialisation bit-exactly."""
    graph = random_small_graph(
        np.random.default_rng(seed), 5, 5, grid_weights=False
    )
    loaded = loads_graph(dumps_graph(graph))
    assert loaded.n_edges == graph.n_edges
    assert loaded.weights.tolist() == graph.weights.tolist()
    assert loaded.probs.tolist() == graph.probs.tolist()
    assert list(loaded.left_labels) == list(graph.left_labels)
    assert list(loaded.right_labels) == list(graph.right_labels)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_property_result_serialisation_round_trip(seed):
    """Exact results survive the JSON dict round trip."""
    graph = random_small_graph(np.random.default_rng(seed), 4, 4)
    result = find_mpmb(graph, method="exact-worlds")
    payload = result_to_dict(result)
    restored = result_from_dict(payload, graph)
    assert restored.estimates == pytest.approx(result.estimates)
    assert set(restored.butterflies) == set(result.butterflies)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 50_000))
def test_property_law_of_total_probability(seed):
    """For every butterfly B and any edge e:
    P(B) = p(e)·P(B | e present) + (1-p(e))·P(B | e absent)."""
    rng = np.random.default_rng(seed)
    graph = random_small_graph(rng, 4, 4)
    exact = find_mpmb(graph, method="exact-worlds")
    if not exact.estimates:
        return
    edge = int(rng.integers(0, graph.n_edges))
    u, v = graph.edge_endpoints(edge)
    ref = (graph.left_label(u), graph.right_label(v))
    p_edge = float(graph.probs[edge])
    given_present = conditional_mpmb(
        graph, present=[ref], method="exact-worlds"
    )
    given_absent = conditional_mpmb(
        graph, absent=[ref], method="exact-worlds"
    )
    for key, total in exact.estimates.items():
        decomposed = (
            p_edge * given_present.probability(key)
            + (1 - p_edge) * given_absent.probability(key)
        )
        assert decomposed == pytest.approx(total, abs=1e-10), key


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 50_000))
def test_property_conditioning_is_probability_rewriting(seed):
    """condition_graph changes only the conditioned probabilities."""
    rng = np.random.default_rng(seed)
    graph = random_small_graph(rng, 4, 4)
    edge = int(rng.integers(0, graph.n_edges))
    u, v = graph.edge_endpoints(edge)
    ref = (graph.left_label(u), graph.right_label(v))
    conditioned = condition_graph(graph, present=[ref])
    assert conditioned.probs[edge] == 1.0
    for other in range(graph.n_edges):
        if other != edge:
            assert conditioned.probs[other] == graph.probs[other]
    assert conditioned.weights.tolist() == graph.weights.tolist()


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 50_000))
def test_property_exact_probability_consistent_with_solver(seed):
    """Single-butterfly exact queries equal the full solver's entries."""
    graph = random_small_graph(np.random.default_rng(seed), 4, 4)
    exact = find_mpmb(graph, method="exact-worlds")
    for key, value in exact.estimates.items():
        butterfly = exact.butterflies[key]
        assert exact_probability(graph, butterfly) == pytest.approx(
            value, abs=1e-10
        )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 50_000))
def test_property_merge_equals_concatenated_counts(seed):
    """Pooling two OS runs gives exactly the frequency of one run over
    the concatenation of their sampled worlds: the merged estimate's
    implied win count is the sum of the per-run win counts."""
    from repro import ordering_sampling
    from repro.core import merge_results

    graph = random_small_graph(np.random.default_rng(seed), 4, 4)
    a = ordering_sampling(graph, 300, rng=seed)
    b = ordering_sampling(graph, 500, rng=seed + 1)
    merged = merge_results(a, b)
    assert merged.n_trials == 800
    for key in set(a.estimates) | set(b.estimates):
        wins = round(a.probability(key) * 300) + round(
            b.probability(key) * 500
        )
        assert merged.probability(key) * 800 == pytest.approx(wins)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 50_000))
def test_property_top_weight_search_consistent_with_max_search(seed):
    """top_weight_butterflies(k=1) always returns a butterfly from the
    exact maximum set, and its weight equals the exact maximum."""
    from repro.butterfly import max_weight_butterflies, top_weight_butterflies

    graph = random_small_graph(np.random.default_rng(seed), 5, 5)
    search = max_weight_butterflies(graph)
    top = top_weight_butterflies(graph, 1)
    if not search.found:
        assert top == []
    else:
        assert len(top) == 1
        assert top[0].weight == search.weight
        assert top[0].key in {b.key for b in search.butterflies}


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 50_000))
def test_property_expected_bitruss_bounded_by_deterministic(seed):
    """Expected supports never exceed backbone supports, so the expected
    peel levels are bounded by the deterministic ones."""
    from repro.support import bitruss_decomposition

    graph = random_small_graph(np.random.default_rng(seed), 4, 4)
    deterministic = bitruss_decomposition(graph, mode="deterministic")
    expected = bitruss_decomposition(graph, mode="expected")
    assert expected.max_truss <= deterministic.max_truss + 1e-9
