"""Tests for antithetic world sampling and the Markdown report writer."""

import numpy as np
import pytest

from repro import WorldSampler, find_mpmb, ordering_sampling
from repro.experiments import (
    ExperimentConfig,
    render_markdown_report,
    run_experiment,
    write_markdown_report,
)
from repro.experiments.__main__ import main as experiments_main


class TestAntitheticSampling:
    def test_pairs_are_complementary_at_half(self):
        from .conftest import build_graph

        graph = build_graph([
            ("a", "x", 1.0, 0.5), ("a", "y", 1.0, 0.5),
            ("b", "x", 1.0, 0.5), ("b", "y", 1.0, 0.5),
        ])
        sampler = WorldSampler(graph, rng=0, antithetic=True)
        first = sampler.sample_mask()
        second = sampler.sample_mask()
        # At p = 0.5, u < p iff 1-u >= p (almost surely): exact mirror.
        assert (first == ~second).all()

    def test_marginals_preserved(self, figure1):
        sampler = WorldSampler(figure1, rng=1, antithetic=True)
        n = 4000
        totals = np.zeros(figure1.n_edges)
        for _ in range(n):
            totals += sampler.sample_mask()
        assert totals / n == pytest.approx(figure1.probs, abs=0.03)

    def test_estimates_still_converge(self, figure1):
        result = ordering_sampling(figure1, 20_000, rng=3, antithetic=True)
        assert result.probability((0, 1, 1, 2)) == pytest.approx(
            0.11424, abs=0.015
        )

    def test_variance_reduction_on_edge_count(self, figure1):
        """The per-pair mean of a monotone statistic (present-edge count)
        has lower variance under antithetic sampling."""
        def pair_means(antithetic: bool) -> np.ndarray:
            sampler = WorldSampler(figure1, rng=11, antithetic=antithetic)
            means = []
            for _ in range(400):
                a = sampler.sample_mask().sum()
                b = sampler.sample_mask().sum()
                means.append((a + b) / 2)
            return np.array(means)

        plain = pair_means(False).var()
        anti = pair_means(True).var()
        assert anti < 0.5 * plain

    def test_facade_passthrough(self, figure1):
        result = find_mpmb(
            figure1, method="os", n_trials=500, rng=5, antithetic=True
        )
        assert result.best is not None


class TestMarkdownReport:
    @pytest.fixture(scope="class")
    def outcomes(self):
        config = ExperimentConfig(datasets=("abide",), n_prepare=20)
        return [
            run_experiment("table4", config),
            run_experiment("fig6", config),
        ], config

    def test_render_contains_sections(self, outcomes):
        results, config = outcomes
        text = render_markdown_report(results, config)
        assert "# MPMB replication report" in text
        assert "## table4" in text
        assert "## fig6" in text
        assert "profile=`bench`" in text
        assert "```" in text

    def test_write(self, outcomes, tmp_path):
        results, config = outcomes
        target = tmp_path / "report.md"
        write_markdown_report(results, target, config)
        assert target.read_text().startswith("# MPMB replication report")

    def test_cli_report_flag(self, tmp_path, capsys):
        target = tmp_path / "cli-report.md"
        code = experiments_main([
            "table4", "--datasets", "abide", "--report", str(target),
        ])
        assert code == 0
        assert target.exists()
        assert "wrote Markdown report" in capsys.readouterr().out


class TestRepetition:
    def test_aggregation(self, figure1):
        from repro.experiments import repeat_method

        aggregate = repeat_method(
            figure1, "os", n_trials=1_500, repetitions=6, rng=0
        )
        assert aggregate.repetitions == 6
        key = (0, 1, 1, 2)
        # Mean near the exact value; positive dispersion.
        assert aggregate.means[key] == pytest.approx(0.11424, abs=0.02)
        assert aggregate.stds[key] > 0.0
        low, high = aggregate.interval(key)
        assert 0.0 <= low <= aggregate.means[key] <= high <= 1.0

    def test_ranked_rows(self, figure1):
        from repro.experiments import repeat_method

        aggregate = repeat_method(
            figure1, "os", n_trials=800, repetitions=3, rng=1
        )
        rows = aggregate.ranked()
        means = [mean for _b, mean, _s in rows]
        assert means == sorted(means, reverse=True)

    def test_exact_method_zero_std(self, figure1):
        from repro.experiments import repeat_method

        aggregate = repeat_method(
            figure1, "exact-worlds", n_trials=0, repetitions=2, rng=2
        )
        assert all(std == 0.0 for std in aggregate.stds.values())

    def test_validation(self, figure1):
        from repro.experiments import repeat_method

        with pytest.raises(ValueError):
            repeat_method(figure1, "os", 100, repetitions=1)

    def test_ols_with_prepare_override(self, figure1):
        from repro.experiments import repeat_method

        aggregate = repeat_method(
            figure1, "ols", n_trials=1_000, repetitions=3, rng=3,
            n_prepare=150,
        )
        assert aggregate.means
