"""Tests for the two application layers (recommendation, brain)."""

import pytest

from repro.apps import (
    analyse_brain,
    build_interest_graph,
    compare_groups,
    recommend,
)
from repro.datasets import abide_groups

INTERACTIONS = [
    ("alice", "football", 0.72),
    ("alice", "harry-potter", 0.72),
    ("alice", "skating", 0.70),
    ("alice", "chess", 0.70),
    ("bob", "football", 0.72),
    ("bob", "harry-potter", 0.72),
    ("bob", "chess", 0.70),
    ("bob", "skating", 0.70),
    ("bob", "origami", 0.60),
    *[
        (f"user{i}", item, 0.8)
        for i in range(8)
        for item in ("football", "harry-potter")
    ],
]


class TestInterestGraph:
    def test_structure(self):
        graph = build_interest_graph(INTERACTIONS)
        assert graph.n_left == 10  # alice, bob, user0..7
        assert graph.n_right == 5
        assert graph.n_edges == len(INTERACTIONS)

    def test_cold_items_weigh_more(self):
        graph = build_interest_graph(INTERACTIONS, cold_reward=2.0)
        football = graph.weights[
            graph.edge_between(
                graph.left_index("alice"), graph.right_index("football")
            )
        ]
        skating = graph.weights[
            graph.edge_between(
                graph.left_index("alice"), graph.right_index("skating")
            )
        ]
        assert skating > football

    def test_zero_reward_flattens_weights(self):
        graph = build_interest_graph(INTERACTIONS, cold_reward=0.0)
        assert (graph.weights == 1.0).all()

    def test_negative_reward_rejected(self):
        with pytest.raises(ValueError):
            build_interest_graph(INTERACTIONS, cold_reward=-1.0)


class TestRecommend:
    def test_cold_reward_surfaces_niche_pair(self):
        recommendations = recommend(
            INTERACTIONS, for_user="alice", k_butterflies=5,
            cold_reward=2.0, n_trials=3_000, rng=11,
        )
        assert recommendations, "expected at least one recommendation"
        top = recommendations[0]
        assert top.user == "alice"
        assert top.item == "origami"
        assert top.peer == "bob"
        assert set(top.via_items) == {"skating", "chess"}
        assert 0.0 < top.probability <= 1.0

    def test_no_self_or_known_items(self):
        recommendations = recommend(
            INTERACTIONS, k_butterflies=5, cold_reward=2.0,
            n_trials=2_000, rng=11,
        )
        liked = {}
        for user, item, _p in INTERACTIONS:
            liked.setdefault(user, set()).add(item)
        for rec in recommendations:
            assert rec.item not in liked[rec.user]
            assert rec.peer != rec.user

    def test_deduplicated_per_user_item(self):
        recommendations = recommend(
            INTERACTIONS, k_butterflies=8, cold_reward=2.0,
            n_trials=2_000, rng=11,
        )
        pairs = [(rec.user, rec.item) for rec in recommendations]
        assert len(pairs) == len(set(pairs))

    def test_sorted_by_probability(self):
        recommendations = recommend(
            INTERACTIONS, k_butterflies=8, cold_reward=2.0,
            n_trials=2_000, rng=11,
        )
        probabilities = [rec.probability for rec in recommendations]
        assert probabilities == sorted(probabilities, reverse=True)


class TestBrain:
    @pytest.fixture(scope="class")
    def groups(self):
        return abide_groups(14, rng=3)

    def test_analysis_shape(self, groups):
        tc, _asd = groups
        analysis = analyse_brain(tc, k=5, n_trials=1_500, n_prepare=80,
                                 rng=5)
        assert analysis.group == "abide-tc"
        assert 0 < len(analysis.findings) <= 5
        for finding in analysis.findings:
            assert len(finding.rois) == 4
            assert finding.intensity == pytest.approx(
                finding.probability * finding.weight
            )

    def test_findings_ranked(self, groups):
        tc, _asd = groups
        analysis = analyse_brain(tc, k=5, n_trials=1_500, n_prepare=80,
                                 rng=5)
        probabilities = [f.probability for f in analysis.findings]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_roi_clusters(self, groups):
        tc, _asd = groups
        analysis = analyse_brain(tc, k=5, n_trials=1_500, n_prepare=80,
                                 rng=5)
        clusters = analysis.roi_clusters()
        assert sum(clusters.values()) == 4 * len(analysis.findings)

    def test_tc_asd_contrast(self, groups):
        tc, asd = groups
        tc_analysis, asd_analysis, ratio = compare_groups(
            tc, asd, k=5, n_trials=1_500, n_prepare=80, rng=5
        )
        assert tc_analysis.mean_intensity > asd_analysis.mean_intensity
        assert ratio > 1.0
