"""Fault-tolerant parallel worker pool (retry, backoff, degradation)."""

from __future__ import annotations

import pytest

from repro import FaultPlan, WorkerFailureError
from repro.core import result_to_dict
from repro.runtime import backoff_seconds, run_parallel_trials, split_trials
from repro.sampling.bounds import achievable_epsilon

from .conftest import FIGURE_1_EDGES, build_graph


@pytest.fixture
def graph():
    return build_graph(FIGURE_1_EDGES, name="figure-1")


class TestSplitAndBackoff:
    def test_split_is_near_even_and_sums(self):
        assert split_trials(10, 3) == [4, 3, 3]
        assert split_trials(3, 5) == [1, 1, 1, 0, 0]
        assert sum(split_trials(1234, 7)) == 1234

    def test_split_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            split_trials(0, 3)
        with pytest.raises(ValueError):
            split_trials(10, 0)

    def test_backoff_doubles_then_caps(self):
        assert backoff_seconds(1) == pytest.approx(0.05)
        assert backoff_seconds(2) == pytest.approx(0.10)
        assert backoff_seconds(3) == pytest.approx(0.20)
        assert backoff_seconds(10) == 2.0

    def test_jittered_backoff_is_bounded_and_deterministic(self):
        """Jitter scales into [0.5, 1.0]x and replays per seed."""
        first = [backoff_seconds(2, jitter=7) for _ in range(5)]
        again = [backoff_seconds(2, jitter=7) for _ in range(5)]
        assert first == again  # seed -> identical schedule
        for delay in first:
            assert 0.5 * 0.10 <= delay <= 0.10
        # A shared generator decorrelates consecutive draws.
        from repro.sampling.rng import ensure_rng

        stream = ensure_rng(3)
        draws = {backoff_seconds(2, jitter=stream) for _ in range(8)}
        assert len(draws) > 1


class TestHappyPath:
    def test_merged_result_pools_all_trials(self, graph):
        result = run_parallel_trials(graph, 60, 3, method="os", rng=5)
        assert result.n_trials == 60
        assert not result.degraded
        assert result.stats["workers_total"] == 3.0
        assert result.stats["workers_dropped"] == 0.0
        assert result.stats["worker_attempts"] == 3.0
        assert result.best is not None
        for probability in result.estimates.values():
            assert 0.0 <= probability <= 1.0

    def test_non_poolable_method_rejected(self, graph):
        with pytest.raises(ValueError, match="pooled"):
            run_parallel_trials(graph, 10, 2, method="ols-kl")


class TestRetries:
    def test_crash_once_retries_with_backoff_and_converges(self, graph):
        slept = []
        clean = run_parallel_trials(graph, 60, 3, method="os", rng=5)
        faulty = run_parallel_trials(
            graph, 60, 3, method="os", rng=5,
            faults=FaultPlan(worker_crash_attempts={0: 1}),
            sleep=slept.append,
        )
        assert len(slept) == 1
        assert 0.5 * backoff_seconds(1) <= slept[0] <= backoff_seconds(1)
        # The jitter stream is seeded from the run RNG, so a replay of
        # the same faulty run sleeps for exactly the same durations.
        replay = []
        run_parallel_trials(
            graph, 60, 3, method="os", rng=5,
            faults=FaultPlan(worker_crash_attempts={0: 1}),
            sleep=replay.append,
        )
        assert replay == slept
        assert faulty.stats["worker_attempts"] == 4.0
        assert not faulty.degraded
        # The retried worker replays its original RNG stream, so the
        # pooled estimate is identical to the fault-free pool.
        faulty_payload = result_to_dict(faulty)
        clean_payload = result_to_dict(clean)
        faulty_payload["stats"].pop("worker_attempts")
        clean_payload["stats"].pop("worker_attempts")
        assert faulty_payload == clean_payload

    def test_repeated_crashes_escalate_backoff(self, graph):
        slept = []
        run_parallel_trials(
            graph, 30, 2, method="os", rng=5, max_attempts=3,
            faults=FaultPlan(worker_crash_attempts={1: 2}),
            sleep=slept.append,
        )
        assert len(slept) == 2
        assert 0.5 * backoff_seconds(1) <= slept[0] <= backoff_seconds(1)
        assert 0.5 * backoff_seconds(2) <= slept[1] <= backoff_seconds(2)
        assert slept[1] > slept[0]  # escalation survives the jitter


class TestPermanentFailures:
    def test_dropped_worker_degrades_pool(self, graph):
        shares = split_trials(60, 3)
        result = run_parallel_trials(
            graph, 60, 3, method="os", rng=5, max_attempts=2,
            faults=FaultPlan(worker_crash_attempts={1: 99}),
            sleep=lambda _: None,
        )
        assert result.degraded
        assert result.degraded_reason == "workers-dropped"
        assert result.n_trials == 60 - shares[1]
        assert result.target_trials == 60
        assert result.stats["workers_dropped"] == 1.0
        guarantee = result.guarantee
        assert guarantee.achieved_trials == result.n_trials
        assert guarantee.target_trials == 60
        assert guarantee.epsilon == pytest.approx(
            achievable_epsilon(0.05, result.n_trials, 0.1)
        )

    def test_straggler_is_terminated_and_retried(self, graph):
        result = run_parallel_trials(
            graph, 20, 2, method="os", rng=5,
            straggler_timeout=1.0, max_attempts=2,
            faults=FaultPlan(worker_hang_attempts={0: 1}),
            sleep=lambda _: None,
        )
        assert result.n_trials == 20
        assert not result.degraded
        assert result.stats["worker_attempts"] == 3.0

    def test_all_workers_failing_raises(self, graph):
        with pytest.raises(WorkerFailureError, match="failed permanently"):
            run_parallel_trials(
                graph, 20, 2, method="os", rng=5, max_attempts=2,
                faults=FaultPlan(worker_crash_attempts={0: 99, 1: 99}),
                sleep=lambda _: None,
            )


class TestDeterminism:
    def test_pool_matches_sequential_merge(self, graph):
        """Worker pooling is the trial-weighted merge of its shares."""
        pooled = run_parallel_trials(graph, 40, 2, method="os", rng=9)
        assert pooled.n_trials == 40
        # Same call is reproducible end to end.
        again = run_parallel_trials(graph, 40, 2, method="os", rng=9)
        assert result_to_dict(pooled) == result_to_dict(again)

    def test_zero_share_workers_are_skipped(self, graph):
        result = run_parallel_trials(graph, 2, 4, method="os", rng=9)
        assert result.n_trials == 2
        assert result.stats["worker_attempts"] == 2.0
