"""Tests for the uncertain butterfly counting substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import IntractableError
from repro.counting import (
    butterfly_count_variance,
    count_probable_butterflies,
    enumerate_probable_butterflies,
    exact_count_distribution,
    expected_butterfly_count,
    sample_butterfly_counts,
)
from repro.butterfly import enumerate_butterflies

from .conftest import build_graph, random_small_graph


class TestExpectedCount:
    def test_figure1(self, figure1):
        # Three backbone butterflies with existence products:
        # (v1,v2): .5*.6*.3*.4=.036; (v1,v3): .5*.8*.3*.7=.084;
        # (v2,v3): .6*.8*.4*.7=.1344
        assert expected_butterfly_count(figure1) == pytest.approx(
            0.036 + 0.084 + 0.1344
        )

    def test_no_butterfly(self, no_butterfly_graph):
        assert expected_butterfly_count(no_butterfly_graph) == 0.0

    def test_certain_graph(self, square):
        assert expected_butterfly_count(square) == 1.0

    def test_matches_distribution_mean(self, figure1):
        distribution = exact_count_distribution(figure1)
        mean = sum(count * p for count, p in distribution.items())
        assert expected_butterfly_count(figure1) == pytest.approx(mean)


class TestVariance:
    def test_single_butterfly_bernoulli(self, square):
        # One certain butterfly: variance 0.
        assert butterfly_count_variance(square) == pytest.approx(0.0)

    def test_bernoulli_variance(self):
        graph = build_graph([
            ("a", "x", 1.0, 0.5), ("a", "y", 1.0, 0.5),
            ("b", "x", 1.0, 0.5), ("b", "y", 1.0, 0.5),
        ])
        p = 0.5**4
        assert butterfly_count_variance(graph) == pytest.approx(
            p * (1 - p)
        )

    def test_matches_distribution_variance(self, figure1):
        distribution = exact_count_distribution(figure1)
        mean = sum(c * p for c, p in distribution.items())
        second = sum(c * c * p for c, p in distribution.items())
        assert butterfly_count_variance(figure1) == pytest.approx(
            second - mean * mean
        )

    def test_budget_guard(self, figure1):
        with pytest.raises(IntractableError):
            butterfly_count_variance(figure1, max_butterflies=1)


class TestSampledCounts:
    def test_mean_converges(self, figure1):
        counts = sample_butterfly_counts(figure1, 8_000, rng=0)
        assert counts.mean() == pytest.approx(
            expected_butterfly_count(figure1), abs=0.02
        )

    def test_no_butterfly_graph(self, no_butterfly_graph):
        counts = sample_butterfly_counts(no_butterfly_graph, 50, rng=0)
        assert (counts == 0).all()

    def test_invalid_trials(self, figure1):
        with pytest.raises(ValueError):
            sample_butterfly_counts(figure1, 0)


class TestExactDistribution:
    def test_sums_to_one(self, figure1):
        distribution = exact_count_distribution(figure1)
        assert sum(distribution.values()) == pytest.approx(1.0)
        assert min(distribution) >= 0

    def test_no_butterfly(self, no_butterfly_graph):
        assert exact_count_distribution(no_butterfly_graph) == {0: 1.0}

    def test_zero_count_matches_mpmb_none(self, figure1):
        from repro import exact_mpmb_by_worlds

        distribution = exact_count_distribution(figure1)
        exact = exact_mpmb_by_worlds(figure1)
        assert distribution[0] == pytest.approx(exact.prob_no_butterfly)

    def test_budget_guard(self):
        graph = build_graph([
            (f"L{u}", f"R{v}", 1.0, 0.5)
            for u in range(5) for v in range(5)
        ])
        with pytest.raises(IntractableError):
            exact_count_distribution(graph, max_worlds=1 << 5)


class TestThresholdEnumeration:
    def test_filters_by_existence(self, figure1):
        # Existence probabilities: .036, .084, .1344.
        assert count_probable_butterflies(figure1, 0.01) == 3
        assert count_probable_butterflies(figure1, 0.05) == 2
        assert count_probable_butterflies(figure1, 0.1) == 1
        assert count_probable_butterflies(figure1, 0.2) == 0

    def test_matches_brute_filter(self, figure1):
        for threshold in (0.02, 0.05, 0.09, 0.5):
            fast = sorted(
                b.key for b in enumerate_probable_butterflies(
                    figure1, threshold
                )
            )
            slow = sorted(
                b.key for b in enumerate_butterflies(figure1)
                if b.existence_probability(figure1) >= threshold
            )
            assert fast == slow, threshold

    def test_prune_toggle_identical(self, figure1):
        pruned = sorted(
            b.key for b in enumerate_probable_butterflies(
                figure1, 0.05, prune=True
            )
        )
        unpruned = sorted(
            b.key for b in enumerate_probable_butterflies(
                figure1, 0.05, prune=False
            )
        )
        assert pruned == unpruned

    def test_invalid_threshold(self, figure1):
        with pytest.raises(ValueError):
            list(enumerate_probable_butterflies(figure1, 0.0))
        with pytest.raises(ValueError):
            list(enumerate_probable_butterflies(figure1, 1.5))

    def test_zero_probability_edges_skipped(self):
        graph = build_graph([
            ("a", "x", 1.0, 0.0), ("a", "y", 1.0, 1.0),
            ("b", "x", 1.0, 1.0), ("b", "y", 1.0, 1.0),
        ])
        assert count_probable_butterflies(graph, 0.5) == 0


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), threshold=st.floats(0.01, 0.9))
def test_property_threshold_enumeration_correct(seed, threshold):
    """Probability-ordered enumeration equals the brute-force filter."""
    graph = random_small_graph(np.random.default_rng(seed), 5, 5)
    fast = sorted(
        b.key for b in enumerate_probable_butterflies(graph, threshold)
    )
    slow = sorted(
        b.key for b in enumerate_butterflies(graph)
        if b.existence_probability(graph) >= threshold
    )
    assert fast == slow


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_moments_match_distribution(seed):
    """E[X] and Var[X] agree with the exact count distribution."""
    graph = random_small_graph(np.random.default_rng(seed), 4, 4)
    distribution = exact_count_distribution(graph)
    mean = sum(c * p for c, p in distribution.items())
    second = sum(c * c * p for c, p in distribution.items())
    assert expected_butterfly_count(graph) == pytest.approx(mean)
    assert butterfly_count_variance(graph) == pytest.approx(
        second - mean * mean, abs=1e-9
    )
