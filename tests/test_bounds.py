"""Tests for the paper's trial-number theory (core.bounds)."""

import math

import numpy as np
import pytest

from repro import CandidateSet
from repro.core import backbone_butterflies
from repro.core.bounds import (
    balance_ratio,
    candidate_hit_probability,
    candidate_trial_ratios,
    karp_luby_trial_bound,
    karp_luby_trial_ratio,
    lemma_vi5_error_bound,
    monte_carlo_trial_bound,
    optimized_trial_bound,
    os_trial_bound,
    preparing_trials_for_recall,
    ratio_matrix,
)


class TestEquation8:
    def test_formula(self):
        # Pr[E]=0.5, S=1, mu=0.1 -> 0.5 * 1 * (5 - 1) = 2.
        assert karp_luby_trial_ratio(0.5, 1.0, 0.1) == pytest.approx(2.0)

    def test_zero_when_mu_equals_existence(self):
        assert karp_luby_trial_ratio(0.3, 2.0, 0.3) == 0.0

    def test_scales_linearly_with_blocking_mass(self):
        one = karp_luby_trial_ratio(0.5, 1.0, 0.1)
        three = karp_luby_trial_ratio(0.5, 3.0, 0.1)
        assert three == pytest.approx(3 * one)

    def test_mu_above_existence_rejected(self):
        with pytest.raises(ValueError, match="exceeds existence"):
            karp_luby_trial_ratio(0.2, 1.0, 0.5)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            karp_luby_trial_ratio(1.5, 1.0, 0.1)
        with pytest.raises(ValueError):
            karp_luby_trial_ratio(0.5, -1.0, 0.1)
        with pytest.raises(ValueError):
            karp_luby_trial_ratio(0.5, 1.0, 0.0)


class TestLemmaVI4:
    def test_bound_is_ratio_times_base(self):
        base = monte_carlo_trial_bound(0.1, 0.1, 0.1)
        ratio = karp_luby_trial_ratio(0.5, 1.0, 0.1)
        assert karp_luby_trial_bound(0.5, 1.0, 0.1, 0.1, 0.1) == math.ceil(
            ratio * base
        )

    def test_floor(self):
        assert karp_luby_trial_bound(
            0.3, 0.0, 0.3, minimum=7
        ) == 7

    def test_direct_bounds_alias_theorem41(self):
        assert os_trial_bound(0.05) == monte_carlo_trial_bound(0.05)
        assert optimized_trial_bound(0.05) == monte_carlo_trial_bound(0.05)


class TestEquation9:
    def test_balance_ratio(self):
        assert balance_ratio(100) == pytest.approx(0.01)
        with pytest.raises(ValueError):
            balance_ratio(0)


class TestLemmaVI1:
    def test_hit_probability(self):
        # Paper: P(B)=0.1 and 20 trials -> "nearly 90%".
        assert candidate_hit_probability(0.1, 20) == pytest.approx(
            0.878, abs=0.005
        )

    def test_paper_default(self):
        # 100 trials make the P(B)=0.05 miss probability < 0.6%.
        miss = 1.0 - candidate_hit_probability(0.05, 100)
        assert miss < 0.006

    def test_inverse(self):
        n = preparing_trials_for_recall(0.05, 0.995)
        assert candidate_hit_probability(0.05, n) >= 0.995
        assert candidate_hit_probability(0.05, n - 1) < 0.995

    def test_edge_cases(self):
        assert candidate_hit_probability(0.0, 100) == 0.0
        assert candidate_hit_probability(1.0, 1) == 1.0
        assert candidate_hit_probability(0.3, 0) == 0.0
        with pytest.raises(ValueError):
            candidate_hit_probability(1.2, 10)
        with pytest.raises(ValueError):
            preparing_trials_for_recall(0.0, 0.9)
        with pytest.raises(ValueError):
            preparing_trials_for_recall(0.5, 1.0)


class TestRatioMatrix:
    def test_shape_and_feasibility(self):
        mus = [0.1, 0.3]
        existence = [0.2, 0.5]
        matrix = ratio_matrix(mus, existence)
        assert matrix.shape == (2, 2)
        # mu=0.3 > existence=0.2 is infeasible.
        assert np.isnan(matrix[1, 0])
        assert matrix[0, 0] == pytest.approx(
            karp_luby_trial_ratio(0.2, 1.0, 0.1)
        )

    def test_monotone_in_existence(self):
        mus = [0.05]
        existence = [0.2, 0.5, 0.9]
        row = ratio_matrix(mus, existence)[0]
        assert row[0] < row[1] < row[2]


class TestCandidateRatios:
    def test_figure1(self, figure1):
        candidates = CandidateSet(figure1, backbone_butterflies(figure1))
        ratios = candidate_trial_ratios(candidates, mu=0.1)
        assert len(ratios) == 3
        assert ratios[0] == 0.0  # top candidate: S_0 = 0
        assert all(r >= 0 for r in ratios)
        assert any(r > 0 for r in ratios[1:])

    def test_feasibility_clamp(self, figure1):
        candidates = CandidateSet(figure1, backbone_butterflies(figure1))
        # Even with an absurd mu the clamp keeps the ratio finite.
        ratios = candidate_trial_ratios(candidates, mu=0.99)
        assert all(np.isfinite(r) for r in ratios)


class TestLemmaVI5:
    def test_bound_counts_heavier_missing_only(self):
        exact = [0.3, 0.2, 0.1, 0.05]
        present = [True, False, True, False]
        weights = [10.0, 9.0, 8.0, 7.0]
        # For index 2 (weight 8): heavier missing = index 1 (0.2).
        assert lemma_vi5_error_bound(exact, present, weights, 2) == 0.2
        # For index 0: nothing heavier.
        assert lemma_vi5_error_bound(exact, present, weights, 0) == 0.0
        # For index 3: indices 1 missing (0.2); index 0, 2 present.
        assert lemma_vi5_error_bound(exact, present, weights, 3) == 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            lemma_vi5_error_bound([0.1], [True, False], [1.0], 0)
        with pytest.raises(IndexError):
            lemma_vi5_error_bound([0.1], [True], [1.0], 5)
