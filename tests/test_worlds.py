"""Tests for possible worlds: sampling, probabilities, enumeration."""

import numpy as np
import pytest

from repro import IntractableError, PossibleWorld, WorldSampler
from repro.worlds import iter_all_worlds, iter_subset_worlds
from repro.worlds.sampler import LazyEdgeTrial

from .conftest import build_graph


class TestPossibleWorld:
    def test_probability_figure_1b(self, figure1):
        # Figure 1(b): the world missing only edge (u1, v1) has
        # probability (1-0.5)*0.6*0.8*0.3*0.4*0.7 = 0.02016.
        mask = np.ones(6, dtype=bool)
        mask[0] = False
        world = PossibleWorld(figure1, mask)
        assert world.probability() == pytest.approx(0.02016)
        assert world.n_present == 5

    def test_log_probability_consistent(self, figure1):
        mask = np.array([True, False, True, False, True, False])
        world = PossibleWorld(figure1, mask)
        assert np.exp(world.log_probability()) == pytest.approx(
            world.probability()
        )

    def test_impossible_world_log_probability(self):
        graph = build_graph([("a", "x", 1.0, 1.0)])
        world = PossibleWorld(graph, np.array([False]))
        assert world.probability() == 0.0
        assert world.log_probability() == -np.inf

    def test_wrong_mask_length_rejected(self, figure1):
        with pytest.raises(ValueError, match="mask length"):
            PossibleWorld(figure1, np.ones(3, dtype=bool))

    def test_adjacency_restricted_to_present(self, figure1):
        mask = np.zeros(6, dtype=bool)
        mask[0] = True  # only (u1, v1)
        world = PossibleWorld(figure1, mask)
        adj_left = world.adjacency_left()
        assert len(adj_left[0]) == 1
        assert len(adj_left[1]) == 0
        adj_right = world.adjacency_right()
        assert len(adj_right[0]) == 1

    def test_contains_edges(self, figure1):
        mask = np.array([True, True, False, False, False, False])
        world = PossibleWorld(figure1, mask)
        assert world.contains_edges([0, 1])
        assert not world.contains_edges([0, 2])


class TestWorldSampler:
    def test_marginal_frequencies_match_probabilities(self, figure1):
        sampler = WorldSampler(figure1, rng=0)
        n = 4000
        totals = np.zeros(figure1.n_edges)
        for _ in range(n):
            totals += sampler.sample_mask()
        freq = totals / n
        assert freq == pytest.approx(figure1.probs, abs=0.03)

    def test_sample_worlds_count(self, figure1):
        sampler = WorldSampler(figure1, rng=1)
        worlds = list(sampler.sample_worlds(5))
        assert len(worlds) == 5
        assert all(isinstance(w, PossibleWorld) for w in worlds)

    def test_deterministic_with_seed(self, figure1):
        a = WorldSampler(figure1, rng=7).sample_mask()
        b = WorldSampler(figure1, rng=7).sample_mask()
        assert (a == b).all()

    def test_certain_and_impossible_edges(self):
        graph = build_graph([
            ("a", "x", 1.0, 1.0),
            ("a", "y", 1.0, 0.0),
        ])
        sampler = WorldSampler(graph, rng=3)
        for _ in range(50):
            mask = sampler.sample_mask()
            assert mask[0] and not mask[1]


class TestLazyEdgeTrial:
    def test_memoised_within_trial(self, figure1):
        trial = LazyEdgeTrial(figure1, np.random.default_rng(0))
        first = trial.edge_present(2)
        for _ in range(10):
            assert trial.edge_present(2) == first
        assert trial.n_sampled == 1

    def test_certain_edges(self):
        graph = build_graph([
            ("a", "x", 1.0, 1.0),
            ("a", "y", 1.0, 0.0),
        ])
        trial = LazyEdgeTrial(graph, np.random.default_rng(0))
        assert trial.edge_present(0)
        assert not trial.edge_present(1)

    def test_force_present(self, figure1):
        trial = LazyEdgeTrial(figure1, np.random.default_rng(0))
        trial.force_present([0, 1])
        assert trial.all_present([0, 1])

    def test_force_after_absent_sample_rejected(self):
        graph = build_graph([("a", "x", 1.0, 0.0)])
        trial = LazyEdgeTrial(graph, np.random.default_rng(0))
        assert not trial.edge_present(0)
        with pytest.raises(ValueError, match="already sampled absent"):
            trial.force_present([0])

    def test_all_present_short_circuits(self):
        graph = build_graph([
            ("a", "x", 1.0, 0.0),
            ("a", "y", 1.0, 0.5),
        ])
        trial = LazyEdgeTrial(graph, np.random.default_rng(0))
        assert not trial.all_present([0, 1])
        # Edge 1 must not have been sampled (short circuit on edge 0).
        assert trial.n_sampled == 1

    def test_marginals(self, figure1):
        rng = np.random.default_rng(11)
        hits = 0
        n = 3000
        for _ in range(n):
            if LazyEdgeTrial(figure1, rng).edge_present(3):
                hits += 1
        assert hits / n == pytest.approx(figure1.probs[3], abs=0.03)


class TestEnumeration:
    def test_all_worlds_probabilities_sum_to_one(self, figure1):
        total = sum(w.probability() for w in iter_all_worlds(figure1))
        assert total == pytest.approx(1.0)
        assert sum(1 for _ in iter_all_worlds(figure1)) == 64

    def test_subset_worlds_marginalise(self, figure1):
        relevant = [0, 1, 3, 4]
        total = sum(p for _mask, p in iter_subset_worlds(figure1, relevant))
        assert total == pytest.approx(1.0)
        assert sum(1 for _ in iter_subset_worlds(figure1, relevant)) == 16

    def test_zero_probability_patterns_skipped(self):
        graph = build_graph([("a", "x", 1.0, 1.0), ("a", "y", 1.0, 0.5)])
        patterns = list(iter_subset_worlds(graph, [0, 1]))
        # Patterns where the certain edge is absent have probability 0.
        assert len(patterns) == 2
        assert sum(p for _m, p in patterns) == pytest.approx(1.0)

    def test_budget_guard(self, figure1):
        with pytest.raises(IntractableError, match="budget"):
            list(iter_all_worlds(figure1, max_worlds=8))
        with pytest.raises(IntractableError):
            list(iter_subset_worlds(figure1, list(range(6)), max_worlds=8))
