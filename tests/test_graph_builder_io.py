"""Tests for GraphBuilder and the TSV graph serialisation."""

import io

import pytest

from repro import GraphBuilder, GraphFormatError, GraphValidationError
from repro.graph import dumps_graph, load_graph, loads_graph, save_graph

from .conftest import FIGURE_1_EDGES, build_graph


class TestBuilder:
    def test_incremental_build(self):
        builder = GraphBuilder(name="demo")
        builder.add_edge("a", "x", 1.0, 0.5).add_edge("a", "y", 2.0, 0.9)
        assert builder.n_edges == 2
        graph = builder.build()
        assert graph.name == "demo"
        assert graph.n_edges == 2

    def test_isolated_vertices(self):
        builder = GraphBuilder()
        builder.add_left_vertex("lonely-left")
        builder.add_right_vertex("lonely-right")
        builder.add_edge("a", "x", 1.0, 0.5)
        graph = builder.build()
        assert graph.n_left == 2
        assert graph.n_right == 2
        assert graph.n_edges == 1

    def test_duplicate_edge_rejected(self):
        builder = GraphBuilder()
        builder.add_edge("a", "x", 1.0, 0.5)
        with pytest.raises(GraphValidationError, match="duplicate edge"):
            builder.add_edge("a", "x", 2.0, 0.6)

    def test_side_conflict_rejected(self):
        builder = GraphBuilder()
        builder.add_edge("a", "x", 1.0, 0.5)
        with pytest.raises(GraphValidationError, match="partition"):
            builder.add_edge("x", "b", 1.0, 0.5)

    def test_bad_weight_rejected_at_add_time(self):
        builder = GraphBuilder()
        with pytest.raises(GraphValidationError, match="weight"):
            builder.add_edge("a", "x", 0.0, 0.5)
        # The failed add must not have registered anything.
        assert builder.n_edges == 0

    def test_bad_probability_rejected_at_add_time(self):
        builder = GraphBuilder()
        with pytest.raises(GraphValidationError, match="probability"):
            builder.add_edge("a", "x", 1.0, 1.01)

    def test_builder_reusable_after_build(self):
        builder = GraphBuilder()
        builder.add_edge("a", "x", 1.0, 0.5)
        first = builder.build()
        builder.add_edge("b", "x", 2.0, 0.7)
        second = builder.build()
        assert first.n_edges == 1
        assert second.n_edges == 2


class TestIO:
    def test_string_round_trip(self, figure1):
        text = dumps_graph(figure1)
        loaded = loads_graph(text)
        assert loaded.name == "figure-1"
        assert loaded.n_edges == figure1.n_edges
        assert loaded.weights.tolist() == figure1.weights.tolist()
        assert loaded.probs.tolist() == figure1.probs.tolist()
        assert list(loaded.left_labels) == list(figure1.left_labels)

    def test_file_round_trip(self, figure1, tmp_path):
        path = tmp_path / "graph.tsv"
        save_graph(figure1, path)
        loaded = load_graph(path)
        assert loaded == figure1

    def test_file_object_round_trip(self, figure1):
        buffer = io.StringIO()
        save_graph(figure1, buffer)
        buffer.seek(0)
        assert load_graph(buffer) == figure1

    def test_comments_and_blank_lines_ignored(self):
        text = (
            "# ubg v1 demo\n"
            "# left\tright\tweight\tprob\n"
            "\n"
            "# a comment\n"
            "a\tx\t1.0\t0.5\n"
        )
        graph = loads_graph(text)
        assert graph.n_edges == 1
        assert graph.name == "demo"

    def test_missing_header_rejected(self):
        with pytest.raises(GraphFormatError, match="header"):
            loads_graph("a\tx\t1.0\t0.5\n")

    def test_wrong_field_count_rejected(self):
        with pytest.raises(GraphFormatError, match="4 tab-separated"):
            loads_graph("# ubg v1\na\tx\t1.0\n")

    def test_bad_number_rejected(self):
        with pytest.raises(GraphFormatError, match="numeric"):
            loads_graph("# ubg v1\na\tx\theavy\t0.5\n")

    def test_precision_preserved(self):
        graph = build_graph([("a", "x", 1.0 / 3.0, 0.123456789012345)])
        loaded = loads_graph(dumps_graph(graph))
        assert loaded.weights[0] == graph.weights[0]
        assert loaded.probs[0] == graph.probs[0]
