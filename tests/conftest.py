"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os
import signal
import threading

import numpy as np
import pytest

from repro import GraphBuilder, UncertainBipartiteGraph

#: Per-test wall-clock limit in seconds (pytest-timeout is not available
#: in this environment, so a SIGALRM watchdog stands in for it).
TEST_TIMEOUT_SECONDS = float(os.environ.get("REPRO_TEST_TIMEOUT", "120"))


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """Fail a hanging test instead of hanging the whole suite.

    SIGALRM only works on POSIX main threads; elsewhere the test runs
    unguarded, which is no worse than before.
    """
    use_alarm = (
        TEST_TIMEOUT_SECONDS > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not use_alarm:
        yield
        return

    def _timed_out(signum, frame):
        pytest.fail(
            f"test exceeded {TEST_TIMEOUT_SECONDS:g}s watchdog timeout",
            pytrace=False,
        )

    previous = signal.signal(signal.SIGALRM, _timed_out)
    signal.setitimer(signal.ITIMER_REAL, TEST_TIMEOUT_SECONDS)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)

#: The paper's Figure 1(a) network.
FIGURE_1_EDGES = [
    ("u1", "v1", 2.0, 0.5),
    ("u1", "v2", 2.0, 0.6),
    ("u1", "v3", 1.0, 0.8),
    ("u2", "v1", 3.0, 0.3),
    ("u2", "v2", 3.0, 0.4),
    ("u2", "v3", 1.0, 0.7),
]

#: Exact P(B) values on Figure 1, computed by both exact solvers and
#: verifiable by hand (64 possible worlds).  Keys are canonical
#: (u1, u2, v1, v2) index tuples.
FIGURE_1_EXACT = {
    (0, 1, 0, 1): 0.036,      # weight 10
    (0, 1, 0, 2): 0.06384,    # weight 7
    (0, 1, 1, 2): 0.11424,    # weight 7
}


def build_graph(edges, name=""):
    """Graph from (left, right, weight, prob) tuples."""
    builder = GraphBuilder(name=name)
    for left, right, weight, prob in edges:
        builder.add_edge(left, right, weight=weight, prob=prob)
    return builder.build()


def random_small_graph(
    rng: np.random.Generator,
    max_left: int = 4,
    max_right: int = 4,
    grid_weights: bool = True,
) -> UncertainBipartiteGraph:
    """A random graph small enough for the exact solvers.

    Weights come from a half-integer grid by default so equal-weight ties
    occur and compare exactly in floating point (see the OS weight-order
    discussion in DESIGN.md).
    """
    n_left = int(rng.integers(2, max_left + 1))
    n_right = int(rng.integers(2, max_right + 1))
    edges = []
    for u in range(n_left):
        for v in range(n_right):
            if rng.random() < 0.6:
                if grid_weights:
                    weight = float(rng.integers(1, 9)) / 2.0
                else:
                    weight = float(rng.uniform(0.1, 4.0))
                prob = float(rng.integers(1, 10)) / 10.0
                edges.append((f"L{u}", f"R{v}", weight, prob))
    if len(edges) < 4:
        edges = [
            ("L0", "R0", 1.0, 0.5),
            ("L0", "R1", 1.5, 0.5),
            ("L1", "R0", 2.0, 0.5),
            ("L1", "R1", 2.5, 0.5),
        ]
    return build_graph(edges, name="random-small")


@pytest.fixture
def figure1() -> UncertainBipartiteGraph:
    """The paper's Figure 1(a) network."""
    return build_graph(FIGURE_1_EDGES, name="figure-1")


@pytest.fixture
def square() -> UncertainBipartiteGraph:
    """A single certain butterfly (2x2 complete, p=1)."""
    return build_graph([
        ("a", "x", 1.0, 1.0),
        ("a", "y", 2.0, 1.0),
        ("b", "x", 3.0, 1.0),
        ("b", "y", 4.0, 1.0),
    ], name="square")


@pytest.fixture
def no_butterfly_graph() -> UncertainBipartiteGraph:
    """A path — no butterfly exists in any world."""
    return build_graph([
        ("a", "x", 1.0, 0.9),
        ("b", "x", 2.0, 0.8),
        ("b", "y", 3.0, 0.7),
    ], name="path")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
