"""Anytime adaptive mode: bit-identity off, racing stops, pre-screen,
checkpoint/resume exactness, and the guarantee-math bugfix regressions.

The contract under test (``docs/performance.md`` / ``docs/runtime.md``):

* ``adaptive=None``/``False`` is inert — every method is bit-identical
  to the fixed-budget path, result document included;
* with the racing rule on, an early stop is *certified*: not degraded,
  same argmax as the fixed run, realised guarantee attached, savings in
  the stats and ``adaptive.*`` metrics;
* the racer's survivor/interval state rides the engine checkpoint, so
  kill-and-resume reproduces a continuous adaptive run exactly;
* eliminations are sound: whenever the intervals cover the truth, the
  true incumbent is never eliminated (hypothesis property).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.__main__ as cli
from repro import FaultPlan, RuntimePolicy
from repro.adaptive import (
    AdaptiveConfig,
    EBInterval,
    RacingFrequencyLoop,
    anytime_delta,
    resolve_adaptive,
    split_delta,
)
from repro.core import (
    find_mpmb,
    mc_vp,
    ordering_listing_sampling,
    ordering_sampling,
    result_to_dict,
)
from repro.core.bounds import preparing_trials_for_recall
from repro.errors import ConfigurationError
from repro.graph import save_graph
from repro.observability import Observer
from repro.runtime import InjectedCrash
from repro.runtime.degradation import Guarantee
from repro.runtime.engine import LoopInterrupt
from repro.sampling.bounds import MAX_TRIAL_BOUND, monte_carlo_trial_bound
from repro.service import GraphRegistry, QueryBroker, QueryRequest

from .conftest import FIGURE_1_EDGES, build_graph

#: Two disjoint butterflies, one clearly dominant (P ~ 0.656 vs ~ 0.24
#: conditional on winning ~ 0.083), so the racing rule separates within
#: a few hundred trials while the preparing phase still lists both.
DOMINANT_EDGES = [
    ("a1", "b1", 5.0, 0.9),
    ("a1", "b2", 5.0, 0.9),
    ("a2", "b1", 5.0, 0.9),
    ("a2", "b2", 5.0, 0.9),
    ("c1", "d1", 1.0, 0.7),
    ("c1", "d2", 1.0, 0.7),
    ("c2", "d1", 1.0, 0.7),
    ("c2", "d2", 1.0, 0.7),
]

#: Racing knobs sized for the small test graphs.
FAST_RACE = {"check_every": 64, "min_trials": 64}


@pytest.fixture
def graph():
    return build_graph(FIGURE_1_EDGES, name="figure-1")


@pytest.fixture
def dominant():
    return build_graph(DOMINANT_EDGES, name="dominant")


def _best_key(result):
    return result.best.key


class TestAdaptiveOffBitIdentical:
    """``adaptive=None``/``False`` must be a no-op on every method."""

    def test_mc_vp(self, graph):
        baseline = result_to_dict(mc_vp(graph, 40, rng=7))
        assert result_to_dict(mc_vp(graph, 40, rng=7, adaptive=None)) \
            == baseline
        assert result_to_dict(mc_vp(graph, 40, rng=7, adaptive=False)) \
            == baseline

    def test_os_scalar_and_blocked(self, graph):
        baseline = result_to_dict(ordering_sampling(graph, 40, rng=3))
        assert result_to_dict(
            ordering_sampling(graph, 40, rng=3, adaptive=False)
        ) == baseline
        blocked = result_to_dict(
            ordering_sampling(graph, 40, rng=3, block_size=16)
        )
        assert result_to_dict(
            ordering_sampling(
                graph, 40, rng=3, block_size=16, adaptive=None
            )
        ) == blocked

    def test_ols_both_estimators(self, graph):
        for estimator in ("optimized", "karp-luby"):
            baseline = result_to_dict(ordering_listing_sampling(
                graph, 60, n_prepare=20, estimator=estimator, rng=11
            ))
            assert result_to_dict(ordering_listing_sampling(
                graph, 60, n_prepare=20, estimator=estimator, rng=11,
                adaptive=False,
            )) == baseline

    def test_adaptive_run_that_never_checks_is_bit_identical(self, graph):
        """40 trials never reach the default ``min_trials=64`` boundary,
        so an adaptive-on run must produce the fixed run's document."""
        baseline = result_to_dict(ordering_sampling(graph, 40, rng=3))
        assert result_to_dict(
            ordering_sampling(graph, 40, rng=3, adaptive=True)
        ) == baseline

    def test_find_mpmb_rejects_adaptive_on_exact_methods(self, graph):
        with pytest.raises(ConfigurationError, match="adaptive"):
            find_mpmb(graph, method="exact-worlds", adaptive=True)

    def test_resolve_adaptive_forms(self):
        assert resolve_adaptive(None) is None
        assert resolve_adaptive(False) is None
        assert resolve_adaptive(True) == AdaptiveConfig()
        config = resolve_adaptive({"delta": 0.05, "check_every": 32})
        assert config.delta == 0.05 and config.check_every == 32
        assert resolve_adaptive(config) is config
        with pytest.raises(ConfigurationError):
            resolve_adaptive("yes")
        with pytest.raises(ConfigurationError):
            resolve_adaptive({"delta": 2.0})


class TestCertifiedRacingStops:
    """Dominant-winner runs must stop early, certified, same argmax."""

    @pytest.mark.parametrize("block_size", [None, 64])
    def test_os(self, dominant, block_size):
        fixed = ordering_sampling(
            dominant, 2_000, rng=5, block_size=block_size
        )
        adaptive = ordering_sampling(
            dominant, 2_000, rng=5, block_size=block_size,
            adaptive=FAST_RACE,
        )
        assert adaptive.n_trials < 2_000
        assert not adaptive.degraded
        assert adaptive.degraded_reason is None
        assert _best_key(adaptive) == _best_key(fixed)
        assert adaptive.stats["trials_saved"] > 0
        guarantee = adaptive.guarantee
        assert guarantee is not None
        assert guarantee.realized_trials == adaptive.n_trials
        assert guarantee.eliminated >= 0
        assert 0.0 < guarantee.epsilon < float("inf")

    def test_mc_vp_blocked(self, dominant):
        fixed = mc_vp(dominant, 1_024, rng=2, block_size=64)
        adaptive = mc_vp(
            dominant, 1_024, rng=2, block_size=64, adaptive=FAST_RACE
        )
        assert adaptive.n_trials < 1_024
        assert not adaptive.degraded
        assert _best_key(adaptive) == _best_key(fixed)
        assert adaptive.guarantee is not None

    def test_ols_optimized(self, dominant):
        fixed = ordering_listing_sampling(
            dominant, 2_000, n_prepare=40, estimator="optimized", rng=9
        )
        adaptive = ordering_listing_sampling(
            dominant, 2_000, n_prepare=40, estimator="optimized", rng=9,
            adaptive=FAST_RACE,
        )
        assert adaptive.n_trials < 2_000
        assert not adaptive.degraded
        assert _best_key(adaptive) == _best_key(fixed)
        assert adaptive.guarantee is not None

    def test_ols_kl_prescreen_and_racing(self, dominant):
        fixed = ordering_listing_sampling(
            dominant, 0, n_prepare=40, estimator="karp-luby", rng=13
        )
        adaptive = ordering_listing_sampling(
            dominant, 0, n_prepare=40, estimator="karp-luby", rng=13,
            adaptive=True,
        )
        assert not adaptive.degraded
        assert _best_key(adaptive) == _best_key(fixed)
        assert adaptive.stats["trials_saved"] > 0
        assert adaptive.n_trials < fixed.n_trials
        guarantee = adaptive.guarantee
        assert guarantee is not None
        assert guarantee.realized_trials == adaptive.n_trials
        assert guarantee.eliminated >= 1

    def test_metrics_recorded(self, dominant):
        observer = Observer()
        ordering_sampling(
            dominant, 2_000, rng=5, adaptive=FAST_RACE,
            observer=observer,
        )
        snapshot = observer.metrics.to_dict()
        assert snapshot["counters"]["adaptive.trials_saved"] > 0
        assert snapshot["counters"]["adaptive.candidates_eliminated"] >= 1
        assert snapshot["gauges"]["adaptive.realized_epsilon"] > 0
        # Stats counters surface through the generic <method>.<stat> path.
        assert snapshot["counters"]["os.trials_saved"] > 0

    def test_prescreen_metrics_recorded(self, dominant):
        observer = Observer()
        ordering_listing_sampling(
            dominant, 0, n_prepare=40, estimator="karp-luby", rng=13,
            adaptive=True, observer=observer,
        )
        snapshot = observer.metrics.to_dict()
        assert snapshot["counters"]["adaptive.prescreen.samples"] > 0
        assert snapshot["counters"]["adaptive.trials_saved"] > 0


class TestAdaptiveCheckpointResume:
    """Crash-and-resume must replay the racing decisions exactly."""

    def test_os_adaptive(self, dominant, tmp_path):
        baseline = result_to_dict(ordering_sampling(
            dominant, 2_000, rng=5, adaptive=FAST_RACE
        ))
        path = tmp_path / "os-adaptive.json"
        with pytest.raises(InjectedCrash):
            ordering_sampling(
                dominant, 2_000, rng=5, adaptive=FAST_RACE,
                runtime=RuntimePolicy(
                    checkpoint_path=path, checkpoint_every=10,
                    faults=FaultPlan(crash_before_trial=43),
                ),
            )
        resumed = ordering_sampling(
            dominant, 2_000, rng=5, adaptive=FAST_RACE,
            runtime=RuntimePolicy(
                checkpoint_path=path, checkpoint_every=10,
                resume_from=path,
            ),
        )
        assert result_to_dict(resumed) == baseline

    def test_ols_kl_adaptive(self, tmp_path):
        # A dense 3x3 graph lists several candidates with blocking mass
        # and close probabilities, so the race spans many rounds; small
        # rounds and no pre-screen so the crash lands mid-race with
        # live interval state in the checkpoint payload.
        edges = [
            (f"u{i}", f"v{j}", 1.0 + ((i + j) % 3), 0.5)
            for i in range(3) for j in range(3)
        ]
        dense = build_graph(edges, name="dense")
        knobs = {"block_trials": 8, "prescreen": False}
        baseline = result_to_dict(ordering_listing_sampling(
            dense, 200, n_prepare=30, estimator="karp-luby", rng=13,
            adaptive=knobs,
        ))
        path = tmp_path / "kl-adaptive.json"
        with pytest.raises(InjectedCrash):
            ordering_listing_sampling(
                dense, 200, n_prepare=30, estimator="karp-luby",
                rng=13, adaptive=knobs,
                runtime=RuntimePolicy(
                    checkpoint_path=path, checkpoint_every=1,
                    faults=FaultPlan(crash_before_trial=4),
                ),
            )
        resumed = ordering_listing_sampling(
            dense, 200, n_prepare=30, estimator="karp-luby", rng=13,
            adaptive=knobs,
            runtime=RuntimePolicy(
                checkpoint_path=path, checkpoint_every=1,
                resume_from=path,
            ),
        )
        payload = result_to_dict(resumed)
        # The resume marker is the only permitted divergence.
        assert payload["stats"].pop("resumed_candidates") == 1.0
        assert payload == baseline


class _ReplayLoop:
    """Minimal engine loop replaying a fixed winner sequence."""

    def __init__(self, winners, counts):
        self.winners = winners
        self.counts = counts

    def run_trial(self, trial):
        self.counts[self.winners[trial - 1]] += 1

    def state_payload(self, completed):
        return {}

    def restore_state(self, payload):
        pass


class TestEliminationSoundness:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100_000), arms=st.integers(2, 5))
    def test_covered_incumbent_never_dropped(self, seed, arms):
        """Whenever the intervals cover the true winner frequencies at
        the stopping check, the declared incumbent IS the true argmax —
        the certified-δ claim, conditioned on coverage so the property
        is deterministic rather than probabilistic."""
        rng = np.random.default_rng(seed)
        probs = rng.dirichlet(np.ones(arms))
        winners = rng.choice(arms, size=1_500, p=probs)
        counts = [0] * arms
        delta = 0.05
        config = AdaptiveConfig(check_every=100, min_trials=100)
        racer = RacingFrequencyLoop(
            _ReplayLoop(winners, counts), counts_fn=lambda: counts,
            config=config, delta=delta, mu=0.05, phantom=False,
        )
        for trial in range(1, len(winners) + 1):
            try:
                racer.run_trial(trial)
            except LoopInterrupt:
                break
        else:
            return  # never separated: nothing was eliminated
        done = racer.stopped_at
        check = done // config.check_every
        delta_arm = split_delta(anytime_delta(delta, check), arms)
        intervals = [
            EBInterval(1.0, done, float(c), float(c)) for c in counts
        ]
        covered = all(
            interval.lower(delta_arm) <= p <= interval.upper(delta_arm)
            for interval, p in zip(intervals, probs)
        )
        if not covered:  # probability <= delta; claim doesn't apply
            return
        best = max(
            range(arms),
            key=lambda i: (intervals[i].lower(delta_arm), -i),
        )
        assert probs[best] == probs.max()

    @settings(max_examples=25, deadline=None)
    @given(
        count=st.integers(0, 500),
        total=st.integers(1, 500),
        delta=st.floats(1e-6, 0.5),
    )
    def test_interval_well_formed(self, count, total, delta):
        count = min(count, total)
        interval = EBInterval(1.0, total, float(count), float(count))
        lower, upper = interval.lower(delta), interval.upper(delta)
        assert 0.0 <= lower <= interval.mean <= upper <= 1.0


class TestBugfixRegressions:
    def test_preparing_trials_floor_at_one(self):
        # Denormal recall underflows log(1 - r) to exactly 0.0; the
        # pre-fix code then reported a zero-trial preparing phase.
        assert preparing_trials_for_recall(0.5, 1e-300) == 1
        assert preparing_trials_for_recall(0.05, 0.994) >= 99

    def test_trial_bound_cap(self):
        with pytest.raises(ConfigurationError, match="cap"):
            monte_carlo_trial_bound(1e-12, 1e-6, 0.1)
        assert monte_carlo_trial_bound(0.05, 0.1, 0.1) <= MAX_TRIAL_BOUND

    def test_trial_bound_cap_reaches_cli_as_exit_2(self, tmp_path, capsys):
        graph_file = str(tmp_path / "g.tsv")
        save_graph(build_graph(FIGURE_1_EDGES, name="g"), graph_file)
        code = cli.main([
            "search", graph_file, "--method", "ols-kl", "--trials", "0",
            "--mu", "1e-12", "--epsilon", "1e-6",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "cap" in err

    def test_trial_bound_cap_rejected_at_service_admission(self):
        with pytest.raises(ConfigurationError, match="cap"):
            QueryRequest(
                dataset="abide", method="os", trials=None,
                mu=1e-12, epsilon=1e-6, delta=0.1,
            )

    def test_cache_key_includes_mode(self):
        fixed = QueryRequest(dataset="abide", method="os", trials=40)
        adaptive = QueryRequest(
            dataset="abide", method="os", trials=40, mode="adaptive"
        )
        assert fixed.canonical_params() != adaptive.canonical_params()
        # The anytime knobs shape the stop rule, so they are identity
        # too — but only in adaptive mode.
        loose = QueryRequest(
            dataset="abide", method="os", trials=40, mode="adaptive",
            delta=None, mu=0.1,
        )
        assert loose.canonical_params() != adaptive.canonical_params()
        assert QueryRequest(
            dataset="abide", method="os", trials=40, mu=0.1
        ).canonical_params() == fixed.canonical_params()

    def test_mode_validation(self):
        with pytest.raises(ConfigurationError, match="mode"):
            QueryRequest(dataset="abide", method="os", trials=40,
                         mode="turbo")
        with pytest.raises(ConfigurationError, match="adaptive"):
            QueryRequest(dataset="abide", method="exact-worlds",
                         mode="adaptive")

    def test_guarantee_payload_round_trip(self):
        plain = Guarantee(
            mu=0.05, epsilon=0.1, delta=0.1,
            achieved_trials=10, target_trials=20,
        )
        payload = plain.to_dict()
        assert "realized_trials" not in payload
        assert "eliminated" not in payload
        assert Guarantee.from_dict(payload) == plain

        realised = Guarantee(
            mu=0.05, epsilon=0.02, delta=0.1,
            achieved_trials=10, target_trials=20,
            realized_trials=10, eliminated=3,
        )
        round_tripped = Guarantee.from_dict(realised.to_dict())
        assert round_tripped == realised
        assert round_tripped.realized_trials == 10
        assert round_tripped.eliminated == 3


class TestServiceAdaptiveMode:
    @pytest.fixture()
    def broker(self):
        registry = GraphRegistry(["abide"])
        registry.load_all()
        return QueryBroker(registry, sleep=lambda _: None)

    def test_adaptive_request_flows_and_misses_fixed_cache(self, broker):
        fixed = broker.handle(QueryRequest(
            dataset="abide", method="os", trials=40, seed=7
        ))
        assert fixed.status == "ok"
        adaptive = broker.handle(QueryRequest(
            dataset="abide", method="os", trials=40, seed=7,
            mode="adaptive",
        ))
        assert adaptive.status == "ok"
        assert not adaptive.cache_hit  # the mode is part of the key
        assert adaptive.ranking == fixed.ranking  # 40 trials never check
