"""Real-thread stress tests for the service-layer lock discipline.

These hammer the invariants the concurrency rules (LCK001/ATM001)
protect statically: the token bucket never over-grants under
contention, a half-open breaker admits exactly its probe budget, the
result cache never exceeds its capacity bound, the registry performs
one load per version no matter how many threads race the lazy first
``get()``, and the broker's pool map publishes exactly one worker pool
when two pooled requests race a cold cache (the regression the
``_pools_lock`` fix closed — pre-fix, each racer published its own
pool and the loser's shared-memory segment leaked).

All timing is driven by injected fake clocks; the threads race on
locks, not on wall time, so the suite is fast and deterministic in
what it asserts (exact grant counts, not "usually about N").
"""

import threading
from types import SimpleNamespace

from repro.errors import CircuitOpenError
from repro.service import GraphRegistry, QueryBroker
from repro.service import broker as broker_module
from repro.service import registry as registry_module
from repro.service.admission import TokenBucket
from repro.service.breaker import CircuitBreaker
from repro.service.cache import ResultCache
from repro.service.chaos import FakeClock
from repro.service.registry import RegistryEntry
from repro.service.schemas import QueryRequest

from .conftest import FIGURE_1_EDGES, build_graph

THREADS = 8


def _run_threads(count, target):
    threads = [
        threading.Thread(target=target, args=(i,))
        for i in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestTokenBucketContention:
    def test_frozen_clock_grants_exactly_the_burst(self):
        """No lost and no duplicated tokens: with the clock frozen
        there is no refill, so 800 racing acquires grant exactly the
        5-token burst (a torn ``_tokens`` update would break this)."""
        bucket = TokenBucket(rate=1.0, burst=5.0, clock=FakeClock())
        barrier = threading.Barrier(THREADS)
        grants = [0] * THREADS

        def worker(i):
            barrier.wait()
            for _ in range(100):
                if bucket.try_acquire():
                    grants[i] += 1

        _run_threads(THREADS, worker)
        assert sum(grants) == 5
        assert bucket.available == 0.0

    def test_refill_is_not_double_counted(self):
        """Advancing the clock once mid-hammer refills once: total
        grants stay burst + refill even when every thread observes
        the same elapsed interval."""
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
        for _ in range(4):
            assert bucket.try_acquire()
        clock.advance(1.0)  # exactly 2 tokens accrue, shared by all
        barrier = threading.Barrier(THREADS)
        grants = [0] * THREADS

        def worker(i):
            barrier.wait()
            for _ in range(50):
                if bucket.try_acquire():
                    grants[i] += 1

        _run_threads(THREADS, worker)
        assert sum(grants) == 2


class TestBreakerProbeContention:
    def test_half_open_admits_exactly_the_probe_budget(self):
        """After cooldown, racing threads win exactly
        ``half_open_probes`` slots — a double-granted probe means the
        check-then-act in allow() lost its atomicity."""
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=3,
            cooldown_seconds=5.0,
            half_open_probes=3,
            clock=clock,
        )
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(5.0)
        barrier = threading.Barrier(2 * THREADS)
        outcomes = [None] * (2 * THREADS)

        def worker(i):
            barrier.wait()
            try:
                breaker.allow()
                outcomes[i] = "granted"
            except CircuitOpenError:
                outcomes[i] = "rejected"

        _run_threads(2 * THREADS, worker)
        assert outcomes.count("granted") == 3
        assert outcomes.count("rejected") == 2 * THREADS - 3
        assert breaker.state == "half-open"

    def test_cancelled_probes_free_their_slots_exactly_once(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1,
            cooldown_seconds=1.0,
            half_open_probes=2,
            clock=clock,
        )
        breaker.record_failure()
        clock.advance(1.0)
        breaker.allow()
        breaker.allow()
        barrier = threading.Barrier(THREADS)

        def worker(i):
            barrier.wait()
            breaker.cancel_probe()  # only 2 slots are actually out

        _run_threads(THREADS, worker)
        # The surplus cancels were no-ops: exactly two slots came
        # back, so exactly two more probes are grantable.
        breaker.allow()
        breaker.allow()
        try:
            breaker.allow()
            raise AssertionError("third probe should be rejected")
        except CircuitOpenError:
            pass


class TestResultCacheContention:
    def test_capacity_bound_holds_under_hammer(self):
        cache = ResultCache(max_entries=16)
        barrier = threading.Barrier(THREADS)

        def worker(i):
            barrier.wait()
            for j in range(200):
                key = (1, f"req-{i}-{j % 24}")
                cache.put(key, {"ranking": [], "n_trials": j})
                cache.get(key)
                cache.get((1, f"req-{(i + 1) % THREADS}-{j % 24}"))

        _run_threads(THREADS, worker)
        assert len(cache) <= 16
        assert 0.0 <= cache.hit_rate <= 1.0


class TestRegistryLazyLoadContention:
    def test_single_load_per_version(self, monkeypatch):
        """Eight threads racing the lazy first ``get()`` produce ONE
        load and ONE version bump: the losers reuse the winner's entry
        via the under-lock ``only_if_unloaded`` re-check (the ATM001
        documented re-check pattern)."""
        graph = build_graph(FIGURE_1_EDGES, name="stress")
        calls = []
        calls_lock = threading.Lock()

        def fake_load(name, profile, rng=0):
            with calls_lock:
                calls.append(name)
            return graph

        monkeypatch.setattr(
            registry_module, "load_dataset", fake_load
        )
        registry = GraphRegistry(
            ["stress"], sleep=lambda seconds: None, clock=FakeClock()
        )
        barrier = threading.Barrier(THREADS)
        versions = [0] * THREADS

        def worker(i):
            barrier.wait()
            versions[i] = registry.get("stress").version

        _run_threads(THREADS, worker)
        assert calls == ["stress"]
        assert versions == [1] * THREADS


class _FakePool:
    """Stands in for WorkerPool; rendezvous makes the race certain.

    The barrier in ``__init__`` holds each builder until *both* racing
    threads are constructing a pool, which is exactly the interleaving
    the old unlocked ``_pool_for`` leaked under.
    """

    created = []
    rendezvous = None

    def __init__(
        self, graph, wedge_index=None, checksum=None, observer=None
    ):
        self.checksum = checksum
        self.closed = False
        self.handle = SimpleNamespace(
            has_index=wedge_index is not None
        )
        if _FakePool.rendezvous is not None:
            _FakePool.rendezvous.wait(timeout=10)
        _FakePool.created.append(self)

    def close(self):
        self.closed = True


class TestBrokerPoolRace:
    def test_racing_pooled_requests_publish_exactly_one_pool(
        self, monkeypatch
    ):
        """Regression for the broker pool-map race: two pooled
        requests hitting a cold cache concurrently must converge on
        one published pool, with the losing build closed — before the
        ``_pools_lock`` fix both builds were published blindly and
        the overwritten pool's shared segment leaked."""
        monkeypatch.setattr(broker_module, "WorkerPool", _FakePool)
        _FakePool.created = []
        _FakePool.rendezvous = threading.Barrier(2)
        graph = build_graph(FIGURE_1_EDGES, name="race")
        registry = GraphRegistry(
            ["race"], sleep=lambda seconds: None, clock=FakeClock()
        )
        broker = QueryBroker(registry, sleep=lambda seconds: None)
        entry = RegistryEntry(
            dataset="race", status="ready", graph=graph,
            version=1, checksum="cafe",
        )
        request = QueryRequest(dataset="race", workers=2, trials=10)
        returned = [None, None]

        def worker(i):
            returned[i] = broker._pool_for(request, entry)

        _run_threads(2, worker)
        assert len(_FakePool.created) == 2  # both really built one
        assert returned[0] is returned[1]  # ...but agreed on a winner
        open_pools = [
            pool for pool in _FakePool.created if not pool.closed
        ]
        assert open_pools == [returned[0]]  # the loser was closed
        assert broker._pools["race"] == ("cafe", returned[0])

    def test_checksum_change_still_republishes(self, monkeypatch):
        monkeypatch.setattr(broker_module, "WorkerPool", _FakePool)
        _FakePool.created = []
        _FakePool.rendezvous = None
        graph = build_graph(FIGURE_1_EDGES, name="roll")
        registry = GraphRegistry(
            ["roll"], sleep=lambda seconds: None, clock=FakeClock()
        )
        broker = QueryBroker(registry, sleep=lambda seconds: None)
        request = QueryRequest(dataset="roll", workers=2, trials=10)
        first = broker._pool_for(request, RegistryEntry(
            dataset="roll", status="ready", graph=graph,
            version=1, checksum="v1",
        ))
        second = broker._pool_for(request, RegistryEntry(
            dataset="roll", status="ready", graph=graph,
            version=2, checksum="v2",
        ))
        assert first is not second
        assert first.closed and not second.closed
        assert broker._pools["roll"] == ("v2", second)
