"""Tests for BFC-VP butterfly counting/enumeration, incl. property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PossibleWorld, count_butterflies, enumerate_butterflies
from repro.butterfly import brute_force_butterflies, world_global_adjacency

from .conftest import build_graph, random_small_graph


def complete_bipartite(n_left, n_right):
    return build_graph([
        (f"L{u}", f"R{v}", 1.0, 0.5)
        for u in range(n_left)
        for v in range(n_right)
    ])


class TestCounting:
    def test_single_butterfly(self, square):
        assert count_butterflies(square) == 1

    def test_no_butterfly(self, no_butterfly_graph):
        assert count_butterflies(no_butterfly_graph) == 0

    def test_complete_bipartite_formula(self):
        # K_{m,n} contains C(m,2) * C(n,2) butterflies.
        for m, n in [(2, 2), (3, 3), (3, 5), (4, 4)]:
            graph = complete_bipartite(m, n)
            expected = (m * (m - 1) // 2) * (n * (n - 1) // 2)
            assert count_butterflies(graph) == expected

    def test_figure1_backbone(self, figure1):
        # Complete K_{2,3}: 1 * 3 = 3 butterflies.
        assert count_butterflies(figure1) == 3

    def test_world_restricted_count(self, figure1):
        mask = np.ones(6, dtype=bool)
        mask[0] = False  # drop (u1, v1): kills both butterflies using v1
        world = PossibleWorld(figure1, mask)
        adjacency = world_global_adjacency(world)
        assert count_butterflies(figure1, adjacency=adjacency) == 1


class TestEnumeration:
    def test_enumeration_matches_count(self, figure1):
        butterflies = list(enumerate_butterflies(figure1))
        assert len(butterflies) == count_butterflies(figure1)

    def test_no_duplicates(self, figure1):
        keys = [b.key for b in enumerate_butterflies(figure1)]
        assert len(keys) == len(set(keys))

    def test_matches_brute_force(self, figure1):
        fast = {b.key: b for b in enumerate_butterflies(figure1)}
        slow = {b.key: b for b in brute_force_butterflies(figure1)}
        assert fast.keys() == slow.keys()
        for key, butterfly in fast.items():
            assert butterfly.weight == slow[key].weight
            assert sorted(butterfly.edges) == sorted(slow[key].edges)

    def test_canonical_form(self, figure1):
        for butterfly in enumerate_butterflies(figure1):
            assert butterfly.u1 < butterfly.u2
            assert butterfly.v1 < butterfly.v2
            u, v = figure1.edge_endpoints(butterfly.edges[0])
            assert (u, v) == (butterfly.u1, butterfly.v1)

    def test_weights_match_edge_sums(self, figure1):
        weights = figure1.weights
        for butterfly in enumerate_butterflies(figure1):
            assert butterfly.weight == pytest.approx(
                sum(weights[e] for e in butterfly.edges)
            )


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_enumeration_equals_brute_force(seed):
    """BFC-VP finds exactly the butterflies brute force finds."""
    graph = random_small_graph(np.random.default_rng(seed), 5, 5)
    fast = sorted(b.key for b in enumerate_butterflies(graph))
    slow = sorted(b.key for b in brute_force_butterflies(graph))
    assert fast == slow


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_world_enumeration_equals_brute_force(seed):
    """The same equivalence holds on sampled possible worlds."""
    rng = np.random.default_rng(seed)
    graph = random_small_graph(rng, 5, 5)
    mask = rng.random(graph.n_edges) < graph.probs
    world = PossibleWorld(graph, mask)
    adjacency = world_global_adjacency(world)
    fast = sorted(
        b.key for b in enumerate_butterflies(graph, adjacency=adjacency)
    )
    slow = sorted(b.key for b in brute_force_butterflies(graph, world))
    assert fast == slow
