"""Tests for conditional (what-if) analysis and the ratings loaders."""

import pytest

from repro import DatasetError, GraphValidationError
from repro.core import (
    condition_graph,
    conditional_mpmb,
    edge_influence,
    exact_probability,
    find_mpmb,
)
from repro.butterfly import make_butterfly
from repro.datasets import load_ratings_csv, ratings_to_graph


class TestConditionGraph:
    def test_probabilities_rewritten(self, figure1):
        conditioned = condition_graph(
            figure1,
            present=[("u1", "v1")],
            absent=[("u2", "v3")],
        )
        e_present = conditioned.edge_between(0, 0)
        e_absent = conditioned.edge_between(1, 2)
        assert conditioned.probs[e_present] == 1.0
        assert conditioned.probs[e_absent] == 0.0
        # Everything else untouched.
        assert conditioned.probs[1] == figure1.probs[1]
        assert conditioned.weights.tolist() == figure1.weights.tolist()

    def test_original_untouched(self, figure1):
        before = figure1.probs.tolist()
        condition_graph(figure1, present=[("u1", "v1")])
        assert figure1.probs.tolist() == before

    def test_unknown_edge_rejected(self, figure1):
        with pytest.raises(GraphValidationError, match="no edge"):
            condition_graph(figure1, present=[("u1", "v9")])

    def test_conflicting_condition_rejected(self, figure1):
        with pytest.raises(GraphValidationError, match="both"):
            condition_graph(
                figure1,
                present=[("u1", "v1")],
                absent=[("u1", "v1")],
            )


class TestConditionalMpmb:
    def test_law_of_total_probability(self, figure1):
        """P(B max) = p(e)·P(B max | e) + (1-p(e))·P(B max | ¬e)."""
        butterfly = make_butterfly(figure1, 0, 1, 1, 2)
        edge = ("u1", "v1")
        p_edge = 0.5
        given_present = conditional_mpmb(
            figure1, present=[edge], method="exact-worlds"
        ).probability(butterfly.key)
        given_absent = conditional_mpmb(
            figure1, absent=[edge], method="exact-worlds"
        ).probability(butterfly.key)
        total = p_edge * given_present + (1 - p_edge) * given_absent
        assert total == pytest.approx(
            exact_probability(figure1, butterfly)
        )

    def test_conditioning_on_blocker(self, figure1):
        """Forcing the heavy butterfly's edges absent promotes the
        lighter ones."""
        unconditional = find_mpmb(figure1, method="exact-worlds")
        conditioned = conditional_mpmb(
            figure1, absent=[("u2", "v1")], method="exact-worlds"
        )
        key = (0, 1, 1, 2)
        assert conditioned.probability(key) > unconditional.probability(key)
        # The weight-10 butterfly is now impossible.
        assert conditioned.probability((0, 1, 0, 1)) == 0.0

    def test_edge_influence(self, figure1):
        present, absent, swing = edge_influence(
            figure1, ("u2", "v2"), method="exact-worlds"
        )
        assert present.best is not None
        # Edge (u2,v2) belongs to both top butterflies — forcing it
        # absent kills them.
        assert swing > 0.0

    def test_sampling_method_on_conditioned_graph(self, figure1):
        exact = conditional_mpmb(
            figure1, present=[("u1", "v2")], method="exact-worlds"
        )
        sampled = conditional_mpmb(
            figure1, present=[("u1", "v2")], method="os",
            n_trials=20_000, rng=5,
        )
        assert sampled.best.key == exact.best.key
        assert sampled.best_probability == pytest.approx(
            exact.best_probability, abs=0.02
        )


class TestRatingsToGraph:
    RATINGS = [
        ("alice", "film1", 5.0),
        ("bob", "film1", 5.0),
        ("carol", "film1", 1.0),
        ("alice", "film2", 3.0),
        ("bob", "film2", 3.0),
    ]

    def test_weights_are_ratings(self):
        graph = ratings_to_graph(self.RATINGS)
        edge = graph.edge_between(
            graph.left_index("alice"), graph.right_index("film1")
        )
        assert graph.weights[edge] == 5.0

    def test_reliability_penalises_outliers(self):
        graph = ratings_to_graph(self.RATINGS)
        conformist = graph.edge_between(
            graph.left_index("alice"), graph.right_index("film1")
        )
        outlier = graph.edge_between(
            graph.left_index("carol"), graph.right_index("film1")
        )
        assert graph.probs[conformist] > graph.probs[outlier]

    def test_exact_consensus_is_most_reliable(self):
        graph = ratings_to_graph(self.RATINGS)
        consensus = graph.edge_between(
            graph.left_index("alice"), graph.right_index("film2")
        )
        # film2's ratings are all 3.0 -> deviation 0 -> max reliability.
        assert graph.probs[consensus] == pytest.approx(0.95)

    def test_validation(self):
        with pytest.raises(DatasetError, match="non-empty"):
            ratings_to_graph([])
        with pytest.raises(DatasetError, match="positive"):
            ratings_to_graph([("a", "x", -1.0)])
        with pytest.raises(DatasetError, match="duplicate"):
            ratings_to_graph([("a", "x", 2.0), ("a", "x", 3.0)])
        with pytest.raises(DatasetError, match="rating_max"):
            ratings_to_graph([("a", "x", 5.0)], rating_max=3.0)
        with pytest.raises(DatasetError, match="min_prob"):
            ratings_to_graph([("a", "x", 5.0)], min_prob=0.9, max_prob=0.1)


class TestCsvLoader:
    CSV = (
        "userId,movieId,rating\n"
        "1,10,5.0\n"
        "2,10,4.5\n"
        "1,20,3.0\n"
        "2,20,3.0\n"
    )

    def test_load(self, tmp_path):
        path = tmp_path / "ratings.csv"
        path.write_text(self.CSV)
        graph = load_ratings_csv(
            path, user_column="userId", item_column="movieId",
        )
        assert graph.n_left == 2
        assert graph.n_right == 2
        assert graph.n_edges == 4
        assert graph.name == "ratings"
        # Label prefixing keeps the partitions disjoint.
        assert "u:1" in graph.left_labels
        assert "i:10" in graph.right_labels

    def test_mpmb_on_loaded_graph(self, tmp_path):
        path = tmp_path / "ratings.csv"
        path.write_text(self.CSV)
        graph = load_ratings_csv(
            path, user_column="userId", item_column="movieId",
        )
        result = find_mpmb(graph, method="exact-worlds")
        assert result.best is not None

    def test_missing_column(self, tmp_path):
        path = tmp_path / "ratings.csv"
        path.write_text("user,item\n1,2\n")
        with pytest.raises(DatasetError, match="missing columns"):
            load_ratings_csv(path)

    def test_bad_rating(self, tmp_path):
        path = tmp_path / "ratings.csv"
        path.write_text("user,item,rating\na,x,five\n")
        with pytest.raises(DatasetError, match="bad rating"):
            load_ratings_csv(path)

    def test_custom_delimiter(self, tmp_path):
        path = tmp_path / "ratings.tsv"
        path.write_text("user\titem\trating\na\tx\t4.0\n")
        graph = load_ratings_csv(path, delimiter="\t")
        assert graph.n_edges == 1
