"""Observability layer: registry semantics, tracing, per-method metrics,
worker metric merging under faults, and the --metrics-out schema."""

import json

import pytest

from repro import FaultPlan, find_mpmb
from repro.core import (
    mc_vp,
    ordering_listing_sampling,
    ordering_sampling,
)
from repro.graph import save_graph
from repro.observability import (
    NULL_OBSERVER,
    MetricsRegistry,
    Observer,
    PhaseTracer,
    ensure_observer,
)
from repro.runtime import run_parallel_trials
from repro.__main__ import main


class TestCounterGaugeSemantics:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.inc("a", 2)
        registry.inc("a", 3)
        assert registry.counter("a").value == 5.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            MetricsRegistry().inc("a", -1)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set("g", 10.0)
        registry.set("g", 3.0)
        assert registry.gauge("g").value == 3.0

    def test_name_cannot_change_kind(self):
        registry = MetricsRegistry()
        registry.inc("x")
        with pytest.raises(ValueError, match="already used by a counter"):
            registry.set("x", 1.0)
        with pytest.raises(ValueError, match="already used by a counter"):
            registry.observe("x", 1.0)


class TestHistogramSemantics:
    def test_edges_are_inclusive_upper_bounds(self):
        registry = MetricsRegistry()
        for value in (0.5, 1.0, 2.0, 3.0, 7.0):
            registry.observe("h", value, edges=(1.0, 2.0, 5.0))
        hist = registry.histogram("h", (1.0, 2.0, 5.0))
        # buckets: <=1, <=2, <=5, overflow
        assert hist.counts == [2, 1, 1, 1]
        assert hist.count == 5
        assert hist.total == pytest.approx(13.5)
        assert hist.mean == pytest.approx(2.7)

    def test_rejects_bad_edges_and_nan(self):
        with pytest.raises(ValueError, match="increasing"):
            MetricsRegistry().histogram("h", (2.0, 1.0))
        with pytest.raises(ValueError, match="at least one"):
            MetricsRegistry().histogram("h", ())
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="NaN"):
            registry.observe("h", float("nan"), edges=(1.0,))

    def test_existing_histogram_requires_same_edges(self):
        registry = MetricsRegistry()
        registry.histogram("h", (1.0, 2.0))
        with pytest.raises(ValueError, match="different edges"):
            registry.histogram("h", (1.0, 3.0))


class TestMergeAndRoundTrip:
    def _registry(self, trials, rate, winners):
        registry = MetricsRegistry()
        registry.inc("sampling.trials", trials)
        registry.set("sampling.trials_per_second", rate)
        for value in winners:
            registry.observe("trial.winners", value, edges=(1.0, 2.0))
        return registry

    def test_merge_rules(self):
        a = self._registry(100, 50.0, [1, 1, 2])
        b = self._registry(40, 80.0, [1, 5])
        a.merge(b)
        # counters sum, gauges max, histogram buckets add.
        assert a.counter("sampling.trials").value == 140.0
        assert a.gauge("sampling.trials_per_second").value == 80.0
        hist = a.histogram("trial.winners", (1.0, 2.0))
        assert hist.counts == [3, 1, 1]
        assert hist.count == 5

    def test_merge_rejects_mismatched_edges(self):
        a = MetricsRegistry()
        a.observe("h", 1.0, edges=(1.0, 2.0))
        b = MetricsRegistry()
        b.observe("h", 1.0, edges=(1.0, 3.0))
        with pytest.raises(ValueError, match="different edges"):
            a.merge(b)

    def test_to_dict_from_dict_round_trip(self):
        registry = self._registry(7, 3.5, [1, 2, 9])
        clone = MetricsRegistry.from_dict(registry.to_dict())
        assert clone.to_dict() == registry.to_dict()

    def test_summary_table_lists_every_instrument(self):
        table = self._registry(7, 3.5, [1]).summary_table()
        assert "sampling.trials" in table
        assert "counter" in table and "gauge" in table
        assert "histogram" in table


class TestPhaseTracer:
    def test_nesting_paths_and_depths(self):
        tracer = PhaseTracer()
        with tracer.span("sampling", method="os"):
            with tracer.span("trial-loop"):
                pass
        outer, inner = tracer.spans
        assert (outer.path, outer.depth) == ("sampling", 0)
        assert (inner.path, inner.depth) == ("sampling/trial-loop", 1)
        assert outer.meta == {"method": "os"}
        assert outer.duration_ns >= inner.duration_ns >= 0

    def test_exception_still_closes_span(self):
        tracer = PhaseTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("sampling"):
                raise RuntimeError("boom")
        assert tracer.spans[0].duration_ns is not None

    def test_slash_in_name_rejected(self):
        with pytest.raises(ValueError, match="must not contain"):
            with PhaseTracer().span("a/b"):
                pass

    def test_merge_grafts_under_prefix_header(self):
        worker = PhaseTracer()
        with worker.span("sampling"):
            with worker.span("trial-loop"):
                pass
        pool = PhaseTracer()
        pool.merge(worker.to_list(), prefix="worker-0")
        header, outer, inner = pool.spans
        assert (header.name, header.depth) == ("worker-0", 0)
        assert header.meta == {"merged": True}
        assert header.duration_ns == worker.spans[0].duration_ns
        assert (outer.path, outer.depth) == ("worker-0/sampling", 1)
        assert inner.path == "worker-0/sampling/trial-loop"
        assert inner.depth == 2

    def test_span_record_schema(self):
        tracer = PhaseTracer()
        with tracer.span("graph-load"):
            pass
        (record,) = tracer.to_list()
        assert sorted(record) == [
            "depth", "duration_ns", "meta", "name", "path", "start_ns",
        ]


class TestNullObserver:
    def test_ensure_observer_resolves_none(self):
        assert ensure_observer(None) is NULL_OBSERVER
        real = Observer()
        assert ensure_observer(real) is real

    def test_null_observer_is_disabled_and_inert(self):
        assert NULL_OBSERVER.enabled is False
        assert Observer.enabled is True
        NULL_OBSERVER.inc("x")
        NULL_OBSERVER.set("y", 1.0)
        NULL_OBSERVER.observe("z", 1.0)
        with NULL_OBSERVER.span("phase"):
            pass
        assert NULL_OBSERVER.metrics.to_dict()["counters"] == {}
        assert NULL_OBSERVER.tracer.to_list() == []


class TestPerMethodMetrics:
    def test_mc_vp_records_trials_and_winner_sizes(self, figure1):
        observer = Observer()
        result = mc_vp(figure1, 30, rng=1, observer=observer)
        snapshot = observer.metrics.to_dict()
        assert snapshot["counters"]["sampling.trials"] == result.n_trials
        assert snapshot["counters"]["engine.trials.completed"] == 30.0
        assert snapshot["gauges"]["sampling.trials_per_second"] > 0
        winners = snapshot["histograms"]["trial.winners"]
        assert winners["count"] == 30
        names = [s["name"] for s in observer.tracer.to_list()]
        assert "sampling" in names and "trial-loop" in names

    def test_os_records_prune_rate(self, figure1):
        observer = Observer()
        result = ordering_sampling(figure1, 50, rng=2, observer=observer)
        snapshot = observer.metrics.to_dict()
        assert snapshot["counters"]["sampling.trials"] == result.n_trials
        assert "os.trials_pruned" in snapshot["counters"]
        assert 0.0 <= snapshot["gauges"]["os.prune_rate"] <= 1.0
        names = [s["name"] for s in observer.tracer.to_list()]
        assert "edge-ordering" in names

    def test_ols_records_candidates_and_cache_hit_rate(self, figure1):
        observer = Observer()
        result = ordering_listing_sampling(
            figure1, 200, n_prepare=20, estimator="optimized", rng=3,
            observer=observer,
        )
        snapshot = observer.metrics.to_dict()
        assert snapshot["counters"]["prepare.trials"] == 20.0
        assert snapshot["gauges"]["candidates.listed"] == float(
            len(result.estimates)
        )
        hit_rate = snapshot["gauges"]["ols.lazy_cache.hit_rate"]
        # Candidates share edges, so memoisation must actually hit.
        assert 0.0 < hit_rate < 1.0
        names = [s["name"] for s in observer.tracer.to_list()]
        assert "candidate-generation" in names and "sampling" in names

    def test_ols_kl_records_per_candidate_budgets(self, figure1):
        observer = Observer()
        result = ordering_listing_sampling(
            figure1, 40, n_prepare=20, estimator="karp-luby", rng=4,
            observer=observer,
        )
        snapshot = observer.metrics.to_dict()
        budgets = snapshot["histograms"]["ols-kl.trials_per_candidate"]
        assert budgets["count"] == len(result.estimates)
        assert budgets["sum"] == snapshot["counters"]["sampling.trials"]

    def test_find_mpmb_forwards_observer(self, figure1):
        observer = Observer()
        find_mpmb(figure1, method="os", n_trials=20, rng=0,
                  observer=observer)
        assert observer.metrics.to_dict()["counters"][
            "sampling.trials"
        ] == 20.0

    def test_exact_methods_record_a_span(self, figure1):
        observer = Observer()
        find_mpmb(figure1, method="exact-worlds", observer=observer)
        (span,) = observer.tracer.to_list()
        assert span["name"] == "exact-solve"
        assert span["meta"] == {"method": "exact-worlds"}

    def test_without_observer_nothing_is_recorded(self, figure1):
        # The shared NULL_OBSERVER keeps no state across runs.
        mc_vp(figure1, 5, rng=0)
        assert NULL_OBSERVER.metrics.to_dict()["counters"] == {}


class TestWorkerMetricMerge:
    def test_retried_worker_metrics_match_faultfree_pool(self, figure1):
        clean = Observer()
        run_parallel_trials(figure1, 60, 3, method="os", rng=5,
                            observer=clean)
        faulty = Observer()
        result = run_parallel_trials(
            figure1, 60, 3, method="os", rng=5,
            faults=FaultPlan(worker_crash_attempts={0: 1}),
            sleep=lambda _s: None, observer=faulty,
        )
        assert not result.degraded
        snapshot = faulty.metrics.to_dict()
        # Summed per-worker counters equal the pooled trial count, and a
        # retried worker replays its stream, so the counters match a
        # fault-free pool exactly.
        assert snapshot["counters"]["sampling.trials"] == 60.0
        assert snapshot["counters"]["sampling.trials"] == result.n_trials
        assert snapshot["counters"]["pool.worker.attempts"] == 4.0
        assert snapshot["counters"]["pool.workers.dropped"] == 0.0
        clean_counters = clean.metrics.to_dict()["counters"]
        assert snapshot["counters"]["engine.trials.completed"] == (
            clean_counters["engine.trials.completed"]
        )
        # Per-worker gauges take the max: the largest per-worker share.
        assert snapshot["gauges"]["sampling.target_trials"] == 20.0

    def test_dropped_worker_ships_no_metrics(self, figure1):
        observer = Observer()
        result = run_parallel_trials(
            figure1, 60, 3, method="os", rng=5, max_attempts=2,
            faults=FaultPlan(worker_crash_attempts={0: 2}),
            sleep=lambda _s: None, observer=observer,
        )
        assert result.degraded
        assert result.degraded_reason == "workers-dropped"
        snapshot = observer.metrics.to_dict()
        # The dropped worker's 20 trials appear in neither the pooled
        # result nor the pooled counters — merge consistency.
        assert result.n_trials == 40
        assert snapshot["counters"]["sampling.trials"] == 40.0
        assert snapshot["counters"]["engine.trials.completed"] == 40.0
        assert snapshot["counters"]["pool.workers.total"] == 3.0
        assert snapshot["counters"]["pool.workers.dropped"] == 1.0

    def test_worker_spans_graft_under_headers(self, figure1):
        observer = Observer()
        run_parallel_trials(figure1, 30, 2, method="os", rng=6,
                            observer=observer)
        names = [s["name"] for s in observer.tracer.to_list()]
        assert "fan-out" in names and "merge" in names
        assert "worker-0" in names and "worker-1" in names
        paths = [s["path"] for s in observer.tracer.to_list()]
        assert any(p.startswith("worker-0/") for p in paths)


class TestCliMetricsOut:
    #: The pinned --metrics-out schema; changing it is a format bump.
    TOP_LEVEL_KEYS = [
        "counters", "format", "gauges", "graph", "histograms", "kind",
        "method", "spans",
    ]

    def _run(self, figure1, tmp_path, extra=()):
        graph_path = tmp_path / "g.tsv"
        save_graph(figure1, graph_path)
        out = tmp_path / "metrics.json"
        code = main([
            "search", str(graph_path), "--method", "os",
            "--trials", "50", "--seed", "0",
            "--metrics-out", str(out), *extra,
        ])
        assert code == 0
        return json.loads(out.read_text(encoding="utf-8"))

    def test_schema_is_stable(self, figure1, tmp_path, capsys):
        document = self._run(figure1, tmp_path)
        assert sorted(document) == self.TOP_LEVEL_KEYS
        assert document["format"] == 1
        assert document["kind"] == "repro-metrics"
        assert document["method"] == "os"
        assert document["counters"]["sampling.trials"] == 50.0
        span_names = [s["name"] for s in document["spans"]]
        assert "graph-load" in span_names
        assert "trial-loop" in span_names
        for span in document["spans"]:
            assert sorted(span) == [
                "depth", "duration_ns", "meta", "name", "path",
                "start_ns",
            ]

    def test_trace_prints_summary(self, figure1, tmp_path, capsys):
        self._run(figure1, tmp_path, extra=("--trace",))
        out = capsys.readouterr().out
        assert "graph-load" in out
        assert "sampling.trials" in out

    def test_profile_out_writes_report(self, figure1, tmp_path):
        graph_path = tmp_path / "g.tsv"
        save_graph(figure1, graph_path)
        report = tmp_path / "profile.txt"
        code = main([
            "search", str(graph_path), "--method", "os",
            "--trials", "20", "--seed", "0",
            "--profile-out", str(report),
        ])
        assert code == 0
        assert "cumulative" in report.read_text(encoding="utf-8")
