"""Tests for the Butterfly/Angle value types."""

import pytest

from repro import make_butterfly
from repro.butterfly import Angle, butterfly_from_labels

from .conftest import build_graph


class TestMakeButterfly:
    def test_basic(self, figure1):
        butterfly = make_butterfly(figure1, 0, 1, 0, 1)
        assert butterfly is not None
        assert butterfly.key == (0, 1, 0, 1)
        # Weight: (u1,v1)=2 + (u1,v2)=2 + (u2,v1)=3 + (u2,v2)=3.
        assert butterfly.weight == 10.0

    def test_canonicalises_vertex_order(self, figure1):
        a = make_butterfly(figure1, 1, 0, 2, 1)
        b = make_butterfly(figure1, 0, 1, 1, 2)
        assert a == b
        assert a.key == (0, 1, 1, 2)

    def test_edges_in_canonical_slot_order(self, figure1):
        butterfly = make_butterfly(figure1, 0, 1, 1, 2)
        e11, e12, e21, e22 = butterfly.edges
        assert figure1.edge_endpoints(e11) == (0, 1)
        assert figure1.edge_endpoints(e12) == (0, 2)
        assert figure1.edge_endpoints(e21) == (1, 1)
        assert figure1.edge_endpoints(e22) == (1, 2)

    def test_degenerate_vertices_rejected(self, figure1):
        assert make_butterfly(figure1, 0, 0, 0, 1) is None
        assert make_butterfly(figure1, 0, 1, 2, 2) is None

    def test_missing_edge_returns_none(self, no_butterfly_graph):
        assert make_butterfly(no_butterfly_graph, 0, 1, 0, 1) is None

    def test_existence_probability(self, figure1):
        butterfly = make_butterfly(figure1, 0, 1, 1, 2)
        # p = 0.6 * 0.8 * 0.4 * 0.7
        assert butterfly.existence_probability(figure1) == pytest.approx(
            0.1344
        )

    def test_labels(self, figure1):
        butterfly = make_butterfly(figure1, 0, 1, 1, 2)
        assert butterfly.labels(figure1) == ("u1", "u2", "v2", "v3")

    def test_edge_set(self, figure1):
        butterfly = make_butterfly(figure1, 0, 1, 0, 1)
        assert butterfly.edge_set() == frozenset(butterfly.edges)
        assert len(butterfly.edge_set()) == 4

    def test_from_labels(self, figure1):
        butterfly = butterfly_from_labels(figure1, "u2", "u1", "v3", "v2")
        assert butterfly is not None
        assert butterfly.key == (0, 1, 1, 2)

    def test_hashable_and_str(self, figure1):
        butterfly = make_butterfly(figure1, 0, 1, 0, 1)
        assert butterfly in {butterfly}
        assert "B(" in str(butterfly)


class TestAngle:
    def test_angle_fields(self):
        angle = Angle(a=0, b=1, middle=2, edge_a=3, edge_b=4, weight=5.0)
        assert angle.a == 0
        assert angle.weight == 5.0

    def test_angle_frozen(self):
        angle = Angle(0, 1, 2, 3, 4, 5.0)
        with pytest.raises(AttributeError):
            angle.weight = 6.0


class TestSharedEdges:
    def test_two_butterflies_share_two_edges(self):
        graph = build_graph([
            ("a", "x", 1.0, 0.5),
            ("a", "y", 1.0, 0.5),
            ("a", "z", 1.0, 0.5),
            ("b", "x", 1.0, 0.5),
            ("b", "y", 1.0, 0.5),
            ("b", "z", 1.0, 0.5),
        ])
        first = make_butterfly(graph, 0, 1, 0, 1)
        second = make_butterfly(graph, 0, 1, 0, 2)
        shared = first.edge_set() & second.edge_set()
        assert len(shared) == 2
        difference = second.edge_set() - first.edge_set()
        assert len(difference) == 2
