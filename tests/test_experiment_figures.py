"""Smoke tests for the timing/convergence experiment functions at tiny
budgets — the full-budget versions run in benchmarks/."""

import pytest

from repro.experiments import ExperimentConfig, run_experiment

TINY = ExperimentConfig(
    profile="bench",
    seed=0,
    n_direct=20,
    n_mcvp=1,
    n_prepare=15,
    n_sampling=40,
    paper_direct=100,
    datasets=("abide",),
)


@pytest.mark.parametrize(
    "name",
    ["fig7", "fig8", "fig9", "fig11", "fig12", "fig13", "ablation-prune"],
)
def test_experiment_runs_and_renders(name):
    outcome = run_experiment(name, TINY)
    assert outcome.name == name
    assert outcome.text
    assert outcome.data


def test_fig7_payload_schema():
    outcome = run_experiment("fig7", TINY)
    times = outcome.data["abide"]
    assert set(times) == {"mc-vp", "os", "ols-kl", "ols"}
    assert all(value >= 0 for value in times.values())


def test_fig8_payload_schema():
    outcome = run_experiment("fig8", TINY)
    methods = outcome.data["abide"]
    assert set(methods) == {"os", "ols-kl", "ols"}
    for times in methods.values():
        assert len(times) == 5  # N = 0/25/50/75/100 %


def test_fig9_payload_schema():
    outcome = run_experiment("fig9", TINY)
    methods = outcome.data["abide"]
    for times in methods.values():
        assert len(times) == 4  # 25/50/75/100 % vertices


def test_fig11_traces_present():
    outcome = run_experiment("fig11", TINY)
    payload = outcome.data["abide"]
    assert payload["reference"] >= 0.0
    assert set(payload["traces"]) == {"os", "ols", "ols-kl"}
    os_trace = payload["traces"]["os"]
    assert os_trace is not None and os_trace.checkpoints


def test_fig12_estimates_lengths():
    outcome = run_experiment("fig12", TINY)
    payload = outcome.data["abide"]
    assert len(payload["budgets"]) == len(payload["estimates"]) == 8


def test_fig13_positive_peaks():
    outcome = run_experiment("fig13", TINY)
    peaks = outcome.data["abide"]
    assert all(peak > 0 for peak in peaks.values())


def test_ablation_counters_consistent():
    outcome = run_experiment("ablation-prune", TINY)
    payload = outcome.data["abide"]
    assert payload["edges_prune"] <= payload["edges_noprune"]
