"""Tests for the OLS sampling-phase estimators (Algorithms 4 and 5)."""

import pytest

from repro import CandidateSet
from repro.core import (
    backbone_butterflies,
    estimate_probabilities_karp_luby,
    estimate_probabilities_optimized,
    exact_mpmb_by_worlds,
)

from .conftest import FIGURE_1_EXACT, build_graph


@pytest.fixture
def full_candidates(figure1):
    """Complete candidate set: Lemma VI.5 error is zero, so estimates
    must converge to the exact values."""
    return CandidateSet(figure1, backbone_butterflies(figure1))


class TestOptimizedEstimator:
    def test_converges_to_exact(self, full_candidates):
        outcome = estimate_probabilities_optimized(
            full_candidates, 30_000, rng=0
        )
        assert outcome.method == "optimized"
        for key, exact in FIGURE_1_EXACT.items():
            assert outcome.estimates[key] == pytest.approx(exact, abs=0.01)

    def test_shared_trials(self, full_candidates):
        outcome = estimate_probabilities_optimized(
            full_candidates, 100, rng=0
        )
        assert outcome.trials_per_candidate == [100, 100, 100]
        assert outcome.total_trials == 100

    def test_lazy_sampling_counter(self, full_candidates):
        outcome = estimate_probabilities_optimized(
            full_candidates, 50, rng=0
        )
        # Figure 1 has 6 edges; a trial samples at most all of them.
        assert 0 < outcome.stats["edges_sampled"] <= 50 * 6

    def test_tied_candidates_both_counted(self):
        # Two disjoint equal-weight butterflies: the weight-order early
        # exit must not skip the second when the first exists.
        graph = build_graph([
            ("a", "x", 1.0, 1.0), ("a", "y", 1.0, 1.0),
            ("b", "x", 1.0, 1.0), ("b", "y", 1.0, 1.0),
            ("c", "z", 1.0, 1.0), ("c", "w", 1.0, 1.0),
            ("d", "z", 1.0, 1.0), ("d", "w", 1.0, 1.0),
        ])
        candidates = CandidateSet(graph, backbone_butterflies(graph))
        outcome = estimate_probabilities_optimized(candidates, 50, rng=0)
        assert all(
            value == pytest.approx(1.0)
            for value in outcome.estimates.values()
        )

    def test_early_exit_skips_lighter(self):
        # A certain heavy butterfly means the light one is never sampled
        # as maximum.
        graph = build_graph([
            ("a", "x", 2.0, 1.0), ("a", "y", 2.0, 1.0),
            ("b", "x", 2.0, 1.0), ("b", "y", 2.0, 1.0),
            ("c", "z", 1.0, 0.9), ("c", "w", 1.0, 0.9),
            ("d", "z", 1.0, 0.9), ("d", "w", 1.0, 0.9),
        ])
        candidates = CandidateSet(graph, backbone_butterflies(graph))
        outcome = estimate_probabilities_optimized(candidates, 100, rng=0)
        light = next(
            key for key, value in outcome.estimates.items()
            if value == 0.0
        )
        assert outcome.estimates[light] == 0.0

    def test_traces(self, full_candidates):
        key = (0, 1, 1, 2)
        outcome = estimate_probabilities_optimized(
            full_candidates, 200, rng=0, track=[key], checkpoints=4
        )
        assert len(outcome.traces[key].checkpoints) == 4

    def test_invalid_trials(self, full_candidates):
        with pytest.raises(ValueError):
            estimate_probabilities_optimized(full_candidates, 0)


class TestKarpLubyEstimator:
    def test_converges_to_exact_fixed_trials(self, full_candidates):
        outcome = estimate_probabilities_karp_luby(
            full_candidates, rng=0, n_trials=30_000
        )
        assert outcome.method == "karp-luby"
        for key, exact in FIGURE_1_EXACT.items():
            assert outcome.estimates[key] == pytest.approx(exact, abs=0.01)

    def test_top_candidate_needs_no_trials(self, full_candidates):
        outcome = estimate_probabilities_karp_luby(
            full_candidates, rng=0, n_trials=100
        )
        # The heaviest candidate has no blockers: estimate = Pr[E(B)],
        # zero trials spent.
        assert outcome.trials_per_candidate[0] == 0
        assert outcome.estimates[(0, 1, 0, 1)] == pytest.approx(
            0.5 * 0.6 * 0.3 * 0.4
        )

    def test_dynamic_budget_scales_with_ratio(self, full_candidates):
        outcome = estimate_probabilities_karp_luby(
            full_candidates, rng=0, mu=0.05, min_trials=16,
            max_trials=5_000,
        )
        budgets = outcome.trials_per_candidate
        assert budgets[0] == 0          # unblocked top candidate
        assert all(
            16 <= budget <= 5_000 for budget in budgets[1:]
        )
        assert outcome.stats["base_trials"] > 0

    def test_impossible_candidate(self):
        graph = build_graph([
            ("a", "x", 1.0, 0.0), ("a", "y", 1.0, 0.5),
            ("b", "x", 1.0, 0.5), ("b", "y", 1.0, 0.5),
        ])
        candidates = CandidateSet(graph, backbone_butterflies(graph))
        outcome = estimate_probabilities_karp_luby(
            candidates, rng=0, n_trials=10
        )
        assert list(outcome.estimates.values()) == [0.0]

    def test_estimates_clamped(self, full_candidates):
        outcome = estimate_probabilities_karp_luby(
            full_candidates, rng=0, n_trials=16
        )
        for index, butterfly in enumerate(full_candidates):
            value = outcome.estimates[butterfly.key]
            assert 0.0 <= value <= (
                full_candidates.existence_probability(index) + 1e-12
            )

    def test_traces(self, full_candidates):
        key = (0, 1, 1, 2)
        outcome = estimate_probabilities_karp_luby(
            full_candidates, rng=0, n_trials=200, track=[key],
            checkpoints=5,
        )
        trace = outcome.traces[key]
        assert trace.checkpoints
        assert trace.final_estimate == outcome.estimates[key]

    def test_invalid_trials(self, full_candidates):
        with pytest.raises(ValueError):
            estimate_probabilities_karp_luby(full_candidates, n_trials=-1)


class TestEstimatorsAgree:
    def test_against_each_other_and_exact(self, figure1, full_candidates):
        exact = exact_mpmb_by_worlds(figure1)
        optimised = estimate_probabilities_optimized(
            full_candidates, 20_000, rng=11
        )
        karp = estimate_probabilities_karp_luby(
            full_candidates, rng=11, n_trials=20_000
        )
        for key in exact.estimates:
            assert optimised.estimates[key] == pytest.approx(
                exact.estimates[key], abs=0.015
            )
            assert karp.estimates[key] == pytest.approx(
                exact.estimates[key], abs=0.015
            )
