"""The whole-program analysis layer: call-graph edge cases, the four
cross-module rules (SEED001, PKL001, EXC001X, DEAD001), the SARIF
reporter (structure + pinned golden file), diff-aware runs against a
git base, the autofix round-trip, and baseline staleness maintenance."""

import ast
import json
import subprocess
from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisConfig,
    load_baseline_records,
    render_sarif,
    run_analysis,
    write_baseline,
)
from repro.analysis.__main__ import main
from repro.analysis.autofix import apply_fixes, generate_fixes
from repro.analysis.program import Program, summarize_module

DATA_DIR = Path(__file__).resolve().parent / "data"


def write_tree(root, files):
    for rel, code in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(code, encoding="utf-8")


def analyze_program(root, files, rule):
    """Run one whole-program rule over a synthetic repo at ``root``."""
    write_tree(root, files)
    config = AnalysisConfig(
        root=root,
        paths=[],
        select=[rule],
        project_rules=False,
        program_rules=True,
    )
    return run_analysis(config)


def build_program(files, root=None):
    """Build a :class:`Program` straight from in-memory sources."""
    summaries = [
        summarize_module(rel, ast.parse(code))
        for rel, code in files.items()
    ]
    return Program(summaries, root)


class TestCallGraphEdgeCases:
    def test_reexport_through_init_resolves_to_definition(self):
        program = build_program({
            "src/repro/pkg/__init__.py": "from .impl import work\n",
            "src/repro/pkg/impl.py": "def work():\n    return 1\n",
            "src/repro/app.py": (
                "from .pkg import work\n"
                "def run():\n"
                "    return work()\n"
            ),
        })
        assert program.index.resolve("repro.pkg.work") == (
            "repro.pkg.impl.work"
        )
        callees = [
            callee for callee, _site
            in program.graph.callees("repro.app.run")
        ]
        assert "repro.pkg.impl.work" in callees

    def test_decorator_creates_reference_edge(self):
        program = build_program({
            "src/repro/core/registry.py": (
                "REGISTRY = []\n"
                "def register(fn):\n"
                "    REGISTRY.append(fn)\n"
                "    return fn\n"
            ),
            "src/repro/core/impl.py": (
                "from .registry import register\n"
                "@register\n"
                "def task():\n"
                "    return 1\n"
            ),
        })
        refs = program.graph.references["repro.core.impl.task"]
        assert "repro.core.registry.register" in refs

    def test_partial_argument_keeps_target_reachable(self):
        program = build_program({
            "src/repro/core/par.py": (
                "from functools import partial\n"
                "def helper(x, y):\n"
                "    return x + y\n"
                "def run():\n"
                "    return partial(helper, 1)(2)\n"
            ),
        })
        live = program.graph.reachable(["repro.core.par.run"])
        assert "repro.core.par.helper" in live

    def test_call_to_nested_function_edges_through_it(self):
        program = build_program({
            "src/repro/runtime/eng.py": (
                "from ..support.store import save\n"
                "def run(doc):\n"
                "    def snap():\n"
                "        return save(doc)\n"
                "    return snap()\n"
            ),
            "src/repro/support/store.py": (
                "def save(doc):\n"
                "    return doc\n"
            ),
        })
        callees = [
            callee for callee, _site
            in program.graph.callees("repro.runtime.eng.run")
        ]
        assert "repro.runtime.eng.run.snap" in callees
        live = program.graph.reachable(["repro.runtime.eng.run"])
        assert "repro.support.store.save" in live

    def test_mutually_recursive_modules_terminate(self):
        program = build_program({
            "src/repro/core/alpha.py": (
                "from .beta import grow\n"
                "def shrink(x):\n"
                "    if x <= 0:\n"
                "        return 0\n"
                "    return grow(x - 1)\n"
            ),
            "src/repro/core/beta.py": (
                "from .alpha import shrink\n"
                "def grow(x):\n"
                "    return shrink(x)\n"
            ),
        })
        live = program.graph.reachable(["repro.core.alpha.shrink"])
        assert "repro.core.beta.grow" in live
        assert "repro.core.alpha.shrink" in live
        # The data-flow fixpoints must converge on the cycle too.
        assert program.rng_params == {}
        assert program.exceptions.escapes is not None

    def test_module_passed_as_value_keeps_toplevel_live(self):
        program = build_program({
            "src/repro/support/lib.py": (
                "def tool():\n"
                "    return 1\n"
            ),
            "src/repro/core/use.py": (
                "from ..support import lib\n"
                "def run(apply_fn):\n"
                "    return apply_fn(lib)\n"
            ),
        })
        live = program.graph.reachable(["repro.core.use.run"])
        assert "repro.support.lib.tool" in live


#: A seeded helper the SEED001 fixtures forward seeds into.
_DRAWS = {
    "src/repro/sampling/draws.py": (
        "from .rng import ensure_rng\n"
        "def trial(rng=None):\n"
        "    return ensure_rng(rng).random()\n"
    ),
}


class TestSeedProvenance:
    def test_hardcoded_seed_flagged(self, tmp_path):
        result = analyze_program(tmp_path, {
            "src/repro/core/alg.py": (
                "import numpy as np\n"
                "def draw():\n"
                "    return np.random.default_rng(1234)\n"
            ),
        }, rule="SEED001")
        (finding,) = result.findings
        assert finding.rule == "SEED001"
        assert finding.line == 3
        assert "hardcoded seed 1234" in finding.message

    def test_orphan_seed_parameter_flagged(self, tmp_path):
        result = analyze_program(tmp_path, {
            "src/repro/core/orphan.py": (
                "def sample(values, rng=None):\n"
                "    return values\n"
            ),
        }, rule="SEED001")
        (finding,) = result.findings
        assert "'rng'" in finding.message
        assert "never" in finding.message

    def test_cross_module_double_seed_flagged(self, tmp_path):
        result = analyze_program(tmp_path, {
            **_DRAWS,
            "src/repro/core/study.py": (
                "from ..sampling.draws import trial\n"
                "def study(rng=None):\n"
                "    first = trial(rng)\n"
                "    second = trial(rng)\n"
                "    return first + second\n"
            ),
        }, rule="SEED001")
        (finding,) = result.findings
        assert finding.path == "src/repro/core/study.py"
        assert finding.line == 4
        assert "correlated streams" in finding.message

    def test_exclusive_dispatch_arms_not_flagged(self, tmp_path):
        result = analyze_program(tmp_path, {
            **_DRAWS,
            "src/repro/core/dispatch.py": (
                "from ..sampling.draws import trial\n"
                "def pick(method, rng=None):\n"
                "    if method == 'a':\n"
                "        return trial(rng)\n"
                "    elif method == 'b':\n"
                "        return trial(rng)\n"
                "    raise KeyError(method)\n"
            ),
        }, rule="SEED001")
        assert result.findings == []

    def test_forwarding_constructed_generator_is_clean(self, tmp_path):
        result = analyze_program(tmp_path, {
            **_DRAWS,
            "src/repro/core/threaded.py": (
                "from ..sampling.rng import ensure_rng\n"
                "from ..sampling.draws import trial\n"
                "def study(rng=None):\n"
                "    generator = ensure_rng(rng)\n"
                "    first = trial(generator)\n"
                "    second = trial(generator)\n"
                "    return first + second\n"
            ),
        }, rule="SEED001")
        assert result.findings == []


class TestTransitivePickle:
    def test_partial_over_lambda_at_seam(self, tmp_path):
        result = analyze_program(tmp_path, {
            "src/repro/runtime/pool_use.py": (
                "from functools import partial\n"
                "def run(pool, xs):\n"
                "    return pool.map(partial(lambda x: x, 1), xs)\n"
            ),
        }, rule="PKL001")
        (finding,) = result.findings
        assert finding.line == 3
        assert "partial over a lambda" in finding.message

    def test_lambda_laundered_through_helper(self, tmp_path):
        result = analyze_program(tmp_path, {
            "src/repro/runtime/helper.py": (
                "def dispatch(pool, fn, xs):\n"
                "    return pool.map(fn, xs)\n"
            ),
            "src/repro/runtime/launch.py": (
                "from .helper import dispatch\n"
                "def run(pool, xs):\n"
                "    return dispatch(pool, lambda x: x + 1, xs)\n"
            ),
        }, rule="PKL001")
        (finding,) = result.findings
        assert finding.path == "src/repro/runtime/launch.py"
        assert "lambda passed as 'fn'" in finding.message

    def test_module_lock_read_across_seam(self, tmp_path):
        result = analyze_program(tmp_path, {
            "src/repro/runtime/state.py": (
                "import threading\n"
                "_LOCK = threading.Lock()\n"
                "def work(x):\n"
                "    with _LOCK:\n"
                "        return x\n"
            ),
            "src/repro/runtime/spawner.py": (
                "from .state import work\n"
                "def run(pool, xs):\n"
                "    return pool.map(work, xs)\n"
            ),
        }, rule="PKL001")
        (finding,) = result.findings
        assert finding.path == "src/repro/runtime/spawner.py"
        assert "'_LOCK'" in finding.message

    def test_module_shared_memory_buffer_across_seam(self, tmp_path):
        result = analyze_program(tmp_path, {
            "src/repro/runtime/segment.py": (
                "from multiprocessing.shared_memory import "
                "SharedMemory\n"
                "_SEG = SharedMemory(name='graph')\n"
                "def work(x):\n"
                "    return _SEG.buf[x]\n"
            ),
            "src/repro/runtime/spawn_seg.py": (
                "from .segment import work\n"
                "def run(pool, xs):\n"
                "    return pool.map(work, xs)\n"
            ),
        }, rule="PKL001")
        (finding,) = result.findings
        assert finding.path == "src/repro/runtime/spawn_seg.py"
        assert "'_SEG'" in finding.message
        assert "buffer" in finding.message
        assert "attach inside the worker" in finding.message

    def test_handle_only_seam_is_clean(self, tmp_path):
        result = analyze_program(tmp_path, {
            "src/repro/runtime/attach.py": (
                "from multiprocessing.shared_memory import "
                "SharedMemory\n"
                "def work(handle):\n"
                "    segment = SharedMemory(name=handle)\n"
                "    try:\n"
                "        return bytes(segment.buf[:1])\n"
                "    finally:\n"
                "        segment.close()\n"
            ),
            "src/repro/runtime/spawn_ok.py": (
                "from .attach import work\n"
                "def run(pool, handles):\n"
                "    return pool.map(work, handles)\n"
            ),
        }, rule="PKL001")
        assert result.findings == []

    def test_stateless_module_function_is_clean(self, tmp_path):
        result = analyze_program(tmp_path, {
            "src/repro/runtime/clean.py": (
                "def work(x):\n"
                "    return x + 1\n"
                "def run(pool, xs):\n"
                "    return pool.map(work, xs)\n"
            ),
        }, rule="PKL001")
        assert result.findings == []


class TestInterproceduralExceptions:
    def test_deep_valueerror_escape_flagged(self, tmp_path):
        result = analyze_program(tmp_path, {
            "src/repro/support/depths.py": (
                "def clamp(x):\n"
                "    if x < 0:\n"
                "        raise ValueError('x must be >= 0')\n"
                "    return x\n"
            ),
            "src/repro/core/entry.py": (
                "from ..support.depths import clamp\n"
                "def evaluate(x):\n"
                "    return clamp(x)\n"
            ),
        }, rule="EXC001X")
        (finding,) = result.findings
        # Reported at the raise site, with the escape chain named.
        assert finding.path == "src/repro/support/depths.py"
        assert finding.line == 3
        assert "evaluate()" in finding.message

    def test_repro_error_subclass_allowed(self, tmp_path):
        result = analyze_program(tmp_path, {
            "src/repro/errors.py": (
                "class ReproError(Exception):\n"
                "    pass\n"
                "class ConfigurationError(ReproError, ValueError):\n"
                "    pass\n"
            ),
            "src/repro/support/config.py": (
                "from ..errors import ConfigurationError\n"
                "def need(x):\n"
                "    if x is None:\n"
                "        raise ConfigurationError('missing')\n"
                "    return x\n"
            ),
            "src/repro/core/okentry.py": (
                "from ..support.config import need\n"
                "def fetch(x):\n"
                "    return need(x)\n"
            ),
        }, rule="EXC001X")
        assert result.findings == []

    def test_caught_exception_does_not_escape(self, tmp_path):
        result = analyze_program(tmp_path, {
            "src/repro/support/risky.py": (
                "def parse(x):\n"
                "    if not x:\n"
                "        raise ValueError('empty')\n"
                "    return x\n"
            ),
            "src/repro/core/guarded.py": (
                "from ..support.risky import parse\n"
                "def load(x):\n"
                "    try:\n"
                "        return parse(x)\n"
                "    except ValueError:\n"
                "        return None\n"
            ),
        }, rule="EXC001X")
        assert result.findings == []

    def test_allowed_builtin_keyerror_passes(self, tmp_path):
        result = analyze_program(tmp_path, {
            "src/repro/support/lookup.py": (
                "def get(table, key):\n"
                "    if key not in table:\n"
                "        raise KeyError(key)\n"
                "    return table[key]\n"
            ),
            "src/repro/core/kentry.py": (
                "from ..support.lookup import get\n"
                "def read(table, key):\n"
                "    return get(table, key)\n"
            ),
        }, rule="EXC001X")
        assert result.findings == []


class TestDeadCode:
    def test_orphan_function_flagged(self, tmp_path):
        result = analyze_program(tmp_path, {
            "src/repro/core/util.py": (
                "def helper():\n"
                "    return 1\n"
                "def orphan():\n"
                "    return 2\n"
                "VALUE = helper()\n"
            ),
        }, rule="DEAD001")
        (finding,) = result.findings
        assert finding.line == 3
        assert "orphan()" in finding.message

    def test_mention_in_tests_keeps_definition_alive(self, tmp_path):
        write_tree(tmp_path, {
            "tests/test_names.py": "# exercises orphan somewhere\n",
        })
        result = analyze_program(tmp_path, {
            "src/repro/core/util.py": (
                "def helper():\n"
                "    return 1\n"
                "def orphan():\n"
                "    return 2\n"
                "VALUE = helper()\n"
            ),
        }, rule="DEAD001")
        assert result.findings == []

    def test_protocol_class_is_not_dead(self, tmp_path):
        result = analyze_program(tmp_path, {
            "src/repro/core/hooks.py": (
                "from typing import Protocol\n"
                "class Hook(Protocol):\n"
                "    def fire(self) -> None:\n"
                "        ...\n"
            ),
        }, rule="DEAD001")
        assert result.findings == []

    def test_module_reference_keeps_its_functions_alive(self, tmp_path):
        result = analyze_program(tmp_path, {
            "src/repro/support/lib.py": (
                "def tool():\n"
                "    return 1\n"
            ),
            "src/repro/core/use.py": (
                "from ..support import lib\n"
                "def run(apply_fn):\n"
                "    return apply_fn(lib)\n"
                "VALUE = run(repr)\n"
            ),
        }, rule="DEAD001")
        assert result.findings == []


#: Fixture behind the SARIF golden file — do not edit without
#: regenerating tests/data/program_sarif_golden.json.
_SARIF_FILES = {
    "core/golden.py": (
        "import numpy as np\n"
        "def draw():\n"
        "    return np.random.default_rng().normal()\n"
    ),
}


def _sarif_result(root):
    write_tree(root, _SARIF_FILES)
    config = AnalysisConfig(
        root=root,
        paths=[Path("core/golden.py")],
        select=["RNG001"],
        project_rules=False,
    )
    return run_analysis(config)


class TestSarif:
    def test_sarif_structure_is_valid(self, tmp_path):
        document = json.loads(render_sarif(_sarif_result(tmp_path)))
        assert document["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in document["$schema"]
        (run,) = document["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-analysis"
        rule_ids = [rule["id"] for rule in driver["rules"]]
        assert "RNG001" in rule_ids
        (result,) = run["results"]
        assert result["ruleId"] == "RNG001"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "core/golden.py"
        assert location["region"]["startLine"] == 3
        assert "reproAnalysis/v1" in result["partialFingerprints"]
        # ruleIndex must point back into the driver rules array.
        assert rule_ids[result["ruleIndex"]] == "RNG001"

    def test_sarif_matches_golden_file(self, tmp_path):
        rendered = json.loads(render_sarif(_sarif_result(tmp_path)))
        golden = json.loads(
            (DATA_DIR / "program_sarif_golden.json").read_text(
                encoding="utf-8"
            )
        )
        assert rendered == golden


class TestAutofix:
    def test_fix_round_trips_to_clean(self, tmp_path):
        rel = "core/fixme.py"
        write_tree(tmp_path, {rel: (
            "import numpy as np\n"
            "def draw():\n"
            "    return np.random.default_rng().normal()\n"
            "def check(x):\n"
            "    if x < 0:\n"
            "        raise ValueError('x must be >= 0')\n"
            "    return x\n"
        )})
        config = AnalysisConfig(
            root=tmp_path,
            paths=[Path(rel)],
            select=["RNG001", "EXC001"],
            project_rules=False,
        )
        first = run_analysis(config)
        assert sorted(f.rule for f in first.findings) == [
            "EXC001", "RNG001",
        ]
        fixes = generate_fixes(tmp_path, first.findings)
        patched, files = apply_fixes(tmp_path, fixes)
        assert (patched, files) == (2, 1)
        text = (tmp_path / rel).read_text(encoding="utf-8")
        assert "ensure_rng().normal()" in text
        assert "ConfigurationError('x must be >= 0')" in text
        assert "from repro.sampling.rng import ensure_rng" in text
        assert "from repro.errors import ConfigurationError" in text
        second = run_analysis(config)
        assert second.findings == []


def _git(root, *args):
    subprocess.run(
        [
            "git", "-c", "user.email=ci@local", "-c", "user.name=ci",
            *args,
        ],
        cwd=root,
        check=True,
        capture_output=True,
    )


class TestDiffMode:
    def test_diff_reports_only_changed_lines(self, tmp_path, capsys):
        write_tree(tmp_path, {
            "src/repro/core/target.py": (
                "def quiet():\n"
                "    return 1\n"
            ),
            # Pre-existing violation that must stay invisible because
            # its lines are untouched by the diff.
            "src/repro/core/old.py": (
                "import time\n"
                "def elapsed(start):\n"
                "    return time.time() - start\n"
            ),
        })
        _git(tmp_path, "init", "-q")
        _git(tmp_path, "add", ".")
        _git(tmp_path, "commit", "-q", "-m", "seed")
        (tmp_path / "src/repro/core/target.py").write_text(
            "import time\n"
            "def quiet():\n"
            "    return time.time()\n",
            encoding="utf-8",
        )
        code = main(["--root", str(tmp_path), "--diff", "HEAD"])
        out = capsys.readouterr().out
        assert code == 1
        assert "target.py" in out
        assert "CLK001" in out
        assert "old.py" not in out

    def test_diff_bad_base_exits_2(self, tmp_path, capsys):
        write_tree(tmp_path, {
            "src/repro/core/noop.py": "def noop():\n    return 0\n",
        })
        _git(tmp_path, "init", "-q")
        code = main([
            "--root", str(tmp_path), "--diff", "no-such-base",
        ])
        err = capsys.readouterr().err
        assert code == 2
        assert "git diff" in err


class TestBaselineMaintenance:
    _violating = (
        "import numpy as np\n"
        "def draw():\n"
        "    return np.random.default_rng().normal()\n"
    )

    def _config(self, root, baseline=None):
        return AnalysisConfig(
            root=root,
            paths=[],
            select=["RNG001"],
            baseline_path=baseline,
            project_rules=False,
            program_rules=False,
        )

    def test_stale_baseline_entries_reported(self, tmp_path):
        write_tree(tmp_path, {
            "src/repro/core/one.py": self._violating,
            "src/repro/core/two.py": self._violating,
        })
        first = run_analysis(self._config(tmp_path))
        assert len(first.findings) == 2
        baseline = tmp_path / "tools" / "lint-baseline.json"
        write_baseline(baseline, first.findings)
        # Fix one file: its baseline entry goes stale.
        (tmp_path / "src/repro/core/two.py").write_text(
            "def draw(rng):\n    return rng.normal()\n",
            encoding="utf-8",
        )
        second = run_analysis(self._config(tmp_path, baseline))
        assert second.findings == []
        assert len(second.grandfathered) == 1
        (stale,) = second.stale_baseline
        assert stale["path"] == "src/repro/core/two.py"

    def test_update_baseline_prunes_stale_entries(
        self, tmp_path, capsys
    ):
        write_tree(tmp_path, {
            "src/repro/core/one.py": self._violating,
            "src/repro/core/two.py": self._violating,
        })
        argv = [
            "--root", str(tmp_path), "--select", "RNG001",
            "--baseline", "bl.json",
        ]
        assert main([*argv, "--write-baseline"]) == 0
        assert len(load_baseline_records(tmp_path / "bl.json")) == 2
        (tmp_path / "src/repro/core/two.py").write_text(
            "def draw(rng):\n    return rng.normal()\n",
            encoding="utf-8",
        )
        assert main([*argv, "--update-baseline"]) == 0
        out = capsys.readouterr().out
        assert "1 pruned" in out
        records = load_baseline_records(tmp_path / "bl.json")
        assert len(records) == 1
        assert records[0]["path"] == "src/repro/core/one.py"


class TestCLIExitCodes:
    def test_syntax_error_exits_2_with_offending_path(
        self, tmp_path, capsys
    ):
        write_tree(tmp_path, {
            "src/repro/core/broken.py": "def broken(:\n",
        })
        code = main(["--root", str(tmp_path)])
        captured = capsys.readouterr()
        assert code == 2
        assert "broken.py" in captured.err
        assert "cannot analyze" in captured.err

    def test_unreadable_file_exits_2(self, tmp_path, capsys):
        target = tmp_path / "src/repro/core/binary.py"
        target.parent.mkdir(parents=True)
        target.write_bytes(b"\x00\xff\x00\xff")
        code = main(["--root", str(tmp_path)])
        captured = capsys.readouterr()
        assert code == 2
        assert "binary.py" in captured.err
