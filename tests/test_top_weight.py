"""Tests for the top-k heaviest-butterfly search and the OLS
candidate-seeding / adaptive-preparing extensions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.butterfly import brute_force_butterflies, top_weight_butterflies
from repro.core import (
    adaptive_prepare_candidates,
    ordering_listing_sampling,
    prepare_candidates,
)

from .conftest import build_graph, random_small_graph


def brute_top_k(graph, k):
    ordered = sorted(
        brute_force_butterflies(graph), key=lambda b: (-b.weight, b.key)
    )
    return [(b.key, b.weight) for b in ordered[:k]]


class TestTopWeightButterflies:
    def test_figure1_full_ranking(self, figure1):
        top = top_weight_butterflies(figure1, 3)
        assert [(b.key, b.weight) for b in top] == [
            ((0, 1, 0, 1), 10.0),
            ((0, 1, 0, 2), 7.0),
            ((0, 1, 1, 2), 7.0),
        ]

    def test_k_one_matches_max_search(self, figure1):
        from repro.butterfly import max_weight_butterflies

        top = top_weight_butterflies(figure1, 1)
        search = max_weight_butterflies(figure1)
        assert top[0].weight == search.weight
        assert top[0].key in {b.key for b in search.butterflies}

    def test_k_larger_than_inventory(self, figure1):
        top = top_weight_butterflies(figure1, 50)
        assert len(top) == 3

    def test_no_butterfly(self, no_butterfly_graph):
        assert top_weight_butterflies(no_butterfly_graph, 5) == []

    def test_invalid_k(self, figure1):
        with pytest.raises(ValueError):
            top_weight_butterflies(figure1, 0)

    def test_prune_toggle_identical(self, figure1):
        pruned = top_weight_butterflies(figure1, 2, prune=True)
        unpruned = top_weight_butterflies(figure1, 2, prune=False)
        assert [b.key for b in pruned] == [b.key for b in unpruned]

    def test_pair_side_identical(self, figure1):
        left = top_weight_butterflies(figure1, 3, pair_side="left")
        right = top_weight_butterflies(figure1, 3, pair_side="right")
        assert [b.key for b in left] == [b.key for b in right]

    def test_weights_descending(self):
        graph = build_graph([
            (f"L{u}", f"R{v}", float(u + v + 1), 0.5)
            for u in range(4) for v in range(4)
        ])
        top = top_weight_butterflies(graph, 10)
        weights = [b.weight for b in top]
        assert weights == sorted(weights, reverse=True)
        assert len(top) == 10


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 100_000), k=st.integers(1, 8))
def test_property_top_k_matches_brute_force(seed, k):
    """Top-k search agrees with sorting the brute-force enumeration:
    identical weight multiset, and identical identities except within a
    weight tie at the k-th position (see the function's docstring)."""
    graph = random_small_graph(np.random.default_rng(seed), 5, 5)
    expected = brute_top_k(graph, k)
    actual = [
        (b.key, b.weight) for b in top_weight_butterflies(graph, k)
    ]
    assert [w for _key, w in actual] == [w for _key, w in expected]
    by_weight = {}
    for butterfly in brute_force_butterflies(graph):
        by_weight.setdefault(butterfly.weight, set()).add(butterfly.key)
    for key, weight in actual:
        assert key in by_weight[weight]
    # No duplicates among the returned butterflies.
    assert len({key for key, _w in actual}) == len(actual)


class TestSeededPreparing:
    def test_seeding_guarantees_heaviest(self, figure1):
        # One preparing trial may easily miss everything; seeding pins
        # the heaviest backbone butterflies regardless.
        candidates = prepare_candidates(
            figure1, 1, rng=123, seed_backbone_top=2
        )
        keys = {b.key for b in candidates}
        assert (0, 1, 0, 1) in keys  # the weight-10 butterfly

    def test_seeding_reduces_overestimation(self, figure1):
        """With the heavy blocker guaranteed in C_MB, the weight-7
        butterfly's estimate cannot carry the Lemma VI.5 surplus."""
        from repro import exact_probability, make_butterfly

        target = make_butterfly(figure1, 0, 1, 1, 2)
        exact = exact_probability(figure1, target)
        # Unseeded with a pathological preparing run (1 trial, a seed
        # that happens to capture only the light butterflies).
        for seed in range(40):
            unseeded = prepare_candidates(figure1, 1, rng=seed)
            keys = {b.key for b in unseeded}
            if target.key in keys and (0, 1, 0, 1) not in keys:
                break
        else:
            pytest.skip("no pathological preparing draw found")
        biased = ordering_listing_sampling(
            figure1, 20_000, candidates=unseeded, rng=5
        )
        assert biased.probability(target.key) > exact + 0.01

        seeded_set = prepare_candidates(
            figure1, 1, rng=seed, seed_backbone_top=1
        )
        unbiased = ordering_listing_sampling(
            figure1, 20_000, candidates=seeded_set, rng=5
        )
        assert unbiased.probability(target.key) == pytest.approx(
            exact, abs=0.02
        )

    def test_invalid_seed_count(self, figure1):
        with pytest.raises(ValueError):
            prepare_candidates(figure1, 10, seed_backbone_top=-1)


class TestAdaptivePreparing:
    def test_stabilises(self, figure1):
        candidates, trials = adaptive_prepare_candidates(
            figure1, patience=60, max_trials=3_000, rng=0
        )
        # Figure 1 has three butterflies; a long patience finds the two
        # frequent ones at least.
        assert len(candidates) >= 2
        assert trials <= 3_000

    def test_respects_max_trials(self, figure1):
        _candidates, trials = adaptive_prepare_candidates(
            figure1, patience=10_000, max_trials=25, rng=0
        )
        assert trials == 25

    def test_validation(self, figure1):
        with pytest.raises(ValueError):
            adaptive_prepare_candidates(figure1, patience=0)
        with pytest.raises(ValueError):
            adaptive_prepare_candidates(
                figure1, patience=100, max_trials=0
            )

    def test_no_butterfly_graph_stops_quickly(self, no_butterfly_graph):
        candidates, trials = adaptive_prepare_candidates(
            no_butterfly_graph, patience=20, max_trials=1_000, rng=0
        )
        assert len(candidates) == 0
        assert trials == 20


class TestMostProbableButterflies:
    def test_figure1(self, figure1):
        from repro.butterfly import most_probable_butterfly

        best = most_probable_butterfly(figure1)
        assert best is not None
        butterfly, probability = best
        # Existence products: .036, .084, .1344 -> (0,1,1,2) wins.
        assert butterfly.key == (0, 1, 1, 2)
        assert probability == pytest.approx(0.1344)

    def test_full_ranking(self, figure1):
        from repro.butterfly import most_probable_butterflies

        ranked = most_probable_butterflies(figure1, 3)
        probabilities = [p for _b, p in ranked]
        assert probabilities == pytest.approx([0.1344, 0.084, 0.036])

    def test_differs_from_max_weight(self, figure1):
        """Probability order and weight order disagree on Figure 1 —
        exactly the hot-vs-valuable tension of Figure 2."""
        from repro.butterfly import (
            most_probable_butterfly,
            max_weight_butterflies,
        )

        probable, _p = most_probable_butterfly(figure1)
        heaviest = max_weight_butterflies(figure1).butterflies[0]
        assert probable.key != heaviest.key

    def test_zero_probability_edges_excluded(self):
        graph = build_graph([
            # This butterfly is impossible (one p=0 edge)...
            ("a", "x", 9.0, 0.0), ("a", "y", 9.0, 1.0),
            ("b", "x", 9.0, 1.0), ("b", "y", 9.0, 1.0),
            # ...so the low-probability one must win.
            ("c", "z", 1.0, 0.3), ("c", "w", 1.0, 0.3),
            ("d", "z", 1.0, 0.3), ("d", "w", 1.0, 0.3),
        ])
        from repro.butterfly import most_probable_butterfly

        butterfly, probability = most_probable_butterfly(graph)
        assert butterfly.key == (2, 3, 2, 3)
        assert probability == pytest.approx(0.3**4)

    def test_no_butterfly(self, no_butterfly_graph):
        from repro.butterfly import most_probable_butterfly

        assert most_probable_butterfly(no_butterfly_graph) is None

    def test_invalid_k(self, figure1):
        from repro.butterfly import most_probable_butterflies

        with pytest.raises(ValueError):
            most_probable_butterflies(figure1, 0)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 100_000), k=st.integers(1, 5))
def test_property_most_probable_matches_brute_force(seed, k):
    """The log-transform search equals sorting by existence product."""
    from repro.butterfly import most_probable_butterflies

    graph = random_small_graph(np.random.default_rng(seed), 5, 5)
    expected = sorted(
        (
            (b.existence_probability(graph), b.key)
            for b in brute_force_butterflies(graph)
            if b.existence_probability(graph) > 0
        ),
        key=lambda item: (-item[0], item[1]),
    )[:k]
    actual = [
        (probability, butterfly.key)
        for butterfly, probability in most_probable_butterflies(graph, k)
    ]
    assert len(actual) == len(expected)
    for (exp_p, exp_key), (act_p, act_key) in zip(expected, actual):
        assert act_p == pytest.approx(exp_p)
        # Keys may differ only under exact probability ties.
        if act_key != exp_key:
            assert act_p == pytest.approx(exp_p, abs=1e-12)
