"""Tests for the candidate set C_MB (ordering, L(i), blocking events)."""

import pytest

from repro import CandidateSet, make_butterfly
from repro.core import backbone_butterflies

from .conftest import build_graph


@pytest.fixture
def three_candidates(figure1):
    """All three backbone butterflies of Figure 1 as candidates."""
    return CandidateSet(figure1, backbone_butterflies(figure1))


class TestOrdering:
    def test_sorted_by_weight_desc(self, three_candidates):
        weights = [b.weight for b in three_candidates]
        assert weights == sorted(weights, reverse=True)
        assert weights == [10.0, 7.0, 7.0]

    def test_deduplication(self, figure1):
        butterfly = make_butterfly(figure1, 0, 1, 0, 1)
        candidates = CandidateSet(figure1, [butterfly, butterfly, butterfly])
        assert len(candidates) == 1

    def test_tie_break_by_key_is_deterministic(self, three_candidates):
        tied = [b.key for b in three_candidates if b.weight == 7.0]
        assert tied == sorted(tied)

    def test_container_protocol(self, three_candidates, figure1):
        assert len(three_candidates) == 3
        assert list(three_candidates)[0].weight == 10.0
        assert three_candidates[0].key == (0, 1, 0, 1)
        assert make_butterfly(figure1, 0, 1, 0, 1) in three_candidates

    def test_index_of(self, three_candidates, figure1):
        butterfly = make_butterfly(figure1, 0, 1, 0, 1)
        assert three_candidates.index_of(butterfly) == 0
        assert three_candidates.index_of(butterfly.key) == 0
        fake = make_butterfly(figure1, 0, 1, 0, 2)
        smaller = CandidateSet(figure1, [butterfly])
        with pytest.raises(KeyError):
            smaller.index_of(fake)

    def test_empty(self, figure1):
        empty = CandidateSet(figure1, [])
        assert len(empty) == 0
        assert empty.weight_classes() == []


class TestPaperQuantities:
    def test_heavier_count(self, three_candidates):
        assert three_candidates.heavier_count(0) == 0
        # Both weight-7 butterflies see only the weight-10 one as heavier.
        assert three_candidates.heavier_count(1) == 1
        assert three_candidates.heavier_count(2) == 1

    def test_existence_probability(self, three_candidates, figure1):
        # Heaviest candidate: edges (u1,v1)(u1,v2)(u2,v1)(u2,v2).
        assert three_candidates.existence_probability(0) == pytest.approx(
            0.5 * 0.6 * 0.3 * 0.4
        )

    def test_difference_events(self, three_candidates):
        # Candidate 0 has no heavier blockers.
        assert three_candidates.difference_events(0) == []
        # Each weight-7 candidate is blocked by the weight-10 one, minus
        # their two shared edges -> a 2-edge difference event.
        for index in (1, 2):
            events = three_candidates.difference_events(index)
            assert len(events) == 1
            assert len(events[0]) == 2

    def test_blocking_mass(self, three_candidates, figure1):
        # For B(0,1,1,2) (edges u*v2, u*v3), the blocker difference is
        # {(u1,v1), (u2,v1)} with probability 0.5 * 0.3.
        index = three_candidates.index_of((0, 1, 1, 2))
        assert three_candidates.blocking_mass(index) == pytest.approx(0.15)

    def test_blocking_mass_zero_for_top(self, three_candidates):
        assert three_candidates.blocking_mass(0) == 0.0

    def test_impossible_blockers_dropped(self):
        graph = build_graph([
            # Heavy butterfly that can never exist (one p=0 edge).
            ("a", "x", 5.0, 0.0), ("a", "y", 5.0, 1.0),
            ("b", "x", 5.0, 1.0), ("b", "y", 5.0, 1.0),
            # Light butterfly, always present.
            ("c", "z", 1.0, 1.0), ("c", "w", 1.0, 1.0),
            ("d", "z", 1.0, 1.0), ("d", "w", 1.0, 1.0),
        ])
        candidates = CandidateSet(graph, backbone_butterflies(graph))
        light = candidates.index_of(
            next(b for b in candidates if b.weight == 4.0)
        )
        assert candidates.heavier_count(light) == 1
        assert candidates.difference_events(light) == []
        assert candidates.blocking_mass(light) == 0.0

    def test_weight_classes(self, three_candidates):
        classes = three_candidates.weight_classes()
        assert [len(c) for c in classes] == [1, 2]
        assert classes[0] == [0]
        assert classes[1] == [1, 2]
