"""Tests for the sampling substrate: RNG plumbing, Monte-Carlo winner
frequencies, convergence traces, and the Theorem IV.1 bound."""

import numpy as np
import pytest

from repro.sampling import (
    ConvergenceTrace,
    FrequencyEstimate,
    WinnerFrequencyEstimator,
    achievable_epsilon,
    checkpoint_schedule,
    ensure_rng,
    monte_carlo_trial_bound,
    spawn_rngs,
)


class TestRng:
    def test_ensure_rng_passthrough(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_ensure_rng_from_seed(self):
        a = ensure_rng(42).random()
        b = ensure_rng(42).random()
        assert a == b

    def test_ensure_rng_none(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_spawn_rngs_independent(self):
        children = spawn_rngs(7, 3)
        assert len(children) == 3
        values = [child.random() for child in children]
        assert len(set(values)) == 3


class TestWinnerFrequency:
    def test_counts_and_probabilities(self):
        outcomes = iter([["a"], ["a", "b"], [], ["b"], ["a"]])
        estimator = WinnerFrequencyEstimator(lambda: next(outcomes))
        estimate = estimator.run(5)
        assert estimate.counts == {"a": 3, "b": 2}
        assert estimate.probability("a") == pytest.approx(0.6)
        assert estimate.probability("missing") == 0.0
        assert estimate.probabilities() == pytest.approx(
            {"a": 0.6, "b": 0.4}
        )

    def test_top_ranking_deterministic(self):
        estimate = FrequencyEstimate(
            n_trials=10, counts={"b": 3, "a": 3, "c": 5}
        )
        assert estimate.top(2) == ["c", "a"]

    def test_traces_recorded(self):
        estimator = WinnerFrequencyEstimator(
            lambda: ["x"], track=["x", "y"], checkpoints=5
        )
        estimate = estimator.run(10)
        trace = estimate.traces["x"]
        assert trace.checkpoints[-1] == (10, 1.0)
        assert estimate.traces["y"].final_estimate == 0.0

    def test_zero_trials_rejected(self):
        estimator = WinnerFrequencyEstimator(lambda: [])
        with pytest.raises(ValueError):
            estimator.run(0)

    def test_empty_estimate(self):
        estimate = FrequencyEstimate(n_trials=0, counts={})
        assert estimate.probability("x") == 0.0
        assert estimate.probabilities() == {}


class TestConvergenceTrace:
    def test_record_and_access(self):
        trace = ConvergenceTrace(label="demo")
        trace.record(10, 0.5)
        trace.record(20, 0.4)
        assert trace.final_estimate == 0.4
        assert trace.estimates() == [0.5, 0.4]
        assert trace.trials() == [10, 20]

    def test_empty_trace(self):
        trace = ConvergenceTrace()
        assert np.isnan(trace.final_estimate)
        assert not trace.within_band(0.5, 0.1)

    def test_within_band_checks_tail_only(self):
        trace = ConvergenceTrace()
        trace.record(10, 9.0)   # wild warm-up value, ignored
        trace.record(60, 0.52)
        trace.record(100, 0.49)
        assert trace.within_band(0.5, 0.1, after_fraction=0.5)
        trace.record(110, 0.9)
        assert not trace.within_band(0.5, 0.1, after_fraction=0.5)

    def test_checkpoint_schedule(self):
        schedule = checkpoint_schedule(100, points=4)
        assert schedule == [25, 50, 75, 100]
        assert checkpoint_schedule(3, points=10) == [1, 2, 3]
        assert checkpoint_schedule(0) == []


class TestTheorem41:
    def test_paper_example(self):
        # Paper: P(B)=0.01, eps=0.1, delta=0.01 -> around 2e5 trials.
        n = monte_carlo_trial_bound(0.01, epsilon=0.1, delta=0.01)
        assert 2e5 < n < 2.5e5

    def test_paper_default_setting(self):
        # mu=0.05, eps=delta=0.1 -> the paper rounds to 2e4.
        n = monte_carlo_trial_bound(0.05, 0.1, 0.1)
        assert 2e4 < n < 2.5e4

    def test_monotonicity(self):
        assert monte_carlo_trial_bound(0.01) > monte_carlo_trial_bound(0.1)
        assert monte_carlo_trial_bound(
            0.05, epsilon=0.05
        ) > monte_carlo_trial_bound(0.05, epsilon=0.1)
        assert monte_carlo_trial_bound(
            0.05, delta=0.01
        ) > monte_carlo_trial_bound(0.05, delta=0.1)

    def test_inverse(self):
        n = monte_carlo_trial_bound(0.05, 0.1, 0.1)
        epsilon = achievable_epsilon(0.05, n, 0.1)
        assert epsilon == pytest.approx(0.1, rel=0.01)

    @pytest.mark.parametrize("mu", [0.0, -0.1, 1.1])
    def test_invalid_mu(self, mu):
        with pytest.raises(ValueError):
            monte_carlo_trial_bound(mu)
        with pytest.raises(ValueError):
            achievable_epsilon(mu, 100)

    def test_invalid_epsilon_delta(self):
        with pytest.raises(ValueError):
            monte_carlo_trial_bound(0.1, epsilon=0.0)
        with pytest.raises(ValueError):
            monte_carlo_trial_bound(0.1, delta=1.0)
        with pytest.raises(ValueError):
            achievable_epsilon(0.1, 0)
