"""Tests for the four sampling methods (MC-VP, OS, OLS, OLS-KL)."""

import pytest

from repro import (
    CandidateSet,
    find_mpmb,
    find_top_k_mpmb,
    make_butterfly,
    mc_vp,
    ordering_listing_sampling,
    ordering_sampling,
    prepare_candidates,
)
from repro.core import backbone_butterflies
from repro.core.mpmb import METHODS, mpmb_probability

from .conftest import FIGURE_1_EXACT

SAMPLING_METHODS = ("mc-vp", "os", "ols", "ols-kl")


class TestAgreementWithExact:
    """All methods approximate the Figure 1 ground truth."""

    @pytest.mark.parametrize("method", SAMPLING_METHODS)
    def test_figure1_estimates(self, figure1, method):
        result = find_mpmb(figure1, method=method, n_trials=20_000, rng=7)
        assert result.best is not None
        assert result.best.key == (0, 1, 1, 2)
        for key, exact in FIGURE_1_EXACT.items():
            assert result.probability(key) == pytest.approx(
                exact, abs=0.02
            ), f"{method} misestimated {key}"

    @pytest.mark.parametrize("method", SAMPLING_METHODS)
    def test_certain_butterfly(self, square, method):
        result = find_mpmb(square, method=method, n_trials=200, rng=1)
        assert result.best_probability == pytest.approx(1.0)

    @pytest.mark.parametrize("method", SAMPLING_METHODS)
    def test_no_butterfly(self, no_butterfly_graph, method):
        result = find_mpmb(
            no_butterfly_graph, method=method, n_trials=100, rng=1
        )
        assert result.best is None
        assert result.best_probability == 0.0
        assert result.estimates == {}


class TestDeterminism:
    @pytest.mark.parametrize("method", SAMPLING_METHODS)
    def test_same_seed_same_result(self, figure1, method):
        a = find_mpmb(figure1, method=method, n_trials=500, rng=99)
        b = find_mpmb(figure1, method=method, n_trials=500, rng=99)
        assert a.estimates == b.estimates

    def test_mcvp_and_os_share_trial_worlds(self, figure1):
        """Both consume one uniform vector per trial from the same RNG,
        so with equal seeds they see identical possible worlds and
        produce identical estimates."""
        a = mc_vp(figure1, 300, rng=5)
        b = ordering_sampling(figure1, 300, rng=5)
        assert a.estimates == b.estimates


class TestMcVp:
    def test_stats_counters(self, figure1):
        result = mc_vp(figure1, 50, rng=0)
        assert result.method == "mc-vp"
        assert result.stats["angles_processed"] > 0
        assert result.stats["butterflies_checked"] > 0
        assert result.n_trials == 50

    def test_traces(self, figure1):
        key = (0, 1, 1, 2)
        result = mc_vp(figure1, 200, rng=0, track=[key], checkpoints=4)
        trace = result.traces[key]
        assert len(trace.checkpoints) == 4
        assert trace.checkpoints[-1][0] == 200


class TestOrderingSampling:
    def test_stats_counters(self, figure1):
        result = ordering_sampling(figure1, 50, rng=0)
        assert result.method == "os"
        assert result.stats["edges_processed"] > 0
        assert result.stats["angles_processed"] > 0

    def test_prune_toggle_same_estimates(self, figure1):
        pruned = ordering_sampling(figure1, 400, rng=3, prune=True)
        unpruned = ordering_sampling(figure1, 400, rng=3, prune=False)
        assert pruned.estimates == unpruned.estimates
        assert (
            pruned.stats["edges_processed"]
            <= unpruned.stats["edges_processed"]
        )

    def test_pair_side_same_estimates(self, figure1):
        left = ordering_sampling(figure1, 400, rng=3, pair_side="left")
        right = ordering_sampling(figure1, 400, rng=3, pair_side="right")
        assert left.estimates == right.estimates


class TestOls:
    def test_prepare_candidates(self, figure1):
        candidates = prepare_candidates(figure1, 200, rng=0)
        assert isinstance(candidates, CandidateSet)
        # With 200 trials all three butterflies should have appeared.
        assert len(candidates) == 3

    def test_prepare_rejects_bad_budget(self, figure1):
        with pytest.raises(ValueError):
            prepare_candidates(figure1, 0)

    def test_reusing_candidates_skips_preparing(self, figure1):
        candidates = CandidateSet(
            figure1, backbone_butterflies(figure1)
        )
        result = ordering_listing_sampling(
            figure1, 2_000, candidates=candidates, rng=1
        )
        assert result.stats["candidates_listed"] == 3.0
        assert result.best is not None

    def test_estimator_choice(self, figure1):
        optimised = ordering_listing_sampling(
            figure1, 500, estimator="optimized", rng=1
        )
        assert optimised.method == "ols"
        karp = ordering_listing_sampling(
            figure1, 500, estimator="karp-luby", rng=1
        )
        assert karp.method == "ols-kl"

    def test_unknown_estimator(self, figure1):
        with pytest.raises(ValueError, match="estimator"):
            ordering_listing_sampling(figure1, 100, estimator="magic")

    def test_zero_trials_rejected_for_optimized(self, figure1):
        with pytest.raises(ValueError, match="n_trials"):
            ordering_listing_sampling(figure1, 0, estimator="optimized")

    def test_no_candidates_result(self, no_butterfly_graph):
        result = ordering_listing_sampling(
            no_butterfly_graph, 100, n_prepare=20, rng=0
        )
        assert result.best is None
        assert result.stats["candidates_listed"] == 0.0

    def test_kl_dynamic_budget(self, figure1):
        result = ordering_listing_sampling(
            figure1, 0, estimator="karp-luby", rng=2, mu=0.05,
        )
        assert result.method == "ols-kl"
        assert result.n_trials > 0
        assert result.best is not None


class TestFacade:
    def test_methods_constant_covers_dispatch(self, figure1):
        for method in METHODS:
            result = find_mpmb(figure1, method=method, n_trials=300, rng=0)
            assert result.method in (
                method, "ols", "ols-kl"
            )

    def test_unknown_method(self, figure1):
        with pytest.raises(ValueError, match="unknown method"):
            find_mpmb(figure1, method="quantum")

    def test_exact_methods_via_facade(self, figure1):
        result = find_mpmb(figure1, method="exact-worlds")
        assert result.best_probability == pytest.approx(0.11424)

    def test_top_k(self, figure1):
        top = find_top_k_mpmb(
            figure1, 2, method="os", n_trials=5_000, rng=4
        )
        assert len(top) == 2
        assert top[0][1] >= top[1][1]
        assert top[0][0].key == (0, 1, 1, 2)

    def test_top_k_truncates(self, square):
        top = find_top_k_mpmb(square, 10, method="os", n_trials=50, rng=0)
        assert len(top) == 1

    def test_mpmb_probability_helper(self, figure1):
        result = find_mpmb(figure1, method="exact-worlds")
        assert mpmb_probability(result) == result.best_probability
        butterfly = make_butterfly(figure1, 0, 1, 0, 1)
        assert mpmb_probability(result, butterfly) == pytest.approx(0.036)


class TestResultType:
    def test_ranked_deterministic_ties(self, figure1):
        result = find_mpmb(figure1, method="exact-worlds")
        ranked = result.ranked()
        assert [b.key for b, _p in ranked] == [
            (0, 1, 1, 2), (0, 1, 0, 2), (0, 1, 0, 1),
        ]

    def test_top_k_validates(self, figure1):
        result = find_mpmb(figure1, method="exact-worlds")
        with pytest.raises(ValueError):
            result.top_k(0)

    def test_labelled_ranking(self, figure1):
        result = find_mpmb(figure1, method="exact-worlds")
        labels, weight, probability = result.labelled_ranking(1)[0]
        assert labels == ("u1", "u2", "v2", "v3")
        assert weight == 7.0
        assert probability == pytest.approx(0.11424)


class TestMergeResults:
    def test_pooled_equals_single_long_run(self, figure1):
        """Two pooled runs equal one long run over the concatenated
        RNG stream — checked statistically here, structurally below."""
        from repro.core import merge_results
        from repro import ordering_sampling

        a = ordering_sampling(figure1, 3_000, rng=1)
        b = ordering_sampling(figure1, 3_000, rng=2)
        merged = merge_results(a, b)
        assert merged.n_trials == 6_000
        key = (0, 1, 1, 2)
        expected = (a.probability(key) + b.probability(key)) / 2
        assert merged.probability(key) == pytest.approx(expected)
        assert merged.probability(key) == pytest.approx(0.11424, abs=0.02)

    def test_weighted_by_trials(self, figure1):
        from repro.core import merge_results
        from repro import ordering_sampling

        a = ordering_sampling(figure1, 1_000, rng=1)
        b = ordering_sampling(figure1, 3_000, rng=2)
        merged = merge_results(a, b)
        key = (0, 1, 0, 1)
        expected = (
            a.probability(key) * 1_000 + b.probability(key) * 3_000
        ) / 4_000
        assert merged.probability(key) == pytest.approx(expected)

    def test_method_mismatch_rejected(self, figure1):
        from repro.core import merge_results
        from repro import mc_vp, ordering_sampling

        a = mc_vp(figure1, 50, rng=1)
        b = ordering_sampling(figure1, 50, rng=1)
        with pytest.raises(ValueError, match="cannot merge"):
            merge_results(a, b)

    def test_non_frequency_method_rejected(self, figure1):
        from repro.core import merge_results
        from repro import find_mpmb

        a = find_mpmb(figure1, method="exact-worlds")
        with pytest.raises(ValueError, match="frequency"):
            merge_results(a, a)

    def test_different_graph_rejected(self, figure1, square):
        from repro.core import merge_results
        from repro import ordering_sampling

        a = ordering_sampling(figure1, 50, rng=1)
        b = ordering_sampling(square, 50, rng=1)
        with pytest.raises(ValueError, match="different graphs"):
            merge_results(a, b)

    def test_stats_summed(self, figure1):
        from repro.core import merge_results
        from repro import ordering_sampling

        a = ordering_sampling(figure1, 100, rng=1)
        b = ordering_sampling(figure1, 100, rng=2)
        merged = merge_results(a, b)
        assert merged.stats["edges_processed"] == (
            a.stats["edges_processed"] + b.stats["edges_processed"]
        )
