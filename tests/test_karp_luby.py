"""Tests for the generic Karp-Luby union estimator vs the exact oracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import EstimationError, IntractableError
from repro.sampling import (
    KarpLubyUnionSampler,
    estimate_union_probability,
    event_probability,
    exact_union_probability,
    union_probability_first_hit,
)


def prob_table(table):
    return lambda atom: table[atom]


class TestExactUnion:
    def test_single_event(self):
        probability = exact_union_probability(
            [frozenset({"a", "b"})], prob_table({"a": 0.5, "b": 0.4})
        )
        assert probability == pytest.approx(0.2)

    def test_disjoint_events(self):
        probs = {"a": 0.5, "b": 0.4}
        probability = exact_union_probability(
            [frozenset({"a"}), frozenset({"b"})], prob_table(probs)
        )
        assert probability == pytest.approx(0.5 + 0.4 - 0.2)

    def test_overlapping_events(self):
        probs = {"a": 0.5, "b": 0.4, "c": 0.3}
        events = [frozenset({"a", "b"}), frozenset({"a", "c"})]
        # P = p(ab) + p(ac) - p(abc)
        expected = 0.2 + 0.15 - 0.06
        assert exact_union_probability(
            events, prob_table(probs)
        ) == pytest.approx(expected)

    def test_empty_union(self):
        assert exact_union_probability([], prob_table({})) == 0.0

    def test_budget_guard(self):
        events = [frozenset({i}) for i in range(25)]
        with pytest.raises(IntractableError):
            exact_union_probability(
                events, lambda _a: 0.5, max_subsets=1 << 10
            )

    def test_first_hit_decomposition_sums_to_union(self):
        probs = {"a": 0.5, "b": 0.4, "c": 0.3, "d": 0.8}
        events = [
            frozenset({"a", "b"}),
            frozenset({"b", "c"}),
            frozenset({"d"}),
        ]
        pieces = union_probability_first_hit(events, prob_table(probs))
        assert sum(pieces) == pytest.approx(
            exact_union_probability(events, prob_table(probs))
        )
        assert all(piece >= 0 for piece in pieces)

    def test_event_probability(self):
        assert event_probability(
            frozenset({"a", "b"}), prob_table({"a": 0.5, "b": 0.5})
        ) == 0.25
        assert event_probability(frozenset(), prob_table({})) == 1.0


class TestSampler:
    def test_empty_events(self):
        sampler = KarpLubyUnionSampler([], prob_table({}))
        estimate = sampler.run(10)
        assert estimate.probability == 0.0
        assert sampler.is_empty

    def test_certain_event(self):
        sampler = KarpLubyUnionSampler(
            [frozenset()], prob_table({}), rng=0
        )
        assert sampler.is_certain
        assert sampler.run(5).probability == 1.0

    def test_zero_probability_event_rejected(self):
        with pytest.raises(EstimationError, match="zero probability"):
            KarpLubyUnionSampler(
                [frozenset({"a"})], prob_table({"a": 0.0})
            )

    def test_no_trials_estimate_rejected(self):
        sampler = KarpLubyUnionSampler(
            [frozenset({"a"})], prob_table({"a": 0.5})
        )
        with pytest.raises(EstimationError, match="no trials"):
            sampler.estimate()

    def test_nonpositive_run_rejected(self):
        sampler = KarpLubyUnionSampler(
            [frozenset({"a"})], prob_table({"a": 0.5})
        )
        with pytest.raises(EstimationError):
            sampler.run(0)

    def test_single_event_estimate_is_exact(self):
        # With one event every accepted trial is the event itself, so the
        # estimate equals S exactly regardless of randomness.
        sampler = KarpLubyUnionSampler(
            [frozenset({"a", "b"})], prob_table({"a": 0.5, "b": 0.4}), rng=1
        )
        estimate = sampler.run(100)
        assert estimate.probability == pytest.approx(0.2)
        assert estimate.accepted == 100

    def test_estimate_clipping(self):
        # raw = accepted/N * S can exceed 1 transiently; probability is
        # clipped while raw_probability is preserved.
        probs = {f"x{i}": 0.9 for i in range(8)}
        events = [frozenset({f"x{i}"}) for i in range(8)]
        estimate = estimate_union_probability(
            events, prob_table(probs), 500, rng=3
        )
        assert 0.0 <= estimate.probability <= 1.0
        assert estimate.weight_sum == pytest.approx(7.2)

    def test_convergence_to_exact(self):
        probs = {"a": 0.5, "b": 0.4, "c": 0.3, "d": 0.6}
        events = [
            frozenset({"a", "b"}),
            frozenset({"b", "c"}),
            frozenset({"c", "d"}),
            frozenset({"a", "d"}),
        ]
        exact = exact_union_probability(events, prob_table(probs))
        estimate = estimate_union_probability(
            events, prob_table(probs), 20_000, rng=5
        )
        assert estimate.probability == pytest.approx(exact, rel=0.05)

    def test_incremental_trials_accumulate(self):
        sampler = KarpLubyUnionSampler(
            [frozenset({"a"}), frozenset({"b"})],
            prob_table({"a": 0.5, "b": 0.5}),
            rng=2,
        )
        sampler.run(10)
        sampler.run(10)
        assert sampler.n_trials == 20


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    data=st.data(),
)
def test_property_kl_close_to_exact(seed, data):
    """KL estimates converge to inclusion-exclusion on random families."""
    n_atoms = data.draw(st.integers(2, 6))
    atoms = {f"a{i}": data.draw(st.floats(0.1, 0.9)) for i in range(n_atoms)}
    n_events = data.draw(st.integers(1, 5))
    events = []
    for _ in range(n_events):
        size = data.draw(st.integers(1, min(3, n_atoms)))
        chosen = data.draw(
            st.lists(
                st.sampled_from(sorted(atoms)), min_size=size,
                max_size=size, unique=True,
            )
        )
        events.append(frozenset(chosen))
    exact = exact_union_probability(events, prob_table(atoms))
    estimate = estimate_union_probability(
        events, prob_table(atoms), 8_000, rng=seed
    )
    # 8k trials: generous absolute tolerance keeps this stable.
    assert estimate.probability == pytest.approx(exact, abs=0.05)
