"""Tests for graph views (subsampling, edge maps) and vertex priorities."""

import numpy as np
import pytest

from repro import GraphValidationError, sample_vertices
from repro.graph import (
    backbone,
    compute_stats,
    degree_priority,
    expected_degree_priority,
    global_index_left,
    global_index_right,
    map_edges,
)

from .conftest import build_graph


class TestSampleVertices:
    def test_full_fraction_returns_same_object(self, figure1, rng):
        assert sample_vertices(figure1, 1.0, rng) is figure1

    def test_half_fraction_shapes(self, figure1, rng):
        sub = sample_vertices(figure1, 0.5, rng)
        assert sub.n_left == 1
        assert sub.n_right in (1, 2)
        # Only edges with both endpoints kept survive.
        for spec in sub.iter_edge_specs():
            assert spec.left in sub.left_labels
            assert spec.right in sub.right_labels

    def test_edges_preserve_attributes(self, figure1, rng):
        sub = sample_vertices(figure1, 0.8, rng)
        original = {
            (spec.left, spec.right): (spec.weight, spec.prob)
            for spec in figure1.iter_edge_specs()
        }
        for spec in sub.iter_edge_specs():
            assert original[(spec.left, spec.right)] == (
                spec.weight, spec.prob
            )

    def test_invalid_fraction(self, figure1, rng):
        with pytest.raises(GraphValidationError):
            sample_vertices(figure1, 0.0, rng)
        with pytest.raises(GraphValidationError):
            sample_vertices(figure1, 1.5, rng)

    def test_deterministic_given_seed(self, figure1):
        a = sample_vertices(figure1, 0.5, np.random.default_rng(9))
        b = sample_vertices(figure1, 0.5, np.random.default_rng(9))
        assert a == b

    def test_keeps_at_least_one_vertex(self, figure1, rng):
        sub = sample_vertices(figure1, 0.01, rng)
        assert sub.n_left >= 1
        assert sub.n_right >= 1


class TestMapEdges:
    def test_weight_rewrite(self, figure1):
        doubled = map_edges(figure1, weight_fn=lambda w: 2 * w)
        assert doubled.weights.tolist() == (2 * figure1.weights).tolist()
        assert doubled.probs.tolist() == figure1.probs.tolist()

    def test_backbone_sets_probabilities_to_one(self, figure1):
        determined = backbone(figure1)
        assert (determined.probs == 1.0).all()
        assert determined.weights.tolist() == figure1.weights.tolist()
        assert "backbone" in determined.name

    def test_original_untouched(self, figure1):
        before = figure1.probs.tolist()
        backbone(figure1)
        assert figure1.probs.tolist() == before

    def test_rewrite_can_invalidate(self, figure1):
        with pytest.raises(GraphValidationError):
            map_edges(figure1, weight_fn=lambda _w: -1.0)


class TestPriority:
    def test_priority_is_permutation(self, figure1):
        priority = degree_priority(figure1)
        assert sorted(priority.tolist()) == list(range(figure1.n_vertices))

    def test_higher_degree_gets_higher_priority(self):
        graph = build_graph([
            ("hub", "x", 1.0, 0.5),
            ("hub", "y", 1.0, 0.5),
            ("hub", "z", 1.0, 0.5),
            ("leaf", "x", 1.0, 0.5),
        ])
        priority = degree_priority(graph)
        hub = graph.left_index("hub")
        leaf = graph.left_index("leaf")
        assert priority[hub] > priority[leaf]

    def test_ties_break_by_global_index(self, figure1):
        priority = degree_priority(figure1)
        # u1 and u2 both have degree 3; u2 has the larger global index.
        assert priority[1] > priority[0]

    def test_global_index_convention_matches_priority_layout(self, figure1):
        # degree_priority concatenates left degrees then right degrees,
        # so priority lookups must use exactly this indexing.
        priority = degree_priority(figure1)
        degrees_left = figure1.degrees_left()
        degrees_right = figure1.degrees_right()
        for u in range(figure1.n_left):
            assert global_index_left(figure1, u) == u
        for v in range(figure1.n_right):
            x = global_index_right(figure1, v)
            assert x == figure1.n_left + v
            # A right vertex with strictly larger degree than a left
            # vertex must outrank it under the global priority.
            for u in range(figure1.n_left):
                if degrees_right[v] > degrees_left[u]:
                    assert priority[x] > priority[
                        global_index_left(figure1, u)
                    ]

    def test_expected_degree_priority_differs_when_probs_skew(self):
        graph = build_graph([
            ("a", "x", 1.0, 0.1),
            ("a", "y", 1.0, 0.1),
            ("b", "x", 1.0, 0.9),
        ])
        plain = degree_priority(graph)
        expected = expected_degree_priority(graph)
        a, b = graph.left_index("a"), graph.left_index("b")
        assert plain[a] > plain[b]        # degree 2 vs 1
        assert expected[b] > expected[a]  # 0.9 vs 0.2


class TestStats:
    def test_figure1_stats(self, figure1):
        stats = compute_stats(figure1)
        assert stats.n_edges == 6
        assert stats.n_left == 2
        assert stats.n_right == 3
        assert stats.mean_weight == pytest.approx(2.0)
        assert stats.mean_prob == pytest.approx(0.55, abs=1e-9)
        assert stats.max_degree_left == 3
        assert stats.max_degree_right == 2
        assert stats.os_cost_proxy > 0
        assert stats.mcvp_cost_proxy > 0

    def test_os_cost_uses_cheaper_side(self, figure1):
        stats = compute_stats(figure1)
        left = float((figure1.expected_degrees_left() ** 2).sum())
        right = float((figure1.expected_degrees_right() ** 2).sum())
        assert stats.os_cost_proxy == pytest.approx(min(left, right))

    def test_empty_graph_stats(self):
        from repro import UncertainBipartiteGraph

        stats = compute_stats(UncertainBipartiteGraph.from_edges([]))
        assert stats.n_edges == 0
        assert stats.mean_weight == 0.0
        assert stats.mcvp_cost_proxy == 0.0

    def test_as_row(self, figure1):
        row = compute_stats(figure1).as_row()
        assert row[0] == "figure-1"
        assert row[1] == 6
