"""Batched trial kernels: scalar/batched equivalence and blocking helpers.

The acceptance bar for the kernel layer (``repro.kernels``): a batched
run must be *equivalent* to the scalar path it replaces —

* MC-VP and OS consume the mask matrix row-by-row, so batched results
  are **bit-identical** to scalar results for *any* block size;
* the blocked optimised estimator draws full masks (partition-invariant
  RNG consumption), so its results are identical across *all* block
  sizes, and checkpoint/resume is exact for a fixed block size;
* blocked Karp-Luby is deterministic for a fixed block size.

Alongside the kernels this file pins the satellite regressions the
batching work exposed: the symmetric ``edges_sampled``/``edges_queried``
hit-rate reads, the tolerant ``A1``/``A2`` weight classes, and
``adaptive_prepare_candidates``'s instrumentation parity.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CheckpointError, FaultPlan, Observer, RuntimePolicy
from repro.butterfly import top_weight_butterflies
from repro.butterfly.max_weight import (
    TopTwoAngleIndex,
    WEIGHT_RTOL,
    weights_equal,
)
from repro.core import (
    adaptive_prepare_candidates,
    mc_vp,
    ordering_listing_sampling,
    ordering_sampling,
    prepare_candidates,
    result_to_dict,
)
from repro.core.estimation import EstimationOutcome
from repro.datasets.synthetic import random_bipartite
from repro.errors import ConfigurationError
from repro.kernels import (
    DEFAULT_BLOCK_SIZE,
    CandidateBlockKernel,
    block_lengths,
    block_starts,
    resolve_block_size,
    trials_in_blocks,
)
from repro.runtime import (
    InjectedCrash,
    read_checkpoint,
    run_parallel_trials,
    split_trials,
)
from repro.worlds import WorldSampler

from .conftest import FIGURE_1_EDGES, build_graph


@pytest.fixture
def graph():
    return build_graph(FIGURE_1_EDGES, name="figure-1")


def _crash_policy(path, crash_at, every=1):
    return RuntimePolicy(
        checkpoint_path=path,
        checkpoint_every=every,
        faults=FaultPlan(crash_before_trial=crash_at),
    )


def _resume_policy(path, every=1):
    return RuntimePolicy(
        checkpoint_path=path, checkpoint_every=every, resume_from=path
    )


class TestBlockHelpers:
    def test_resolve_defaults_and_clamps(self):
        assert resolve_block_size(10_000) == DEFAULT_BLOCK_SIZE
        assert resolve_block_size(10, None) == 10
        assert resolve_block_size(100, 32) == 32
        assert resolve_block_size(8, 32) == 8

    def test_resolve_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            resolve_block_size(100, 0)
        with pytest.raises(ConfigurationError):
            resolve_block_size(100, -4)

    def test_lengths_cover_exactly(self):
        assert block_lengths(10, 4) == [4, 4, 2]
        assert block_lengths(8, 4) == [4, 4]
        assert block_lengths(3, 8) == [3]
        for n, b in [(1, 1), (97, 8), (256, 256), (1000, 33)]:
            lengths = block_lengths(n, b)
            assert sum(lengths) == n
            assert all(length == b for length in lengths[:-1])
            assert 0 < lengths[-1] <= b

    def test_starts_and_trials(self):
        lengths = block_lengths(10, 4)
        assert block_starts(lengths) == [0, 4, 8]
        assert trials_in_blocks(lengths, 0) == 0
        assert trials_in_blocks(lengths, 2) == 8
        assert trials_in_blocks(lengths, 3) == 10


class TestMaskBlock:
    """``sample_mask_block`` draws the same world sequence as repeated
    ``sample_mask`` — the stream-equivalence the bit-identical estimator
    contract rests on (satellite: antithetic pairing under batching)."""

    def test_plain_block_matches_scalar_stream(self, graph):
        scalar = WorldSampler(graph, 7)
        batched = WorldSampler(graph, 7)
        expected = np.stack([scalar.sample_mask() for _ in range(9)])
        np.testing.assert_array_equal(
            batched.sample_mask_block(9), expected
        )

    def test_antithetic_block_matches_scalar_stream(self, graph):
        scalar = WorldSampler(graph, 3, antithetic=True)
        batched = WorldSampler(graph, 3, antithetic=True)
        expected = np.stack([scalar.sample_mask() for _ in range(10)])
        np.testing.assert_array_equal(
            batched.sample_mask_block(10), expected
        )

    def test_antithetic_pending_carries_across_blocks(self, graph):
        """Odd block lengths leave a half-pair pending; the next block
        must consume it before drawing fresh uniforms."""
        scalar = WorldSampler(graph, 5, antithetic=True)
        batched = WorldSampler(graph, 5, antithetic=True)
        expected = np.stack([scalar.sample_mask() for _ in range(3 + 4 + 1)])
        got = np.concatenate([
            batched.sample_mask_block(3),
            batched.sample_mask_block(4),
            batched.sample_mask_block(1),
        ])
        np.testing.assert_array_equal(got, expected)

    def test_antithetic_pending_survives_checkpoint_restore(self, graph):
        """Snapshot between the halves of an antithetic pair, restore
        into a fresh sampler, and keep drawing blocks: the ``_pending``
        buffer must round-trip through the state payload."""
        reference = WorldSampler(graph, 11, antithetic=True)
        expected = np.stack([reference.sample_mask() for _ in range(8)])

        first = WorldSampler(graph, 11, antithetic=True)
        head = first.sample_mask_block(3)  # odd: second half pending
        payload = first.state_payload()
        fresh = WorldSampler(graph, 0, antithetic=True)
        fresh.restore_state(payload)
        tail = fresh.sample_mask_block(5)
        np.testing.assert_array_equal(
            np.concatenate([head, tail]), expected
        )

    def test_block_and_scalar_interleave(self, graph):
        scalar = WorldSampler(graph, 13, antithetic=True)
        mixed = WorldSampler(graph, 13, antithetic=True)
        expected = np.stack([scalar.sample_mask() for _ in range(6)])
        got = np.concatenate([
            mixed.sample_mask_block(1),
            [mixed.sample_mask()],
            mixed.sample_mask_block(4),
        ])
        np.testing.assert_array_equal(got, expected)

    def test_non_positive_count_rejected(self, graph):
        sampler = WorldSampler(graph, 1)
        with pytest.raises(ValueError):
            sampler.sample_mask_block(0)


class TestScalarBatchedEquivalence:
    """Estimates, winner counts, and stats match the scalar path."""

    @pytest.mark.parametrize("block_size", [1, 8, 40, 64])
    def test_mc_vp_bit_identical(self, graph, block_size):
        scalar = result_to_dict(mc_vp(graph, 40, rng=7))
        blocked = result_to_dict(
            mc_vp(graph, 40, rng=7, block_size=block_size)
        )
        assert blocked == scalar

    @pytest.mark.parametrize("block_size", [1, 7, 30])
    def test_os_bit_identical(self, graph, block_size):
        """Everything except ``stats`` is bit-identical; the batched path
        reports the wedge kernel scan's own work counters because the
        scalar scan's per-edge counters have no vectorised equivalent."""
        scalar = result_to_dict(ordering_sampling(graph, 30, rng=3))
        blocked = result_to_dict(
            ordering_sampling(graph, 30, rng=3, block_size=block_size)
        )
        assert sorted(blocked["stats"]) == [
            "trials_pruned", "wedges_scanned"
        ]
        del scalar["stats"], blocked["stats"]
        assert blocked == scalar

    def test_os_antithetic_bit_identical(self, graph):
        scalar = result_to_dict(
            ordering_sampling(graph, 30, rng=9, antithetic=True)
        )
        blocked = result_to_dict(
            ordering_sampling(
                graph, 30, rng=9, antithetic=True, block_size=7
            )
        )
        del scalar["stats"], blocked["stats"]
        assert blocked == scalar

    def test_ols_partition_invariant(self, graph):
        """Full-mask draws consume the RNG identically regardless of how
        trials are grouped, so every block size yields the same result."""
        results = [
            result_to_dict(
                ordering_listing_sampling(
                    graph, 60, n_prepare=20, estimator="optimized",
                    rng=11, block_size=block_size,
                )
            )
            for block_size in (1, 9, 16, 60)
        ]
        assert all(r == results[0] for r in results[1:])

    def test_ols_blocked_tracks_scalar_estimate(self, graph):
        """The blocked optimised estimator draws worlds eagerly while the
        scalar path samples edges lazily, so the runs see different
        worlds — but both are unbiased, so long runs agree closely."""
        scalar = ordering_listing_sampling(
            graph, 4_000, n_prepare=30, estimator="optimized", rng=2
        )
        blocked = ordering_listing_sampling(
            graph, 4_000, n_prepare=30, estimator="optimized", rng=2,
            block_size=256,
        )
        assert set(blocked.estimates) == set(scalar.estimates)
        for key, value in scalar.estimates.items():
            assert blocked.estimates[key] == pytest.approx(value, abs=0.05)

    def test_ols_kl_deterministic_for_fixed_block(self):
        small = random_bipartite(8, 8, 30, rng=1)
        first = ordering_listing_sampling(
            small, 300, n_prepare=50, estimator="karp-luby", rng=5,
            block_size=128,
        )
        second = ordering_listing_sampling(
            small, 300, n_prepare=50, estimator="karp-luby", rng=5,
            block_size=128,
        )
        assert first.estimates == second.estimates
        assert first.stats == second.stats

    def test_ols_kl_blocked_tracks_scalar_estimate(self):
        small = random_bipartite(8, 8, 30, rng=1)
        scalar = ordering_listing_sampling(
            small, 400, n_prepare=50, estimator="karp-luby", rng=5
        )
        blocked = ordering_listing_sampling(
            small, 400, n_prepare=50, estimator="karp-luby", rng=5,
            block_size=128,
        )
        for key, value in scalar.estimates.items():
            assert blocked.estimates[key] == pytest.approx(value, abs=0.05)

    def test_kernel_metrics_recorded(self, graph):
        observer = Observer()
        mc_vp(graph, 40, rng=7, block_size=8, observer=observer)
        document = observer.export_document("mc-vp", "figure-1")
        assert document["gauges"]["kernel.block_size"] == 8.0
        assert document["counters"]["kernel.trials_vectorized"] == 40.0

    def test_invalid_block_size_rejected(self, graph):
        with pytest.raises(ConfigurationError):
            mc_vp(graph, 40, rng=7, block_size=0)
        with pytest.raises(ConfigurationError):
            ordering_listing_sampling(
                graph, 40, n_prepare=20, estimator="karp-luby", rng=11,
                block_size=-1,
            )


class TestBlockedCheckpointResume:
    """Crash mid-run, resume, and compare bit-for-bit with a clean run
    — now at block granularity (checkpoints land on block boundaries)."""

    def test_mc_vp_blocked_resume(self, graph, tmp_path):
        baseline = result_to_dict(mc_vp(graph, 40, rng=7, block_size=8))
        path = tmp_path / "mc.json"
        with pytest.raises(InjectedCrash):
            mc_vp(
                graph, 40, rng=7, block_size=8,
                runtime=_crash_policy(path, 4, every=2),
            )
        document = read_checkpoint(path)
        assert document["unit"] == "block"
        resumed = mc_vp(
            graph, 40, rng=7, block_size=8,
            runtime=_resume_policy(path, every=2),
        )
        assert result_to_dict(resumed) == baseline

    def test_os_antithetic_blocked_resume(self, graph, tmp_path):
        """Odd block size so snapshots land between antithetic pair
        halves — the pending buffer must survive the round trip."""
        baseline = result_to_dict(
            ordering_sampling(
                graph, 30, rng=9, antithetic=True, block_size=7
            )
        )
        path = tmp_path / "os.json"
        with pytest.raises(InjectedCrash):
            ordering_sampling(
                graph, 30, rng=9, antithetic=True, block_size=7,
                runtime=_crash_policy(path, 3),
            )
        resumed = ordering_sampling(
            graph, 30, rng=9, antithetic=True, block_size=7,
            runtime=_resume_policy(path),
        )
        assert result_to_dict(resumed) == baseline

    def test_ols_blocked_resume(self, graph, tmp_path):
        baseline = result_to_dict(
            ordering_listing_sampling(
                graph, 60, n_prepare=20, estimator="optimized", rng=11,
                block_size=16,
            )
        )
        path = tmp_path / "ols.json"
        with pytest.raises(InjectedCrash):
            ordering_listing_sampling(
                graph, 60, n_prepare=20, estimator="optimized", rng=11,
                block_size=16, runtime=_crash_policy(path, 3),
            )
        document = read_checkpoint(path)
        assert document["unit"] == "block"
        assert document["state"]["block_size"] == 16
        resumed = ordering_listing_sampling(
            graph, 60, n_prepare=20, estimator="optimized", rng=11,
            block_size=16, runtime=_resume_policy(path),
        )
        payload = result_to_dict(resumed)
        assert payload["stats"].pop("resumed_candidates") == 1.0
        assert payload == baseline

    def test_block_size_mismatch_rejected(self, graph, tmp_path):
        path = tmp_path / "ols.json"
        with pytest.raises(InjectedCrash):
            ordering_listing_sampling(
                graph, 60, n_prepare=20, estimator="optimized", rng=11,
                block_size=16, runtime=_crash_policy(path, 3),
            )
        # 15 gives the same number of blocks as 16 over 60 trials, so
        # the engine's target check passes and the payload guard fires.
        with pytest.raises(CheckpointError, match="block"):
            ordering_listing_sampling(
                graph, 60, n_prepare=20, estimator="optimized", rng=11,
                block_size=15, runtime=_resume_policy(path),
            )


@settings(max_examples=10, deadline=None)
@given(
    block_size=st.sampled_from((1, 3, 7, 8, 16)),
    crash_at=st.integers(2, 6),
    seed=st.integers(0, 10_000),
)
def test_property_crash_resume_bit_identical(block_size, crash_at, seed):
    """Crash-resume equivalence as a property over batched kernels.

    For any block size, any injected crash point, and any seed: an OS
    run killed mid-run by a :class:`FaultPlan` fault and resumed from
    its checkpoint is bit-identical to the uninterrupted run.
    """
    graph = build_graph(FIGURE_1_EDGES, name="figure-1")
    baseline = result_to_dict(
        ordering_sampling(graph, 24, rng=seed, block_size=block_size)
    )
    # The engine counts blocked runs in block units: clamp the crash
    # point into the run so the injected fault always fires.
    n_blocks = len(block_lengths(24, block_size))
    crash_unit = min(crash_at, n_blocks)
    with tempfile.TemporaryDirectory() as tmp:
        path = str(Path(tmp) / "snap.json")
        with pytest.raises(InjectedCrash):
            ordering_sampling(
                graph, 24, rng=seed, block_size=block_size,
                runtime=_crash_policy(path, crash_unit),
            )
        resumed = ordering_sampling(
            graph, 24, rng=seed, block_size=block_size,
            runtime=_resume_policy(path),
        )
    assert result_to_dict(resumed) == baseline


class TestCandidateBlockKernel:
    """The incidence-matrix kernel reproduces the weight-ordered
    "first surviving weight class wins" scan."""

    @pytest.fixture
    def candidates(self, graph):
        return prepare_candidates(graph, 200, rng=0)

    def test_presence_matches_per_candidate_all(self, graph, candidates):
        kernel = CandidateBlockKernel(candidates)
        masks = WorldSampler(graph, 4).sample_mask_block(16)
        presence = kernel.presence(masks)
        items = list(candidates)
        for t in range(masks.shape[0]):
            for c, butterfly in enumerate(items):
                expected = all(masks[t, e] for e in butterfly.edges)
                assert presence[t, c] == expected

    def test_winners_are_heaviest_surviving_class(self, graph, candidates):
        kernel = CandidateBlockKernel(candidates)
        masks = WorldSampler(graph, 4).sample_mask_block(32)
        winners = kernel.winners(masks)
        items = list(candidates)
        for t in range(masks.shape[0]):
            present = [
                c for c, b in enumerate(items)
                if all(masks[t, e] for e in b.edges)
            ]
            if not present:
                assert not winners[t].any()
                continue
            best = max(items[c].weight for c in present)
            expected = {c for c in present if items[c].weight == best}
            assert set(np.flatnonzero(winners[t])) == expected

    def test_union_edges_counted_once(self, graph, candidates):
        kernel = CandidateBlockKernel(candidates)
        union = {e for b in candidates for e in b.edges}
        assert kernel.n_union_edges == len(union)


class TestWorkerBlockSharding:
    def test_shares_are_whole_blocks(self):
        shares = split_trials(100, 3, block_size=16)
        assert sum(shares) == 100
        # 6 full blocks + 1 remainder block = 7 units over 3 workers.
        assert shares == [48, 32, 20]
        for share in shares[:-1]:
            assert share % 16 == 0

    def test_exact_multiple_has_no_remainder(self):
        shares = split_trials(64, 4, block_size=16)
        assert shares == [16, 16, 16, 16]

    def test_more_workers_than_blocks(self):
        shares = split_trials(10, 4, block_size=8)
        assert sum(shares) == 10
        assert shares.count(0) == 2

    def test_invalid_block_size(self):
        with pytest.raises(ConfigurationError):
            split_trials(100, 3, block_size=0)

    def test_pool_runs_batched_method(self, graph):
        result = run_parallel_trials(
            graph, 60, 2, method="os", rng=5, block_size=16
        )
        assert result.n_trials == 60
        assert not result.degraded
        for probability in result.estimates.values():
            assert 0.0 <= probability <= 1.0


class TestHitRateRegression:
    """Satellite: both lazy-cache counters are read defensively — an
    outcome carrying ``edges_queried`` but not ``edges_sampled`` (as
    resumed/degraded Karp-Luby outcomes can) must not KeyError."""

    def test_partial_counters_do_not_raise(self, graph, monkeypatch):
        outcome = EstimationOutcome(
            method="karp-luby",
            estimates={},
            stats={"total_trials": 10.0, "edges_queried": 8.0},
        )
        monkeypatch.setattr(
            "repro.core.ols.estimate_probabilities_karp_luby",
            lambda *args, **kwargs: outcome,
        )
        observer = Observer()
        result = ordering_listing_sampling(
            graph, 10, n_prepare=20, estimator="karp-luby", rng=11,
            observer=observer,
        )
        assert result.method == "ols-kl"
        gauges = observer.export_document()["gauges"]
        # sampled defaults to 0.0 -> hit rate 1.0, not a crash.
        assert gauges["ols-kl.lazy_cache.hit_rate"] == 1.0

    def test_no_counters_skip_the_gauge(self, graph, monkeypatch):
        outcome = EstimationOutcome(
            method="karp-luby", estimates={}, stats={"total_trials": 10.0}
        )
        monkeypatch.setattr(
            "repro.core.ols.estimate_probabilities_karp_luby",
            lambda *args, **kwargs: outcome,
        )
        observer = Observer()
        ordering_listing_sampling(
            graph, 10, n_prepare=20, estimator="karp-luby", rng=11,
            observer=observer,
        )
        gauges = observer.export_document()["gauges"]
        assert "ols-kl.lazy_cache.hit_rate" not in gauges


class TestWeightTolerance:
    """Satellite: mathematically equal angle weights that differ by
    float-addition noise must land in the same ``A1``/``A2`` class."""

    def test_weights_equal_within_rtol(self):
        noisy = (0.1 + 0.2) + 0.3  # 0.6000000000000001
        clean = 0.1 + (0.2 + 0.3)  # 0.6
        assert noisy != clean
        assert weights_equal(noisy, clean)
        assert not weights_equal(1.0, 1.0 + 1e-6)
        assert weights_equal(0.0, 0.0)

    def test_noisy_equal_weights_share_a1(self):
        index = TopTwoAngleIndex()
        noisy = (0.1 + 0.2) + 0.3
        clean = 0.1 + (0.2 + 0.3)
        index.add((0, 1), noisy, (2, 0, 1))
        best = index.add((0, 1), clean, (3, 2, 3))
        # Both angles join A1, so the pair forms a 2*w1 butterfly.
        assert best == pytest.approx(2.0 * noisy)
        entry = dict(index.iter_pairs())[(0, 1)]
        assert len(entry[1]) == 2
        assert entry[3] == []

    def test_noisy_equal_weights_share_a2(self):
        index = TopTwoAngleIndex()
        index.add((0, 1), 1.0, (2, 0, 1))
        index.add((0, 1), (0.1 + 0.2) + 0.3, (3, 2, 3))
        best = index.add((0, 1), 0.1 + (0.2 + 0.3), (4, 4, 5))
        entry = dict(index.iter_pairs())[(0, 1)]
        assert len(entry[1]) == 1
        assert len(entry[3]) == 2
        assert best == pytest.approx(1.6, rel=WEIGHT_RTOL * 10)

    def test_strictly_larger_weight_still_promotes(self):
        index = TopTwoAngleIndex()
        index.add((0, 1), 1.0, (2, 0, 1))
        index.add((0, 1), 2.0, (3, 2, 3))
        entry = dict(index.iter_pairs())[(0, 1)]
        assert entry[0] == 2.0
        assert entry[2] == 1.0


class TestAdaptivePrepareParity:
    """Satellite: adaptive preparing matches ``prepare_candidates``'s
    instrumentation and seeding contract."""

    def test_observer_instrumentation(self, graph):
        observer = Observer()
        candidates, trials = adaptive_prepare_candidates(
            graph, patience=20, max_trials=200, rng=0, observer=observer
        )
        document = observer.export_document()
        assert document["counters"]["prepare.trials"] == float(trials)
        assert document["gauges"]["candidates.listed"] == float(
            len(candidates)
        )
        assert any(
            span["name"] == "candidate-generation"
            for span in document["spans"]
        )

    def test_seed_backbone_top(self, graph):
        seeded = {
            b.key for b in top_weight_butterflies(graph, 2)
        }
        candidates, _trials = adaptive_prepare_candidates(
            graph, patience=1, max_trials=1, rng=0, seed_backbone_top=2
        )
        assert seeded <= {b.key for b in candidates}

    def test_seed_validation(self, graph):
        with pytest.raises(ConfigurationError):
            adaptive_prepare_candidates(graph, seed_backbone_top=-1)


class TestWedgeKernelProperty:
    """Satellite: property-based bit-identity of the vectorised wedge
    kernel against the scalar per-world search — random graphs, random
    block sizes, antithetic streams, and resume at random block
    boundaries."""

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        block_size=st.integers(1, 12),
        antithetic=st.booleans(),
        crash_block=st.integers(1, 6),
    )
    def test_mc_vp_bit_identical_with_resume(
        self, seed, block_size, antithetic, crash_block
    ):
        graph = random_bipartite(6, 7, 18, rng=seed)
        scalar = result_to_dict(
            mc_vp(graph, 24, rng=seed, antithetic=antithetic)
        )
        blocked = result_to_dict(
            mc_vp(
                graph, 24, rng=seed, antithetic=antithetic,
                block_size=block_size,
            )
        )
        assert blocked == scalar
        # Crash before a random block boundary, resume, and the stitched
        # run must still equal the scalar baseline bit for bit.
        n_blocks = -(-24 // block_size)
        crash_at = min(crash_block, n_blocks - 1)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "mc.json"
            with pytest.raises(InjectedCrash):
                mc_vp(
                    graph, 24, rng=seed, antithetic=antithetic,
                    block_size=block_size,
                    runtime=_crash_policy(path, crash_at),
                )
            resumed = result_to_dict(
                mc_vp(
                    graph, 24, rng=seed, antithetic=antithetic,
                    block_size=block_size,
                    runtime=_resume_policy(path),
                )
            )
        assert resumed == scalar

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        block_size=st.integers(1, 12),
        antithetic=st.booleans(),
    )
    def test_os_winners_bit_identical(self, seed, block_size, antithetic):
        """OS shares the kernel with ``tie_mode="rtol"``; everything but
        the (documented) stats carve-out matches the scalar search."""
        graph = random_bipartite(7, 6, 18, rng=seed + 1)
        scalar = result_to_dict(
            ordering_sampling(graph, 24, rng=seed, antithetic=antithetic)
        )
        blocked = result_to_dict(
            ordering_sampling(
                graph, 24, rng=seed, antithetic=antithetic,
                block_size=block_size,
            )
        )
        del scalar["stats"], blocked["stats"]
        assert blocked == scalar
