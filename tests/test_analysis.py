"""The repro.analysis invariant linter: per-rule fixtures (violation,
clean, noqa-suppressed, baselined), reporter schemas, the CLI contract,
and the acceptance gate that the real repository analyzes clean."""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    RULES,
    AnalysisConfig,
    run_analysis,
    write_baseline,
)
from repro.analysis.__main__ import main
from repro.analysis.reporters import (
    REPORT_FORMAT,
    REPORT_KIND,
    render_json,
    render_text,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def analyze(root, rel_path, code, rule=None, baseline=None):
    """Write ``code`` at ``root/rel_path`` and run the analyzer on it."""
    path = root / rel_path
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(code, encoding="utf-8")
    config = AnalysisConfig(
        root=root,
        paths=[Path(rel_path)],
        select=[rule] if rule else None,
        baseline_path=baseline,
        project_rules=False,
    )
    return run_analysis(config)


# One fixture triple per file rule: (rule id, path that puts the file in
# the rule's scope, violating code, clean code).  The violating snippet
# has exactly one finding, on the line marked ``# MARK``.
RULE_FIXTURES = {
    "RNG001": (
        "core/freshness.py",
        (
            "import numpy as np\n"
            "def draw():\n"
            "    return np.random.default_rng().normal()  # MARK\n"
        ),
        (
            "from repro.sampling.rng import ensure_rng\n"
            "def draw(rng=None):\n"
            "    return ensure_rng(rng).normal()\n"
        ),
    ),
    "CLK001": (
        "core/timing.py",
        (
            "import time\n"
            "def elapsed(start):\n"
            "    return time.time() - start  # MARK\n"
        ),
        (
            "def remaining(deadline):\n"
            "    return deadline.remaining()\n"
        ),
    ),
    "MPS001": (
        "runtime/dispatch.py",
        (
            "def run(pool, xs):\n"
            "    return pool.map(lambda x: x + 1, xs)  # MARK\n"
        ),
        (
            "def _work(x):\n"
            "    return x + 1\n"
            "def run(pool, xs):\n"
            "    return pool.map(_work, xs)\n"
        ),
    ),
    "MET001": (
        "core/recording.py",
        (
            "def record(observer):\n"
            "    observer.inc('bogus.unknown.series')  # MARK\n"
        ),
        (
            "def record(observer):\n"
            "    observer.inc('sampling.trials')\n"
            "    observer.set('candidates.listed', 3)\n"
        ),
    ),
    "EXC001": (
        "core/api.py",
        (
            "def compute(x):\n"
            "    if x < 0:\n"
            "        raise ValueError('x must be >= 0')  # MARK\n"
            "    return x\n"
        ),
        (
            "from ..errors import ConfigurationError\n"
            "def compute(x):\n"
            "    if x < 0:\n"
            "        raise ConfigurationError('x must be >= 0')\n"
            "    return x\n"
        ),
    ),
    "DOC001": (
        "core/bounds.py",
        (
            '"""Trial bounds, sadly uncited."""  # MARK\n'
            "def bound():\n"
            "    return 1\n"
        ),
        (
            '"""Trial bounds per Theorem IV.1 (Chernoff, Eq. 4)."""\n'
            "def bound():\n"
            "    return 1\n"
        ),
    ),
}


def _with_noqa(code, rule):
    lines = code.splitlines()
    marked = [i for i, line in enumerate(lines) if "# MARK" in line]
    assert len(marked) == 1
    lines[marked[0]] = lines[marked[0]].replace(
        "# MARK", f"# repro: noqa[{rule}]"
    )
    return "\n".join(lines) + "\n"


class TestRuleFixtures:
    @pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
    def test_violation_is_found(self, tmp_path, rule):
        rel, bad, _clean = RULE_FIXTURES[rule]
        result = analyze(tmp_path, rel, bad, rule=rule)
        assert [f.rule for f in result.findings] == [rule]
        assert result.findings[0].path == rel
        assert result.exit_code() == 1

    @pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
    def test_clean_code_passes(self, tmp_path, rule):
        rel, _bad, clean = RULE_FIXTURES[rule]
        result = analyze(tmp_path, rel, clean, rule=rule)
        assert result.findings == []
        assert result.exit_code() == 0

    @pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
    def test_noqa_suppresses(self, tmp_path, rule):
        rel, bad, _clean = RULE_FIXTURES[rule]
        result = analyze(tmp_path, rel, _with_noqa(bad, rule), rule=rule)
        assert result.findings == []
        assert result.suppressed == 1
        assert result.exit_code() == 0

    @pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
    def test_baseline_grandfathers(self, tmp_path, rule):
        rel, bad, _clean = RULE_FIXTURES[rule]
        first = analyze(tmp_path, rel, bad, rule=rule)
        baseline_path = tmp_path / "tools" / "lint-baseline.json"
        write_baseline(baseline_path, first.findings)
        second = analyze(
            tmp_path, rel, bad, rule=rule, baseline=baseline_path
        )
        assert second.findings == []
        assert [f.rule for f in second.grandfathered] == [rule]
        assert second.exit_code() == 0

    def test_blanket_noqa_suppresses_all_rules(self, tmp_path):
        rel, bad, _clean = RULE_FIXTURES["RNG001"]
        code = bad.replace("# MARK", "# repro: noqa")
        result = analyze(tmp_path, rel, code, rule="RNG001")
        assert result.findings == []
        assert result.suppressed == 1


class TestRuleSemantics:
    def test_rng_substrate_file_is_exempt(self, tmp_path):
        _rel, bad, _clean = RULE_FIXTURES["RNG001"]
        result = analyze(tmp_path, "sampling/rng.py", bad, rule="RNG001")
        assert result.findings == []

    def test_rng_stdlib_random_is_flagged(self, tmp_path):
        code = (
            "import random\n"
            "def pick(xs):\n"
            "    return random.choice(xs)\n"
        )
        result = analyze(tmp_path, "core/pick.py", code, rule="RNG001")
        assert [f.rule for f in result.findings] == ["RNG001"]

    def test_clock_rule_only_fires_in_scope(self, tmp_path):
        _rel, bad, _clean = RULE_FIXTURES["CLK001"]
        result = analyze(
            tmp_path, "experiments/timing.py", bad, rule="CLK001"
        )
        assert result.findings == []

    def test_process_target_closure_is_flagged(self, tmp_path):
        code = (
            "def run(context, payload):\n"
            "    def work():\n"
            "        return payload\n"
            "    return context.Process(target=work)\n"
        )
        result = analyze(tmp_path, "runtime/p.py", code, rule="MPS001")
        assert len(result.findings) == 1
        assert "closure" in result.findings[0].message

    def test_metric_fstring_template_checked(self, tmp_path):
        good = (
            "def record(observer, method, seconds):\n"
            "    observer.set(f'harness.{method}.seconds', seconds)\n"
        )
        bad = (
            "def record(observer, method, rate):\n"
            "    observer.set(f'nonexistent.{method}.rate', rate)\n"
        )
        assert analyze(
            tmp_path, "core/h.py", good, rule="MET001"
        ).findings == []
        assert len(analyze(
            tmp_path, "core/h.py", bad, rule="MET001"
        ).findings) == 1

    def test_span_names_checked(self, tmp_path):
        good = (
            "def trace(tracer):\n"
            "    return tracer.span('sampling')\n"
        )
        bad = (
            "def trace(tracer):\n"
            "    return tracer.span('warp-drive')\n"
        )
        assert analyze(
            tmp_path, "core/t.py", good, rule="MET001"
        ).findings == []
        assert len(analyze(
            tmp_path, "core/t.py", bad, rule="MET001"
        ).findings) == 1

    def test_bare_except_flagged_everywhere(self, tmp_path):
        code = (
            "def safe(fn):\n"
            "    try:\n"
            "        return fn()\n"
            "    except:\n"
            "        return None\n"
        )
        result = analyze(
            tmp_path, "experiments/s.py", code, rule="EXC001"
        )
        assert len(result.findings) == 1
        assert "bare except" in result.findings[0].message

    def test_private_boundary_function_may_raise_builtin(self, tmp_path):
        code = (
            "def _validate(x):\n"
            "    raise ValueError('internal')\n"
        )
        result = analyze(tmp_path, "core/v.py", code, rule="EXC001")
        assert result.findings == []

    def test_allowed_protocol_builtin_passes(self, tmp_path):
        code = (
            "def lookup(table, key):\n"
            "    raise KeyError(key)\n"
        )
        result = analyze(tmp_path, "core/l.py", code, rule="EXC001")
        assert result.findings == []

    def test_doc_rule_ignores_non_estimator_modules(self, tmp_path):
        _rel, bad, _clean = RULE_FIXTURES["DOC001"]
        result = analyze(tmp_path, "core/helpers.py", bad, rule="DOC001")
        assert result.findings == []

    def test_missing_docstring_flagged(self, tmp_path):
        code = "def bound():\n    return 1\n"
        result = analyze(tmp_path, "core/bounds.py", code, rule="DOC001")
        assert len(result.findings) == 1
        assert "no module docstring" in result.findings[0].message

    def test_unparsable_file_reports_parse_finding(self, tmp_path):
        result = analyze(tmp_path, "core/broken.py", "def oops(:\n")
        assert [f.rule for f in result.findings] == ["PARSE001"]
        assert result.exit_code() == 1


class TestSharedMemorySeam:
    """MPS001's buffer arm: raw shared-memory buffers must not cross
    the worker seam — only picklable handles (names + shapes) may."""

    def test_buf_attribute_in_process_args_flagged(self, tmp_path):
        code = (
            "from multiprocessing import shared_memory\n"
            "def launch(context, target):\n"
            "    shm = shared_memory.SharedMemory(create=True, size=64)\n"
            "    return context.Process(target=target, args=(shm.buf,))\n"
        )
        result = analyze(tmp_path, "runtime/seg.py", code, rule="MPS001")
        assert len(result.findings) == 1
        message = result.findings[0].message
        assert "raw buffer" in message
        assert "handle" in message

    def test_buffer_bound_name_in_submit_flagged(self, tmp_path):
        code = (
            "def send(pool, work, data):\n"
            "    view = memoryview(data)\n"
            "    return pool.map(work, view)\n"
        )
        result = analyze(tmp_path, "runtime/send.py", code, rule="MPS001")
        assert len(result.findings) == 1
        assert "shared-memory buffer 'view'" in result.findings[0].message

    def test_direct_buffer_ctor_in_payload_flagged(self, tmp_path):
        code = (
            "def send(pool, work, data):\n"
            "    return pool.apply_async(work, memoryview(data))\n"
        )
        result = analyze(tmp_path, "runtime/raw.py", code, rule="MPS001")
        assert len(result.findings) == 1
        assert "memoryview()" in result.findings[0].message

    def test_handle_payload_is_clean(self, tmp_path):
        code = (
            "def attach_worker(worker_id, handle):\n"
            "    return worker_id\n"
            "def launch(context, handle):\n"
            "    return context.Process(\n"
            "        target=attach_worker, args=(0, handle)\n"
            "    )\n"
        )
        result = analyze(tmp_path, "runtime/ok.py", code, rule="MPS001")
        assert result.findings == []


class TestReporters:
    def _result(self, tmp_path):
        rel, bad, _clean = RULE_FIXTURES["RNG001"]
        return analyze(tmp_path, rel, bad, rule="RNG001")

    def test_json_schema_is_pinned(self, tmp_path):
        document = json.loads(render_json(self._result(tmp_path)))
        assert list(document) == [
            "format", "kind", "findings", "grandfathered", "counts",
            "suppressed", "files_analyzed", "files_parsed",
            "rules_run", "stale_baseline",
        ]
        assert document["format"] == REPORT_FORMAT
        assert document["kind"] == REPORT_KIND
        assert document["counts"] == {"RNG001": 1}
        (finding,) = document["findings"]
        assert list(finding) == [
            "rule", "severity", "path", "line", "message", "fingerprint",
        ]
        assert finding["rule"] == "RNG001"
        assert finding["fingerprint"].startswith("RNG001:")

    def test_text_report_lists_location_and_summary(self, tmp_path):
        text = render_text(self._result(tmp_path))
        assert "core/freshness.py:3: RNG001 [error]" in text
        assert "1 finding(s) (1 error(s)) in 1 file(s)" in text

    def test_fingerprint_survives_line_shift(self, tmp_path):
        rel, bad, _clean = RULE_FIXTURES["RNG001"]
        original = self._result(tmp_path).findings[0]
        shifted = analyze(
            tmp_path, rel, "# a leading comment\n" + bad, rule="RNG001"
        ).findings[0]
        assert shifted.line == original.line + 1
        assert shifted.fingerprint() == original.fingerprint()


class TestCli:
    def _write_bad(self, tmp_path):
        rel, bad, _clean = RULE_FIXTURES["RNG001"]
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(bad, encoding="utf-8")
        return rel

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        rel, _bad, clean = RULE_FIXTURES["RNG001"]
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(clean, encoding="utf-8")
        assert main(["--root", str(tmp_path), rel]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        rel = self._write_bad(tmp_path)
        assert main(["--root", str(tmp_path), rel]) == 1
        assert "RNG001" in capsys.readouterr().out

    def test_exit_two_on_unknown_rule(self, tmp_path, capsys):
        rel = self._write_bad(tmp_path)
        code = main(
            ["--root", str(tmp_path), "--select", "NOPE999", rel]
        )
        assert code == 2

    def test_json_format_flag(self, tmp_path, capsys):
        rel = self._write_bad(tmp_path)
        assert main(
            ["--root", str(tmp_path), "--format", "json", rel]
        ) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["kind"] == REPORT_KIND

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        rel = self._write_bad(tmp_path)
        assert main(
            ["--root", str(tmp_path), "--write-baseline", rel]
        ) == 0
        assert (tmp_path / "tools" / "lint-baseline.json").exists()
        # The default baseline location is picked up automatically.
        assert main(["--root", str(tmp_path), rel]) == 0
        assert "baselined" in capsys.readouterr().out

    def test_list_rules_names_every_rule(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULES:
            assert rule_id in out


class TestRepositoryIsClean:
    def test_registry_has_required_rules(self):
        assert {
            "RNG001", "CLK001", "MPS001", "MET001", "EXC001", "DOC001",
            "DOC002", "MET002",
            "SEED001", "PKL001", "EXC001X", "DEAD001",
        } <= set(RULES)

    def test_real_repo_analyzes_clean(self):
        result = run_analysis(AnalysisConfig(root=REPO_ROOT))
        messages = [
            f"{f.path}:{f.line}: {f.rule} {f.message}"
            for f in result.findings
        ]
        assert messages == []
        # The committed baseline stays empty: nothing grandfathered.
        assert result.grandfathered == []
        assert result.files_analyzed > 50

    def test_committed_baseline_is_empty(self):
        document = json.loads(
            (REPO_ROOT / "tools" / "lint-baseline.json").read_text()
        )
        assert document == {"format": 1, "findings": []}
