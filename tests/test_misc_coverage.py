"""Edge-case tests rounding out module coverage: report rendering
variants, use-case experiments, statistical cross-checks."""

import numpy as np
import pytest

from repro.counting import exact_count_distribution, sample_butterfly_counts
from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.report import format_bars, format_series


class TestReportVariants:
    def test_linear_scale_bars(self):
        text = format_bars(
            [1.0, 2.0, 4.0], reference=3.0, log_scale=False, width=20
        )
        assert "|" in text
        # The largest bar is full width.
        lines = [line for line in text.splitlines() if line.startswith(" ")]
        assert lines[-2].count("#") >= lines[0].count("#")

    def test_bars_without_reference(self):
        text = format_bars([0.5, 1.5])
        assert "reference" not in text

    def test_series_with_short_values(self):
        text = format_series("x", [1, 2, 3], [("s", [10])])
        # Missing trailing points render as blanks, not errors.
        assert "10" in text


class TestUseCaseExperiments:
    CONFIG = ExperimentConfig(
        profile="bench", seed=0, n_prepare=40, n_sampling=500,
        datasets=("abide",),
    )

    def test_fig2(self):
        outcome = run_experiment("fig2", self.CONFIG)
        flat = outcome.data["flat (Fig. 2a)"]
        rewarded = outcome.data["rewarded (Fig. 2b)"]
        assert flat["butterfly"] is not None
        assert rewarded["weight"] > flat["weight"]
        assert "Figure 2" in outcome.text

    def test_fig3(self):
        outcome = run_experiment("fig3", self.CONFIG)
        assert outcome.data["intensity_ratio"] > 1.0
        assert len(outcome.data["tc"].findings) > 0
        assert "Figure 3" in outcome.text


class TestStatisticalCrossChecks:
    def test_sampled_count_distribution_matches_exact(self, figure1):
        """The empirical count distribution tracks the exact PMF — a
        cross-module consistency check between worlds, butterflies and
        counting."""
        exact = exact_count_distribution(figure1)
        samples = sample_butterfly_counts(figure1, 20_000, rng=9)
        values, counts = np.unique(samples, return_counts=True)
        empirical = dict(zip(values.tolist(), (counts / 20_000).tolist()))
        for count, probability in exact.items():
            assert empirical.get(count, 0.0) == pytest.approx(
                probability, abs=0.015
            ), count

    def test_methods_unbiased_across_seeds(self, figure1):
        """Averaging OS estimates over many independent seeds converges
        to the exact value (unbiasedness of the Monte-Carlo estimate)."""
        from repro import exact_probability, make_butterfly, ordering_sampling

        target = make_butterfly(figure1, 0, 1, 1, 2)
        exact = exact_probability(figure1, target)
        estimates = [
            ordering_sampling(figure1, 400, rng=seed).probability(target.key)
            for seed in range(30)
        ]
        assert np.mean(estimates) == pytest.approx(exact, abs=0.01)

    def test_kl_and_optimized_same_target(self, figure1):
        """Both OLS estimators target the same conditional quantity, so
        over the same complete candidate set their long-run estimates
        coincide (Lemma VI.4's premise)."""
        from repro import CandidateSet
        from repro.core import (
            backbone_butterflies,
            estimate_probabilities_karp_luby,
            estimate_probabilities_optimized,
        )

        candidates = CandidateSet(figure1, backbone_butterflies(figure1))
        optimised = estimate_probabilities_optimized(
            candidates, 40_000, rng=1
        )
        karp = estimate_probabilities_karp_luby(
            candidates, rng=2, n_trials=40_000
        )
        for key in optimised.estimates:
            assert optimised.estimates[key] == pytest.approx(
                karp.estimates[key], abs=0.01
            )


class TestSparkline:
    def test_shape(self):
        from repro.experiments import format_sparkline

        line = format_sparkline([0.0, 0.5, 1.0])
        assert len(line) == 3
        assert line[0] < line[-1]  # block characters ascend in codepoint

    def test_flat_series(self):
        from repro.experiments import format_sparkline

        assert format_sparkline([2.0, 2.0]) == "▄▄"

    def test_empty(self):
        from repro.experiments import format_sparkline

        assert format_sparkline([]) == ""

    def test_explicit_scale(self):
        from repro.experiments import format_sparkline

        clipped = format_sparkline([5.0], low=0.0, high=1.0)
        assert clipped == "█"


class TestLemmaVi5Experiment:
    def test_bound_holds(self):
        from repro.experiments import ExperimentConfig, run_experiment

        outcome = run_experiment(
            "lemma-vi5", ExperimentConfig(n_sampling=8_000)
        )
        assert outcome.data
        for seed, payload in outcome.data.items():
            assert payload["worst_error"] <= (
                payload["worst_bound"] + 0.02
            ), seed


class TestMcVpPriorityKinds:
    def test_both_orders_estimate_correctly(self, figure1):
        from repro.core import mc_vp

        default = mc_vp(figure1, 3_000, rng=4, priority_kind="degree")
        expected = mc_vp(
            figure1, 3_000, rng=4, priority_kind="expected-degree"
        )
        # Identical worlds (same RNG consumption), identical S_MB —
        # priority only changes the enumeration order, never the result.
        assert default.estimates == expected.estimates

    def test_unknown_kind(self, figure1):
        from repro.core import mc_vp

        with pytest.raises(ValueError, match="priority_kind"):
            mc_vp(figure1, 10, priority_kind="alphabetical")


class TestMarkdownContextCoverage:
    def test_every_registered_experiment_has_context(self):
        """The Markdown report's per-experiment blurbs stay in sync with
        the registry (a forgotten entry renders without context)."""
        from repro.experiments import EXPERIMENTS
        from repro.experiments.markdown import _CONTEXT

        missing = set(EXPERIMENTS) - set(_CONTEXT)
        # lemma-vi5 was added after the context table; it may carry no
        # blurb, but nothing else should be missing.
        assert missing <= {"lemma-vi5"}


class TestDocstringExamples:
    def test_graph_builder_doctest(self):
        import doctest

        import repro.graph.builder as module

        results = doctest.testmod(module)
        assert results.attempted > 0
        assert results.failed == 0
