"""Tests for the dataset generators and registry."""

import numpy as np
import pytest

from repro import DatasetError
from repro.datasets import (
    DATASET_NAMES,
    PAPER_SHAPES,
    abide_groups,
    abide_like,
    dataset_info,
    dataset_names,
    jester_like,
    load_dataset,
    movielens_like,
    protein_like,
    random_bipartite,
    rating_network,
    uniform_probs,
    uniform_weights,
    zipf_bipartite,
)


class TestRandomBipartite:
    def test_shape(self):
        graph = random_bipartite(10, 20, 50, rng=0)
        assert graph.n_left == 10
        assert graph.n_right == 20
        assert graph.n_edges == 50

    def test_no_duplicate_edges(self):
        graph = random_bipartite(5, 5, 20, rng=1)
        pairs = {
            (spec.left, spec.right) for spec in graph.iter_edge_specs()
        }
        assert len(pairs) == 20

    def test_deterministic(self):
        assert random_bipartite(8, 8, 30, rng=5) == random_bipartite(
            8, 8, 30, rng=5
        )

    def test_capacity_validation(self):
        with pytest.raises(DatasetError):
            random_bipartite(2, 2, 5, rng=0)
        with pytest.raises(DatasetError):
            random_bipartite(0, 2, 1, rng=0)

    def test_distribution_helpers_validate(self):
        with pytest.raises(DatasetError):
            uniform_weights(2.0, 1.0)
        with pytest.raises(DatasetError):
            uniform_probs(-0.1, 0.5)

    def test_custom_distributions(self):
        graph = random_bipartite(
            5, 5, 10, rng=0,
            weight_fn=uniform_weights(1.0, 2.0),
            prob_fn=uniform_probs(0.4, 0.6),
        )
        assert ((graph.weights >= 1.0) & (graph.weights <= 2.0)).all()
        assert ((graph.probs >= 0.4) & (graph.probs <= 0.6)).all()


class TestZipf:
    def test_long_tail_popularity(self):
        graph = zipf_bipartite(50, 200, 2_000, rng=0, exponent=1.2)
        degrees = np.sort(graph.degrees_right())[::-1]
        # Head items much more popular than the median item.
        assert degrees[0] >= 5 * max(1, degrees[len(degrees) // 2])

    def test_validation(self):
        with pytest.raises(DatasetError):
            zipf_bipartite(5, 5, 10, rng=0, exponent=0.0)
        with pytest.raises(DatasetError):
            zipf_bipartite(2, 2, 100, rng=0)


class TestRatingNetwork:
    def test_weights_on_grid(self):
        graph = rating_network(20, 50, 200, rng=0, rating_step=0.5,
                               rating_max=5.0)
        scaled = graph.weights / 0.5
        assert np.allclose(scaled, np.round(scaled))
        assert graph.weights.min() >= 0.5
        assert graph.weights.max() <= 5.0

    def test_probabilities_from_conformity(self):
        graph = rating_network(20, 50, 200, rng=0)
        assert ((graph.probs >= 0.05) & (graph.probs <= 0.9)).all()

    def test_capacity_clamp(self):
        # Asking for more ratings than the grid holds silently caps at
        # half density rather than erroring.
        graph = rating_network(4, 4, 100, rng=0)
        assert graph.n_edges == 8

    def test_validation(self):
        with pytest.raises(DatasetError):
            rating_network(5, 5, 10, rating_step=0.0)
        with pytest.raises(DatasetError):
            rating_network(1, 1, 10, rng=0)  # capacity // 2 == 0

    def test_movielens_jester_wrappers(self):
        ml = movielens_like(scale=0.02, rng=0)
        assert ml.name == "movielens@0.02"
        assert ml.n_left == max(10, round(610 * 0.02))
        js = jester_like(scale=0.01, rng=0)
        assert js.n_left == 20  # minimum floor for the tiny joke side

    def test_scale_validation(self):
        with pytest.raises(DatasetError):
            movielens_like(scale=0.0)


class TestAbide:
    def test_complete_bipartite(self):
        graph = abide_like(10, rng=0)
        assert graph.n_edges == 100
        assert graph.n_left == graph.n_right == 10

    def test_long_range_penalty_suppresses_probability(self):
        gentle = abide_like(12, rng=0, long_range_penalty=0.1)
        harsh = abide_like(12, rng=0, long_range_penalty=0.6)
        assert harsh.probs.mean() < gentle.probs.mean()

    def test_groups(self):
        tc, asd = abide_groups(10, rng=0)
        assert tc.name == "abide-tc"
        assert asd.name == "abide-asd"
        assert tc.probs.mean() > asd.probs.mean()

    def test_validation(self):
        with pytest.raises(DatasetError):
            abide_like(0)
        with pytest.raises(DatasetError):
            abide_like(5, long_range_penalty=-1.0)


class TestProtein:
    def test_paper_preprocessing(self):
        graph = protein_like(scale=0.001, rng=0)
        assert ((graph.probs >= 0.01) & (graph.probs <= 0.99)).all()
        # Clipped Normal(0.5, 0.2): mean near 0.5.
        assert graph.probs.mean() == pytest.approx(0.5, abs=0.05)

    def test_validation(self):
        with pytest.raises(DatasetError):
            protein_like(scale=-1.0)


class TestRegistry:
    def test_names(self):
        assert dataset_names() == list(DATASET_NAMES)
        assert set(PAPER_SHAPES) == set(DATASET_NAMES)

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_bench_profiles_load(self, name):
        graph = load_dataset(name, "bench", rng=0)
        assert graph.n_edges > 0
        assert name in graph.name

    def test_deterministic(self):
        assert load_dataset("abide", "bench", rng=0) == load_dataset(
            "abide", "bench", rng=0
        )

    def test_info(self):
        info = dataset_info("protein", "bench")
        assert info.name == "protein"
        assert "protein" in info.description.lower()

    def test_unknown_rejected(self):
        with pytest.raises(DatasetError, match="unknown dataset"):
            load_dataset("imdb")
        with pytest.raises(DatasetError):
            dataset_info("abide", "huge")
