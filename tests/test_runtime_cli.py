"""CLI validation, SIGINT handling, and runtime flags end to end."""

from __future__ import annotations

import json

import pytest

import repro.__main__ as cli
from repro.graph import save_graph

from .conftest import FIGURE_1_EDGES, build_graph


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "figure1.tsv"
    save_graph(build_graph(FIGURE_1_EDGES, name="figure-1"), path)
    return str(path)


def _exit_code(argv):
    with pytest.raises(SystemExit) as excinfo:
        cli.main(argv)
    return excinfo.value.code


class TestValidation:
    """Bad options exit 2 with a clear argparse error, before any I/O."""

    @pytest.mark.parametrize("argv", [
        ["search", "--trials", "0"],
        ["search", "--trials", "-5"],
        ["search", "--prepare", "-5"],
        ["search", "--prepare", "0"],
        ["search", "--top", "0"],
        ["search", "--timeout", "0"],
        ["search", "--timeout", "-1.5"],
        ["search", "--checkpoint-every", "0"],
        ["search", "--workers", "0"],
        ["search", "--workers", "2", "--method", "ols-kl"],
        ["search", "--workers", "2", "--checkpoint", "x.json"],
        ["search", "--workers", "2", "--resume", "x.json"],
        ["search", "--method", "exact-dp", "--timeout", "5"],
        ["search", "--method", "exact-dp", "--checkpoint", "x.json"],
    ])
    def test_rejected_with_exit_2(self, argv, capsys):
        # No graph source given: validation must fire before loading.
        assert _exit_code(argv) == 2
        assert "error:" in capsys.readouterr().err

    def test_trials_zero_allowed_for_karp_luby(self, graph_file, capsys):
        code = cli.main([
            "search", graph_file, "--method", "ols-kl",
            "--trials", "0", "--seed", "7", "--prepare", "20",
        ])
        assert code == 0
        assert "Top-1 MPMB" in capsys.readouterr().out

    def test_message_names_the_bad_value(self, capsys):
        _exit_code(["search", "--top", "0"])
        assert "--top must be at least 1 (got 0)" in capsys.readouterr().err

    def test_bad_resume_file_is_an_error_not_a_traceback(
        self, graph_file, tmp_path, capsys
    ):
        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text("{not json")
        code = cli.main([
            "search", graph_file, "--method", "os", "--trials", "10",
            "--resume", str(corrupt),
        ])
        captured = capsys.readouterr()
        assert code == 2
        assert "error: failed to read checkpoint" in captured.err
        assert "Traceback" not in captured.err

    def test_mismatched_resume_names_the_mismatch(
        self, graph_file, tmp_path, capsys
    ):
        checkpoint = tmp_path / "os.ckpt.json"
        assert cli.main([
            "search", graph_file, "--method", "os", "--trials", "100",
            "--seed", "3", "--checkpoint", str(checkpoint),
        ]) == 0
        capsys.readouterr()
        code = cli.main([
            "search", graph_file, "--method", "mc-vp", "--trials", "100",
            "--resume", str(checkpoint),
        ])
        captured = capsys.readouterr()
        assert code == 2
        assert "method mismatch" in captured.err


class TestInterrupt:
    def test_sigint_outside_loop_exits_130_without_traceback(
        self, graph_file, capsys, monkeypatch
    ):
        def boom(*args, **kwargs):
            raise KeyboardInterrupt
        monkeypatch.setattr(cli, "find_mpmb", boom)
        code = cli.main(["search", graph_file, "--seed", "3"])
        captured = capsys.readouterr()
        assert code == 130
        assert "interrupted before a partial result" in captured.err
        assert "Traceback" not in captured.err

    def test_sigint_mid_loop_reports_partial_degraded_result(
        self, graph_file, capsys, monkeypatch
    ):
        """Ctrl-C inside the trial loop yields a ranked partial result."""
        from repro.runtime import RuntimePolicy

        calls = {"n": 0}

        def interrupting_clock():
            calls["n"] += 1
            if calls["n"] >= 25:
                raise KeyboardInterrupt
            return 0.0

        # With a timeout set, the engine consults the deadline clock
        # before every trial; raising from it lands the interrupt
        # mid-sampling without touching real signals.
        monkeypatch.setattr(
            cli, "_search_policy",
            lambda args: RuntimePolicy(
                timeout_seconds=3600.0, clock=interrupting_clock
            ),
        )
        code = cli.main([
            "search", graph_file, "--method", "os",
            "--trials", "500", "--seed", "3",
        ])
        captured = capsys.readouterr()
        assert code == 130
        assert "DEGRADED result: the run was interrupted" in captured.out
        assert "Re-widened guarantee" in captured.out
        assert "Top-1 MPMB" in captured.out


class TestSigterm:
    """SIGTERM gets the same graceful degradation as SIGINT (exit 143)."""

    def test_sigterm_mid_loop_reports_partial_and_exits_143(
        self, graph_file, capsys, monkeypatch
    ):
        """The SIGTERM handler rides the KeyboardInterrupt path, so a
        terminated run still prints the partial ranking and re-widened
        guarantee — only the exit code differs (143 = 128+SIGTERM)."""
        from repro.runtime import RuntimePolicy

        calls = {"n": 0}

        def terminating_clock():
            calls["n"] += 1
            if calls["n"] >= 25:
                # What the real signal handler does, minus the signal.
                cli._handle_sigterm(None, None)
            return 0.0

        monkeypatch.setattr(
            cli, "_search_policy",
            lambda args: RuntimePolicy(
                timeout_seconds=3600.0, clock=terminating_clock
            ),
        )
        code = cli.main([
            "search", graph_file, "--method", "os",
            "--trials", "500", "--seed", "3",
        ])
        captured = capsys.readouterr()
        assert code == 143
        assert "DEGRADED result: the run was interrupted" in captured.out
        assert "Re-widened guarantee" in captured.out
        assert "Top-1 MPMB" in captured.out

    def test_sigterm_outside_loop_exits_143(
        self, graph_file, capsys, monkeypatch
    ):
        def boom(*args, **kwargs):
            cli._handle_sigterm(None, None)
        monkeypatch.setattr(cli, "find_mpmb", boom)
        code = cli.main(["search", graph_file, "--seed", "3"])
        captured = capsys.readouterr()
        assert code == 143
        assert "Traceback" not in captured.err

    def test_plain_sigint_still_exits_130(
        self, graph_file, capsys, monkeypatch
    ):
        """A fresh main() resets the SIGTERM flag: Ctrl-C stays 130."""
        def boom(*args, **kwargs):
            raise KeyboardInterrupt
        monkeypatch.setattr(cli, "find_mpmb", boom)
        assert cli.main(["search", graph_file, "--seed", "3"]) == 130
        capsys.readouterr()


class TestServeValidation:
    """The serve subcommand rejects bad knobs upfront (exit 2)."""

    @pytest.mark.parametrize("argv", [
        ["serve", "--port", "-1"],
        ["serve", "--rate", "0"],
        ["serve", "--burst", "0.5"],
        ["serve", "--max-inflight", "0"],
        ["serve", "--cache-size", "-1"],
        ["serve", "--backbone-k", "0"],
        ["serve", "--breaker-threshold", "0"],
        ["serve", "--breaker-cooldown", "0"],
        ["serve", "--datasets", "nope"],
    ])
    def test_invalid_serve_flags_exit_2(self, argv, capsys):
        assert _exit_code(argv) == 2
        capsys.readouterr()


class TestRuntimeFlags:
    def test_timeout_expiry_prints_degraded_notice(
        self, graph_file, capsys
    ):
        code = cli.main([
            "search", graph_file, "--method", "os",
            "--trials", "500", "--seed", "3", "--timeout", "1e-9",
        ])
        captured = capsys.readouterr()
        assert "DEGRADED result: the wall-clock budget expired" in (
            captured.out
        )
        assert "Re-widened guarantee" in captured.out
        # Zero achieved trials: nothing observed, non-zero exit.
        assert code == 1

    def test_checkpoint_then_resume_round_trip(
        self, graph_file, tmp_path, capsys
    ):
        checkpoint = tmp_path / "search.ckpt.json"
        code = cli.main([
            "search", graph_file, "--method", "os",
            "--trials", "40", "--seed", "3",
            "--checkpoint", str(checkpoint), "--checkpoint-every", "10",
        ])
        first = capsys.readouterr().out
        assert code == 0
        document = json.loads(checkpoint.read_text())
        assert document["kind"] == "repro-runtime-checkpoint"
        assert document["completed"] == 40

        code = cli.main([
            "search", graph_file, "--method", "os",
            "--trials", "40", "--seed", "99",
            "--resume", str(checkpoint),
        ])
        second = capsys.readouterr().out
        assert code == 0
        # A completed checkpoint replays to the same ranking even under
        # a different seed: the loop state supersedes the fresh RNG.
        assert first.splitlines()[-2:] == second.splitlines()[-2:]

    def test_workers_flag_pools_trials(self, graph_file, capsys):
        code = cli.main([
            "search", graph_file, "--method", "os",
            "--trials", "30", "--seed", "3", "--workers", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "30 trials" in out
