"""Tests for the exact MPMB solvers (and their mutual agreement)."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import (
    IntractableError,
    exact_mpmb_by_inclusion_exclusion,
    exact_mpmb_by_worlds,
    exact_probability,
    make_butterfly,
)

from .conftest import FIGURE_1_EXACT, build_graph, random_small_graph


class TestFigure1:
    def test_worlds_solver(self, figure1):
        result = exact_mpmb_by_worlds(figure1)
        assert result.method == "exact-worlds"
        assert result.estimates == pytest.approx(FIGURE_1_EXACT)
        assert result.best.key == (0, 1, 1, 2)
        assert result.best_probability == pytest.approx(0.11424)

    def test_inclusion_exclusion_solver(self, figure1):
        result = exact_mpmb_by_inclusion_exclusion(figure1)
        assert result.estimates == pytest.approx(FIGURE_1_EXACT)

    def test_prob_no_butterfly(self, figure1):
        result = exact_mpmb_by_worlds(figure1)
        total = sum(result.estimates.values())
        # Probabilities of "B is max" can overlap only through ties; here
        # the two weight-7 butterflies can win together, so the sum can
        # exceed 1 - P(none).  Check the world-accounting identity on the
        # non-tied part instead: P(none) + P(some butterfly exists) = 1.
        assert result.prob_no_butterfly == pytest.approx(0.78592)
        assert 0.0 <= result.prob_no_butterfly <= 1.0
        assert total >= 1.0 - result.prob_no_butterfly - 1e-9

    def test_single_probability(self, figure1):
        butterfly = make_butterfly(figure1, 0, 1, 1, 2)
        assert exact_probability(figure1, butterfly) == pytest.approx(
            0.11424
        )

    def test_unknown_butterfly_rejected(self, figure1, square):
        foreign = make_butterfly(square, 0, 1, 0, 1)
        # square's butterfly key (0,1,0,1) exists in figure1 too, so use
        # a key that does not: impossible here, so check KeyError via a
        # graph without that butterfly.
        graph = build_graph([
            ("a", "x", 1.0, 0.5),
            ("a", "y", 1.0, 0.5),
            ("b", "x", 1.0, 0.5),
        ])
        with pytest.raises(KeyError):
            exact_probability(graph, foreign)


class TestEdgeCases:
    def test_no_butterfly_graph(self, no_butterfly_graph):
        result = exact_mpmb_by_worlds(no_butterfly_graph)
        assert result.estimates == {}
        assert result.best is None
        assert result.prob_no_butterfly == 1.0

    def test_certain_single_butterfly(self, square):
        result = exact_mpmb_by_worlds(square)
        assert result.best_probability == 1.0
        assert result.prob_no_butterfly == 0.0

    def test_impossible_butterfly(self):
        graph = build_graph([
            ("a", "x", 1.0, 0.0),
            ("a", "y", 1.0, 1.0),
            ("b", "x", 1.0, 1.0),
            ("b", "y", 1.0, 1.0),
        ])
        result = exact_mpmb_by_worlds(graph)
        assert result.best_probability == 0.0
        ie = exact_mpmb_by_inclusion_exclusion(graph)
        assert ie.best_probability == 0.0

    def test_budget_guard(self):
        # 25 relevant edges exceed a tiny budget.
        graph = build_graph([
            (f"L{u}", f"R{v}", 1.0, 0.5)
            for u in range(5)
            for v in range(5)
        ])
        with pytest.raises(IntractableError):
            exact_mpmb_by_worlds(graph, max_worlds=1 << 10)

    def test_irrelevant_edges_marginalised(self, figure1):
        # Adding a pendant edge (can't join any butterfly) must not
        # change any probability.
        edges = [
            ("u1", "v1", 2.0, 0.5), ("u1", "v2", 2.0, 0.6),
            ("u1", "v3", 1.0, 0.8), ("u2", "v1", 3.0, 0.3),
            ("u2", "v2", 3.0, 0.4), ("u2", "v3", 1.0, 0.7),
            ("u3", "v9", 9.0, 0.5),
        ]
        graph = build_graph(edges)
        result = exact_mpmb_by_worlds(graph)
        assert result.estimates == pytest.approx(FIGURE_1_EXACT)


class TestTieSemantics:
    def test_tied_butterflies_win_together(self):
        # Two disjoint butterflies with equal weight: each wins whenever
        # it exists (Equation 3 keeps all maximum butterflies).
        graph = build_graph([
            ("a", "x", 1.0, 0.5), ("a", "y", 1.0, 0.5),
            ("b", "x", 1.0, 0.5), ("b", "y", 1.0, 0.5),
            ("c", "z", 1.0, 0.5), ("c", "w", 1.0, 0.5),
            ("d", "z", 1.0, 0.5), ("d", "w", 1.0, 0.5),
        ])
        result = exact_mpmb_by_worlds(graph)
        for probability in result.estimates.values():
            assert probability == pytest.approx(0.5**4)

    def test_strict_domination(self):
        # A heavier butterfly that always exists zeroes the lighter one.
        graph = build_graph([
            ("a", "x", 2.0, 1.0), ("a", "y", 2.0, 1.0),
            ("b", "x", 2.0, 1.0), ("b", "y", 2.0, 1.0),
            ("c", "z", 1.0, 1.0), ("c", "w", 1.0, 1.0),
            ("d", "z", 1.0, 1.0), ("d", "w", 1.0, 1.0),
        ])
        result = exact_mpmb_by_worlds(graph)
        heavy = result.probability((0, 1, 0, 1))
        light = result.probability((2, 3, 2, 3))
        assert heavy == 1.0
        assert light == 0.0


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_property_solvers_agree(seed):
    """World enumeration and inclusion-exclusion agree on random graphs."""
    graph = random_small_graph(np.random.default_rng(seed), 4, 4)
    by_worlds = exact_mpmb_by_worlds(graph)
    try:
        by_ie = exact_mpmb_by_inclusion_exclusion(graph)
    except IntractableError:
        # The inclusion-exclusion oracle is exponential in the number of
        # heavier blockers and honestly guarded (its documented
        # contract); dense draws can exceed the subset budget, and the
        # property only applies to tractable instances.
        assume(False)
    assert set(by_worlds.estimates) == set(by_ie.estimates)
    for key, value in by_worlds.estimates.items():
        assert by_ie.estimates[key] == pytest.approx(value, abs=1e-10)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_property_probability_bounded_by_existence(seed):
    """P(B) <= Pr[E(B)] always (being maximum requires existing)."""
    graph = random_small_graph(np.random.default_rng(seed), 4, 4)
    result = exact_mpmb_by_worlds(graph)
    for key, value in result.estimates.items():
        butterfly = result.butterflies[key]
        assert value <= butterfly.existence_probability(graph) + 1e-12
        assert value >= -1e-12
