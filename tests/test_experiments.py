"""Tests for the experiment harness: rendering, instrumentation, and the
fast (non-timing-heavy) experiments."""

import numpy as np
import pytest

from repro.experiments import (
    EXPERIMENTS,
    ExperimentConfig,
    ExperimentOutcome,
    experiment_names,
    format_bars,
    format_bytes,
    format_matrix,
    format_seconds,
    format_series,
    format_table,
    measure,
    peak_memory,
    run_experiment,
    run_method,
    timed,
)
from repro.experiments.__main__ import build_parser, main
from repro.experiments.figures_convergence import pick_tracked_butterfly

FAST_CONFIG = ExperimentConfig(
    profile="bench",
    seed=0,
    n_direct=40,
    n_mcvp=2,
    n_prepare=20,
    n_sampling=60,
    datasets=("abide",),
)


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"], [["a", 1], ["bb", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        assert len({len(line) for line in lines[1:]}) == 1

    def test_format_table_validates_row_width(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [["only-one"]])

    def test_format_series(self):
        text = format_series(
            "x", [1, 2], [("s1", [10, 20]), ("s2", [30, 40])]
        )
        assert "s1" in text and "40" in text

    def test_format_bars_with_reference(self):
        text = format_bars([0.5, 2.0, 0.01], reference=0.1, title="bars")
        assert "bars" in text
        assert "|" in text
        assert "reference" in text

    def test_format_bars_empty(self):
        assert "no positive values" in format_bars([0.0, 0.0])

    def test_format_matrix_nan_cells(self):
        text = format_matrix(
            np.array([[1.0, float("nan")]]), ["r"], ["c1", "c2"]
        )
        assert "-" in text

    def test_format_seconds(self):
        assert format_seconds(0.0000005).endswith("us")
        assert format_seconds(0.005).endswith("ms")
        assert format_seconds(2.5) == "2.50s"

    def test_format_bytes(self):
        assert format_bytes(512) == "512.0B"
        assert format_bytes(2048) == "2.0KiB"
        assert format_bytes(3 * 1024**2) == "3.0MiB"


class TestInstrument:
    def test_timed(self):
        value, seconds = timed(lambda: 42)
        assert value == 42
        assert seconds >= 0.0

    def test_peak_memory_counts_allocations(self):
        def allocate():
            return [0] * 200_000

        _value, peak = peak_memory(allocate)
        assert peak > 200_000 * 4  # at least the list payload

    def test_measure_with_and_without_memory(self):
        lean = measure(lambda: 1)
        assert lean.peak_bytes == 0
        fat = measure(lambda: [0] * 10_000, trace_memory=True)
        assert fat.peak_bytes > 0


class TestHarness:
    def test_run_method_all(self, figure1):
        for method in ("mc-vp", "os", "ols", "ols-kl"):
            measurement = run_method(figure1, method, FAST_CONFIG)
            assert measurement.value.method in (
                method, "ols", "ols-kl"
            )
            assert measurement.seconds >= 0

    def test_run_method_unknown(self, figure1):
        with pytest.raises(ValueError):
            run_method(figure1, "quantum", FAST_CONFIG)

    def test_config_load(self):
        graph = FAST_CONFIG.load("abide")
        assert graph.n_edges > 0


class TestExperimentRegistry:
    def test_names_match_design_doc(self):
        expected = {
            "table3", "table4", "fig2", "fig3", "fig6", "fig7", "fig8",
            "fig9", "fig10", "fig11", "fig12", "fig13", "ablation-prune",
            "lemma-vi5",
        }
        assert set(experiment_names()) == expected
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99", FAST_CONFIG)

    @pytest.mark.parametrize("name", ["table3", "table4", "fig6"])
    def test_instant_experiments(self, name):
        outcome = run_experiment(name, FAST_CONFIG)
        assert isinstance(outcome, ExperimentOutcome)
        assert outcome.name == name
        assert outcome.text

    def test_fig10_runs(self):
        outcome = run_experiment("fig10", FAST_CONFIG)
        assert "abide" in outcome.data
        payload = outcome.data["abide"]
        assert payload["reference"] > 0
        assert len(payload["ratios"]) >= 1

    def test_fig7_shape(self):
        outcome = run_experiment("fig7", FAST_CONFIG)
        times = outcome.data["abide"]
        assert set(times) == {"mc-vp", "os", "ols-kl", "ols"}
        assert all(value > 0 for value in times.values())
        # The headline claim, at any scale: OS beats MC-VP.
        assert times["mc-vp"] > times["os"]

    def test_fig13_runs(self):
        outcome = run_experiment("fig13", FAST_CONFIG)
        peaks = outcome.data["abide"]
        assert all(peak > 0 for peak in peaks.values())


class TestConvergenceHelpers:
    def test_pick_tracked_butterfly(self):
        graph = FAST_CONFIG.load("abide")
        key = pick_tracked_butterfly(graph, FAST_CONFIG)
        assert key is not None
        assert len(key) == 4

    def test_pick_on_empty_graph(self, no_butterfly_graph):
        assert pick_tracked_butterfly(
            no_butterfly_graph, FAST_CONFIG
        ) is None


class TestCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig7"])
        assert args.experiment == "fig7"
        assert args.profile == "bench"

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "table3" in out

    def test_unknown_experiment_exit_code(self, capsys):
        assert main(["fig99"]) == 2

    def test_run_small_experiment(self, capsys):
        code = main([
            "table4", "--datasets", "abide", "--direct", "10",
            "--sampling", "10", "--prepare", "5", "--mcvp", "1",
        ])
        assert code == 0
        assert "Table IV" in capsys.readouterr().out
