"""Tests for butterfly support and bitruss decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.butterfly import enumerate_butterflies
from repro.support import (
    bitruss_decomposition,
    butterfly_support_profile,
    edge_butterfly_support,
    expected_edge_support,
    vertex_butterfly_counts,
)

from .conftest import build_graph, random_small_graph


def complete_bipartite(m, n, prob=0.5):
    return build_graph([
        (f"L{u}", f"R{v}", 1.0, prob)
        for u in range(m)
        for v in range(n)
    ])


class TestEdgeSupport:
    def test_figure1(self, figure1):
        support = edge_butterfly_support(figure1)
        # K_{2,3}: each edge lies in exactly 2 of the 3 butterflies.
        assert support.tolist() == [2, 2, 2, 2, 2, 2]

    def test_no_butterfly(self, no_butterfly_graph):
        assert edge_butterfly_support(no_butterfly_graph).sum() == 0

    def test_total_is_four_per_butterfly(self, figure1):
        support = edge_butterfly_support(figure1)
        n_butterflies = sum(1 for _ in enumerate_butterflies(figure1))
        assert support.sum() == 4 * n_butterflies

    def test_expected_support_conditional(self):
        graph = build_graph([
            ("a", "x", 1.0, 0.5), ("a", "y", 1.0, 0.5),
            ("b", "x", 1.0, 0.5), ("b", "y", 1.0, 0.5),
        ])
        expected = expected_edge_support(graph)
        # One butterfly; conditioned on each edge: 0.5^3.
        assert expected == pytest.approx([0.125] * 4)

    def test_expected_support_zero_prob_edge(self):
        graph = build_graph([
            ("a", "x", 1.0, 0.0), ("a", "y", 1.0, 0.5),
            ("b", "x", 1.0, 0.5), ("b", "y", 1.0, 0.5),
        ])
        expected = expected_edge_support(graph)
        # The p=0 edge has conditional support 0 by definition; the
        # others see the butterfly killed by the p=0 edge.
        assert expected[0] == 0.0
        assert (expected[1:] == 0.0).all()

    def test_expected_equals_deterministic_at_p1(self, figure1):
        from repro.graph import backbone

        determined = backbone(figure1)
        assert expected_edge_support(determined) == pytest.approx(
            edge_butterfly_support(determined).astype(float)
        )

    def test_vertex_counts(self, figure1):
        counts = vertex_butterfly_counts(figure1)
        # Each of the 3 butterflies touches both left vertices.
        assert counts["left"].tolist() == [3, 3]
        # Each right vertex appears in 2 butterflies.
        assert counts["right"].tolist() == [2, 2, 2]


class TestSupportProfile:
    def test_matches_individual_functions(self, figure1):
        profile = butterfly_support_profile(figure1)
        assert profile.edge_support.tolist() == (
            edge_butterfly_support(figure1).tolist()
        )
        assert profile.expected_support == pytest.approx(
            expected_edge_support(figure1)
        )
        individual = vertex_butterfly_counts(figure1)
        assert profile.vertex_counts["left"].tolist() == (
            individual["left"].tolist()
        )
        assert profile.vertex_counts["right"].tolist() == (
            individual["right"].tolist()
        )

    def test_enumerates_exactly_once(self, figure1, monkeypatch):
        import repro.support.support as support_module

        calls = []
        real = support_module.enumerate_butterflies

        def counting(graph):
            calls.append(graph)
            return real(graph)

        monkeypatch.setattr(
            support_module, "enumerate_butterflies", counting
        )
        butterfly_support_profile(figure1)
        assert len(calls) == 1, (
            "profile must materialise the butterfly list once, "
            f"saw {len(calls)} enumerations"
        )
        # The separate calls pay one enumeration *each* — the cost the
        # profile exists to amortise.
        calls.clear()
        edge_butterfly_support(figure1)
        expected_edge_support(figure1)
        vertex_butterfly_counts(figure1)
        assert len(calls) == 3


class TestBitruss:
    def test_single_butterfly(self, square):
        result = bitruss_decomposition(square)
        assert result.edge_truss.tolist() == [1.0] * 4
        assert result.max_truss == 1.0

    def test_no_butterfly(self, no_butterfly_graph):
        result = bitruss_decomposition(no_butterfly_graph)
        assert result.max_truss == 0.0
        assert len(result.k_bitruss_edges(1)) == 0

    def test_complete_bipartite_uniform_truss(self):
        # K_{3,3}: every edge is in 4 butterflies; peeling is symmetric,
        # so every edge has the same truss number 4... after the first
        # removal supports drop, but the *peeling level* is monotone and
        # the k-bitruss for k=4 is the whole graph.
        graph = complete_bipartite(3, 3)
        result = bitruss_decomposition(graph)
        assert result.max_truss == 4.0
        assert (result.edge_truss == 4.0).all()

    def test_pendant_edges_peel_first(self):
        graph = build_graph([
            # A solid 2x2 butterfly...
            ("a", "x", 1.0, 0.5), ("a", "y", 1.0, 0.5),
            ("b", "x", 1.0, 0.5), ("b", "y", 1.0, 0.5),
            # ...plus a pendant edge in no butterfly.
            ("a", "z", 1.0, 0.5),
        ])
        result = bitruss_decomposition(graph)
        pendant = graph.edge_between(
            graph.left_index("a"), graph.right_index("z")
        )
        assert result.edge_truss[pendant] == 0.0
        core = result.k_bitruss_edges(1)
        assert len(core) == 4
        assert pendant not in core

    def test_monotone_hierarchy(self, figure1):
        result = bitruss_decomposition(figure1)
        # k-bitruss shrinks as k grows.
        sizes = [
            len(result.k_bitruss_edges(k))
            for k in range(int(result.max_truss) + 2)
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_expected_mode_scales_with_probability(self):
        confident = complete_bipartite(3, 3, prob=0.9)
        doubtful = complete_bipartite(3, 3, prob=0.2)
        high = bitruss_decomposition(confident, mode="expected")
        low = bitruss_decomposition(doubtful, mode="expected")
        assert high.max_truss > low.max_truss

    def test_expected_mode_at_p1_matches_deterministic(self, figure1):
        from repro.graph import backbone

        determined = backbone(figure1)
        deterministic = bitruss_decomposition(determined)
        expected = bitruss_decomposition(determined, mode="expected")
        assert expected.edge_truss == pytest.approx(
            deterministic.edge_truss
        )

    def test_invalid_mode(self, figure1):
        with pytest.raises(ValueError, match="mode"):
            bitruss_decomposition(figure1, mode="quantum")


def _support_within(graph, alive):
    from repro.butterfly import enumerate_butterflies

    support = {e: 0 for e in alive}
    for butterfly in enumerate_butterflies(graph):
        if all(e in alive for e in butterfly.edges):
            for e in butterfly.edges:
                support[e] += 1
    return support


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_k_bitruss_is_maximal_subgraph(seed):
    """Every edge of the k-bitruss has >= k butterflies *within* it."""
    graph = random_small_graph(np.random.default_rng(seed), 5, 5)
    result = bitruss_decomposition(graph)
    for k in range(1, int(result.max_truss) + 1):
        kept = set(result.k_bitruss_edges(k).tolist())
        support = _support_within(graph, kept)
        for edge in kept:
            assert support[edge] >= k, (
                f"k={k}: edge {edge} has support {support[edge]}"
            )
