"""The typestate/resource-lifetime rules (SHM001, RES001) and the
dtype/contiguity/clock file rules (DTY001, SHP001, CLK002): per-rule
violation/clean/noqa/baseline fixtures, the interprocedural
acquire-in-one-module/release-in-another cases, the pinned SARIF golden
with the typestate trace, the ``--ignore`` CLI flag, and regression
tests for the real findings these rules caught in the repo (shm
exception-edge leaks, broker slot drops, docstring-only autofix)."""

import ast
import dataclasses
import json
import subprocess
from multiprocessing import shared_memory
from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisConfig,
    render_sarif,
    run_analysis,
    write_baseline,
)
from repro.analysis.__main__ import main
from repro.analysis.autofix import _add_imports
from repro.analysis.registry import instantiate
from repro.errors import CircuitOpenError
from repro.observability import Observer
from repro.runtime import shm as shm_module
from repro.runtime.shm import attach_shared_graph, publish_graph
from repro.service import BreakerBoard, GraphRegistry, QueryBroker
from repro.service.chaos import FakeClock
from repro.service.schemas import QueryRequest

from .conftest import FIGURE_1_EDGES, build_graph

DATA_DIR = Path(__file__).resolve().parent / "data"

#: The two rules that evaluate protocol specs over the whole program.
PROGRAM_RULES = {"SHM001", "RES001"}


def write_tree(root, files):
    for rel, code in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(code, encoding="utf-8")


def analyze(root, files, rule, baseline=None):
    write_tree(root, files)
    config = AnalysisConfig(
        root=root,
        paths=[],
        select=[rule],
        baseline_path=baseline,
        project_rules=False,
        program_rules=rule in PROGRAM_RULES,
    )
    return run_analysis(config)


_SHM_VIOLATION = {
    "src/repro/runtime/seg.py": (
        "from multiprocessing import shared_memory\n"
        "def publish(data):\n"
        "    shm = shared_memory.SharedMemory(create=True, size=64)\n"
        "    fill(shm, data)\n"
        "    shm.close()\n"
        "    shm.unlink()\n"
        "def fill(shm, data):\n"
        "    shm.buf[:2] = data\n"
    ),
}

_SHM_CLEAN = {
    "src/repro/runtime/seg.py": (
        "from multiprocessing import shared_memory\n"
        "def publish(data):\n"
        "    shm = shared_memory.SharedMemory(create=True, size=64)\n"
        "    try:\n"
        "        fill(shm, data)\n"
        "    finally:\n"
        "        shm.close()\n"
        "        shm.unlink()\n"
        "def fill(shm, data):\n"
        "    shm.buf[:2] = data\n"
    ),
}

_SHM_NOQA = {
    "src/repro/runtime/seg.py": (
        _SHM_VIOLATION["src/repro/runtime/seg.py"].replace(
            "    fill(shm, data)\n",
            "    fill(shm, data)  # repro: noqa[SHM001]\n",
            1,
        )
    ),
}

_RES_VIOLATION = {
    "src/repro/service/gate.py": (
        "def guard(breaker, work):\n"
        "    breaker.allow()\n"
        "    result = work()\n"
        "    breaker.record_success()\n"
        "    return result\n"
    ),
}

_RES_CLEAN = {
    "src/repro/service/gate.py": (
        "def guard(breaker, work):\n"
        "    breaker.allow()\n"
        "    try:\n"
        "        result = work()\n"
        "    except BaseException:\n"
        "        breaker.cancel_probe()\n"
        "        raise\n"
        "    breaker.record_success()\n"
        "    return result\n"
    ),
}

_RES_NOQA = {
    "src/repro/service/gate.py": (
        _RES_VIOLATION["src/repro/service/gate.py"].replace(
            "    result = work()\n",
            "    result = work()  # repro: noqa[RES001]\n",
            1,
        )
    ),
}

_CLK_VIOLATION = {
    "src/repro/service/tick.py": (
        "import time\n"
        "def wait_for(predicate):\n"
        "    while not predicate():\n"
        "        time.sleep(0.05)\n"
    ),
}

_CLK_CLEAN = {
    "src/repro/service/tick.py": (
        "import time\n"
        "def wait_for(predicate, sleep=time.sleep):\n"
        "    while not predicate():\n"
        "        sleep(0.05)\n"
    ),
}

_CLK_NOQA = {
    "src/repro/service/tick.py": (
        _CLK_VIOLATION["src/repro/service/tick.py"].replace(
            "        time.sleep(0.05)\n",
            "        time.sleep(0.05)  # repro: noqa[CLK002]\n",
            1,
        )
    ),
}

_DTY_VIOLATION = {
    "src/repro/kernels/scan.py": (
        "import numpy as np\n"
        "def offsets(counts):\n"
        "    return np.cumsum(counts, dtype=np.int32)\n"
    ),
}

_DTY_CLEAN = {
    "src/repro/kernels/scan.py": (
        "import numpy as np\n"
        "def offsets(counts):\n"
        "    return np.cumsum(counts, dtype=np.int64)\n"
    ),
}

_DTY_NOQA = {
    "src/repro/kernels/scan.py": (
        "import numpy as np\n"
        "def offsets(counts):\n"
        "    return np.cumsum(counts, dtype=np.int32)"
        "  # repro: noqa[DTY001]\n"
    ),
}

_SHP_VIOLATION = {
    "src/repro/runtime/seam.py": (
        "import numpy as np\n"
        "def decode(buf):\n"
        "    return np.frombuffer(buf)\n"
    ),
}

_SHP_CLEAN = {
    "src/repro/runtime/seam.py": (
        "import numpy as np\n"
        "def decode(buf):\n"
        "    return np.frombuffer(buf, dtype=np.uint8)\n"
    ),
}

_SHP_NOQA = {
    "src/repro/runtime/seam.py": (
        "import numpy as np\n"
        "def decode(buf):\n"
        "    return np.frombuffer(buf)  # repro: noqa[SHP001]\n"
    ),
}

#: rule -> (violating tree, clean tree, noqa'd tree, message fragment).
RULE_FIXTURES = {
    "SHM001": (_SHM_VIOLATION, _SHM_CLEAN, _SHM_NOQA, "leaks if"),
    "RES001": (_RES_VIOLATION, _RES_CLEAN, _RES_NOQA, "leaks if"),
    "CLK002": (_CLK_VIOLATION, _CLK_CLEAN, _CLK_NOQA, "direct sleep"),
    "DTY001": (_DTY_VIOLATION, _DTY_CLEAN, _DTY_NOQA, "narrow dtype"),
    "SHP001": (_SHP_VIOLATION, _SHP_CLEAN, _SHP_NOQA, "frombuffer"),
}


class TestPerRuleFixtures:
    @pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
    def test_violation_reported(self, tmp_path, rule):
        violating, _, _, fragment = RULE_FIXTURES[rule]
        result = analyze(tmp_path, violating, rule)
        assert [f.rule for f in result.findings] == [rule]
        assert fragment in result.findings[0].message

    @pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
    def test_clean_fixture_passes(self, tmp_path, rule):
        _, clean, _, _ = RULE_FIXTURES[rule]
        result = analyze(tmp_path, clean, rule)
        assert result.findings == []

    @pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
    def test_noqa_suppresses(self, tmp_path, rule):
        _, _, noqa, _ = RULE_FIXTURES[rule]
        result = analyze(tmp_path, noqa, rule)
        assert result.findings == []
        assert result.suppressed == 1

    @pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
    def test_baseline_grandfathers(self, tmp_path, rule):
        violating, _, _, _ = RULE_FIXTURES[rule]
        first = analyze(tmp_path, violating, rule)
        assert len(first.findings) == 1
        baseline = tmp_path / "tools" / "lint-baseline.json"
        write_baseline(baseline, first.findings)
        second = analyze(tmp_path, violating, rule, baseline=baseline)
        assert second.findings == []
        assert len(second.grandfathered) == 1


class TestShmProtocol:
    def test_use_after_close_with_trace(self, tmp_path):
        result = analyze(tmp_path, {
            "src/repro/runtime/peek.py": (
                "from multiprocessing import shared_memory\n"
                "def peek(name):\n"
                "    shm = shared_memory.SharedMemory(name=name)\n"
                "    payload = shm.buf.tobytes()\n"
                "    shm.close()\n"
                "    rest = shm.buf.tobytes()\n"
                "    return rest\n"
            ),
        }, "SHM001")
        (finding,) = result.findings
        assert finding.line == 6
        assert "used after close()" in finding.message
        # The typestate trace replays the states that led here.
        assert "trace:" in finding.message
        assert "[closed]" in finding.message

    def test_double_unlink(self, tmp_path):
        result = analyze(tmp_path, {
            "src/repro/runtime/retire.py": (
                "from multiprocessing import shared_memory\n"
                "def retire(name):\n"
                "    shm = shared_memory.SharedMemory(name=name)\n"
                "    shm.close()\n"
                "    shm.unlink()\n"
                "    shm.unlink()\n"
            ),
        }, "SHM001")
        (finding,) = result.findings
        assert finding.line == 6
        assert "double unlink" in finding.message

    def test_self_stored_without_finalize_or_sibling_close(
        self, tmp_path
    ):
        result = analyze(tmp_path, {
            "src/repro/runtime/att.py": (
                "from multiprocessing import shared_memory\n"
                "class Attachment:\n"
                "    def __init__(self, name):\n"
                "        self._shm = shared_memory.SharedMemory("
                "name=name)\n"
            ),
        }, "SHM001")
        (finding,) = result.findings
        assert "never released" in finding.message

    def test_self_stored_with_sibling_close_passes(self, tmp_path):
        result = analyze(tmp_path, {
            "src/repro/runtime/att.py": (
                "from multiprocessing import shared_memory\n"
                "class Attachment:\n"
                "    def __init__(self, name):\n"
                "        self._shm = shared_memory.SharedMemory("
                "name=name)\n"
                "    def close(self):\n"
                "        self._shm.close()\n"
            ),
        }, "SHM001")
        assert result.findings == []

    def test_interprocedural_release_in_other_module(self, tmp_path):
        """A finally that delegates to another module's helper pairs
        the acquire — the effects fixpoint follows the call edge."""
        result = analyze(tmp_path, {
            "src/repro/runtime/owner.py": (
                "from multiprocessing import shared_memory\n"
                "from .teardown import retire\n"
                "def publish(data):\n"
                "    shm = shared_memory.SharedMemory("
                "create=True, size=64)\n"
                "    try:\n"
                "        stage(shm, data)\n"
                "    finally:\n"
                "        retire(shm)\n"
                "def stage(shm, data):\n"
                "    shm.buf[:2] = data\n"
            ),
            "src/repro/runtime/teardown.py": (
                "def retire(shm):\n"
                "    shm.close()\n"
                "    shm.unlink()\n"
            ),
        }, "SHM001")
        assert result.findings == []

    def test_interprocedural_without_cleanup_path_still_leaks(
        self, tmp_path
    ):
        result = analyze(tmp_path, {
            "src/repro/runtime/owner.py": (
                "from multiprocessing import shared_memory\n"
                "from .teardown import retire\n"
                "def publish(data):\n"
                "    shm = shared_memory.SharedMemory("
                "create=True, size=64)\n"
                "    stage(shm, data)\n"
                "    retire(shm)\n"
                "def stage(shm, data):\n"
                "    shm.buf[:2] = data\n"
            ),
            "src/repro/runtime/teardown.py": (
                "def retire(shm):\n"
                "    shm.close()\n"
                "    shm.unlink()\n"
            ),
        }, "SHM001")
        (finding,) = result.findings
        assert finding.line == 5
        assert "leaks if stage() raises" in finding.message


class TestResourcePairing:
    def test_interprocedural_record_in_other_module(self, tmp_path):
        result = analyze(tmp_path, {
            "src/repro/service/gate.py": (
                "from .outcome import finish\n"
                "def guard(breaker, work):\n"
                "    breaker.allow()\n"
                "    try:\n"
                "        return finish(breaker, work)\n"
                "    except BaseException:\n"
                "        breaker.cancel_probe()\n"
                "        raise\n"
            ),
            "src/repro/service/outcome.py": (
                "def finish(breaker, work):\n"
                "    result = work()\n"
                "    breaker.record_success()\n"
                "    return result\n"
            ),
        }, "RES001")
        assert result.findings == []

    def test_admission_token_leak(self, tmp_path):
        result = analyze(tmp_path, {
            "src/repro/service/serve.py": (
                "def serve(admission, run):\n"
                "    admission.admit()\n"
                "    out = run()\n"
                "    admission.release()\n"
                "    return out\n"
            ),
        }, "RES001")
        (finding,) = result.findings
        assert "admission inflight slot" in finding.message
        assert "leaks if run() raises" in finding.message

    def test_admission_token_finally_passes(self, tmp_path):
        result = analyze(tmp_path, {
            "src/repro/service/serve.py": (
                "def serve(admission, run):\n"
                "    admission.admit()\n"
                "    try:\n"
                "        return run()\n"
                "    finally:\n"
                "        admission.release()\n"
            ),
        }, "RES001")
        assert result.findings == []

    def test_pool_republish_without_close(self, tmp_path):
        result = analyze(tmp_path, {
            "src/repro/service/pools.py": (
                "from ..runtime import WorkerPool\n"
                "def republish(pools, key, graph):\n"
                "    stale = pools.pop(key, None)\n"
                "    pool = WorkerPool(graph)\n"
                "    pools[key] = pool\n"
                "    return pool\n"
            ),
        }, "RES001")
        (finding,) = result.findings
        assert finding.line == 4
        assert "never calls close()" in finding.message

    def test_pool_republish_with_close_passes(self, tmp_path):
        result = analyze(tmp_path, {
            "src/repro/service/pools.py": (
                "from ..runtime import WorkerPool\n"
                "def republish(pools, key, graph):\n"
                "    stale = pools.pop(key, None)\n"
                "    if stale is not None:\n"
                "        stale.close()\n"
                "    pool = WorkerPool(graph)\n"
                "    pools[key] = pool\n"
                "    return pool\n"
            ),
        }, "RES001")
        assert result.findings == []


class TestFileRuleScoping:
    def test_clk002_out_of_scope_directory_passes(self, tmp_path):
        files = {
            "src/repro/core/tick.py":
                _CLK_VIOLATION["src/repro/service/tick.py"],
        }
        result = analyze(tmp_path, files, "CLK002")
        assert result.findings == []

    def test_dty001_astype_feeding_reduceat(self, tmp_path):
        result = analyze(tmp_path, {
            "src/repro/kernels/ties.py": (
                "import numpy as np\n"
                "def ties(mask, starts):\n"
                "    return np.add.reduceat("
                "mask.astype(np.int32), starts, axis=1)\n"
            ),
        }, "DTY001")
        (finding,) = result.findings
        assert "astype()" in finding.message

    def test_shp001_strided_tobytes(self, tmp_path):
        result = analyze(tmp_path, {
            "src/repro/runtime/ship.py": (
                "def ship(matrix):\n"
                "    return matrix.T.tobytes()\n"
            ),
        }, "SHP001")
        (finding,) = result.findings
        assert "non-contiguous" in finding.message

    def test_shp001_ascontiguous_wrap_passes(self, tmp_path):
        result = analyze(tmp_path, {
            "src/repro/runtime/ship.py": (
                "import numpy as np\n"
                "def ship(matrix):\n"
                "    return np.ascontiguousarray(matrix.T).tobytes()\n"
            ),
        }, "SHP001")
        assert result.findings == []


#: Fixture behind the typestate SARIF golden file — do not edit
#: without regenerating tests/data/typestate_sarif_golden.json.
_SARIF_FILES = {
    "src/repro/service/probe_leak.py": (
        "def guard(breaker, work):\n"
        "    breaker.allow()\n"
        "    out = work()\n"
        "    breaker.record_success()\n"
        "    return out\n"
    ),
}


def _sarif_result(root):
    write_tree(root, _SARIF_FILES)
    config = AnalysisConfig(
        root=root,
        paths=[],
        select=["RES001"],
        project_rules=False,
        program_rules=True,
    )
    return run_analysis(config)


class TestTypestateSarif:
    def test_result_message_carries_typestate_trace(self, tmp_path):
        document = json.loads(render_sarif(_sarif_result(tmp_path)))
        (run,) = document["runs"]
        (result,) = run["results"]
        assert result["ruleId"] == "RES001"
        message = result["message"]["text"]
        # State-at-each-step trace, replayable by a SARIF consumer.
        assert "trace: L2 breaker.allow() [held]" in message
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == (
            "src/repro/service/probe_leak.py"
        )
        assert location["region"]["startLine"] == 3

    def test_sarif_matches_golden_file(self, tmp_path):
        rendered = json.loads(render_sarif(_sarif_result(tmp_path)))
        golden = json.loads(
            (DATA_DIR / "typestate_sarif_golden.json").read_text(
                encoding="utf-8"
            )
        )
        assert rendered == golden


class TestIgnoreFlag:
    def test_instantiate_ignore_drops_rule(self):
        rules = instantiate(ignore=["CLK002"])
        assert "CLK002" not in [rule.id for rule in rules]
        assert "CLK001" in [rule.id for rule in rules]

    def test_instantiate_ignore_unknown_id_raises(self):
        with pytest.raises(KeyError, match="unknown ignored"):
            instantiate(ignore=["NOPE999"])

    def test_cli_ignore_mutes_findings(self, tmp_path, capsys):
        write_tree(tmp_path, _CLK_VIOLATION)
        argv = ["--root", str(tmp_path), "--no-cache",
                "--select", "CLK002"]
        assert main(argv) == 1
        capsys.readouterr()
        assert main([*argv, "--ignore", "CLK002"]) == 0

    def test_cli_ignore_unknown_id_exits_2(self, tmp_path, capsys):
        write_tree(tmp_path, _CLK_VIOLATION)
        code = main([
            "--root", str(tmp_path), "--no-cache",
            "--ignore", "NOPE999",
        ])
        err = capsys.readouterr().err
        assert code == 2
        assert "NOPE999" in err


def _git(root, *args):
    subprocess.run(
        [
            "git", "-c", "user.email=ci@local", "-c", "user.name=ci",
            *args,
        ],
        cwd=root,
        check=True,
        capture_output=True,
    )


class TestDiffMode:
    def test_diff_reports_introduced_probe_leak(self, tmp_path, capsys):
        write_tree(tmp_path, _RES_CLEAN)
        _git(tmp_path, "init", "-q")
        _git(tmp_path, "add", ".")
        _git(tmp_path, "commit", "-q", "-m", "seed")
        write_tree(tmp_path, _RES_VIOLATION)
        code = main([
            "--root", str(tmp_path), "--no-cache", "--diff", "HEAD",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "RES001" in out
        assert "gate.py" in out


class _RecordingSegments:
    """Patch ``repro.runtime.shm`` to record close/unlink calls."""

    def __init__(self, monkeypatch):
        self.created = []
        recorder = self

        class Recording(shared_memory.SharedMemory):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.close_calls = 0
                self.unlink_calls = 0
                recorder.created.append(self)

            def close(self):
                self.close_calls += 1
                super().close()

            def unlink(self):
                self.unlink_calls += 1
                super().unlink()

        monkeypatch.setattr(
            shm_module.shared_memory, "SharedMemory", Recording
        )


class _FaultyObserver(Observer):
    """An observer whose gauge/counter sink raises on one metric."""

    def __init__(self, boom):
        super().__init__()
        self._boom = boom

    def inc(self, name, amount=1.0):
        if name == self._boom:
            raise RuntimeError(f"observer fault on {name}")
        super().inc(name, amount)

    def set(self, name, value):
        if name == self._boom:
            raise RuntimeError(f"observer fault on {name}")
        super().set(name, value)


class TestShmExceptionEdges:
    """Regression tests for the SHM001 findings fixed in this change:
    pre-fix, both leaked the mapping/segment on the exception edge."""

    def test_attach_closes_mapping_when_reconstruction_fails(
        self, tmp_path, monkeypatch
    ):
        publication = publish_graph(build_graph(FIGURE_1_EDGES))
        try:
            # Corrupt the metadata spec: truncating the pickled blob
            # makes ``pickle.loads`` raise mid-``__init__``.
            specs = tuple(
                (name, (1,), dtype, offset)
                if name == "__meta__"
                else (name, shape, dtype, offset)
                for name, shape, dtype, offset in (
                    publication.handle.specs
                )
            )
            bad_handle = dataclasses.replace(
                publication.handle, specs=specs
            )
            recorder = _RecordingSegments(monkeypatch)
            with pytest.raises(Exception):
                attach_shared_graph(bad_handle)
            (attachment_shm,) = recorder.created
            assert attachment_shm.close_calls == 1
            assert attachment_shm.unlink_calls == 0  # owner's job
        finally:
            publication.close()

    def test_publish_unlinks_segment_when_observer_faults(
        self, monkeypatch
    ):
        recorder = _RecordingSegments(monkeypatch)
        observer = _FaultyObserver("worker.shm.published")
        with pytest.raises(RuntimeError, match="observer fault"):
            publish_graph(build_graph(FIGURE_1_EDGES), observer=observer)
        (segment,) = recorder.created
        assert segment.close_calls >= 1
        assert segment.unlink_calls >= 1


class TestBrokerSlotRegressions:
    """Regression tests for the RES001 findings fixed in this change:
    pre-fix, the admission token and the half-open probe slot leaked
    on unexpected exception edges in ``_dispatch``."""

    def _request(self, **overrides):
        params = dict(dataset="abide", method="os", trials=10, seed=7)
        params.update(overrides)
        return QueryRequest(**params)

    @pytest.fixture()
    def registry(self):
        registry = GraphRegistry(["abide"])
        registry.load_all()
        return registry

    def test_admission_released_when_queue_gauge_faults(self, registry):
        broker = QueryBroker(
            registry,
            observer=_FaultyObserver("service.queue.depth"),
            sleep=lambda _: None,
        )
        with pytest.raises(RuntimeError, match="observer fault"):
            broker.handle(self._request(use_cache=False))
        assert broker.admission.inflight == 0

    def test_probe_returned_when_admit_raises_unexpectedly(
        self, registry, monkeypatch
    ):
        clock = FakeClock()
        broker = QueryBroker(
            registry,
            breakers=BreakerBoard(
                cooldown_seconds=5.0, clock=clock
            ),
            sleep=lambda _: None,
            clock=clock,
        )
        breaker = broker.breakers.get("abide")
        for _ in range(breaker.failure_threshold):
            breaker.record_failure()
        clock.advance(6.0)  # past cooldown: half-open, one probe slot

        def exploding_admit():
            raise RuntimeError("admission backend down")

        monkeypatch.setattr(
            broker.admission, "admit", exploding_admit
        )
        with pytest.raises(RuntimeError, match="backend down"):
            broker.handle(self._request(use_cache=False))
        # The probe slot must have been handed back: the breaker can
        # still admit its half-open probe instead of wedging open.
        try:
            breaker.allow()
        except CircuitOpenError:
            pytest.fail("probe slot leaked: breaker wedged half-open")
        breaker.cancel_probe()


class TestAutofixImportInsertion:
    """Regression: import insertion onto a module whose last line has
    no trailing newline used to concatenate and break the parse."""

    def test_docstring_only_module(self):
        out = _add_imports(
            '"""Doc only."""',
            ["from repro.errors import ConfigurationError"],
        )
        ast.parse(out)  # pre-fix: SyntaxError (no newline spliced)
        assert out.splitlines() == [
            '"""Doc only."""',
            "from repro.errors import ConfigurationError",
        ]

    def test_imports_only_module_without_trailing_newline(self):
        out = _add_imports(
            "import os",
            ["from repro.errors import ConfigurationError"],
        )
        ast.parse(out)
        assert out.splitlines() == [
            "import os",
            "from repro.errors import ConfigurationError",
        ]
