"""The concurrency-safety rules (LCK001, LCK002, LCK003, ATM001):
per-rule violation/clean/noqa/baseline fixtures, guarded-helper and
escaping-callback inference, the interprocedural lock-order cycle with
its witness trace, the pinned SARIF golden with the lock trace, the
``--diff`` path, the ``--list-rules`` catalog, and the CACHE_FORMAT
bump notice regression (a forged old-format cache must be discarded
loudly, then rewritten in the current format)."""

import json
import subprocess
from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisConfig,
    render_sarif,
    run_analysis,
    write_baseline,
)
from repro.analysis.__main__ import main
from repro.analysis.program.symbols import (
    CACHE_BASENAME,
    CACHE_FORMAT,
    CACHE_KIND,
)

from .test_typestate import write_tree

DATA_DIR = Path(__file__).resolve().parent / "data"

CONCURRENCY_RULES = ("LCK001", "LCK002", "LCK003", "ATM001")


def analyze(root, files, rule, baseline=None):
    write_tree(root, files)
    config = AnalysisConfig(
        root=root,
        paths=[],
        select=[rule],
        baseline_path=baseline,
        project_rules=False,
        program_rules=True,
    )
    return run_analysis(config)


_LCK001_VIOLATION = {
    "src/repro/service/counter.py": (
        "import threading\n"
        "class Counter:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._count = 0\n"
        "    def bump(self):\n"
        "        with self._lock:\n"
        "            self._count += 1\n"
        "    def peek(self):\n"
        "        return self._count\n"
    ),
}

_LCK001_CLEAN = {
    "src/repro/service/counter.py": (
        _LCK001_VIOLATION["src/repro/service/counter.py"].replace(
            "    def peek(self):\n"
            "        return self._count\n",
            "    def peek(self):\n"
            "        with self._lock:\n"
            "            return self._count\n",
            1,
        )
    ),
}

_LCK001_NOQA = {
    "src/repro/service/counter.py": (
        _LCK001_VIOLATION["src/repro/service/counter.py"].replace(
            "        return self._count\n",
            "        return self._count  # repro: noqa[LCK001]\n",
            1,
        )
    ),
}

_LCK002_VIOLATION = {
    "src/repro/service/ledger.py": (
        "import threading\n"
        "class Accounts:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.audit = Audit()\n"
        "    def credit(self):\n"
        "        with self._lock:\n"
        "            self.audit.stamp()\n"
        "    def poke(self):\n"
        "        with self._lock:\n"
        "            pass\n"
        "class Audit:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.accounts = Accounts()\n"
        "    def stamp(self):\n"
        "        with self._lock:\n"
        "            pass\n"
        "    def snapshot(self):\n"
        "        with self._lock:\n"
        "            self.accounts.poke()\n"
    ),
}

_LCK002_CLEAN = {
    # Same shape, consistent order: Audit never calls back into
    # Accounts while holding its lock.
    "src/repro/service/ledger.py": (
        _LCK002_VIOLATION["src/repro/service/ledger.py"].replace(
            "    def snapshot(self):\n"
            "        with self._lock:\n"
            "            self.accounts.poke()\n",
            "    def snapshot(self):\n"
            "        with self._lock:\n"
            "            pass\n",
            1,
        )
    ),
}

_LCK002_NOQA = {
    "src/repro/service/ledger.py": (
        _LCK002_VIOLATION["src/repro/service/ledger.py"].replace(
            "            self.audit.stamp()\n",
            "            self.audit.stamp()  # repro: noqa[LCK002]\n",
            1,
        )
    ),
}

_LCK003_VIOLATION = {
    "src/repro/service/poller.py": (
        "import threading\n"
        "import time\n"
        "class Poller:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "    def tick(self):\n"
        "        with self._lock:\n"
        "            time.sleep(0.5)\n"
    ),
}

_LCK003_CLEAN = {
    "src/repro/service/poller.py": (
        _LCK003_VIOLATION["src/repro/service/poller.py"].replace(
            "        with self._lock:\n"
            "            time.sleep(0.5)\n",
            "        with self._lock:\n"
            "            pass\n"
            "        time.sleep(0.5)\n",
            1,
        )
    ),
}

_LCK003_NOQA = {
    "src/repro/service/poller.py": (
        _LCK003_VIOLATION["src/repro/service/poller.py"].replace(
            "            time.sleep(0.5)\n",
            "            time.sleep(0.5)  # repro: noqa[LCK003]\n",
            1,
        )
    ),
}

_ATM001_VIOLATION = {
    "src/repro/service/bucket.py": (
        "import threading\n"
        "class Bucket:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._level = 4\n"
        "    def refill(self):\n"
        "        with self._lock:\n"
        "            self._level = 4\n"
        "    def drain(self):\n"
        "        with self._lock:\n"
        "            level = self._level\n"
        "        with self._lock:\n"
        "            self._level = level - 1\n"
    ),
}

_ATM001_CLEAN = {
    "src/repro/service/bucket.py": (
        _ATM001_VIOLATION["src/repro/service/bucket.py"].replace(
            "    def drain(self):\n"
            "        with self._lock:\n"
            "            level = self._level\n"
            "        with self._lock:\n"
            "            self._level = level - 1\n",
            "    def drain(self):\n"
            "        with self._lock:\n"
            "            self._level = self._level - 1\n",
            1,
        )
    ),
}

_ATM001_NOQA = {
    "src/repro/service/bucket.py": (
        _ATM001_VIOLATION["src/repro/service/bucket.py"].replace(
            "            self._level = level - 1\n",
            "            self._level = level - 1"
            "  # repro: noqa[ATM001]\n",
            1,
        )
    ),
}

#: rule -> (violating tree, clean tree, noqa'd tree, message fragment).
RULE_FIXTURES = {
    "LCK001": (
        _LCK001_VIOLATION, _LCK001_CLEAN, _LCK001_NOQA, "guarded by",
    ),
    "LCK002": (
        _LCK002_VIOLATION, _LCK002_CLEAN, _LCK002_NOQA,
        "lock-order cycle",
    ),
    "LCK003": (
        _LCK003_VIOLATION, _LCK003_CLEAN, _LCK003_NOQA,
        "blocks while holding",
    ),
    "ATM001": (
        _ATM001_VIOLATION, _ATM001_CLEAN, _ATM001_NOQA,
        "check-then-act",
    ),
}


class TestPerRuleFixtures:
    @pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
    def test_violation_reported(self, tmp_path, rule):
        violating, _, _, fragment = RULE_FIXTURES[rule]
        result = analyze(tmp_path, violating, rule)
        assert [f.rule for f in result.findings] == [rule]
        assert fragment in result.findings[0].message

    @pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
    def test_clean_fixture_passes(self, tmp_path, rule):
        _, clean, _, _ = RULE_FIXTURES[rule]
        result = analyze(tmp_path, clean, rule)
        assert result.findings == []

    @pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
    def test_noqa_suppresses(self, tmp_path, rule):
        _, _, noqa, _ = RULE_FIXTURES[rule]
        result = analyze(tmp_path, noqa, rule)
        assert result.findings == []
        assert result.suppressed == 1

    @pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
    def test_baseline_grandfathers(self, tmp_path, rule):
        violating, _, _, _ = RULE_FIXTURES[rule]
        first = analyze(tmp_path, violating, rule)
        assert len(first.findings) == 1
        baseline = tmp_path / "tools" / "lint-baseline.json"
        write_baseline(baseline, first.findings)
        second = analyze(tmp_path, violating, rule, baseline=baseline)
        assert second.findings == []
        assert len(second.grandfathered) == 1


class TestGuardedByInference:
    def test_finding_carries_lock_trace(self, tmp_path):
        result = analyze(tmp_path, _LCK001_VIOLATION, "LCK001")
        (finding,) = result.findings
        assert finding.line == 10
        message = finding.message
        assert "lock-trace:" in message
        assert "acquire self._lock [held]" in message
        assert "write self._count [guarded]" in message
        assert "L10 read self._count [unlocked]" in message

    def test_guarded_helper_stays_quiet(self, tmp_path):
        """A private helper whose every call site holds the lock runs
        lock-held by construction (the breaker's ``_trip`` pattern)."""
        result = analyze(tmp_path, {
            "src/repro/service/machine.py": (
                "import threading\n"
                "class Machine:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self._state = 'closed'\n"
                "    def fail(self):\n"
                "        with self._lock:\n"
                "            self._trip()\n"
                "    def state(self):\n"
                "        with self._lock:\n"
                "            return self._state\n"
                "    def _trip(self):\n"
                "        self._state = 'open'\n"
            ),
        }, "LCK001")
        assert result.findings == []

    def test_escaping_helper_is_not_inferred_guarded(self, tmp_path):
        """A method handed off as a value (finalizer, callback) can
        run on any thread — its lock-free accesses are flagged."""
        result = analyze(tmp_path, {
            "src/repro/service/machine.py": (
                "import threading\n"
                "import weakref\n"
                "class Machine:\n"
                "    def __init__(self, owner):\n"
                "        self._lock = threading.Lock()\n"
                "        self._state = 'closed'\n"
                "        weakref.finalize(owner, self._trip)\n"
                "    def reset(self):\n"
                "        with self._lock:\n"
                "            self._state = 'closed'\n"
                "    def _trip(self):\n"
                "        self._state = 'open'\n"
            ),
        }, "LCK001")
        (finding,) = result.findings
        assert "_trip() writes it without the lock" in finding.message

    def test_unguarded_write_in_public_method_flagged(self, tmp_path):
        result = analyze(tmp_path, {
            "src/repro/service/counter.py": (
                "import threading\n"
                "class Counter:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self._count = 0\n"
                "    def bump(self):\n"
                "        with self._lock:\n"
                "            self._count += 1\n"
                "    def reset(self):\n"
                "        self._count = 0\n"
            ),
        }, "LCK001")
        (finding,) = result.findings
        assert finding.line == 10
        assert "reset() writes it without the lock" in finding.message

    def test_config_fields_never_written_under_lock_pass(
        self, tmp_path
    ):
        """Read-only config (rate, burst, max_entries) is not inferred
        guarded: only fields *written* under the lock count."""
        result = analyze(tmp_path, {
            "src/repro/service/counter.py": (
                "import threading\n"
                "class Counter:\n"
                "    def __init__(self, burst):\n"
                "        self._lock = threading.Lock()\n"
                "        self._count = 0\n"
                "        self.burst = burst\n"
                "    def bump(self):\n"
                "        with self._lock:\n"
                "            if self._count < self.burst:\n"
                "                self._count += 1\n"
                "    def capacity(self):\n"
                "        return self.burst\n"
            ),
        }, "LCK001")
        assert result.findings == []


class TestLockOrderCycles:
    def test_cycle_reports_witness_trace(self, tmp_path):
        result = analyze(tmp_path, _LCK002_VIOLATION, "LCK002")
        (finding,) = result.findings
        message = finding.message
        assert (
            "Accounts._lock -> Audit._lock -> Accounts._lock"
            in message
        )
        assert "witness:" in message
        assert "credit() calls self.audit.stamp()" in message
        assert "snapshot() calls self.accounts.poke()" in message
        assert "while holding" in message

    def test_consistent_order_passes(self, tmp_path):
        result = analyze(tmp_path, _LCK002_CLEAN, "LCK002")
        assert result.findings == []

    def test_cycle_through_intermediate_method(self, tmp_path):
        """The acquisition fixpoint follows call edges: the cycle is
        visible even when the re-entrant acquire is two calls deep."""
        result = analyze(tmp_path, {
            "src/repro/service/ledger.py": (
                _LCK002_VIOLATION[
                    "src/repro/service/ledger.py"
                ].replace(
                    "    def stamp(self):\n"
                    "        with self._lock:\n"
                    "            pass\n",
                    "    def stamp(self):\n"
                    "        self._note()\n"
                    "    def _note(self):\n"
                    "        with self._lock:\n"
                    "            pass\n",
                    1,
                )
            ),
        }, "LCK002")
        (finding,) = result.findings
        assert "lock-order cycle" in finding.message


class TestBlockingWhileHolding:
    def test_injected_clock_sleep_detected(self, tmp_path):
        """``self._sleep`` (the injected-clock convention) blocks just
        like ``time.sleep``."""
        result = analyze(tmp_path, {
            "src/repro/service/poller.py": (
                "import threading\n"
                "class Poller:\n"
                "    def __init__(self, sleep):\n"
                "        self._lock = threading.Lock()\n"
                "        self._sleep = sleep\n"
                "    def tick(self):\n"
                "        with self._lock:\n"
                "            self._sleep(0.5)\n"
            ),
        }, "LCK003")
        (finding,) = result.findings
        assert finding.line == 8
        assert "self._sleep() sleeps" in finding.message

    def test_transitive_blocking_through_callee(self, tmp_path):
        """File I/O reached through a resolvable callee is reported
        with the call chain in the message."""
        result = analyze(tmp_path, {
            "src/repro/service/journal.py": (
                "import threading\n"
                "class Journal:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "    def append(self, line):\n"
                "        with self._lock:\n"
                "            self._flush(line)\n"
                "    def _flush(self, line):\n"
                "        with open('journal.log', 'a') as fh:\n"
                "            fh.write(line)\n"
            ),
        }, "LCK003")
        # Two findings: the call site under the explicit lock, and the
        # open() inside _flush (a guarded helper — every call site
        # holds the lock, so its body runs lock-held too).
        assert [f.line for f in result.findings] == [7, 9]
        first, second = result.findings
        assert "self._flush() -> open()" in first.message
        assert "file I/O" in first.message
        assert "open() performs file I/O" in second.message

    def test_pool_submit_under_lock_flagged(self, tmp_path):
        result = analyze(tmp_path, {
            "src/repro/service/fan.py": (
                "import threading\n"
                "class Fan:\n"
                "    def __init__(self, pool):\n"
                "        self._lock = threading.Lock()\n"
                "        self.pool = pool\n"
                "    def go(self, task):\n"
                "        with self._lock:\n"
                "            return self.pool.submit(task)\n"
            ),
        }, "LCK003")
        (finding,) = result.findings
        assert "submits to a worker pool" in finding.message

    def test_lock_trace_names_acquire_site(self, tmp_path):
        result = analyze(tmp_path, _LCK003_VIOLATION, "LCK003")
        (finding,) = result.findings
        assert (
            "lock-trace: L7 acquire self._lock [held] -> "
            "L8 time.sleep() [blocking]" in finding.message
        )


class TestCheckThenAct:
    def test_violation_trace_shows_release_gap(self, tmp_path):
        result = analyze(tmp_path, _ATM001_VIOLATION, "ATM001")
        (finding,) = result.findings
        assert finding.line == 13
        message = finding.message
        assert "read self._level [checked]" in message
        assert "(released)" in message
        assert "write self._level [no re-check]" in message

    def test_recheck_in_second_section_passes(self, tmp_path):
        """Re-reading the field inside the second critical section is
        the documented re-check pattern (registry's lazy load)."""
        result = analyze(tmp_path, {
            "src/repro/service/bucket.py": (
                _ATM001_VIOLATION[
                    "src/repro/service/bucket.py"
                ].replace(
                    "        with self._lock:\n"
                    "            self._level = level - 1\n",
                    "        with self._lock:\n"
                    "            if self._level == level:\n"
                    "                self._level = level - 1\n",
                    1,
                )
            ),
        }, "ATM001")
        assert result.findings == []

    def test_exclusive_branches_pass(self, tmp_path):
        """A read in one ``if`` arm and a write in the other can never
        execute together — no stale-check window exists."""
        result = analyze(tmp_path, {
            "src/repro/service/bucket.py": (
                "import threading\n"
                "class Bucket:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self._level = 4\n"
                "    def fill(self):\n"
                "        with self._lock:\n"
                "            self._level = 4\n"
                "    def step(self, up):\n"
                "        if up:\n"
                "            with self._lock:\n"
                "                print(self._level)\n"
                "        else:\n"
                "            with self._lock:\n"
                "                self._level = 0\n"
            ),
        }, "ATM001")
        assert result.findings == []


#: Fixture behind the concurrency SARIF golden file — do not edit
#: without regenerating tests/data/concurrency_sarif_golden.json.
_SARIF_FILES = _LCK002_VIOLATION


def _sarif_result(root):
    write_tree(root, _SARIF_FILES)
    config = AnalysisConfig(
        root=root,
        paths=[],
        select=["LCK002"],
        project_rules=False,
        program_rules=True,
    )
    return run_analysis(config)


class TestConcurrencySarif:
    def test_result_message_carries_lock_trace(self, tmp_path):
        document = json.loads(render_sarif(_sarif_result(tmp_path)))
        (run,) = document["runs"]
        (result,) = run["results"]
        assert result["ruleId"] == "LCK002"
        message = result["message"]["text"]
        # Each witness edge names its site, caller, and held lock.
        assert "lock-order cycle" in message
        assert "witness:" in message
        assert "while holding Accounts._lock" in message
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == (
            "src/repro/service/ledger.py"
        )
        assert location["region"]["startLine"] == 8

    def test_sarif_matches_golden_file(self, tmp_path):
        rendered = json.loads(render_sarif(_sarif_result(tmp_path)))
        golden = json.loads(
            (DATA_DIR / "concurrency_sarif_golden.json").read_text(
                encoding="utf-8"
            )
        )
        assert rendered == golden


class TestCacheFormatBump:
    def _forged_cache(self, root):
        cache = root / CACHE_BASENAME
        cache.write_text(json.dumps({
            "kind": CACHE_KIND,
            "format": CACHE_FORMAT - 1,
            "files": {
                "src/repro/service/counter.py": {
                    "size": 1, "mtime_ns": 1, "sha": "stale",
                    "summary": {},
                },
            },
        }), encoding="utf-8")
        return cache

    def test_old_format_discarded_with_notice(self, tmp_path, capsys):
        write_tree(tmp_path, _LCK001_VIOLATION)
        cache = self._forged_cache(tmp_path)
        config = AnalysisConfig(
            root=tmp_path,
            paths=[],
            select=["LCK001"],
            project_rules=False,
            program_rules=True,
            use_cache=True,
        )
        result = run_analysis(config)
        err = capsys.readouterr().err
        assert "discarding summary cache" in err
        assert f"format {CACHE_FORMAT - 1}" in err
        assert f"current {CACHE_FORMAT}" in err
        # The stale summaries were re-derived, not trusted: the
        # finding is still produced and the cache is rewritten in the
        # current format.
        assert [f.rule for f in result.findings] == ["LCK001"]
        document = json.loads(cache.read_text(encoding="utf-8"))
        assert document["format"] == CACHE_FORMAT

    def test_current_format_loads_silently(self, tmp_path, capsys):
        write_tree(tmp_path, _LCK001_VIOLATION)
        config = AnalysisConfig(
            root=tmp_path,
            paths=[],
            select=["LCK001"],
            project_rules=False,
            program_rules=True,
            use_cache=True,
        )
        run_analysis(config)
        capsys.readouterr()
        result = run_analysis(config)
        err = capsys.readouterr().err
        assert "discarding summary cache" not in err
        assert [f.rule for f in result.findings] == ["LCK001"]

    def test_malformed_cache_still_silent(self, tmp_path, capsys):
        """Garbage (vs. a valid old-format cache) stays a silent
        empty cache — it carries no format to complain about."""
        write_tree(tmp_path, _LCK001_VIOLATION)
        (tmp_path / CACHE_BASENAME).write_text(
            "{not json", encoding="utf-8"
        )
        config = AnalysisConfig(
            root=tmp_path,
            paths=[],
            select=["LCK001"],
            project_rules=False,
            program_rules=True,
            use_cache=True,
        )
        run_analysis(config)
        err = capsys.readouterr().err
        assert "discarding summary cache" not in err


def _git(root, *args):
    subprocess.run(
        [
            "git", "-c", "user.email=ci@local", "-c", "user.name=ci",
            *args,
        ],
        cwd=root,
        check=True,
        capture_output=True,
    )


class TestDiffMode:
    def test_diff_reports_introduced_sleep_under_lock(
        self, tmp_path, capsys
    ):
        write_tree(tmp_path, _LCK003_CLEAN)
        _git(tmp_path, "init", "-q")
        _git(tmp_path, "add", ".")
        _git(tmp_path, "commit", "-q", "-m", "seed")
        write_tree(tmp_path, _LCK003_VIOLATION)
        code = main([
            "--root", str(tmp_path), "--no-cache", "--diff", "HEAD",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "LCK003" in out
        assert "poller.py" in out


class TestRuleCatalog:
    def test_list_rules_names_concurrency_family(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in CONCURRENCY_RULES:
            assert rule_id in out
        assert "guarded-by inference" in out
        assert "deadlock detection" in out
