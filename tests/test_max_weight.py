"""Tests for the Section V maximum-weight butterfly search (A1/A2 index)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import max_weight_butterflies
from repro.butterfly import TopTwoAngleIndex, brute_force_butterflies

from .conftest import build_graph, random_small_graph


def brute_force_max(graph, mask=None):
    """Oracle: (max weight, sorted S_MB keys) by full enumeration."""
    from repro import PossibleWorld

    world = None if mask is None else PossibleWorld(graph, mask)
    butterflies = brute_force_butterflies(graph, world)
    if not butterflies:
        return 0.0, []
    best = max(b.weight for b in butterflies)
    keys = sorted(b.key for b in butterflies if b.weight == best)
    return best, keys


class TestTopTwoAngleIndex:
    """The Table II update rules."""

    def test_first_angle(self):
        index = TopTwoAngleIndex()
        assert index.add((0, 1), 5.0, (9, 1, 2)) == -np.inf
        assert index.best_weight((0, 1)) == -np.inf

    def test_two_equal_angles_form_double(self):
        index = TopTwoAngleIndex()
        index.add((0, 1), 5.0, (9, 1, 2))
        best = index.add((0, 1), 5.0, (8, 3, 4))
        assert best == 10.0

    def test_new_maximum_demotes_old(self):
        index = TopTwoAngleIndex()
        index.add((0, 1), 5.0, (9, 1, 2))
        best = index.add((0, 1), 7.0, (8, 3, 4))
        assert best == 12.0  # 7 + 5
        assert index.best_weight((0, 1)) == 12.0

    def test_middle_insertion_updates_a2(self):
        index = TopTwoAngleIndex()
        index.add((0, 1), 7.0, (9, 1, 2))
        index.add((0, 1), 3.0, (8, 3, 4))
        best = index.add((0, 1), 5.0, (7, 5, 6))
        assert best == 12.0  # 7 + 5 replaces 7 + 3

    def test_tie_on_a2_appends(self):
        index = TopTwoAngleIndex()
        index.add((0, 1), 7.0, (9, 1, 2))
        index.add((0, 1), 5.0, (8, 3, 4))
        index.add((0, 1), 5.0, (7, 5, 6))
        assert index.n_angles_stored == 3

    def test_below_a2_ignored(self):
        index = TopTwoAngleIndex()
        index.add((0, 1), 7.0, (9, 1, 2))
        index.add((0, 1), 5.0, (8, 3, 4))
        index.add((0, 1), 1.0, (7, 5, 6))
        assert index.n_angles_stored == 2
        assert index.n_angles_seen == 3

    def test_pairs_independent(self):
        index = TopTwoAngleIndex()
        index.add((0, 1), 5.0, (9, 1, 2))
        index.add((0, 2), 5.0, (9, 3, 4))
        assert index.best_weight((0, 1)) == -np.inf
        assert index.n_pairs == 2


class TestMaxWeightSearch:
    def test_figure1_backbone(self, figure1):
        search = max_weight_butterflies(figure1)
        assert search.found
        assert search.weight == 10.0
        assert [b.key for b in search.butterflies] == [(0, 1, 0, 1)]

    def test_no_butterfly(self, no_butterfly_graph):
        search = max_weight_butterflies(no_butterfly_graph)
        assert not search.found
        assert search.weight == 0.0
        assert search.butterflies == []

    def test_restricted_edges(self, figure1):
        # Drop edge (u2, v1) (index 3): butterfly (0,1,0,1) dies and the
        # two weight-7 butterflies... (0,1,1,2) survives; (0,1,0,2) needs
        # edge 3 too, so only one maximum remains.
        order = figure1.edges_by_weight_desc
        present = [int(e) for e in order if e != 3]
        search = max_weight_butterflies(figure1, present)
        assert search.weight == 7.0
        assert [b.key for b in search.butterflies] == [(0, 1, 1, 2)]

    def test_tied_maxima_all_reported(self):
        graph = build_graph([
            ("a", "x", 1.0, 0.5), ("a", "y", 1.0, 0.5), ("a", "z", 1.0, 0.5),
            ("b", "x", 1.0, 0.5), ("b", "y", 1.0, 0.5), ("b", "z", 1.0, 0.5),
        ])
        search = max_weight_butterflies(graph)
        assert search.weight == 4.0
        assert len(search.butterflies) == 3  # C(3,2) middles pairs

    def test_prune_does_not_change_result(self, figure1):
        with_prune = max_weight_butterflies(figure1, prune=True)
        without = max_weight_butterflies(figure1, prune=False)
        assert with_prune.weight == without.weight
        assert sorted(b.key for b in with_prune.butterflies) == sorted(
            b.key for b in without.butterflies
        )
        assert with_prune.n_edges_processed <= without.n_edges_processed

    def test_pair_side_equivalence(self, figure1):
        left = max_weight_butterflies(figure1, pair_side="left")
        right = max_weight_butterflies(figure1, pair_side="right")
        assert left.weight == right.weight
        assert sorted(b.key for b in left.butterflies) == sorted(
            b.key for b in right.butterflies
        )

    def test_invalid_pair_side(self, figure1):
        with pytest.raises(ValueError, match="pair_side"):
            max_weight_butterflies(figure1, pair_side="diagonal")

    def test_instrumentation_counters(self, figure1):
        search = max_weight_butterflies(figure1)
        assert search.n_edges_processed <= figure1.n_edges
        assert search.n_angles_processed >= search.n_angles_stored > 0

    def test_butterfly_edges_canonical(self, figure1):
        search = max_weight_butterflies(figure1)
        butterfly = search.butterflies[0]
        assert figure1.edge_endpoints(butterfly.edges[0]) == (
            butterfly.u1, butterfly.v1,
        )
        assert figure1.edge_endpoints(butterfly.edges[3]) == (
            butterfly.u2, butterfly.v2,
        )


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 100_000), pair_side=st.sampled_from(
    ["auto", "left", "right"]
))
def test_property_matches_brute_force(seed, pair_side):
    """The A1/A2 search finds the exact maximum set on random graphs."""
    graph = random_small_graph(np.random.default_rng(seed), 5, 5)
    expected_weight, expected_keys = brute_force_max(graph)
    search = max_weight_butterflies(graph, pair_side=pair_side)
    if not expected_keys:
        assert not search.found
    else:
        assert search.weight == expected_weight
        assert sorted(b.key for b in search.butterflies) == expected_keys


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 100_000), prune=st.booleans())
def test_property_matches_brute_force_on_worlds(seed, prune):
    """Same equivalence on sampled worlds, with and without pruning."""
    rng = np.random.default_rng(seed)
    graph = random_small_graph(rng, 5, 5)
    mask = rng.random(graph.n_edges) < graph.probs
    expected_weight, expected_keys = brute_force_max(graph, mask)
    order = graph.edges_by_weight_desc
    present_sorted = order[mask[order]]
    search = max_weight_butterflies(graph, present_sorted, prune=prune)
    if not expected_keys:
        assert not search.found
    else:
        assert search.weight == expected_weight
        assert sorted(b.key for b in search.butterflies) == expected_keys
