"""Documentation consistency: tools/check_docs.py and its guarantees."""

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


checker = _load_checker()


class TestRepositoryDocs:
    def test_docs_are_consistent(self):
        assert checker.run_checks() == []

    def test_every_docs_page_exists_and_is_covered(self):
        pages = sorted((REPO_ROOT / "docs").glob("*.md"))
        assert pages, "docs/ must contain pages"
        assert checker.check_readme_covers_docs() == []

    def test_main_exit_code_is_zero(self, capsys):
        assert checker.main() == 0
        assert "OK" in capsys.readouterr().out


class TestCheckerCatchesProblems:
    def test_broken_link_detected(self, tmp_path, monkeypatch):
        (tmp_path / "docs").mkdir()
        (tmp_path / "README.md").write_text(
            "[gone](docs/missing.md)\n", encoding="utf-8"
        )
        monkeypatch.setattr(checker, "REPO_ROOT", tmp_path)
        problems = checker.check_links()
        assert len(problems) == 1
        assert "broken link" in problems[0]

    def test_uncovered_docs_page_detected(self, tmp_path, monkeypatch):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "orphan.md").write_text("x\n", encoding="utf-8")
        (tmp_path / "README.md").write_text("no links\n", encoding="utf-8")
        monkeypatch.setattr(checker, "REPO_ROOT", tmp_path)
        problems = checker.check_readme_covers_docs()
        assert problems == ["README.md does not reference docs/orphan.md"]

    def test_escaping_link_detected(self, tmp_path, monkeypatch):
        (tmp_path / "docs").mkdir()
        (tmp_path / "README.md").write_text(
            "[out](../../etc/passwd)\n", encoding="utf-8"
        )
        monkeypatch.setattr(checker, "REPO_ROOT", tmp_path)
        problems = checker.check_links()
        assert len(problems) == 1
        assert "escapes" in problems[0]

    def test_external_links_and_anchors_ignored(self, tmp_path,
                                                monkeypatch):
        (tmp_path / "docs").mkdir()
        (tmp_path / "README.md").write_text(
            "[a](https://example.org/x.md) [b](#section)\n",
            encoding="utf-8",
        )
        monkeypatch.setattr(checker, "REPO_ROOT", tmp_path)
        assert checker.check_links() == []


class TestCommandLineExtraction:
    def test_continuations_joined(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "```bash\n"
            "python -m repro search g.tsv --method os \\\n"
            "    --trials 100\n"
            "```\n",
            encoding="utf-8",
        )
        lines = checker.fenced_command_lines(page)
        assert lines == [
            "python -m repro search g.tsv --method os --trials 100"
        ]

    def test_prose_outside_fences_ignored(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "use `python -m repro --no-such-flag` casually\n",
            encoding="utf-8",
        )
        assert checker.fenced_command_lines(page) == []

    def test_unknown_documented_flag_detected(self, tmp_path, monkeypatch):
        (tmp_path / "docs").mkdir()
        (tmp_path / "README.md").write_text(
            "```bash\npython -m repro search --no-such-flag\n```\n",
            encoding="utf-8",
        )
        monkeypatch.setattr(
            checker, "doc_files", lambda: [tmp_path / "README.md"]
        )
        problems = checker.check_cli_flags()
        assert len(problems) == 1
        assert "--no-such-flag" in problems[0]

    def test_known_flags_nonempty(self):
        cli_flags, bench_flags, lint_flags = checker.known_flags()
        assert {"--metrics-out", "--trace", "--profile-out",
                "--workers"} <= cli_flags
        assert {"--datasets", "--trials", "--out"} <= bench_flags
        assert {"--select", "--baseline", "--write-baseline",
                "--list-rules"} <= lint_flags

    def test_rule_catalog_matches_registry(self):
        assert checker.check_rule_catalog() == []

    def test_rule_catalog_severity_drift_detected(self, monkeypatch):
        """A table row whose severity disagrees with --list-rules is a
        doc rot bug, not a cosmetic difference."""
        page = REPO_ROOT / "docs" / "static-analysis.md"
        text = page.read_text(encoding="utf-8")
        drifted = text.replace(
            "| `LCK003` | warning |", "| `LCK003` | error |", 1
        )
        assert drifted != text
        monkeypatch.setattr(
            type(page), "read_text", lambda self, **kw: drifted
        )
        problems = checker.check_rule_catalog()
        assert any(
            "LCK003" in problem and "'warning'" in problem
            for problem in problems
        )

    def test_adaptive_docs_in_sync(self):
        assert checker.check_adaptive_docs() == []

    def test_adaptive_metric_dropped_from_page_detected(self, monkeypatch):
        """Removing an adaptive.* mention from either anytime-mode page
        must fail the sync check."""
        page = REPO_ROOT / "docs" / "runtime.md"
        text = page.read_text(encoding="utf-8")
        pruned = text.replace("adaptive.realized_epsilon", "adaptive.gone")
        assert pruned != text
        original = type(page).read_text

        def patched(self, **kw):
            if self.name == "runtime.md":
                return pruned
            return original(self, **kw)

        monkeypatch.setattr(type(page), "read_text", patched)
        problems = checker.check_adaptive_docs()
        assert any(
            "runtime.md" in problem
            and "adaptive.realized_epsilon" in problem
            for problem in problems
        )

    def test_rule_catalog_missing_row_detected(self, monkeypatch):
        page = REPO_ROOT / "docs" / "static-analysis.md"
        text = page.read_text(encoding="utf-8")
        pruned = "\n".join(
            line for line in text.splitlines()
            if not line.startswith("| `ATM001`")
        )
        assert pruned != text
        monkeypatch.setattr(
            type(page), "read_text", lambda self, **kw: pruned
        )
        problems = checker.check_rule_catalog()
        assert any(
            "no row" in problem and "ATM001" in problem
            for problem in problems
        )
