"""Possible-world machinery (Definition 2): sampling and enumeration."""

from .enumerator import (
    DEFAULT_MAX_WORLDS,
    iter_all_worlds,
    iter_subset_worlds,
)
from .possible_world import PossibleWorld
from .sampler import LazyEdgeTrial, WorldSampler

__all__ = [
    "PossibleWorld",
    "WorldSampler",
    "LazyEdgeTrial",
    "iter_all_worlds",
    "iter_subset_worlds",
    "DEFAULT_MAX_WORLDS",
]
