"""Exact enumeration of possible worlds (for small instances).

The number of possible worlds is ``2^|E|``, so plain enumeration is only
viable for toy graphs; the exact MPMB solver therefore enumerates only a
*relevant* subset of edges (those participating in at least one backbone
butterfly — all other edges cannot change ``S_MB`` and marginalise out of
Equation 4).  This module provides the raw subset iterator plus a guarded
budget so callers fail fast instead of hanging.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

import numpy as np

from ..errors import IntractableError
from ..graph import UncertainBipartiteGraph
from .possible_world import PossibleWorld

#: Default cap on enumerated worlds (2^20 ≈ 1e6 subsets).
DEFAULT_MAX_WORLDS = 1 << 20


def iter_all_worlds(
    graph: UncertainBipartiteGraph,
    max_worlds: int = DEFAULT_MAX_WORLDS,
) -> Iterator[PossibleWorld]:
    """Yield every possible world of ``graph`` (all ``2^|E|`` of them).

    Raises:
        IntractableError: If ``2^|E|`` exceeds ``max_worlds``.
    """
    m = graph.n_edges
    _check_budget(m, max_worlds)
    for bits in range(1 << m):
        mask = np.array(
            [(bits >> e) & 1 for e in range(m)], dtype=bool
        )
        yield PossibleWorld(graph, mask)


def iter_subset_worlds(
    graph: UncertainBipartiteGraph,
    relevant_edges: Sequence[int],
    max_worlds: int = DEFAULT_MAX_WORLDS,
) -> Iterator[Tuple[np.ndarray, float]]:
    """Enumerate presence patterns of ``relevant_edges`` with probabilities.

    Each yielded pair is ``(present_mask_over_relevant, probability)``
    where the probability is the product over *relevant* edges only —
    the marginal probability of that pattern, with all irrelevant edges
    summed out.  The masks index into ``relevant_edges`` positionally.

    Raises:
        IntractableError: If ``2^len(relevant_edges)`` exceeds
            ``max_worlds``.
    """
    k = len(relevant_edges)
    _check_budget(k, max_worlds)
    probs = np.array([graph.probs[e] for e in relevant_edges], dtype=float)
    for bits in range(1 << k):
        mask = np.array([(bits >> i) & 1 for i in range(k)], dtype=bool)
        probability = float(
            np.prod(np.where(mask, probs, 1.0 - probs))
        )
        if probability == 0.0:
            continue
        yield mask, probability


def _check_budget(n_bits: int, max_worlds: int) -> None:
    if n_bits >= 63 or (1 << n_bits) > max_worlds:
        raise IntractableError(
            f"exact enumeration over {n_bits} edges needs 2^{n_bits} worlds, "
            f"which exceeds the budget of {max_worlds}; use a sampling "
            "method instead"
        )
