"""Monte-Carlo sampling of possible worlds.

:class:`WorldSampler` draws independent possible worlds with vectorised
Bernoulli sampling — each edge ``e`` is kept with probability ``p(e)``
independently, exactly the process of Definition 2.  It also provides the
*lazy* per-edge sampler used by the OLS sampling phase (Algorithm 5 lines
7 and Algorithm 4 line 7), where a trial touches only the few edges that
candidate butterflies reference.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator

import numpy as np

from ..graph import UncertainBipartiteGraph
from ..sampling.rng import (
    RngLike,
    ensure_rng,
    restore_rng_state,
    rng_state_payload,
)
from .possible_world import PossibleWorld


class WorldSampler:
    """Seeded sampler of possible worlds for one uncertain graph.

    Args:
        graph: The uncertain network.
        rng: Seed or generator.
        antithetic: Draw worlds in antithetic pairs — each uniform vector
            ``u`` is followed by ``1 - u``.  Marginals are unchanged (so
            every estimator stays unbiased) while negatively correlating
            consecutive trials, a classic Monte-Carlo variance-reduction
            technique (an optional extension beyond the paper).
    """

    def __init__(
        self,
        graph: UncertainBipartiteGraph,
        rng: RngLike = None,
        antithetic: bool = False,
    ) -> None:
        self.graph = graph
        self.rng = ensure_rng(rng)
        self.antithetic = antithetic
        self._pending: np.ndarray | None = None

    def sample_mask(self) -> np.ndarray:
        """One boolean edge-presence mask (vectorised Bernoulli draw)."""
        if not self.antithetic:
            return self.rng.random(self.graph.n_edges) < self.graph.probs
        if self._pending is None:
            uniforms = self.rng.random(self.graph.n_edges)
            self._pending = 1.0 - uniforms
        else:
            uniforms = self._pending
            self._pending = None
        return uniforms < self.graph.probs

    def sample_mask_block(self, count: int) -> np.ndarray:
        """A ``(count, n_edges)`` block of edge-presence masks.

        Draws every uniform the block needs in one RNG call, which is the
        batched-kernel fast path (``docs/performance.md``).  The block is
        *stream-equivalent* to ``count`` successive :meth:`sample_mask`
        calls: NumPy's ``Generator.random`` consumes doubles sequentially,
        so one ``(k, n_edges)`` draw reads the exact bits ``k`` separate
        ``(n_edges,)`` draws would, and antithetic pairing — including a
        buffered half-pair in :attr:`_pending` from earlier scalar calls
        or an odd-length block — is carried across the block boundary.
        Consequently the world sequence is identical for every block
        partition of the same trial budget.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        n_edges = self.graph.n_edges
        probs = self.graph.probs
        if not self.antithetic:
            return self.rng.random((count, n_edges)) < probs
        rows = np.empty((count, n_edges), dtype=float)
        filled = 0
        if self._pending is not None:
            rows[0] = self._pending
            self._pending = None
            filled = 1
        fresh = count - filled
        n_pairs, odd = divmod(fresh, 2)
        if fresh:
            uniforms = self.rng.random((n_pairs + odd, n_edges))
            for draw in range(n_pairs):
                rows[filled + 2 * draw] = uniforms[draw]
                rows[filled + 2 * draw + 1] = 1.0 - uniforms[draw]
            if odd:
                rows[count - 1] = uniforms[n_pairs]
                self._pending = 1.0 - uniforms[n_pairs]
        return rows < probs

    def sample_world(self) -> PossibleWorld:
        """One :class:`PossibleWorld`."""
        return PossibleWorld(self.graph, self.sample_mask())

    def sample_worlds(self, count: int) -> Iterator[PossibleWorld]:
        """Generator of ``count`` independent possible worlds."""
        for _ in range(count):
            yield self.sample_world()

    def lazy_trial(self) -> "LazyEdgeTrial":
        """A fresh lazy per-edge sampler sharing this sampler's RNG."""
        return LazyEdgeTrial(self.graph, self.rng)

    def state_payload(self) -> Dict:
        """JSON-serialisable snapshot of the sampler's stream position.

        Covers both the RNG state and the buffered antithetic uniforms,
        so a restored sampler reproduces the exact world sequence an
        uninterrupted run would have drawn (JSON round-trips ``repr``
        floats losslessly).
        """
        return {
            "rng": rng_state_payload(self.rng),
            "pending": (
                None
                if self._pending is None
                else [float(u) for u in self._pending]
            ),
        }

    def restore_state(self, payload: Dict) -> None:
        """Restore a snapshot captured by :meth:`state_payload`."""
        restore_rng_state(self.rng, payload["rng"])
        pending = payload.get("pending")
        self._pending = (
            None if pending is None else np.asarray(pending, dtype=float)
        )


class LazyEdgeTrial:
    """Memoised per-edge Bernoulli sampling within a single trial.

    The OLS sampling phase never materialises a full world: each trial asks
    about at most a few dozen edges (those of the candidate butterflies it
    walks before the weight-order early exit).  This class samples each
    queried edge exactly once per trial, so the answers within a trial are
    mutually consistent — together they describe one possible world
    restricted to the queried edges.

    Attributes:
        n_queries: Total :meth:`edge_present` calls this trial (memoised
            hits included); with :attr:`n_sampled` it yields the lazy
            cache hit rate ``1 - n_sampled / n_queries``.
    """

    __slots__ = ("_graph", "_rng", "_state", "n_queries")

    def __init__(
        self, graph: UncertainBipartiteGraph, rng: np.random.Generator
    ) -> None:
        self._graph = graph
        self._rng = rng
        self._state: Dict[int, bool] = {}
        self.n_queries = 0

    def edge_present(self, edge: int) -> bool:
        """Whether ``edge`` exists in this trial's implicit world."""
        self.n_queries += 1
        state = self._state.get(edge)
        if state is None:
            state = bool(self._rng.random() < self._graph.probs[edge])
            self._state[edge] = state
        return state

    def force_present(self, edges: Iterable[int]) -> None:
        """Condition this trial's world on the given edges being present.

        Used by the Karp–Luby estimator (Algorithm 4 line 7), which samples
        a world *given* that a chosen butterfly's extra edges exist.

        Raises:
            ValueError: If an edge was already sampled absent — the caller
                must force edges before querying them.
        """
        for edge in edges:
            previous = self._state.get(edge)
            if previous is False:
                raise ValueError(
                    f"edge {edge} was already sampled absent; conditioning "
                    "must happen before the edge is queried"
                )
            self._state[edge] = True

    def all_present(self, edges: Iterable[int]) -> bool:
        """Whether every edge in ``edges`` exists in this trial's world."""
        return all(self.edge_present(e) for e in edges)

    @property
    def n_sampled(self) -> int:
        """How many distinct edges this trial has touched."""
        return len(self._state)
