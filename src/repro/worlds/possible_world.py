"""Possible worlds of an uncertain bipartite network (Definition 2).

A possible world keeps every vertex of the source graph and an
edge-presence mask; its probability is the product of ``p(e)`` over
present edges times ``1 - p(e)`` over absent ones (Equation 1).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..graph import UncertainBipartiteGraph


class PossibleWorld:
    """One deterministic instantiation ``W ⊆ H`` of an uncertain graph.

    Attributes:
        graph: The source uncertain graph.
        present: Boolean mask over edge indices; ``present[e]`` means edge
            ``e`` exists in this world.
    """

    __slots__ = ("graph", "present", "_adj_left", "_adj_right")

    def __init__(self, graph: UncertainBipartiteGraph, present: np.ndarray) -> None:
        present = np.asarray(present, dtype=bool)
        if present.shape != (graph.n_edges,):
            raise ValueError(
                f"mask length {present.shape} does not match |E|={graph.n_edges}"
            )
        self.graph = graph
        self.present = present
        self._adj_left: List[List[Tuple[int, int]]] | None = None
        self._adj_right: List[List[Tuple[int, int]]] | None = None

    @property
    def n_present(self) -> int:
        """Number of edges present in this world."""
        return int(self.present.sum())

    def probability(self) -> float:
        """``Pr(W)`` per Equation 1.

        Note that for graphs with many edges this underflows to 0.0 in
        float64; use :meth:`log_probability` when comparing worlds.
        """
        probs = self.graph.probs
        return float(
            np.prod(np.where(self.present, probs, 1.0 - probs))
        )

    def log_probability(self) -> float:
        """Natural log of ``Pr(W)``; ``-inf`` for impossible worlds."""
        probs = self.graph.probs
        terms = np.where(self.present, probs, 1.0 - probs)
        with np.errstate(divide="ignore"):
            return float(np.log(terms).sum())

    def adjacency_left(self) -> List[List[Tuple[int, int]]]:
        """World-restricted adjacency ``left vertex -> [(right, edge)]``."""
        if self._adj_left is None:
            self._build_adjacency()
        return self._adj_left  # type: ignore[return-value]

    def adjacency_right(self) -> List[List[Tuple[int, int]]]:
        """World-restricted adjacency ``right vertex -> [(left, edge)]``."""
        if self._adj_right is None:
            self._build_adjacency()
        return self._adj_right  # type: ignore[return-value]

    def _build_adjacency(self) -> None:
        graph = self.graph
        adj_left: List[List[Tuple[int, int]]] = [
            [] for _ in range(graph.n_left)
        ]
        adj_right: List[List[Tuple[int, int]]] = [
            [] for _ in range(graph.n_right)
        ]
        edge_left = graph.edge_left
        edge_right = graph.edge_right
        for e in np.flatnonzero(self.present):
            e = int(e)
            u = int(edge_left[e])
            v = int(edge_right[e])
            adj_left[u].append((v, e))
            adj_right[v].append((u, e))
        self._adj_left = adj_left
        self._adj_right = adj_right

    def contains_edges(self, edges) -> bool:
        """Whether every edge index in ``edges`` is present."""
        return all(self.present[e] for e in edges)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<PossibleWorld {self.n_present}/{self.graph.n_edges} edges>"
        )
