"""Butterfly counting and enumeration with vertex priority (BFC-VP [50]).

This is the deterministic substrate the MC-VP baseline (Algorithm 1) runs
per sampled world, and also the backbone butterfly lister used by the
exact solvers.  The vertex-priority scheme guarantees each butterfly is
visited exactly once: a butterfly is discovered only from its
highest-priority vertex, walking two hops through strictly-lower-priority
vertices.

All functions accept an optional *global adjacency* — a list indexed by
global vertex id (left vertices first, then right vertices offset by
``|L|``) whose entries are ``(global neighbour id, edge index)`` pairs —
so the same code serves both the backbone graph and a sampled possible
world.
"""

from __future__ import annotations

from collections import defaultdict
from itertools import combinations
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..graph import UncertainBipartiteGraph, degree_priority
from ..worlds import PossibleWorld
from .model import Butterfly

GlobalAdjacency = List[List[Tuple[int, int]]]


def global_adjacency(graph: UncertainBipartiteGraph) -> GlobalAdjacency:
    """Backbone adjacency over global vertex ids."""
    offset = graph.n_left
    adjacency: GlobalAdjacency = [[] for _ in range(graph.n_vertices)]
    for u, entries in enumerate(graph.adjacency_left):
        for v, edge in entries:
            adjacency[u].append((offset + v, edge))
            adjacency[offset + v].append((u, edge))
    return adjacency


def world_global_adjacency(world: PossibleWorld) -> GlobalAdjacency:
    """World-restricted adjacency over global vertex ids."""
    graph = world.graph
    offset = graph.n_left
    adjacency: GlobalAdjacency = [[] for _ in range(graph.n_vertices)]
    edge_left = graph.edge_left
    edge_right = graph.edge_right
    for e in np.flatnonzero(world.present):
        e = int(e)
        u = int(edge_left[e])
        v = offset + int(edge_right[e])
        adjacency[u].append((v, e))
        adjacency[v].append((u, e))
    return adjacency


def iter_angle_groups(
    adjacency: GlobalAdjacency,
    priority: np.ndarray,
) -> Iterator[Tuple[int, int, List[Tuple[int, int, int]]]]:
    """Yield per-endpoint-pair angle groups, each butterfly source.

    For each start vertex ``x`` (the highest-priority corner) and each
    two-hop endpoint ``z`` reached through strictly-lower-priority
    intermediates, yields ``(x, z, angles)`` where each angle is
    ``(middle, edge_x_middle, edge_middle_z)``.  Every butterfly
    corresponds to exactly one unordered pair of angles within exactly one
    yielded group.
    """
    n = len(adjacency)
    for x in range(n):
        px = priority[x]
        groups: Dict[int, List[Tuple[int, int, int]]] = defaultdict(list)
        for y, edge_xy in adjacency[x]:
            if px <= priority[y]:
                continue
            for z, edge_yz in adjacency[y]:
                if z == x or px <= priority[z]:
                    continue
                groups[z].append((y, edge_xy, edge_yz))
        for z, angles in groups.items():
            if len(angles) >= 2:
                yield x, z, angles


def count_butterflies(
    graph: UncertainBipartiteGraph,
    adjacency: Optional[GlobalAdjacency] = None,
    priority: Optional[np.ndarray] = None,
) -> int:
    """Exact butterfly count via BFC-VP.

    Args:
        graph: The (backbone) graph; used for priorities when ``priority``
            is not supplied.
        adjacency: Optional global adjacency (e.g. of a sampled world);
            defaults to the backbone adjacency.
        priority: Optional priority array; defaults to
            :func:`~repro.graph.priority.degree_priority` of ``graph``.
    """
    if adjacency is None:
        adjacency = global_adjacency(graph)
    if priority is None:
        priority = degree_priority(graph)
    total = 0
    for _x, _z, angles in iter_angle_groups(adjacency, priority):
        k = len(angles)
        total += k * (k - 1) // 2
    return total


def enumerate_butterflies(
    graph: UncertainBipartiteGraph,
    adjacency: Optional[GlobalAdjacency] = None,
    priority: Optional[np.ndarray] = None,
) -> Iterator[Butterfly]:
    """Enumerate every butterfly exactly once via BFC-VP.

    Yields canonical :class:`~repro.butterfly.model.Butterfly` objects with
    weights computed from ``graph``'s edge weights.
    """
    if adjacency is None:
        adjacency = global_adjacency(graph)
    if priority is None:
        priority = degree_priority(graph)
    offset = graph.n_left
    weights = graph.weights
    for x, z, angles in iter_angle_groups(adjacency, priority):
        for (m1, e1a, e1b), (m2, e2a, e2b) in combinations(angles, 2):
            yield assemble_butterfly(
                x, z, m1, m2, (e1a, e1b, e2a, e2b), offset, weights
            )


def assemble_butterfly(
    x: int,
    z: int,
    m1: int,
    m2: int,
    edge_quad: Tuple[int, int, int, int],
    offset: int,
    weights: np.ndarray,
) -> Butterfly:
    """Canonicalise one (endpoint pair, two middles) match into a Butterfly."""
    e1a, e1b, e2a, e2b = edge_quad
    if x < offset:
        # Endpoints are left vertices; middles are right vertices.
        mapping = {
            (x, m1 - offset): e1a,
            (z, m1 - offset): e1b,
            (x, m2 - offset): e2a,
            (z, m2 - offset): e2b,
        }
        u1, u2 = sorted((x, z))
        v1, v2 = sorted((m1 - offset, m2 - offset))
    else:
        # Endpoints are right vertices; middles are left vertices.
        mapping = {
            (m1, x - offset): e1a,
            (m1, z - offset): e1b,
            (m2, x - offset): e2a,
            (m2, z - offset): e2b,
        }
        u1, u2 = sorted((m1, m2))
        v1, v2 = sorted((x - offset, z - offset))
    edges = (
        mapping[(u1, v1)],
        mapping[(u1, v2)],
        mapping[(u2, v1)],
        mapping[(u2, v2)],
    )
    weight = float(sum(weights[e] for e in edges))
    return Butterfly(u1, u2, v1, v2, weight, edges)


def brute_force_butterflies(
    graph: UncertainBipartiteGraph,
    world: Optional[PossibleWorld] = None,
) -> List[Butterfly]:
    """Reference enumerator: all butterflies by pairwise neighbourhood
    intersection.  Quadratic in ``|L|`` — test/benchmark oracle only.
    """
    if world is None:
        adjacency = graph.adjacency_left
    else:
        adjacency = world.adjacency_left()
    weights = graph.weights
    neighbour_maps = [dict(entries) for entries in adjacency]
    result: List[Butterfly] = []
    for u1 in range(graph.n_left):
        map1 = neighbour_maps[u1]
        if len(map1) < 2:
            continue
        for u2 in range(u1 + 1, graph.n_left):
            map2 = neighbour_maps[u2]
            common = sorted(set(map1) & set(map2))
            for i, v1 in enumerate(common):
                for v2 in common[i + 1:]:
                    edges = (map1[v1], map1[v2], map2[v1], map2[v2])
                    weight = float(sum(weights[e] for e in edges))
                    result.append(
                        Butterfly(u1, u2, v1, v2, weight, edges)
                    )
    return result
