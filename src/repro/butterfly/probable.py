"""Most probable butterflies (the Figure 2(a) notion), deterministically.

The butterfly with the highest *existence* probability — as opposed to
the highest probability of being *maximum* (the MPMB) — is computable in
polynomial time: maximising ``Π p(e)`` over a butterfly's four edges is
maximising ``Σ log p(e)``, i.e. a maximum-weight butterfly search under
the monotone weight transform ``w'(e) = log p(e) − log p_min + δ``
(shifted so all transformed weights are strictly positive, which the
Section V machinery requires).  Edges with ``p = 0`` can never appear in
an existing butterfly and are dropped before the transform.

This gives the exact object the paper's Figure 2(a) discusses — the
plain UserCF-style "most probable butterfly" that gravitates to hot
items — without any sampling.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..graph import UncertainBipartiteGraph
from .model import Butterfly, make_butterfly
from .top_weight import top_weight_butterflies

#: Positive offset keeping transformed weights strictly positive.
_DELTA = 1.0


def most_probable_butterflies(
    graph: UncertainBipartiteGraph,
    k: int = 1,
) -> List[Tuple[Butterfly, float]]:
    """The ``k`` butterflies with the highest existence probability.

    Args:
        graph: The uncertain bipartite network.
        k: How many butterflies to return (fewer when the backbone holds
            fewer butterflies with positive probability).

    Returns:
        ``(butterfly, Pr[E(B)])`` pairs, most probable first; butterflies
        reference the *original* graph's edge indices and weights.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    transformed = _log_transformed(graph)
    if transformed is None:
        return []
    surrogate, original_edge_of = transformed
    ranked = top_weight_butterflies(surrogate, k)
    results: List[Tuple[Butterfly, float]] = []
    for proxy in ranked:
        original = make_butterfly(
            graph, proxy.u1, proxy.u2, proxy.v1, proxy.v2
        )
        # The surrogate shares vertex indexing with the original, and a
        # surrogate butterfly's edges all have p > 0, so the original
        # butterfly must exist.
        assert original is not None
        results.append(
            (original, original.existence_probability(graph))
        )
    # The log transform preserves the probability order; re-sorting only
    # normalises tie-breaks to (probability desc, canonical key).
    results.sort(key=lambda item: (-item[1], item[0].key))
    del original_edge_of  # kept for symmetry/debugging; not needed here
    return results


def most_probable_butterfly(
    graph: UncertainBipartiteGraph,
) -> Optional[Tuple[Butterfly, float]]:
    """The single most probable butterfly (``None`` when none exists)."""
    ranked = most_probable_butterflies(graph, 1)
    return ranked[0] if ranked else None


def _log_transformed(graph: UncertainBipartiteGraph):
    """Build the log-probability surrogate graph.

    Returns ``(surrogate, original_edge_of)`` where ``original_edge_of``
    maps surrogate edge indices back to the source graph, or ``None``
    when no edge has positive probability.
    """
    probs = graph.probs
    keep = np.flatnonzero(probs > 0.0)
    if keep.size == 0:
        return None
    kept_probs = probs[keep]
    log_probs = np.log(kept_probs)
    weights = log_probs - log_probs.min() + _DELTA
    surrogate = UncertainBipartiteGraph(
        graph.left_labels,
        graph.right_labels,
        graph.edge_left[keep],
        graph.edge_right[keep],
        weights,
        kept_probs,
        name=f"{graph.name}-logprob" if graph.name else "logprob",
    )
    return surrogate, keep
