"""Maximum-weight butterfly search with the A1/A2 angle index (Section V).

This module implements the per-trial core of the Ordering Sampling method:

* **Edge ordering** (Section V-B): edges are consumed in weight-descending
  order, and once ``w(e) + w̄ < w_max`` (``w̄`` = sum of the three largest
  backbone weights) every remaining edge is pruned.
* **Angle ordering** (Section V-C): per endpoint pair only the largest
  (``A1``) and second-largest (``A2``) angle weight classes are stored,
  following the Table II update rules.
* **Fast butterfly creating** (Section V-D): only butterflies reaching the
  final ``w_max`` are materialised — all pairs within ``A1`` when
  ``|A1| ≥ 2``, otherwise ``A1 × A2`` matches.

The same routine doubles as the deterministic maximum-weight butterfly
solver for backbone graphs (all edges present).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..graph import UncertainBipartiteGraph
from .model import Butterfly

#: Angle record inside the index: (middle vertex, edge of pair-min vertex,
#: edge of pair-max vertex).  "pair-min/max" refers to the sorted endpoint
#: pair the angle belongs to.
AngleRecord = Tuple[int, int, int]

#: Relative tolerance for weight-class membership.  Angle weights are
#: sums of two edge weights and butterfly weights sums of four, so two
#: mathematically equal weights can differ by a few ulps depending on
#: the order the additions happened in; exact ``==`` would then split
#: one ``A1`` class into ``A1``/``A2`` and silently drop members of
#: ``S_MB``.  A few-ulp budget on float64 sums is well below 1e-9
#: relative, while genuinely distinct input weights are far above it.
WEIGHT_RTOL = 1e-9


def weights_equal(a: float, b: float) -> bool:
    """Whether two summed weights are equal up to :data:`WEIGHT_RTOL`."""
    if a == b:
        return True
    # The -inf sentinel of an empty A2 class must not swallow finite
    # weights: rtol * inf == inf would make everything "equal" to it.
    if not (np.isfinite(a) and np.isfinite(b)):
        return False
    return abs(a - b) <= WEIGHT_RTOL * max(abs(a), abs(b))


class TopTwoAngleIndex:
    """Per-endpoint-pair store of the two largest angle weight classes.

    ``A1`` holds every angle whose weight equals the largest seen for the
    pair; ``A2`` the second-largest class (Table II).  Endpoint pairs are
    keyed by sorted vertex-index tuples on the *pair side* (the partition
    the butterfly's equal-side vertices live in).
    """

    __slots__ = ("_entries", "n_angles_seen")

    def __init__(self) -> None:
        # pair -> [w1, angles1, w2, angles2]; w2 < w1 always.
        self._entries: Dict[Tuple[int, int], list] = {}
        self.n_angles_seen = 0

    def add(
        self, pair: Tuple[int, int], weight: float, record: AngleRecord
    ) -> float:
        """Insert one angle; return the pair's best butterfly weight so far.

        The return value is ``-inf`` while the pair cannot yet form a
        butterfly (fewer than two stored angles).
        """
        self.n_angles_seen += 1
        entry = self._entries.get(pair)
        if entry is None:
            self._entries[pair] = [weight, [record], -np.inf, []]
            return -np.inf
        w1, angles1, w2, angles2 = entry
        # Tolerant class membership runs before the strict orderings so
        # float-noise-equal weights join the class they belong to
        # instead of splitting it (see WEIGHT_RTOL).
        if weights_equal(weight, w1):
            angles1.append(record)
        elif weight > w1:
            entry[0] = weight
            entry[1] = [record]
            entry[2] = w1
            entry[3] = angles1
        elif weights_equal(weight, w2):
            angles2.append(record)
        elif weight > w2:
            entry[2] = weight
            entry[3] = [record]
        # else: strictly below both classes — ignored (Table II last row).
        return self.best_weight(pair)

    def best_weight(self, pair: Tuple[int, int]) -> float:
        """Best butterfly weight formable from this pair's stored angles."""
        entry = self._entries.get(pair)
        if entry is None:
            return -np.inf
        w1, angles1, w2, angles2 = entry
        if len(angles1) >= 2:
            return 2.0 * w1
        if angles2:
            return w1 + w2
        return -np.inf

    def iter_pairs(self) -> Iterable[Tuple[Tuple[int, int], list]]:
        """Iterate ``(pair, [w1, angles1, w2, angles2])`` entries."""
        return self._entries.items()

    @property
    def n_pairs(self) -> int:
        """Number of endpoint pairs with at least one stored angle."""
        return len(self._entries)

    @property
    def n_angles_stored(self) -> int:
        """Angles currently held across all ``A1``/``A2`` classes."""
        return sum(
            len(entry[1]) + len(entry[3]) for entry in self._entries.values()
        )


@dataclass
class MaxButterflySearch:
    """Result of one maximum-weight butterfly search.

    Attributes:
        weight: The maximum butterfly weight, or ``0.0`` when the searched
            edge set contains no butterfly.
        butterflies: Every butterfly achieving ``weight`` (the ``S_MB`` of
            Equation 3); empty when no butterfly exists.
        n_edges_processed: Edges consumed before the prune fired.
        n_angles_processed: Angles generated (cost driver of Lemma V.1).
        n_angles_stored: Angles resident in the A1/A2 index at the end.
        pruned: Whether the Section V-B early exit fired.
    """

    weight: float = 0.0
    butterflies: List[Butterfly] = field(default_factory=list)
    n_edges_processed: int = 0
    n_angles_processed: int = 0
    n_angles_stored: int = 0
    pruned: bool = False

    @property
    def found(self) -> bool:
        """Whether at least one butterfly exists in the searched edges."""
        return bool(self.butterflies)


def max_weight_butterflies(
    graph: UncertainBipartiteGraph,
    present_edges: Optional[Iterable[int]] = None,
    prune: bool = True,
    pair_side: str = "auto",
) -> MaxButterflySearch:
    """Find ``S_MB`` over a set of present edges (Algorithm 2 lines 6-20).

    Args:
        graph: The uncertain graph supplying weights and endpoints.
        present_edges: Edge indices present in the world, **sorted by
            weight descending** (e.g. a filtered
            ``graph.edges_by_weight_desc``).  ``None`` means all edges —
            the backbone maximum-weight butterfly search.
        prune: Apply the Section V-B edge-ordering early exit.  Requires
            ``present_edges`` to be weight-sorted; disable for ablation.
        pair_side: ``"left"`` forms endpoint pairs on the left partition
            (angles have right-side middles), ``"right"`` the opposite,
            ``"auto"`` picks the side minimising the expected
            squared-degree cost of Lemma V.1.

    Returns:
        A :class:`MaxButterflySearch` with the maximum weight, all
        butterflies achieving it, and instrumentation counters.
    """
    weights = graph.weights
    if present_edges is None:
        present_edges = graph.edges_by_weight_desc
    side = _resolve_side(graph, pair_side)
    if side == "left":
        pair_of = graph.edge_left
        middle_of = graph.edge_right
    else:
        pair_of = graph.edge_right
        middle_of = graph.edge_left

    prune_bound = graph.top_weight_sum(3) if prune else None
    index = TopTwoAngleIndex()
    # middle vertex -> list of (pair vertex, edge) already inserted.
    inserted: Dict[int, List[Tuple[int, int]]] = {}
    w_max = -np.inf
    result = MaxButterflySearch()

    for e in present_edges:
        e = int(e)
        w_e = float(weights[e])
        if prune_bound is not None and w_e + prune_bound < w_max:
            result.pruned = True
            break
        result.n_edges_processed += 1
        u = int(pair_of[e])
        v = int(middle_of[e])
        bucket = inserted.get(v)
        if bucket:
            for u_other, e_other in bucket:
                angle_weight = w_e + float(weights[e_other])
                if u < u_other:
                    pair = (u, u_other)
                    record = (v, e, e_other)
                else:
                    pair = (u_other, u)
                    record = (v, e_other, e)
                result.n_angles_processed += 1
                best = index.add(pair, angle_weight, record)
                if best > w_max:
                    w_max = best
            bucket.append((u, e))
        else:
            inserted[v] = [(u, e)]

    result.n_angles_stored = index.n_angles_stored
    if w_max == -np.inf:
        return result

    result.weight = float(w_max)
    result.butterflies = _materialise(graph, index, w_max, side)
    return result


def _materialise(
    graph: UncertainBipartiteGraph,
    index: TopTwoAngleIndex,
    w_max: float,
    side: str,
) -> List[Butterfly]:
    """Fast butterfly creating (Section V-D): build only ``S_MB``."""
    weights = graph.weights
    butterflies: List[Butterfly] = []
    for pair, (w1, angles1, w2, angles2) in index.iter_pairs():
        if len(angles1) >= 2:
            if weights_equal(2.0 * w1, w_max):
                for rec_a, rec_b in combinations(angles1, 2):
                    butterflies.append(
                        _build(graph, pair, rec_a, rec_b, side, weights)
                    )
        elif angles2 and weights_equal(w1 + w2, w_max):
            rec_a = angles1[0]
            for rec_b in angles2:
                butterflies.append(
                    _build(graph, pair, rec_a, rec_b, side, weights)
                )
    return butterflies


def _build(
    graph: UncertainBipartiteGraph,
    pair: Tuple[int, int],
    rec_a: AngleRecord,
    rec_b: AngleRecord,
    side: str,
    weights: np.ndarray,
) -> Butterfly:
    """Assemble a canonical butterfly from two angle records of one pair."""
    middle_a, a_min_edge, a_max_edge = rec_a
    middle_b, b_min_edge, b_max_edge = rec_b
    if side == "left":
        u1, u2 = pair
        if middle_a < middle_b:
            v1, v2 = middle_a, middle_b
            edges = (a_min_edge, b_min_edge, a_max_edge, b_max_edge)
        else:
            v1, v2 = middle_b, middle_a
            edges = (b_min_edge, a_min_edge, b_max_edge, a_max_edge)
    else:
        v1, v2 = pair
        if middle_a < middle_b:
            u1, u2 = middle_a, middle_b
            edges = (a_min_edge, a_max_edge, b_min_edge, b_max_edge)
        else:
            u1, u2 = middle_b, middle_a
            edges = (b_min_edge, b_max_edge, a_min_edge, a_max_edge)
    weight = float(sum(weights[e] for e in edges))
    return Butterfly(u1, u2, v1, v2, weight, edges)


def _resolve_side(graph: UncertainBipartiteGraph, pair_side: str) -> str:
    """Resolve ``"auto"`` to the cheaper processing side (Lemma V.1)."""
    if pair_side in ("left", "right"):
        return pair_side
    if pair_side != "auto":
        raise ConfigurationError(
            f"pair_side must be 'left', 'right' or 'auto', got {pair_side!r}"
        )
    # Angles with a middle vertex v cost ~deg^2(v); middles live on the
    # side *opposite* the pair side, so pick the pair side whose opposite
    # has the smaller expected squared degree mass.
    left_cost = float((graph.expected_degrees_left() ** 2).sum())
    right_cost = float((graph.expected_degrees_right() ** 2).sum())
    # pair_side == "left" means middles on the right.
    return "left" if right_cost <= left_cost else "right"
