"""Top-k heaviest butterflies on a deterministic edge set.

A natural generalisation of the Section V search: instead of only the
maximum-weight butterflies, return the ``k`` heaviest ones.  The angle
index keeps the top ``k+1`` angles per endpoint pair (the k heaviest
butterflies of a pair combine angles among its ``k+1`` heaviest — the
same exchange argument as the paper's A1/A2 proof, applied k times), and
the edge-ordering prune compares against the *k-th best* butterfly found
so far rather than the single maximum.

The OLS preparing phase can seed its candidate set with these
butterflies (see :func:`repro.core.ols.prepare_candidates`): a heavier
butterfly missing from ``C_MB`` is exactly what drives the Lemma VI.5
overestimation, and the heaviest backbone butterflies are the worst
offenders.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import ConfigurationError
from ..graph import UncertainBipartiteGraph
from .max_weight import _resolve_side
from .model import Butterfly


def top_weight_butterflies(
    graph: UncertainBipartiteGraph,
    k: int,
    present_edges: Optional[Iterable[int]] = None,
    prune: bool = True,
    pair_side: str = "auto",
) -> List[Butterfly]:
    """The ``k`` heaviest butterflies, weight-descending.

    Args:
        graph: The uncertain graph (weights only are used).
        k: How many butterflies to return (fewer if the graph holds
            fewer).  The returned *weights* are exactly the k largest
            butterfly weights; when several butterflies tie at the k-th
            weight, which of them fills the last slots is deterministic
            per graph but not globally canonical (the per-pair angle
            index keeps only ``k+1`` angles, enough for the weights but
            not for every tied identity).
        present_edges: Edge indices **sorted by weight descending**;
            ``None`` means the whole backbone.
        prune: Section V-B style early exit against the current k-th
            best weight.
        pair_side: As in
            :func:`~repro.butterfly.max_weight.max_weight_butterflies`.

    Returns:
        At most ``k`` canonical butterflies, heaviest first (ties broken
        by canonical key ascending).
    """
    if k <= 0:
        raise ConfigurationError(f"k must be positive, got {k}")
    weights = graph.weights
    if present_edges is None:
        present_edges = graph.edges_by_weight_desc
    side = _resolve_side(graph, pair_side)
    if side == "left":
        pair_of, middle_of = graph.edge_left, graph.edge_right
    else:
        pair_of, middle_of = graph.edge_right, graph.edge_left
    prune_bound = graph.top_weight_sum(3) if prune else None

    # Per endpoint pair: the k+1 heaviest angles as a min-heap of
    # (weight, middle, edge_lo, edge_hi).
    per_pair: Dict[Tuple[int, int], List[Tuple[float, int, int, int]]] = {}
    inserted: Dict[int, List[Tuple[int, int]]] = {}
    # Global top-k butterfly weights as a min-heap (guides the prune).
    best_weights: List[float] = []

    def kth_best() -> float:
        if len(best_weights) < k:
            return float("-inf")
        return best_weights[0]

    for e in present_edges:
        e = int(e)
        w_e = float(weights[e])
        if prune_bound is not None and w_e + prune_bound < kth_best():
            break
        u = int(pair_of[e])
        v = int(middle_of[e])
        bucket = inserted.setdefault(v, [])
        for u_other, e_other in bucket:
            angle_weight = w_e + float(weights[e_other])
            if u < u_other:
                pair, record = (u, u_other), (angle_weight, v, e, e_other)
            else:
                pair, record = (u_other, u), (angle_weight, v, e_other, e)
            angles = per_pair.setdefault(pair, [])
            # Track candidate butterfly weights from this new angle
            # against the currently stored ones.
            for other_weight, *_rest in angles:
                butterfly_weight = angle_weight + other_weight
                if len(best_weights) < k:
                    heapq.heappush(best_weights, butterfly_weight)
                elif butterfly_weight > best_weights[0]:
                    heapq.heapreplace(best_weights, butterfly_weight)
            if len(angles) <= k:
                heapq.heappush(angles, record)
            elif angle_weight > angles[0][0]:
                heapq.heapreplace(angles, record)
        bucket.append((u, e))

    # Materialise every candidate combination and take the global top-k.
    candidates: List[Butterfly] = []
    for pair, angles in per_pair.items():
        ordered = sorted(angles, key=lambda a: -a[0])
        for i, rec_a in enumerate(ordered):
            for rec_b in ordered[i + 1:]:
                candidates.append(_build(graph, pair, rec_a, rec_b, side))
    candidates.sort(key=lambda b: (-b.weight, b.key))
    deduped: List[Butterfly] = []
    seen = set()
    for butterfly in candidates:
        if butterfly.key in seen:
            continue
        seen.add(butterfly.key)
        deduped.append(butterfly)
        if len(deduped) == k:
            break
    return deduped


def _build(
    graph: UncertainBipartiteGraph,
    pair: Tuple[int, int],
    rec_a: Tuple[float, int, int, int],
    rec_b: Tuple[float, int, int, int],
    side: str,
) -> Butterfly:
    """Assemble a canonical butterfly from two (weight, middle, lo, hi)
    angle records of one endpoint pair."""
    _wa, middle_a, a_lo, a_hi = rec_a
    _wb, middle_b, b_lo, b_hi = rec_b
    weights = graph.weights
    if side == "left":
        u1, u2 = pair
        if middle_a < middle_b:
            v1, v2 = middle_a, middle_b
            edges = (a_lo, b_lo, a_hi, b_hi)
        else:
            v1, v2 = middle_b, middle_a
            edges = (b_lo, a_lo, b_hi, a_hi)
    else:
        v1, v2 = pair
        if middle_a < middle_b:
            u1, u2 = middle_a, middle_b
            edges = (a_lo, a_hi, b_lo, b_hi)
        else:
            u1, u2 = middle_b, middle_a
            edges = (b_lo, b_hi, a_lo, a_hi)
    weight = float(sum(weights[e] for e in edges))
    return Butterfly(u1, u2, v1, v2, weight, edges)
