"""Value types for angles and butterflies (Definitions 3-4).

A butterfly ``B(u1, u2, v1, v2)`` is canonicalised so that ``u1 < u2`` and
``v1 < v2`` (internal vertex indices); two butterflies over the same four
vertices therefore compare and hash equal regardless of discovery order.
Weights are the sum of the four edge weights (Equation 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional, Tuple

from ..graph import UncertainBipartiteGraph

#: Canonical butterfly key: (u1, u2, v1, v2) with u1 < u2 and v1 < v2.
ButterflyKey = Tuple[int, int, int, int]


@dataclass(frozen=True, slots=True)
class Angle:
    """A 3-vertex path ``∠(a, middle, b)`` (Definition 3).

    ``a`` and ``b`` are the endpoint vertex indices (same partition,
    ``a < b``); ``middle`` lies in the opposite partition.  ``edge_a`` and
    ``edge_b`` are the edge indices connecting ``a``/``b`` to the middle.
    """

    a: int
    b: int
    middle: int
    edge_a: int
    edge_b: int
    weight: float


@dataclass(frozen=True, slots=True)
class Butterfly:
    """A canonical butterfly ``B(u1, u2, v1, v2)`` with its edge indices.

    Attributes:
        u1, u2: Left-partition vertex indices, ``u1 < u2``.
        v1, v2: Right-partition vertex indices, ``v1 < v2``.
        weight: Sum of the four edge weights (Equation 2).
        edges: Edge indices in the fixed order
            ``(u1-v1, u1-v2, u2-v1, u2-v2)``.
    """

    u1: int
    u2: int
    v1: int
    v2: int
    weight: float
    edges: Tuple[int, int, int, int]

    @property
    def key(self) -> ButterflyKey:
        """Canonical identity — the four vertex indices."""
        return (self.u1, self.u2, self.v1, self.v2)

    def labels(
        self, graph: UncertainBipartiteGraph
    ) -> Tuple[Hashable, Hashable, Hashable, Hashable]:
        """The four vertex labels ``(u1, u2, v1, v2)``."""
        return (
            graph.left_label(self.u1),
            graph.left_label(self.u2),
            graph.right_label(self.v1),
            graph.right_label(self.v2),
        )

    def existence_probability(self, graph: UncertainBipartiteGraph) -> float:
        """``Pr[E(B)]`` — the probability that all four edges exist."""
        probs = graph.probs
        result = 1.0
        for edge in self.edges:
            result *= float(probs[edge])
        return result

    def edge_set(self) -> frozenset:
        """The four edge indices as a frozenset (for ``B_j \\ B_i`` algebra)."""
        return frozenset(self.edges)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"B(u{self.u1},u{self.u2},v{self.v1},v{self.v2}; "
            f"w={self.weight:g})"
        )


def make_butterfly(
    graph: UncertainBipartiteGraph,
    u1: int,
    u2: int,
    v1: int,
    v2: int,
) -> Optional[Butterfly]:
    """Construct the canonical butterfly on four vertex indices.

    Returns ``None`` when any of the four required backbone edges is
    missing, or when the vertices are degenerate (``u1 == u2`` or
    ``v1 == v2``).
    """
    if u1 == u2 or v1 == v2:
        return None
    if u1 > u2:
        u1, u2 = u2, u1
    if v1 > v2:
        v1, v2 = v2, v1
    e11 = graph.edge_between(u1, v1)
    e12 = graph.edge_between(u1, v2)
    e21 = graph.edge_between(u2, v1)
    e22 = graph.edge_between(u2, v2)
    if None in (e11, e12, e21, e22):
        return None
    edges = (e11, e12, e21, e22)
    weights = graph.weights
    weight = float(sum(weights[e] for e in edges))
    return Butterfly(u1, u2, v1, v2, weight, edges)  # type: ignore[arg-type]


def butterfly_from_labels(
    graph: UncertainBipartiteGraph,
    u1: Hashable,
    u2: Hashable,
    v1: Hashable,
    v2: Hashable,
) -> Optional[Butterfly]:
    """Label-level convenience wrapper around :func:`make_butterfly`."""
    return make_butterfly(
        graph,
        graph.left_index(u1),
        graph.left_index(u2),
        graph.right_index(v1),
        graph.right_index(v2),
    )
