"""Butterfly algorithms on deterministic structure (Definitions 3-4).

* :class:`Butterfly` / :class:`Angle` — canonical value types.
* :func:`count_butterflies`, :func:`enumerate_butterflies` — BFC-VP [50].
* :func:`max_weight_butterflies` — the Section V weight-ordered search
  with the A1/A2 angle index (the per-trial core of Ordering Sampling).
* :func:`brute_force_butterflies` — quadratic reference oracle.
"""

from .bfc_vp import (
    brute_force_butterflies,
    count_butterflies,
    enumerate_butterflies,
    global_adjacency,
    world_global_adjacency,
)
from .max_weight import (
    MaxButterflySearch,
    TopTwoAngleIndex,
    max_weight_butterflies,
)
from .probable import most_probable_butterflies, most_probable_butterfly
from .top_weight import top_weight_butterflies
from .model import (
    Angle,
    Butterfly,
    ButterflyKey,
    butterfly_from_labels,
    make_butterfly,
)

__all__ = [
    "Angle",
    "Butterfly",
    "ButterflyKey",
    "make_butterfly",
    "butterfly_from_labels",
    "count_butterflies",
    "enumerate_butterflies",
    "brute_force_butterflies",
    "global_adjacency",
    "world_global_adjacency",
    "MaxButterflySearch",
    "TopTwoAngleIndex",
    "max_weight_butterflies",
    "top_weight_butterflies",
    "most_probable_butterflies",
    "most_probable_butterfly",
]
