"""Named dataset registry used by the benchmarks and experiments.

Each of the four paper datasets has two profiles:

* ``"paper"`` — the Table III shape (full size).  Feasible for ABIDE
  (3 364 edges) on any machine; the rating/protein networks at this size
  are only sensible for long-running studies, since this reproduction is
  pure Python rather than the paper's C++17/-O3.
* ``"bench"`` — an explicitly scaled-down shape with the same structural
  character (degree skew, weight/probability distributions), sized so the
  full Figure 7-13 suite completes in minutes.  The scale factors are
  recorded here and surfaced in EXPERIMENTS.md.

Generation is deterministic per (name, profile, seed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from ..errors import DatasetError
from ..graph import UncertainBipartiteGraph
from ..sampling import RngLike
from .abide import abide_like
from .protein import protein_like
from .ratings import jester_like, movielens_like, rating_network
from .synthetic import clipped_normal_probs, random_bipartite

#: Table III rows (|E|, |L|, |R|, weight meaning, probability meaning).
PAPER_SHAPES: Dict[str, Tuple[int, int, int, str, str]] = {
    "abide": (3_364, 58, 58, "physical distance", "correlation"),
    "movielens": (100_836, 610, 9_724, "rating", "reliability"),
    "jester": (4_136_360, 100, 73_421, "rating", "reliability"),
    "protein": (39_471_870, 186_773, 186_772, "interaction", "Normal(0.5,0.2)"),
}

#: Order the paper plots datasets in.
DATASET_NAMES: Tuple[str, ...] = ("abide", "movielens", "jester", "protein")


@dataclass(frozen=True)
class DatasetInfo:
    """Registry metadata for one dataset profile."""

    name: str
    profile: str
    description: str
    factory: Callable[[RngLike], UncertainBipartiteGraph]


def _bench_movielens(rng: RngLike) -> UncertainBipartiteGraph:
    return rating_network(
        n_users=150, n_items=600, n_ratings=6_000, rng=rng,
        rating_step=0.5, rating_max=5.0, zipf_exponent=1.1,
        quality_mean_frac=0.50,
        name="movielens-bench",
    )


def _bench_jester(rng: RngLike) -> UncertainBipartiteGraph:
    return rating_network(
        n_users=30, n_items=1_000, n_ratings=6_000, rng=rng,
        rating_step=0.25, rating_max=10.0, zipf_exponent=0.8,
        quality_mean_frac=0.55,
        name="jester-bench",
    )


_REGISTRY: Dict[Tuple[str, str], DatasetInfo] = {}


def _register(info: DatasetInfo) -> None:
    _REGISTRY[(info.name, info.profile)] = info


_register(DatasetInfo(
    "abide", "paper",
    "Complete 58x58 hemisphere-crossing brain network (full paper size)",
    lambda rng: abide_like(58, rng=rng, name="abide"),
))
_register(DatasetInfo(
    "abide", "bench",
    "28x28 brain network (~1/4 of the paper's edges)",
    lambda rng: abide_like(28, rng=rng, name="abide-bench"),
))
_register(DatasetInfo(
    "movielens", "paper",
    "Rating network at the Table III MovieLens shape",
    lambda rng: movielens_like(1.0, rng=rng),
))
_register(DatasetInfo(
    "movielens", "bench",
    "Rating network, 150 users x 600 items x 6k ratings (~6% scale)",
    _bench_movielens,
))
_register(DatasetInfo(
    "jester", "paper",
    "Rating network at the Table III Jester shape (4.1M ratings)",
    lambda rng: jester_like(1.0, rng=rng),
))
_register(DatasetInfo(
    "jester", "bench",
    "Rating network, 30 jokes x 1k users x 6k ratings (~0.15% scale)",
    _bench_jester,
))
_register(DatasetInfo(
    "protein", "paper",
    "Protein network at the Table III STRING shape (39.5M edges)",
    lambda rng: protein_like(1.0, rng=rng),
))
def _bench_protein(rng: RngLike) -> UncertainBipartiteGraph:
    def interaction_weights(r: np.random.Generator, size: int) -> np.ndarray:
        return r.uniform(0.5, 3.0, size)

    return random_bipartite(
        200, 200, 8_000, rng=rng,
        weight_fn=interaction_weights,
        prob_fn=clipped_normal_probs(0.5, 0.2),
        name="protein-bench",
    )


_register(DatasetInfo(
    "protein", "bench",
    "Protein network, 200+200 proteins x 8k interactions (degree-matched "
    "miniature of the STRING shape)",
    _bench_protein,
))


def dataset_names() -> List[str]:
    """The four paper dataset names in plot order."""
    return list(DATASET_NAMES)


def dataset_info(name: str, profile: str = "bench") -> DatasetInfo:
    """Registry metadata for one dataset profile.

    Raises:
        DatasetError: For unknown names or profiles.
    """
    try:
        return _REGISTRY[(name, profile)]
    except KeyError:
        known = sorted({n for n, _p in _REGISTRY})
        raise DatasetError(
            f"unknown dataset {name!r}/{profile!r}; known datasets: {known} "
            "with profiles 'paper' and 'bench'"
        ) from None


def load_dataset(
    name: str,
    profile: str = "bench",
    rng: RngLike = 0,
) -> UncertainBipartiteGraph:
    """Generate a registered dataset deterministically.

    Args:
        name: One of :data:`DATASET_NAMES`.
        profile: ``"bench"`` (default, minutes-scale) or ``"paper"``
            (Table III shape).
        rng: Seed or generator; the default seed 0 makes repeated loads
            identical.
    """
    return dataset_info(name, profile).factory(rng)
