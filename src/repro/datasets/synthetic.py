"""Generic random uncertain-bipartite generators.

These are the building blocks the paper-dataset stand-ins compose:
uniform random graphs, Zipf-popularity graphs (rating workloads) and the
distribution helpers for weights and probabilities.
"""

from __future__ import annotations

from typing import Callable, Optional, Set, Tuple

import numpy as np

from ..errors import DatasetError
from ..graph import UncertainBipartiteGraph
from ..sampling import RngLike, ensure_rng

WeightFn = Callable[[np.random.Generator, int], np.ndarray]
ProbFn = Callable[[np.random.Generator, int], np.ndarray]


def uniform_weights(low: float = 0.5, high: float = 5.0) -> WeightFn:
    """Weight sampler: uniform on ``[low, high)``."""
    if not 0.0 < low <= high:
        raise DatasetError(f"need 0 < low <= high, got [{low}, {high}]")

    def sample(rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.uniform(low, high, size)

    return sample


def uniform_probs(low: float = 0.1, high: float = 0.9) -> ProbFn:
    """Probability sampler: uniform on ``[low, high)``."""
    if not 0.0 <= low <= high <= 1.0:
        raise DatasetError(f"need 0 <= low <= high <= 1, got [{low}, {high}]")

    def sample(rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.uniform(low, high, size)

    return sample


def clipped_normal_probs(
    mean: float = 0.5,
    std: float = 0.2,
    low: float = 0.01,
    high: float = 0.99,
) -> ProbFn:
    """Probability sampler: ``Normal(mean, std)`` clipped into ``[low, high]``.

    This is the paper's own preprocessing for the Protein dataset
    (Table III: ``Normal(0.5, 0.2)``); clipping keeps probabilities legal.
    """

    def sample(rng: np.random.Generator, size: int) -> np.ndarray:
        return np.clip(rng.normal(mean, std, size), low, high)

    return sample


def random_bipartite(
    n_left: int,
    n_right: int,
    n_edges: int,
    rng: RngLike = None,
    weight_fn: Optional[WeightFn] = None,
    prob_fn: Optional[ProbFn] = None,
    name: str = "random",
) -> UncertainBipartiteGraph:
    """A uniform random uncertain bipartite graph without duplicate edges.

    Args:
        n_left: Left vertex count.
        n_right: Right vertex count.
        n_edges: Distinct edges to draw (must fit in ``n_left·n_right``).
        rng: Seed or generator.
        weight_fn: Weight sampler (default uniform [0.5, 5)).
        prob_fn: Probability sampler (default uniform [0.1, 0.9)).
        name: Dataset name recorded on the graph.
    """
    if n_left <= 0 or n_right <= 0:
        raise DatasetError(
            f"vertex counts must be positive, got {n_left}x{n_right}"
        )
    capacity = n_left * n_right
    if not 0 <= n_edges <= capacity:
        raise DatasetError(
            f"n_edges={n_edges} outside [0, {capacity}] for a "
            f"{n_left}x{n_right} bipartite graph"
        )
    generator = ensure_rng(rng)
    weight_fn = weight_fn or uniform_weights()
    prob_fn = prob_fn or uniform_probs()

    # Sample distinct cells of the |L| x |R| grid, then split into rows
    # and columns — O(n_edges) regardless of density.
    cells = generator.choice(capacity, size=n_edges, replace=False)
    lefts = cells // n_right
    rights = cells % n_right
    return UncertainBipartiteGraph(
        [f"L{i}" for i in range(n_left)],
        [f"R{j}" for j in range(n_right)],
        lefts,
        rights,
        weight_fn(generator, n_edges),
        prob_fn(generator, n_edges),
        name=name,
    )


def zipf_bipartite(
    n_left: int,
    n_right: int,
    n_edges: int,
    rng: RngLike = None,
    exponent: float = 1.2,
    weight_fn: Optional[WeightFn] = None,
    prob_fn: Optional[ProbFn] = None,
    name: str = "zipf",
) -> UncertainBipartiteGraph:
    """A bipartite graph with Zipf-distributed right-vertex popularity.

    Models rating workloads: left vertices are users choosing items
    (right vertices) proportionally to ``rank^{-exponent}``, the classic
    long-tail shape of MovieLens/Jester-style data.  Duplicate
    (user, item) pairs are rejected, so each user rates distinct items.
    """
    if exponent <= 0:
        raise DatasetError(f"exponent must be positive, got {exponent}")
    if n_left <= 0 or n_right <= 0:
        raise DatasetError(
            f"vertex counts must be positive, got {n_left}x{n_right}"
        )
    if n_edges > n_left * n_right:
        raise DatasetError(
            f"n_edges={n_edges} exceeds capacity {n_left * n_right}"
        )
    generator = ensure_rng(rng)
    weight_fn = weight_fn or uniform_weights()
    prob_fn = prob_fn or uniform_probs()

    ranks = np.arange(1, n_right + 1, dtype=float)
    popularity = ranks**-exponent
    popularity /= popularity.sum()

    seen: Set[Tuple[int, int]] = set()
    lefts = np.empty(n_edges, dtype=np.int64)
    rights = np.empty(n_edges, dtype=np.int64)
    filled = 0
    # Draw in batches; rejection keeps pairs distinct.
    while filled < n_edges:
        batch = max(1024, (n_edges - filled) * 2)
        candidate_left = generator.integers(0, n_left, batch)
        candidate_right = generator.choice(n_right, size=batch, p=popularity)
        for u, v in zip(candidate_left, candidate_right):
            pair = (int(u), int(v))
            if pair in seen:
                continue
            seen.add(pair)
            lefts[filled] = pair[0]
            rights[filled] = pair[1]
            filled += 1
            if filled == n_edges:
                break

    return UncertainBipartiteGraph(
        [f"L{i}" for i in range(n_left)],
        [f"R{j}" for j in range(n_right)],
        lefts,
        rights,
        weight_fn(generator, n_edges),
        prob_fn(generator, n_edges),
        name=name,
    )
