"""ABIDE-like brain networks (use case 2, Table III row 1).

The paper derives a bipartite uncertain network from the ABIDE resting-
state fMRI corpus: vertices are AAL-atlas Regions of Interest split into
the left/right hemispheres, edge weight is the physical distance between
two ROIs and edge probability their activity correlation.  ABIDE itself
is a gated clinical dataset, so this module synthesises a statistically
similar stand-in: ROIs get 3D coordinates mirrored across the
inter-hemispheric plane, weights are Euclidean distances (normalised),
and probabilities follow a distance-modulated Beta-like law in which
*long-range* connections are weaker — with a group parameter reproducing
the paper's TC-vs-ASD contrast (ASD patients lack long connections).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import DatasetError
from ..graph import UncertainBipartiteGraph
from ..sampling import RngLike, ensure_rng

#: AAL atlas hemisphere size used by the paper (58 ROIs per side).
DEFAULT_ROIS = 58


def abide_like(
    n_rois: int = DEFAULT_ROIS,
    rng: RngLike = None,
    long_range_penalty: float = 0.35,
    name: str = "abide",
) -> UncertainBipartiteGraph:
    """One ABIDE-like hemisphere-crossing network (complete bipartite).

    Args:
        n_rois: ROIs per hemisphere (the paper's network is the complete
            58x58 bipartite graph: ``|E| = 3364``).
        rng: Seed or generator.
        long_range_penalty: How strongly distance suppresses connection
            probability; larger values mean fewer long-range connections
            (the ASD group uses a larger penalty).
        name: Dataset name recorded on the graph.
    """
    if n_rois <= 0:
        raise DatasetError(f"n_rois must be positive, got {n_rois}")
    if long_range_penalty < 0:
        raise DatasetError(
            f"long_range_penalty must be non-negative, got {long_range_penalty}"
        )
    generator = ensure_rng(rng)

    # ROI coordinates in one hemisphere; the other is the mirror image
    # plus anatomical jitter.
    left_coords = generator.uniform(
        low=(5.0, 0.0, 0.0), high=(70.0, 100.0, 80.0), size=(n_rois, 3)
    )
    right_coords = left_coords.copy()
    right_coords[:, 0] = -right_coords[:, 0]
    right_coords += generator.normal(0.0, 3.0, size=(n_rois, 3))

    # Complete bipartite edge grid.
    li, ri = np.meshgrid(np.arange(n_rois), np.arange(n_rois), indexing="ij")
    lefts = li.ravel()
    rights = ri.ravel()
    deltas = left_coords[lefts] - right_coords[rights]
    distances = np.sqrt((deltas**2).sum(axis=1))
    # Weight = physical distance, normalised to a handy (0, 10] range.
    weights = 10.0 * distances / distances.max()
    weights = np.maximum(weights, 1e-3)

    # Correlation-like probability, suppressed with distance; noise keeps
    # individual edges heterogeneous.
    normalised = distances / distances.max()
    base = 0.75 - long_range_penalty * normalised
    noise = generator.normal(0.0, 0.08, size=base.shape)
    probs = np.clip(base + noise, 0.02, 0.98)

    return UncertainBipartiteGraph(
        [f"ROI_L{i}" for i in range(n_rois)],
        [f"ROI_R{j}" for j in range(n_rois)],
        lefts,
        rights,
        weights,
        probs,
        name=name,
    )


def abide_groups(
    n_rois: int = DEFAULT_ROIS,
    rng: RngLike = None,
) -> Tuple[UncertainBipartiteGraph, UncertainBipartiteGraph]:
    """The paper's TC/ASD pair (Figure 3).

    Returns ``(tc, asd)`` networks over the same ROI layout; the ASD
    network uses a stronger long-range penalty, reproducing the paper's
    observation that ASD patients "are lacking in long connections" and
    that TC activation intensity is about twice the ASD one.
    """
    generator = ensure_rng(rng)
    seed_tc, seed_asd = generator.integers(0, 2**31 - 1, size=2)
    tc = abide_like(
        n_rois, rng=int(seed_tc), long_range_penalty=0.25, name="abide-tc"
    )
    asd = abide_like(
        n_rois, rng=int(seed_asd), long_range_penalty=0.40, name="abide-asd"
    )
    return tc, asd
