"""Loaders that turn user-supplied rating data into uncertain networks.

The paper turns MovieLens/Jester ratings into uncertain bipartite
networks by using the rating as the weight and a *reliability* — one
minus the normalised deviation of the rating from the item's average —
as the probability.  :func:`ratings_to_graph` applies that recipe to any
in-memory rating table, and :func:`load_ratings_csv` to a delimited
file, so downstream users can run MPMB on their own rating dumps.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Hashable, List, Sequence, Tuple, Union

import numpy as np

from ..errors import DatasetError
from ..graph import UncertainBipartiteGraph

#: One rating observation.
Rating = Tuple[Hashable, Hashable, float]


def ratings_to_graph(
    ratings: Sequence[Rating],
    rating_max: float | None = None,
    min_prob: float = 0.05,
    max_prob: float = 0.95,
    name: str = "ratings",
) -> UncertainBipartiteGraph:
    """Build an uncertain user-item network from rating triples.

    Weight = the rating itself; probability = reliability, i.e.
    ``1 − |rating − item average| / (rating_max / 2)`` clipped into
    ``[min_prob, max_prob]`` (Section VIII-A's definition, normalised by
    the half-range so a rating a full half-scale off the consensus is
    maximally unreliable).

    Args:
        ratings: ``(user, item, rating)`` triples; ratings must be
            positive (they become edge weights) and (user, item) pairs
            unique.
        rating_max: Scale ceiling; inferred from the data when ``None``.
        min_prob: Reliability floor.
        max_prob: Reliability ceiling.
        name: Dataset name recorded on the graph.

    Raises:
        DatasetError: On empty input, non-positive ratings, duplicate
            pairs, or a bad probability window.
    """
    if not ratings:
        raise DatasetError("ratings must be non-empty")
    if not 0.0 <= min_prob <= max_prob <= 1.0:
        raise DatasetError(
            f"need 0 <= min_prob <= max_prob <= 1, got "
            f"[{min_prob}, {max_prob}]"
        )
    values = np.array([float(r) for _u, _i, r in ratings])
    if np.any(values <= 0):
        raise DatasetError(
            "ratings must be strictly positive (they become edge weights); "
            "shift scales like Jester's [-10, 10] before loading"
        )
    if rating_max is None:
        rating_max = float(values.max())
    elif rating_max < values.max():
        raise DatasetError(
            f"rating_max={rating_max} below the largest observed rating "
            f"{values.max()}"
        )

    seen = set()
    item_sums: Dict[Hashable, float] = {}
    item_counts: Dict[Hashable, int] = {}
    for user, item, rating in ratings:
        pair = (user, item)
        if pair in seen:
            raise DatasetError(f"duplicate rating for {pair!r}")
        seen.add(pair)
        item_sums[item] = item_sums.get(item, 0.0) + float(rating)
        item_counts[item] = item_counts.get(item, 0) + 1

    half_range = 0.5 * rating_max
    edges = []
    for user, item, rating in ratings:
        mean = item_sums[item] / item_counts[item]
        deviation = abs(float(rating) - mean) / half_range
        reliability = float(
            np.clip(1.0 - deviation, min_prob, max_prob)
        )
        edges.append((user, item, float(rating), reliability))
    return UncertainBipartiteGraph.from_edges(edges, name=name)


def load_ratings_csv(
    path: Union[str, Path],
    user_column: str = "user",
    item_column: str = "item",
    rating_column: str = "rating",
    delimiter: str = ",",
    rating_max: float | None = None,
    name: str | None = None,
) -> UncertainBipartiteGraph:
    """Load a delimited rating file into an uncertain network.

    The file must have a header row naming at least the three configured
    columns (the MovieLens ``ratings.csv`` layout works with
    ``user_column="userId", item_column="movieId"``).

    Raises:
        DatasetError: On missing columns or unparsable ratings.
    """
    path = Path(path)
    ratings: List[Rating] = []
    with open(path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle, delimiter=delimiter)
        missing = {user_column, item_column, rating_column} - set(
            reader.fieldnames or ()
        )
        if missing:
            raise DatasetError(
                f"{path}: missing columns {sorted(missing)}; "
                f"found {reader.fieldnames}"
            )
        for line, row in enumerate(reader, start=2):
            try:
                rating = float(row[rating_column])
            except (TypeError, ValueError) as exc:
                raise DatasetError(
                    f"{path}:{line}: bad rating {row[rating_column]!r} "
                    f"({exc})"
                ) from None
            # Prefix labels so user/item id collisions can't merge the
            # partitions.
            ratings.append(
                (f"u:{row[user_column]}", f"i:{row[item_column]}", rating)
            )
    return ratings_to_graph(
        ratings, rating_max=rating_max, name=name or path.stem
    )
