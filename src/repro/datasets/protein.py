"""Protein-interaction stand-in (Table III row 4).

The paper's Protein dataset comes from the STRING database: vertices are
proteins, edge weights are interaction strengths, and — because STRING is
deterministic and non-bipartite — the authors *generate* probabilities
from ``Normal(0.5, 0.2)`` and bipartition vertices by odd/even ID.  We
reproduce that preprocessing on a synthetic interaction topology: a
sparse graph with heavy-tailed interaction scores, split into two
near-equal partitions exactly as the paper does.
"""

from __future__ import annotations

import numpy as np

from ..errors import DatasetError
from ..graph import UncertainBipartiteGraph
from ..sampling import RngLike, ensure_rng
from .synthetic import clipped_normal_probs, random_bipartite


def protein_like(
    scale: float = 1.0,
    rng: RngLike = None,
) -> UncertainBipartiteGraph:
    """Protein-like network (Table III: 186 773 + 186 772 proteins,
    39.5M interactions) scaled by ``scale`` on every dimension.

    Interaction-strength weights are bounded scores (STRING's combined
    scores live on a bounded scale), drawn uniformly from
    ``[0.5, 3.0)``; probabilities are ``Normal(0.5, 0.2)`` clipped,
    exactly the paper's own preprocessing.
    """
    if scale <= 0:
        raise DatasetError(f"scale must be positive, got {scale}")
    n_left = max(10, int(round(186_773 * scale)))
    n_right = max(10, int(round(186_772 * scale)))
    n_edges = min(
        max(20, int(round(39_471_870 * scale))),
        (n_left * n_right) // 2,
    )
    generator = ensure_rng(rng)

    def interaction_weights(r: np.random.Generator, size: int) -> np.ndarray:
        return r.uniform(0.5, 3.0, size)

    return random_bipartite(
        n_left,
        n_right,
        n_edges,
        rng=generator,
        weight_fn=interaction_weights,
        prob_fn=clipped_normal_probs(0.5, 0.2),
        name="protein" if scale == 1.0 else f"protein@{scale:g}",
    )
