"""Dataset generators: synthetic stand-ins for the paper's four datasets
(Section VIII-A) plus generic random bipartite builders.

The real ABIDE / MovieLens / Jester / STRING corpora are not bundled
(clinical gating, size, licensing); each generator synthesises a network
with the same structural character — see the per-module docstrings and
the substitution table in DESIGN.md.
"""

from .abide import abide_groups, abide_like
from .loaders import load_ratings_csv, ratings_to_graph
from .protein import protein_like
from .ratings import jester_like, movielens_like, rating_network
from .registry import (
    DATASET_NAMES,
    PAPER_SHAPES,
    DatasetInfo,
    dataset_info,
    dataset_names,
    load_dataset,
)
from .synthetic import (
    clipped_normal_probs,
    random_bipartite,
    uniform_probs,
    uniform_weights,
    zipf_bipartite,
)

__all__ = [
    "abide_like",
    "ratings_to_graph",
    "load_ratings_csv",
    "abide_groups",
    "protein_like",
    "rating_network",
    "movielens_like",
    "jester_like",
    "random_bipartite",
    "zipf_bipartite",
    "uniform_weights",
    "uniform_probs",
    "clipped_normal_probs",
    "DATASET_NAMES",
    "PAPER_SHAPES",
    "DatasetInfo",
    "dataset_names",
    "dataset_info",
    "load_dataset",
]
