"""Rating-network stand-ins: MovieLens-like and Jester-like datasets.

Both paper datasets are user-item rating networks: edge weight is the
rating and edge probability its *reliability*, "the relative difference
between the user rating and the average rating" (Section VIII-A).  The
generators here synthesise that exact structure:

1. every item gets a latent quality;
2. ratings are the quality plus user noise, rounded to the platform's
   rating grid;
3. the reliability of a rating is ``1 − |rating − item average| / range``
   (clipped away from 0 and 1), so conformist ratings are trusted and
   outliers are not.

Item popularity is Zipf-distributed, matching the long-tail degree shape
of the real datasets; the default shapes copy the Table III rows, and a
``scale`` parameter shrinks them proportionally for the Python-speed
benchmark runs (scale factors are recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np

from ..errors import DatasetError
from ..graph import UncertainBipartiteGraph
from ..sampling import RngLike, ensure_rng
from .synthetic import zipf_bipartite


def rating_network(
    n_users: int,
    n_items: int,
    n_ratings: int,
    rng: RngLike = None,
    rating_step: float = 0.5,
    rating_max: float = 5.0,
    zipf_exponent: float = 1.1,
    quality_mean_frac: float = 0.62,
    quality_std_frac: float = 0.12,
    noise_frac: float = 0.22,
    name: str = "ratings",
) -> UncertainBipartiteGraph:
    """A generic uncertain rating network.

    Args:
        n_users: Left-partition size.
        n_items: Right-partition size.
        n_ratings: Edge count.
        rng: Seed or generator.
        rating_step: Granularity of the rating grid (0.5 for MovieLens
            half-stars; Jester's continuous scores use a fine 0.25 grid
            after rescaling).
        rating_max: Largest rating value; the grid is
            ``rating_step .. rating_max``.
        zipf_exponent: Popularity skew of items.
        quality_mean_frac: Mean latent item quality as a fraction of
            ``rating_max``; lower values reduce grid saturation (fewer
            max-rating edges, hence smaller tied top weight classes).
        quality_std_frac: Spread of item quality (fraction of
            ``rating_max``).
        noise_frac: Per-rating user noise (fraction of ``rating_max``).
        name: Dataset name recorded on the graph.
    """
    if rating_step <= 0 or rating_max < rating_step:
        raise DatasetError(
            f"need 0 < rating_step <= rating_max, got "
            f"step={rating_step} max={rating_max}"
        )
    generator = ensure_rng(rng)

    # Downscaled shapes can ask for more ratings than the (users x items)
    # grid holds; cap at half density so the Zipf rejection sampler stays
    # fast and the graph keeps a realistic sparsity.
    n_ratings = min(n_ratings, (n_users * n_items) // 2)
    if n_ratings <= 0:
        raise DatasetError(
            f"no capacity for ratings in a {n_users}x{n_items} grid"
        )

    # Structure first: who rates what (Zipf long tail over items).
    structure = zipf_bipartite(
        n_users, n_items, n_ratings,
        rng=generator, exponent=zipf_exponent, name=name,
    )

    # Latent item quality in rating units.
    quality = np.clip(
        generator.normal(
            quality_mean_frac * rating_max,
            quality_std_frac * rating_max,
            n_items,
        ),
        rating_step,
        rating_max,
    )
    item_of_edge = structure.edge_right
    noise = generator.normal(0.0, noise_frac * rating_max, structure.n_edges)
    raw = quality[item_of_edge] + noise
    ratings = np.clip(
        np.round(raw / rating_step) * rating_step, rating_step, rating_max
    )

    # Reliability: conformity of a rating with its item's observed mean.
    sums = np.bincount(item_of_edge, weights=ratings, minlength=n_items)
    counts = np.bincount(item_of_edge, minlength=n_items)
    means = np.divide(
        sums, counts, out=np.full(n_items, 0.5 * rating_max), where=counts > 0
    )
    # Normalise by the half-range: a rating a full half-scale away from
    # the item consensus is maximally unreliable.
    deviation = np.abs(ratings - means[item_of_edge]) / (0.5 * rating_max)
    probs = np.clip(1.0 - deviation, 0.05, 0.9)

    return UncertainBipartiteGraph(
        [f"user{i}" for i in range(n_users)],
        [f"item{j}" for j in range(n_items)],
        structure.edge_left.copy(),
        item_of_edge.copy(),
        ratings,
        probs,
        name=name,
    )


def movielens_like(
    scale: float = 1.0, rng: RngLike = None
) -> UncertainBipartiteGraph:
    """MovieLens-like network (Table III: 610 users, 9 724 movies,
    100 836 ratings) scaled by ``scale`` on every dimension."""
    return rating_network(
        n_users=_scaled(610, scale),
        n_items=_scaled(9_724, scale),
        n_ratings=_scaled(100_836, scale),
        rng=rng,
        rating_step=0.5,
        rating_max=5.0,
        zipf_exponent=1.1,
        name="movielens" if scale == 1.0 else f"movielens@{scale:g}",
    )


def jester_like(
    scale: float = 1.0, rng: RngLike = None
) -> UncertainBipartiteGraph:
    """Jester-like network (Table III: 100 jokes on the left, 73 421
    users on the right, 4 136 360 ratings) scaled by ``scale``.

    Jester's raw scores are continuous in [-10, 10]; the paper uses them
    as rating weights, which we mirror with a fine rating grid rescaled
    to (0, 10].  Note the tiny left partition — every butterfly shares
    jokes, which is why the paper observes many equal-weight candidates
    on this dataset (Figure 10(c)).
    """
    return rating_network(
        n_users=_scaled(100, scale, minimum=20),
        n_items=_scaled(73_421, scale),
        n_ratings=_scaled(4_136_360, scale),
        rng=rng,
        rating_step=0.25,
        rating_max=10.0,
        zipf_exponent=0.8,
        name="jester" if scale == 1.0 else f"jester@{scale:g}",
    )


def _scaled(value: int, scale: float, minimum: int = 10) -> int:
    if scale <= 0:
        raise DatasetError(f"scale must be positive, got {scale}")
    return max(minimum, int(round(value * scale)))
