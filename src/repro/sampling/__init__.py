"""Sampling substrate: RNG plumbing, Monte-Carlo and Karp-Luby estimators,
convergence traces, and the Theorem IV.1 trial bound."""

from .bounds import achievable_epsilon, monte_carlo_trial_bound
from .convergence import ConvergenceTrace, checkpoint_schedule
from .karp_luby import (
    KarpLubyUnionSampler,
    UnionEstimate,
    estimate_union_probability,
    event_probability,
    exact_union_probability,
    union_probability_first_hit,
)
from .monte_carlo import FrequencyEstimate, WinnerFrequencyEstimator
from .rng import (
    RngLike,
    ensure_rng,
    restore_rng_state,
    rng_state_payload,
    spawn_rngs,
)

__all__ = [
    "RngLike",
    "ensure_rng",
    "spawn_rngs",
    "rng_state_payload",
    "restore_rng_state",
    "ConvergenceTrace",
    "checkpoint_schedule",
    "FrequencyEstimate",
    "WinnerFrequencyEstimator",
    "KarpLubyUnionSampler",
    "UnionEstimate",
    "event_probability",
    "estimate_union_probability",
    "exact_union_probability",
    "union_probability_first_hit",
    "monte_carlo_trial_bound",
    "achievable_epsilon",
]
