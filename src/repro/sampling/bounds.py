"""Generic ε-δ trial-count bounds for Monte-Carlo estimation.

Theorem IV.1 (after Karp, Luby & Madras [51]): to estimate a probability
``μ`` with ``Pr(|μ̂ - μ| > εμ) ≤ δ``, a Monte-Carlo estimator needs

    ``N ≥ (1/μ) · 4 ln(2/δ) / ε²``

trials.  The paper instantiates this bound for every method (Lemma V.2 for
OS, Lemma VI.4 for the OLS estimators); the paper-specific ratios live in
:mod:`repro.core.bounds`, this module holds the shared primitive.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError


def monte_carlo_trial_bound(
    mu: float, epsilon: float = 0.1, delta: float = 0.1
) -> int:
    """Theorem IV.1 lower bound on the trial count, rounded up.

    Args:
        mu: Target probability being estimated (must be in ``(0, 1]``).
        epsilon: Relative error tolerance (must be positive).
        delta: Failure probability (must be in ``(0, 1)``).

    Returns:
        The smallest integer ``N`` satisfying the bound.

    Raises:
        ConfigurationError: On out-of-range arguments.
    """
    if not 0.0 < mu <= 1.0:
        raise ConfigurationError(f"mu must be in (0, 1], got {mu}")
    if epsilon <= 0.0:
        raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
    if not 0.0 < delta < 1.0:
        raise ConfigurationError(f"delta must be in (0, 1), got {delta}")
    return math.ceil((1.0 / mu) * 4.0 * math.log(2.0 / delta) / epsilon**2)


def achievable_epsilon(
    mu: float, n_trials: int, delta: float = 0.1
) -> float:
    """Invert Theorem IV.1: the ε guaranteed by a given trial budget.

    Useful for reporting what accuracy a scaled-down experiment actually
    certifies (the reproduction runs far fewer trials than the paper's
    C++ testbed).
    """
    if not 0.0 < mu <= 1.0:
        raise ConfigurationError(f"mu must be in (0, 1], got {mu}")
    if n_trials <= 0:
        raise ConfigurationError(f"n_trials must be positive, got {n_trials}")
    if not 0.0 < delta < 1.0:
        raise ConfigurationError(f"delta must be in (0, 1), got {delta}")
    return math.sqrt(4.0 * math.log(2.0 / delta) / (mu * n_trials))
