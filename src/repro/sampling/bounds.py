"""Generic ε-δ trial-count bounds for Monte-Carlo estimation.

Theorem IV.1 (after Karp, Luby & Madras [51]): to estimate a probability
``μ`` with ``Pr(|μ̂ - μ| > εμ) ≤ δ``, a Monte-Carlo estimator needs

    ``N ≥ (1/μ) · 4 ln(2/δ) / ε²``

trials.  The paper instantiates this bound for every method (Lemma V.2 for
OS, Lemma VI.4 for the OLS estimators); the paper-specific ratios live in
:mod:`repro.core.bounds`, this module holds the shared primitive.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError

#: Largest trial budget Theorem IV.1 sizing may request.  The bound
#: grows as ``1/(μ·ε²)``, so an aggressive target (say ``μ=1e-12`` with
#: ``ε=1e-6``) silently asks for ~10²⁵ trials — a budget nothing could
#: ever run, which used to surface only hours later as a hung loop.
#: Requests above the cap are a configuration mistake and are rejected
#: up front (the CLI maps this to exit code 2, the service to HTTP 400).
MAX_TRIAL_BOUND = 10**9


def monte_carlo_trial_bound(
    mu: float, epsilon: float = 0.1, delta: float = 0.1
) -> int:
    """Theorem IV.1 lower bound on the trial count, rounded up.

    Args:
        mu: Target probability being estimated (must be in ``(0, 1]``).
        epsilon: Relative error tolerance (must be positive).
        delta: Failure probability (must be in ``(0, 1)``).

    Returns:
        The smallest integer ``N`` satisfying the bound.

    Raises:
        ConfigurationError: On out-of-range arguments, or when the
            requested guarantee needs more than :data:`MAX_TRIAL_BOUND`
            trials.
    """
    if not 0.0 < mu <= 1.0:
        raise ConfigurationError(f"mu must be in (0, 1], got {mu}")
    if epsilon <= 0.0:
        raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
    if not 0.0 < delta < 1.0:
        raise ConfigurationError(f"delta must be in (0, 1), got {delta}")
    bound = math.ceil((1.0 / mu) * 4.0 * math.log(2.0 / delta) / epsilon**2)
    if bound > MAX_TRIAL_BOUND:
        raise ConfigurationError(
            f"mu={mu}, epsilon={epsilon}, delta={delta} would require "
            f"{bound:.3e} trials, above the {MAX_TRIAL_BOUND:.0e} cap; "
            "relax the guarantee targets"
        )
    return bound


def achievable_epsilon(
    mu: float, n_trials: int, delta: float = 0.1
) -> float:
    """Invert Theorem IV.1: the ε guaranteed by a given trial budget.

    Useful for reporting what accuracy a scaled-down experiment actually
    certifies (the reproduction runs far fewer trials than the paper's
    C++ testbed).
    """
    if not 0.0 < mu <= 1.0:
        raise ConfigurationError(f"mu must be in (0, 1], got {mu}")
    if n_trials <= 0:
        raise ConfigurationError(f"n_trials must be positive, got {n_trials}")
    if not 0.0 < delta < 1.0:
        raise ConfigurationError(f"delta must be in (0, 1), got {delta}")
    return math.sqrt(4.0 * math.log(2.0 / delta) / (mu * n_trials))
