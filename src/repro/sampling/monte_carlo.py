"""Generic Monte-Carlo winner-frequency estimation.

All three MPMB sampling methods share the same outer loop: run ``N``
independent trials, each of which reports a set of *winners* (butterflies
in ``S_MB`` for that trial's world), and estimate each winner's
probability as its relative frequency.  :class:`WinnerFrequencyEstimator`
implements that loop once, with optional convergence tracking for the
Figure 11/12 experiments.

The relative-frequency estimate is unbiased, and Theorem IV.1 (via the
Chernoff bound, Eq. 4) gives the trial count ``N ≥ (3/ε²) ln(2/δ)``
needed for an (ε, δ) guarantee on each winner's probability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterable, List, Optional

from .convergence import ConvergenceTrace, checkpoint_schedule

#: A trial returns the hashable identities of this trial's winners.
TrialFn = Callable[[], Iterable[Hashable]]


@dataclass
class FrequencyEstimate:
    """Output of a winner-frequency run.

    Attributes:
        n_trials: Number of trials executed.
        counts: Winner identity -> number of trials it won.
        traces: Convergence traces for the tracked identities (if any).
    """

    n_trials: int
    counts: Dict[Hashable, int]
    traces: Dict[Hashable, ConvergenceTrace] = field(default_factory=dict)

    def probability(self, key: Hashable) -> float:
        """Estimated probability of ``key`` (0.0 if never seen)."""
        if self.n_trials == 0:
            return 0.0
        return self.counts.get(key, 0) / self.n_trials

    def probabilities(self) -> Dict[Hashable, float]:
        """All estimated probabilities keyed by winner identity."""
        if self.n_trials == 0:
            return {}
        return {
            key: count / self.n_trials for key, count in self.counts.items()
        }

    def top(self, k: int = 1) -> List[Hashable]:
        """The ``k`` most frequent winners (ties broken deterministically
        by string representation of the key, then key order)."""
        ranked = sorted(
            self.counts.items(), key=lambda item: (-item[1], repr(item[0]))
        )
        return [key for key, _count in ranked[:k]]


class WinnerFrequencyEstimator:
    """Run winner-set trials and accumulate relative frequencies."""

    def __init__(
        self,
        trial_fn: TrialFn,
        track: Optional[Iterable[Hashable]] = None,
        checkpoints: int = 40,
    ) -> None:
        """
        Args:
            trial_fn: Zero-argument callable executing one independent
                trial and returning the winners' identities.
            track: Identities whose running estimate should be traced for
                convergence plots; ``None`` disables tracing.
            checkpoints: Number of evenly spaced trace checkpoints.
        """
        self._trial_fn = trial_fn
        self._track = list(track) if track is not None else []
        self._checkpoints = checkpoints

    def run(self, n_trials: int) -> FrequencyEstimate:
        """Execute ``n_trials`` trials and return the estimate.

        Raises:
            ValueError: If ``n_trials`` is not positive.
        """
        if n_trials <= 0:
            raise ValueError(f"n_trials must be positive, got {n_trials}")
        counts: Dict[Hashable, int] = {}
        traces = {
            key: ConvergenceTrace(label=str(key)) for key in self._track
        }
        schedule = set(checkpoint_schedule(n_trials, self._checkpoints))
        for trial in range(1, n_trials + 1):
            for winner in self._trial_fn():
                counts[winner] = counts.get(winner, 0) + 1
            if traces and trial in schedule:
                for key, trace in traces.items():
                    trace.record(trial, counts.get(key, 0) / trial)
        return FrequencyEstimate(
            n_trials=n_trials, counts=counts, traces=traces
        )
