"""Generic Karp-Luby estimation of a union of conjunctive events [36], [48].

The estimator targets ``Pr[A_1 ∪ … ∪ A_r]`` where each event ``A_j`` is a
conjunction of independent Bernoulli *atoms* (here: graph edges being
present).  Directly summing ``Pr[A_j]`` over-counts worlds satisfying
several events; Karp-Luby instead samples pairs ``(j, world)`` from the
normalised event-weight distribution and rejects the pair unless ``j`` is
the *first* satisfied event in that world.  The acceptance rate times the
weight sum ``S`` is an unbiased estimate of the union probability — with
relative accuracy independent of how small the union is, which is the
method's advantage over naive Monte-Carlo for rare unions.

This module is deliberately independent of butterflies: events are
frozensets of hashable atom ids with a probability lookup.  The OLS-KL
probability estimator builds its ``B_j \\ B_i`` edge-difference events on
top of it, and the exact inclusion-exclusion twin below serves as the
test oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Dict, FrozenSet, Hashable, List, Sequence

import numpy as np

from ..errors import EstimationError, IntractableError
from .rng import RngLike, ensure_rng

Atom = Hashable
Event = FrozenSet[Atom]
ProbFn = Callable[[Atom], float]

#: Guard for the exact inclusion-exclusion oracle (2^20 subsets).
DEFAULT_MAX_SUBSETS = 1 << 20


def event_probability(event: Event, prob_of: ProbFn) -> float:
    """``Pr[A]`` for one conjunctive event (product over its atoms)."""
    result = 1.0
    for atom in event:
        result *= float(prob_of(atom))
    return result


@dataclass(frozen=True)
class UnionEstimate:
    """Result of a Karp-Luby union estimation run.

    Attributes:
        probability: The union probability estimate clipped into
            ``[0, 1]``.
        raw_probability: ``(accepted / n_trials) * weight_sum`` before
            clipping.
        weight_sum: ``S = Σ_j Pr[A_j]``.
        n_trials: Trials executed.
        accepted: Trials whose sampled event was the first satisfied one.
    """

    probability: float
    raw_probability: float
    weight_sum: float
    n_trials: int
    accepted: int


class KarpLubyUnionSampler:
    """Incremental Karp-Luby sampler for one fixed event family.

    Exposes single trials (:meth:`trial`) so callers can interleave
    checkpointing (convergence traces, dynamic stopping) with sampling;
    :meth:`run` is the batteries-included loop.
    """

    def __init__(
        self,
        events: Sequence[Event],
        prob_of: ProbFn,
        rng: RngLike = None,
    ) -> None:
        """
        Args:
            events: Conjunctive events in priority order; an earlier event
                "claims" any world jointly satisfying several events.
            prob_of: Probability lookup for atoms (atoms are independent).
            rng: Seed or generator.

        Raises:
            EstimationError: If any event has zero probability (it can
                never be sampled and would bias the priority check) —
                drop impossible events before constructing the sampler.
        """
        self.events = list(events)
        self.prob_of = prob_of
        self.rng = ensure_rng(rng)
        weights = [event_probability(event, prob_of) for event in self.events]
        for event, weight in zip(self.events, weights):
            if weight == 0.0:
                raise EstimationError(
                    f"event {set(event)!r} has zero probability; drop "
                    "impossible events before estimation"
                )
        self.weight_sum = float(sum(weights))
        self._certain = any(not event for event in self.events)
        if self.events and not self._certain:
            self._cumulative = np.cumsum(weights) / self.weight_sum
        else:
            self._cumulative = np.array([])
        self.n_trials = 0
        self.accepted = 0

    @property
    def is_empty(self) -> bool:
        """True when the union is over zero events (probability 0)."""
        return not self.events

    @property
    def is_certain(self) -> bool:
        """True when some event is an empty conjunction (probability 1)."""
        return self._certain

    def trial(self) -> bool:
        """Run one (event, world) sample; return acceptance.

        Updates the running counters used by :meth:`estimate`.
        """
        self.n_trials += 1
        if self.is_empty:
            return False
        if self._certain:
            self.accepted += 1
            return True
        j = int(
            np.searchsorted(self._cumulative, self.rng.random(), side="right")
        )
        j = min(j, len(self.events) - 1)
        # World conditioned on event j holding; earlier events' remaining
        # atoms are sampled lazily and memoised for consistency.
        state: Dict[Atom, bool] = {atom: True for atom in self.events[j]}
        accepted = self._first_satisfied(j, state)
        if accepted:
            self.accepted += 1
        return accepted

    def _first_satisfied(self, j: int, state: Dict[Atom, bool]) -> bool:
        """Whether no event before ``j`` holds in the sampled world."""
        for k in range(j):
            satisfied = True
            for atom in self.events[k]:
                value = state.get(atom)
                if value is None:
                    value = bool(self.rng.random() < self.prob_of(atom))
                    state[atom] = value
                if not value:
                    satisfied = False
                    break
            if satisfied:
                return False
        return True

    def estimate(self) -> UnionEstimate:
        """The running union-probability estimate."""
        if self.n_trials == 0:
            raise EstimationError("no trials run yet")
        if self.is_empty:
            raw = 0.0
        elif self._certain:
            raw = 1.0
        else:
            raw = self.accepted / self.n_trials * self.weight_sum
        return UnionEstimate(
            probability=float(min(1.0, max(0.0, raw))),
            raw_probability=float(raw),
            weight_sum=self.weight_sum,
            n_trials=self.n_trials,
            accepted=self.accepted,
        )

    def run(self, n_trials: int) -> UnionEstimate:
        """Execute ``n_trials`` further trials and return the estimate."""
        if n_trials <= 0:
            raise EstimationError(
                f"n_trials must be positive, got {n_trials}"
            )
        for _ in range(n_trials):
            self.trial()
        return self.estimate()


def estimate_union_probability(
    events: Sequence[Event],
    prob_of: ProbFn,
    n_trials: int,
    rng: RngLike = None,
) -> UnionEstimate:
    """One-shot Karp-Luby estimate of ``Pr[∪_j A_j]`` (Alg. 4 lines 5-9)."""
    return KarpLubyUnionSampler(events, prob_of, rng).run(n_trials)


def exact_union_probability(
    events: Sequence[Event],
    prob_of: ProbFn,
    max_subsets: int = DEFAULT_MAX_SUBSETS,
) -> float:
    """Exact ``Pr[∪_j A_j]`` by inclusion-exclusion (test oracle).

    Exponential in ``len(events)``; guarded by ``max_subsets``.

    Raises:
        IntractableError: If ``2^len(events)`` exceeds the budget.
    """
    r = len(events)
    if r == 0:
        return 0.0
    if r >= 63 or (1 << r) > max_subsets:
        raise IntractableError(
            f"inclusion-exclusion over {r} events needs 2^{r} terms"
        )
    total = 0.0
    for size in range(1, r + 1):
        sign = 1.0 if size % 2 == 1 else -1.0
        for subset in combinations(range(r), size):
            atoms: set = set()
            for index in subset:
                atoms |= events[index]
            total += sign * event_probability(frozenset(atoms), prob_of)
    return float(min(1.0, max(0.0, total)))


def union_probability_first_hit(
    events: Sequence[Event],
    prob_of: ProbFn,
) -> List[float]:
    """Exact per-event "first satisfied" decomposition of the union.

    Returns ``q_j = Pr[A_j ∧ ¬A_1 ∧ … ∧ ¬A_{j-1}]`` for every ``j`` —
    the additive decomposition used in the Lemma VI.5 proof.  Computed by
    inclusion-exclusion on each prefix, so it shares the exponential
    guard semantics with :func:`exact_union_probability`.
    """
    results: List[float] = []
    previous = 0.0
    for j in range(1, len(events) + 1):
        current = exact_union_probability(events[:j], prob_of)
        results.append(max(0.0, current - previous))
        previous = current
    return results
