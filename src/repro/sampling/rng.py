"""Random-number-generator plumbing.

Every stochastic entry point in the library takes an optional ``rng``
argument accepting a seed, a :class:`numpy.random.Generator`, or ``None``
(fresh OS entropy).  Centralising the coercion here keeps seeding
behaviour consistent and documented in one place.
"""

from __future__ import annotations

from typing import Dict, List, Union

import numpy as np

from ..errors import CheckpointError

RngLike = Union[np.random.Generator, int, None]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged (so callers can
    share one stream across phases); an integer seeds a fresh PCG64
    stream; ``None`` draws OS entropy.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def rng_state_payload(generator: np.random.Generator) -> Dict:
    """A JSON-serialisable snapshot of a generator's exact stream position.

    The payload is the bit generator's ``state`` dict (PCG64 state words
    are plain Python ints, which JSON carries losslessly), so restoring
    it with :func:`restore_rng_state` resumes the stream bit-for-bit —
    the property the checkpoint/resume runtime depends on.
    """
    return dict(generator.bit_generator.state)


def restore_rng_state(
    generator: np.random.Generator, payload: Dict
) -> None:
    """Restore a stream position captured by :func:`rng_state_payload`.

    Raises:
        CheckpointError: If the payload belongs to a different
            bit-generator kind than ``generator`` uses (a checkpoint
            written by an incompatible runtime).
    """
    expected = generator.bit_generator.state.get("bit_generator")
    recorded = payload.get("bit_generator")
    if recorded != expected:
        raise CheckpointError(
            f"RNG state was captured from {recorded!r} but the target "
            f"generator uses {expected!r}"
        )
    generator.bit_generator.state = payload


def spawn_rngs(rng: RngLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Uses the ``spawn`` API of numpy's seed sequences, so children do not
    overlap with each other or with the parent.  Useful when running
    repetitions of an experiment that must not share randomness.
    """
    parent = ensure_rng(rng)
    return parent.spawn(count)
