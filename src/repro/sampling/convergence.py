"""Convergence traces for sampling estimators (Figures 11-12).

A :class:`ConvergenceTrace` records the running estimate of one tracked
quantity at regular trial checkpoints, so experiments can plot (or
tabulate) how quickly an estimator stabilises and whether it stays inside
the paper's ``2ε`` error band.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple


@dataclass
class ConvergenceTrace:
    """Running-estimate checkpoints of a single tracked probability.

    Attributes:
        label: Human-readable name of the tracked quantity.
        checkpoints: ``(trials_so_far, running_estimate)`` pairs.
    """

    label: str = ""
    checkpoints: List[Tuple[int, float]] = field(default_factory=list)

    def record(self, n_trials: int, estimate: float) -> None:
        """Append one checkpoint."""
        self.checkpoints.append((n_trials, float(estimate)))

    @property
    def final_estimate(self) -> float:
        """The last recorded estimate (``nan`` when empty)."""
        if not self.checkpoints:
            return float("nan")
        return self.checkpoints[-1][1]

    def estimates(self) -> List[float]:
        """All recorded estimates in trial order."""
        return [value for _n, value in self.checkpoints]

    def trials(self) -> List[int]:
        """All checkpoint trial counts in order."""
        return [n for n, _value in self.checkpoints]

    def within_band(
        self, target: float, epsilon: float, after_fraction: float = 0.5
    ) -> bool:
        """Whether all checkpoints after a warm-up stay in ``target·(1±ε)``.

        Mirrors the paper's Figure 11 criterion: fluctuation is expected in
        the first half of the trial budget, stability after it.

        Args:
            target: Reference probability (centre of the band).
            epsilon: Relative half-width of the band.
            after_fraction: Fraction of the total trials treated as
                warm-up and excluded from the check.
        """
        if not self.checkpoints:
            return False
        horizon = self.checkpoints[-1][0] * after_fraction
        tail = [
            value for n, value in self.checkpoints if n >= horizon
        ]
        if not tail:
            return False
        low = target * (1.0 - epsilon)
        high = target * (1.0 + epsilon)
        return all(low <= value <= high for value in tail)


def checkpoint_schedule(total_trials: int, points: int = 40) -> Sequence[int]:
    """Evenly spaced checkpoint trial counts ending exactly at the total."""
    if total_trials <= 0:
        return []
    points = max(1, min(points, total_trials))
    step = total_trials / points
    schedule = sorted({int(round(step * i)) for i in range(1, points + 1)})
    return [n for n in schedule if n > 0]
