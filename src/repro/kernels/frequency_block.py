"""Block driver for the winner-frequency methods (MC-VP and OS).

MC-VP and OS evaluate one sampled world per trial; the world *sampling*
is batched here: one
:meth:`~repro.worlds.sampler.WorldSampler.sample_mask_block` call draws
a whole block's Bernoulli matrix at once.  The per-world winner search
runs in one of two modes:

* row mode (``mask_trial_fn``): each trial reuses its row of the shared
  mask matrix and the per-world search stays scalar;
* block mode (``block_fn``): the whole mask matrix is handed to the
  vectorised wedge kernel
  (:class:`~repro.kernels.wedge_block.WedgeBlockKernel`), which returns
  every row's winner set in one shot.

Because mask blocks are stream-equivalent to repeated scalar draws, the
world sequence — and therefore every winner count, trace point, and
estimate — is bit-identical to the scalar path for *any* block size, in
either mode (see the equivalence contract in ``docs/kernels.md``).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

import numpy as np

from ..butterfly import Butterfly
from ..errors import CheckpointError
from ..observability import Observer, ensure_observer
from ..runtime.frequency import WinnerCountLoop
from .blocks import block_lengths, block_starts, trials_in_blocks

#: One trial evaluated against a pre-drawn edge-presence mask.
MaskTrialFn = Callable[[np.ndarray], Iterable[Butterfly]]

#: A whole block evaluated at once: per-row winner sets.
BlockFn = Callable[[np.ndarray], List[List[Butterfly]]]


class BlockedWinnerLoop:
    """Engine loop running a :class:`WinnerCountLoop` block by block.

    One engine "trial" is one block: the wrapped sampler draws the
    block's mask matrix in a single RNG call, then each row is handed to
    ``mask_trial_fn`` and folded into the inner loop's counters via
    :meth:`WinnerCountLoop.record_winners` (so histograms, traces, and
    checkpoint payloads are byte-compatible with the scalar loop's,
    apart from the added ``block_size`` guard).
    """

    def __init__(
        self,
        inner: WinnerCountLoop,
        mask_trial_fn: MaskTrialFn,
        n_trials: int,
        block_size: int,
        observer: Optional[Observer] = None,
        block_fn: Optional[BlockFn] = None,
    ) -> None:
        self.inner = inner
        self._mask_trial_fn = mask_trial_fn
        self._block_fn = block_fn
        self.block_size = int(block_size)
        self.lengths = block_lengths(n_trials, block_size)
        self.starts = block_starts(self.lengths)
        self._vectorized = ensure_observer(observer).metrics.counter(
            "kernel.trials_vectorized"
        )

    @property
    def n_blocks(self) -> int:
        return len(self.lengths)

    def trials_completed(self, completed_blocks: int) -> int:
        """Trials contained in the first ``completed_blocks`` blocks."""
        return trials_in_blocks(self.lengths, completed_blocks)

    # ------------------------------------------------------------------
    # Engine contract
    # ------------------------------------------------------------------

    def run_trial(self, block: int) -> None:
        """Evaluate the 1-based ``block`` against one shared mask matrix."""
        length = self.lengths[block - 1]
        start = self.starts[block - 1]
        masks = self.inner.sampler.sample_mask_block(length)
        if self._block_fn is not None:
            for offset, winners in enumerate(self._block_fn(masks)):
                self.inner.record_winners(start + offset + 1, winners)
        else:
            for offset in range(length):
                self.inner.record_winners(
                    start + offset + 1, self._mask_trial_fn(masks[offset])
                )
        self._vectorized.inc(length)

    def state_payload(self, completed: int) -> Dict:
        payload = self.inner.state_payload(
            self.trials_completed(completed)
        )
        payload["block_size"] = self.block_size
        return payload

    def restore_state(self, payload: Dict) -> None:
        snapshot_block = int(payload.get("block_size", self.block_size))
        if snapshot_block != self.block_size:
            raise CheckpointError(
                f"checkpoint was written at block_size={snapshot_block}; "
                f"this run uses block_size={self.block_size} — resume "
                "with the block size the checkpoint was written at"
            )
        self.inner.restore_state(payload)
