"""Vectorised Algorithm 5: the OLS candidate block kernel.

The scalar optimised estimator walks the weight-sorted candidate list
once per trial, lazily sampling edges until the first strictly lighter
candidate.  This kernel evaluates a whole *block* of trials at once:

1. the candidate→edge incidence matrix (``|C_MB| × 4`` edge indices) is
   gathered once per run;
2. a ``(block, n_edges)`` mask matrix from
   :meth:`~repro.worlds.sampler.WorldSampler.sample_mask_block` yields
   the presence of every candidate in every trial with one NumPy gather
   and an ``all``-reduce;
3. the weight-ordered "first surviving weight class wins" rule
   (Alg. 5 line 5) becomes a vectorised ``argmax`` over the per-trial
   presence matrix — candidates are weight-sorted, so the first present
   candidate pins ``w_max`` and every present candidate of equal weight
   shares the win, exactly like the scalar walk.

The winner rule compares candidate weights exactly (as the scalar walk
does); weight-class *construction* tolerance lives upstream in
:mod:`repro.butterfly.max_weight`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from ..butterfly import ButterflyKey
from ..errors import CheckpointError
from ..observability import Observer, ensure_observer
from ..sampling import ConvergenceTrace, checkpoint_schedule
from ..worlds import WorldSampler
from .blocks import block_lengths, block_starts, trials_in_blocks


class CandidateBlockKernel:
    """Presence/winner evaluation for one fixed candidate set.

    Attributes:
        edge_index: ``(|C|, 4)`` candidate→edge incidence matrix.
        weights: ``(|C|,)`` candidate weights, descending.
        n_union_edges: Distinct edges referenced by any candidate — the
            per-trial ``edges_sampled`` accounting unit (the world
            restricted to candidate edges is all a trial consumes).
    """

    def __init__(self, candidates) -> None:
        items = candidates.butterflies
        self.n_candidates = len(items)
        self.edge_index = np.asarray(
            [butterfly.edges for butterfly in items], dtype=np.intp
        ).reshape(self.n_candidates, 4)
        self.weights = np.asarray(
            [butterfly.weight for butterfly in items], dtype=float
        )
        self.n_union_edges = int(np.unique(self.edge_index).size)

    def presence(self, masks: np.ndarray) -> np.ndarray:
        """``(block, |C|)`` — whether each candidate exists per trial."""
        return masks[:, self.edge_index].all(axis=2)

    def winners(self, masks: np.ndarray) -> np.ndarray:
        """``(block, |C|)`` boolean winner matrix for a mask block.

        A candidate wins a trial when it is present and its weight
        equals the weight of the trial's first (heaviest) present
        candidate; trials with no present candidate win nothing.
        """
        present = self.presence(masks)
        any_present = present.any(axis=1)
        first = np.argmax(present, axis=1)
        winning_weight = self.weights[first]
        return (
            present
            & (self.weights[np.newaxis, :] == winning_weight[:, np.newaxis])
            & any_present[:, np.newaxis]
        )


class BlockedOptimizedLoop:
    """Algorithm 5's block loop behind the engine's checkpoint contract.

    One engine "trial" is one block; checkpoints therefore land on block
    boundaries only, where the wrapped sampler's RNG stream position is
    exact.  Snapshot state matches the scalar loop (candidate keys,
    winner counts, edge accounting, traces) plus the sampler state and
    the block size — resuming at a different block size is rejected, as
    the scalar/batched equivalence contract only holds per block size.

    Edge accounting follows the batched access pattern: every trial
    gathers all ``4·|C_MB|`` incidence slots (``edges_queried``) from a
    world restricted to the distinct candidate edges
    (``edges_sampled``), so the lazy-cache hit rate degenerates to the
    candidate-set edge-sharing ratio.
    """

    def __init__(
        self,
        candidates,
        sampler: WorldSampler,
        n_target: int,
        block_size: int,
        track: Optional[Iterable[ButterflyKey]] = None,
        checkpoints: int = 40,
        observer: Optional[Observer] = None,
    ) -> None:
        self.candidates = candidates
        self.sampler = sampler
        self.items = candidates.butterflies
        self.kernel = CandidateBlockKernel(candidates)
        self.block_size = int(block_size)
        self.lengths = block_lengths(n_target, block_size)
        self.starts = block_starts(self.lengths)
        self.counts = np.zeros(len(self.items), dtype=np.int64)
        self.edges_sampled = 0
        self.edges_queried = 0
        tracked = set(track) if track is not None else set()
        self.traces: Dict[ButterflyKey, ConvergenceTrace] = {
            key: ConvergenceTrace(label=str(key)) for key in tracked
        }
        self._tracked_indices = [
            index for index, butterfly in enumerate(self.items)
            if butterfly.key in tracked
        ]
        self._schedule = set(checkpoint_schedule(n_target, checkpoints))
        self._vectorized = ensure_observer(observer).metrics.counter(
            "kernel.trials_vectorized"
        )

    @property
    def n_blocks(self) -> int:
        return len(self.lengths)

    def run_trial(self, block: int) -> None:
        """Evaluate the 1-based ``block`` (one vectorised kernel call)."""
        length = self.lengths[block - 1]
        start = self.starts[block - 1]
        masks = self.sampler.sample_mask_block(length)
        winners = self.kernel.winners(masks)
        self.counts += winners.sum(axis=0)
        self.edges_sampled += length * self.kernel.n_union_edges
        self.edges_queried += length * 4 * self.kernel.n_candidates
        self._vectorized.inc(length)
        if self._tracked_indices:
            self._record_traces(winners, start, length)

    def _record_traces(
        self, winners: np.ndarray, start: int, length: int
    ) -> None:
        """Record schedule points landing inside this block.

        The scalar loop records ``counts/trial`` after each scheduled
        trial; the block equivalent reconstructs those intermediate
        counts from the within-block cumulative winner sums.
        """
        points = [
            t for t in range(start + 1, start + length + 1)
            if t in self._schedule
        ]
        if not points:
            return
        tracked = winners[:, self._tracked_indices]
        cumulative = np.cumsum(tracked, axis=0)
        counts_before = self.counts[self._tracked_indices] - tracked.sum(
            axis=0
        )
        for t in points:
            at_t = counts_before + cumulative[t - start - 1]
            for slot, index in enumerate(self._tracked_indices):
                self.traces[self.items[index].key].record(
                    t, at_t[slot] / t
                )

    # ------------------------------------------------------------------
    # Engine contract
    # ------------------------------------------------------------------

    def state_payload(self, completed: int) -> Dict:
        return {
            "candidates": [list(b.key) for b in self.items],
            "counts": [int(count) for count in self.counts],
            "edges_sampled": int(self.edges_sampled),
            "edges_queried": int(self.edges_queried),
            "block_size": self.block_size,
            "traces": {
                "|".join(map(str, key)): [
                    [n, value] for n, value in trace.checkpoints
                ]
                for key, trace in self.traces.items()
            },
            "sampler": self.sampler.state_payload(),
        }

    def restore_state(self, payload: Dict) -> None:
        keys = [tuple(int(part) for part in raw) for raw in
                payload["candidates"]]
        current = [b.key for b in self.items]
        if keys != current:
            raise CheckpointError(
                "checkpointed candidate set does not match the current "
                f"candidate set ({len(keys)} vs {len(current)} candidates)"
            )
        snapshot_block = int(payload.get("block_size", self.block_size))
        if snapshot_block != self.block_size:
            raise CheckpointError(
                f"checkpoint was written at block_size={snapshot_block}; "
                f"this run uses block_size={self.block_size} — the "
                "batched equivalence contract is per block size"
            )
        self.counts = np.asarray(
            [int(count) for count in payload["counts"]], dtype=np.int64
        )
        self.edges_sampled = int(payload["edges_sampled"])
        self.edges_queried = int(payload["edges_queried"])
        for key, trace in self.traces.items():
            recorded = payload["traces"].get("|".join(map(str, key)), [])
            trace.checkpoints = [
                (int(n), float(value)) for n, value in recorded
            ]
        self.sampler.restore_state(payload["sampler"])

    # ------------------------------------------------------------------
    # Result assembly
    # ------------------------------------------------------------------

    def trials_completed(self, completed_blocks: int) -> int:
        """Trials contained in the first ``completed_blocks`` blocks."""
        return trials_in_blocks(self.lengths, completed_blocks)

    def estimates(self, trials: int) -> Dict[ButterflyKey, float]:
        """Winner frequencies over ``trials`` completed trials."""
        if trials <= 0:
            return {butterfly.key: 0.0 for butterfly in self.items}
        return {
            butterfly.key: int(count) / trials
            for butterfly, count in zip(self.items, self.counts)
        }
