"""Vectorised BFC-VP winner kernel over a precomputed wedge-CSR index.

The scalar MC-VP trial body re-enumerates every angle of every sampled
world in Python (Algorithm 1 lines 5-17).  But the *backbone* wedge set
is world-independent: a sampled world's angles are exactly the backbone
wedges whose two edges are present, because the vertex-priority rule is
evaluated on backbone priorities.  This module exploits that:

1. :class:`WedgeIndex` enumerates all wedges **once** on the
   deterministic priority-ordered graph into CSR-style arrays — per
   wedge the ``(center, edge_x_center, edge_center_z)`` triple plus an
   endpoint-pair group index (every butterfly is an unordered pair of
   wedges inside one group);
2. :class:`WedgeBlockKernel` evaluates a whole ``(block, n_edges)``
   Bernoulli mask matrix at once: wedge presence is two masked gathers
   and an AND, per-world angle/butterfly counts are segment reductions
   over the group index, and the per-world maximum-weight winner search
   is a bound-ordered group scan with early exit (groups are visited in
   descending order of their static best-pair weight, so a world stops
   as soon as no remaining group can tie its current best).

Only the final, tiny winner-candidate set is materialised through the
unchanged :func:`~repro.butterfly.bfc_vp.assemble_butterfly`, so winner
*sets* are bit-identical to the scalar search (see the equivalence
contract in ``docs/kernels.md``).  Peak block memory is capped by the
bytes budget of :mod:`repro.kernels.memory`.

The CSR edge-set presence primitive (:func:`first_all_present`) is
shared with the Karp-Luby union kernel, whose "first satisfied event"
world-check is the same all-members-present reduction over event edge
sets.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..butterfly import Butterfly
from ..butterfly.bfc_vp import assemble_butterfly, global_adjacency
from ..butterfly.max_weight import WEIGHT_RTOL, weights_equal
from ..errors import ConfigurationError
from ..graph import UncertainBipartiteGraph, degree_priority
from .memory import SCAN_CHUNK, WEDGE_CHUNK

#: Winner tie semantics the kernel can reproduce (see docs/kernels.md).
TIE_MODES = ("exact", "rtol")

#: Safety factor applied to :data:`WEIGHT_RTOL` when collecting winner
#: candidates.  The group scan compares wedge-pair *sums*, which differ
#: from canonical four-term butterfly weights by a few ulps; a margin of
#: several rtol widths guarantees every butterfly that could tie the
#: maximum (exactly or within rtol) survives to the exact check.
_CANDIDATE_MARGIN = 4.0


def _margin(best: np.ndarray) -> np.ndarray:
    """Candidate-collection margin around per-world best pair sums."""
    return _CANDIDATE_MARGIN * WEIGHT_RTOL * np.abs(best)


@dataclass(frozen=True)
class WedgeIndex:
    """CSR wedge/butterfly index of one priority-ordered backbone.

    Index order (all groups, singletons included — they contribute
    angles to the MC-VP counters even though they cannot form
    butterflies):

    Attributes:
        priority: The vertex-priority permutation the index was built
            with (global vertex ids).
        priority_kind: Which priority builder produced it (``"degree"``
            for the paper's BFC-VP order).
        wedge_mid: Per wedge, the middle (center) global vertex id.
        wedge_e1: Per wedge, the edge index of ``x``–``mid``.
        wedge_e2: Per wedge, the edge index of ``mid``–``z``.
        wedge_weight: Per wedge, ``w(e1) + w(e2)``.
        group_start: ``(n_groups + 1,)`` CSR row pointer over wedges.
        group_x: Per group, the high-priority endpoint ``x``.
        group_z: Per group, the two-hop endpoint ``z``.
        scan_order: Butterfly-capable groups (``k >= 2``) sorted by
            static best-pair weight, descending — the winner scan order.
        scan_bound: Per scan group, its static best-pair weight (sum of
            its two heaviest wedges); an upper bound on any present
            butterfly weight of the group.
        scan_wedge: Wedge ids (index order) flattened in scan order —
            within each scan group sorted by wedge weight descending, so
            winner materialisation can stop at the first light pair.
        scan_start: ``(n_scan_groups + 1,)`` CSR row pointer into
            ``scan_wedge``.
        scan_e1: ``wedge_e1`` pre-gathered into scan order (the per-chunk
            mask gathers read these as plain slices).
        scan_e2: ``wedge_e2`` pre-gathered into scan order.
        scan_w: ``wedge_weight`` pre-gathered into scan order.
        chunks: Winner-scan chunking: ``(g_lo, g_hi)`` ranges over
            ``scan_order`` whose total wedge count stays near
            :data:`~repro.kernels.memory.SCAN_CHUNK` — narrow on
            purpose, because the scan's early exit fires *between*
            chunks and the chunk width floors the wasted work.
    """

    priority: np.ndarray
    priority_kind: str
    wedge_mid: np.ndarray
    wedge_e1: np.ndarray
    wedge_e2: np.ndarray
    wedge_weight: np.ndarray
    group_start: np.ndarray
    group_x: np.ndarray
    group_z: np.ndarray
    scan_order: np.ndarray
    scan_bound: np.ndarray
    scan_wedge: np.ndarray
    scan_start: np.ndarray
    scan_e1: np.ndarray
    scan_e2: np.ndarray
    scan_w: np.ndarray
    chunks: Tuple[Tuple[int, int], ...]

    @property
    def n_wedges(self) -> int:
        return int(self.wedge_e1.shape[0])

    @property
    def n_groups(self) -> int:
        return int(self.group_x.shape[0])

    @property
    def n_butterflies(self) -> int:
        """Backbone butterflies the index spans (Σ per-group C(k, 2))."""
        sizes = np.diff(self.group_start)
        return int((sizes * (sizes - 1) // 2).sum())

    def group_wedges(self, group: int) -> range:
        """Wedge ids (index order) of one group."""
        return range(
            int(self.group_start[group]), int(self.group_start[group + 1])
        )


def build_wedge_index(
    graph: UncertainBipartiteGraph,
    priority: Optional[np.ndarray] = None,
    priority_kind: str = "degree",
    chunk_wedges: int = SCAN_CHUNK,
) -> WedgeIndex:
    """Enumerate every backbone wedge once into a :class:`WedgeIndex`.

    The enumeration mirrors
    :func:`~repro.butterfly.bfc_vp.iter_angle_groups` exactly (same
    priority rule, same traversal order) but keeps singleton groups,
    because per-world angle counts include them.

    Args:
        graph: The backbone graph.
        priority: Vertex priorities over global ids; defaults to
            :func:`~repro.graph.degree_priority` (the BFC-VP order).
        priority_kind: Label recording which builder produced
            ``priority`` (shared-memory reuse checks it).
        chunk_wedges: Winner-scan chunk width.
    """
    if priority is None:
        priority = degree_priority(graph)
    priority = np.asarray(priority, dtype=np.int64)
    adjacency = global_adjacency(graph)
    weights = graph.weights
    n_vertices = graph.n_vertices

    # Backbone adjacency as CSR over global ids (same neighbour order
    # as the scalar enumeration walks).
    degrees = np.asarray(
        [len(entries) for entries in adjacency], dtype=np.int64
    )
    indptr = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(degrees)]
    )
    neighbor = np.asarray(
        [v for entries in adjacency for v, _ in entries], dtype=np.int64
    )
    via_edge = np.asarray(
        [e for entries in adjacency for _, e in entries], dtype=np.int64
    )

    # Two-hop expansion in exact scalar traversal order: x ascending,
    # then adjacency order of y, then adjacency order of z.  Boolean
    # filters preserve order, so the surviving wedge stream is the same
    # sequence the nested loops would append.
    hop_x = np.repeat(np.arange(n_vertices, dtype=np.int64), degrees)
    keep = priority[neighbor] < priority[hop_x]
    pair_x = hop_x[keep]
    pair_y = neighbor[keep]
    pair_e1 = via_edge[keep]
    fanout = degrees[pair_y]
    wedge_x = np.repeat(pair_x, fanout)
    mid = np.repeat(pair_y, fanout)
    e1 = np.repeat(pair_e1, fanout)
    span = np.arange(int(fanout.sum()), dtype=np.int64)
    within = span - np.repeat(
        np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(fanout)[:-1]]
        ),
        fanout,
    )
    pos = np.repeat(indptr[pair_y], fanout) + within
    wedge_z = neighbor[pos]
    e2 = via_edge[pos]
    keep = (wedge_z != wedge_x) & (priority[wedge_z] < priority[wedge_x])
    wedge_x = wedge_x[keep]
    wedge_z = wedge_z[keep]
    mid = mid[keep]
    e1 = e1[keep]
    e2 = e2[keep]

    # Group by (x, z) in first-encounter order — the scalar loop's
    # per-``x`` insertion-ordered dict.  ``np.unique`` returns groups in
    # sorted-key order plus each key's first stream position; ranking
    # the groups by that first position (the stream is already sorted
    # by ``x``) restores insertion order, and a stable sort of the
    # per-wedge ranks keeps wedges in stream order within each group.
    key = wedge_x * np.int64(n_vertices) + wedge_z
    _, first_pos, inverse = np.unique(
        key, return_index=True, return_inverse=True
    )
    rank = np.empty(first_pos.shape[0], dtype=np.int64)
    rank[np.argsort(first_pos, kind="stable")] = np.arange(
        first_pos.shape[0], dtype=np.int64
    )
    wedge_group = rank[inverse]
    perm = np.argsort(wedge_group, kind="stable")
    wedge_group = wedge_group[perm]
    mids = mid[perm]
    wedge_e1 = e1[perm]
    wedge_e2 = e2[perm]
    wedge_weight = (
        weights[wedge_e1] + weights[wedge_e2]
        if wedge_e1.size
        else np.zeros(0, dtype=np.float64)
    )
    n_groups = int(first_pos.shape[0])
    sizes = np.bincount(wedge_group, minlength=n_groups).astype(np.int64)
    group_start = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(sizes)]
    )
    group_first = group_start[:-1]
    xs = wedge_x[perm][group_first] if n_groups else np.zeros(
        0, dtype=np.int64
    )
    zs = wedge_z[perm][group_first] if n_groups else np.zeros(
        0, dtype=np.int64
    )

    # Heaviest-first permutation per group, in one stable lexsort (ties
    # keep index order, matching the scalar per-group argsort); the two
    # leading wedges of each capable group give its static best-pair
    # bound.
    heavy = (
        np.lexsort((-wedge_weight, wedge_group))
        if wedge_weight.size
        else np.zeros(0, dtype=np.int64)
    )
    capable = np.flatnonzero(sizes >= 2)
    bounds = (
        wedge_weight[heavy[group_start[capable]]]
        + wedge_weight[heavy[group_start[capable] + 1]]
    )
    order = np.argsort(-bounds, kind="stable")
    scan_order = capable[order]
    scan_bound = bounds[order]

    # Flatten the scan groups' wedges (heaviest-first within each group,
    # so materialisation's pair walk can stop early) and pre-gather their
    # edge/weight columns — the per-block scan then reads plain slices.
    scan_sizes = sizes[scan_order]
    scan_start = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(scan_sizes)]
    )
    if scan_order.size:
        flat = np.arange(int(scan_sizes.sum()), dtype=np.int64)
        offset = flat - np.repeat(scan_start[:-1], scan_sizes)
        scan_wedge = heavy[
            np.repeat(group_start[scan_order], scan_sizes) + offset
        ]
    else:
        scan_wedge = np.zeros(0, dtype=np.int64)

    # Group-aligned chunks of near-constant wedge count.
    chunk_cap = max(int(chunk_wedges), 1)
    chunks: List[Tuple[int, int]] = []
    lo = 0
    budget = 0
    for i, g in enumerate(scan_order):
        size = int(sizes[g])
        if budget and budget + size > chunk_cap:
            chunks.append((lo, i))
            lo = i
            budget = 0
        budget += size
    if budget:
        chunks.append((lo, len(scan_order)))

    return WedgeIndex(
        priority=priority,
        priority_kind=priority_kind,
        wedge_mid=mids,
        wedge_e1=wedge_e1,
        wedge_e2=wedge_e2,
        wedge_weight=wedge_weight,
        group_start=group_start,
        group_x=xs,
        group_z=zs,
        scan_order=scan_order,
        scan_bound=scan_bound,
        scan_wedge=scan_wedge,
        scan_start=scan_start,
        scan_e1=wedge_e1[scan_wedge],
        scan_e2=wedge_e2[scan_wedge],
        scan_w=(
            wedge_weight[scan_wedge]
            if scan_wedge.size else np.zeros(0, dtype=np.float64)
        ),
        chunks=tuple(chunks),
    )


@dataclass
class BlockOutcome:
    """One evaluated mask block.

    Attributes:
        winners: Per block row, the world's maximum-weight butterfly
            set (empty list for worlds without a butterfly).
        wedges_present: Total present wedges across the block's worlds
            (the scalar ``angles_processed`` contribution).
        wedges_present_peak: Largest single-world present-wedge count
            (the scalar ``angles_stored_peak`` contribution).
        butterflies_present: Total present butterflies across the
            block's worlds (the scalar ``butterflies_checked``
            contribution — Algorithm 1 inspects each one).
        wedges_scanned: Presence evaluations the bound-ordered winner
            scan actually performed (scanned wedges × active worlds) —
            the kernel analogue of the scalar pruned search's work
            counters.  Always filled, even with ``with_stats=False``.
        rows_pruned: Worlds whose winner scan exited before the last
            chunk (the kernel analogue of scalar ``trials_pruned``).
    """

    winners: List[List[Butterfly]]
    wedges_present: int = 0
    wedges_present_peak: int = 0
    butterflies_present: int = 0
    wedges_scanned: int = 0
    rows_pruned: int = 0


@dataclass
class WedgeBlockKernel:
    """Blocked per-world winner search over one :class:`WedgeIndex`.

    Args:
        graph: The backbone graph (canonical butterfly assembly needs
            its weights).
        index: The precomputed wedge index.
        tie_mode: ``"exact"`` reproduces MC-VP's exact float winner
            comparison; ``"rtol"`` reproduces the OS search's
            :func:`~repro.butterfly.max_weight.weights_equal` tie class
            (see the contract table in ``docs/kernels.md``).
    """

    graph: UncertainBipartiteGraph
    index: WedgeIndex
    tie_mode: str = "exact"
    _butterflies: Dict[Tuple[int, int], Butterfly] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        if self.tie_mode not in TIE_MODES:
            raise ConfigurationError(
                f"tie_mode must be one of {TIE_MODES}, "
                f"got {self.tie_mode!r}"
            )

    # ------------------------------------------------------------------
    # Block evaluation
    # ------------------------------------------------------------------

    def evaluate_block(
        self, masks: np.ndarray, with_stats: bool = True
    ) -> BlockOutcome:
        """Evaluate every world (row) of one mask block.

        Args:
            masks: ``(block, n_edges)`` boolean edge-presence matrix.
            with_stats: Also compute the per-world angle/butterfly
                counts, which need a presence pass over the *full*
                index order.  MC-VP requires them (its scalar counters
                are bit-identical segment reductions); OS skips them —
                its scalar counters measure the pruned scan's work, and
                the kernel analogue (``wedges_scanned``/``rows_pruned``)
                falls out of the winner scan for free.
        """
        index = self.index
        n_rows = masks.shape[0]
        outcome = BlockOutcome(winners=[[] for _ in range(n_rows)])
        if index.n_wedges == 0:
            return outcome
        if with_stats:
            presence = masks[:, index.wedge_e1] & masks[:, index.wedge_e2]
            self._count_stats(presence, outcome)
        best, rows, groups = self._scan_winners(masks, outcome)
        self._materialise(masks, best, rows, groups, outcome)
        return outcome

    def _count_stats(
        self, presence: np.ndarray, outcome: BlockOutcome
    ) -> None:
        """Per-world angle and butterfly counts as segment reductions.

        Segment sums are prefix sums sampled at group boundaries — a
        ``cumsum`` plus a ``diff`` is several times faster than
        ``np.add.reduceat`` on wide rows.
        """
        index = self.index
        per_row = presence.sum(axis=1)
        outcome.wedges_present = int(per_row.sum())
        outcome.wedges_present_peak = int(per_row.max(initial=0))
        butterflies = 0
        starts = index.group_start
        # Chunk the int32 count scratch so memory stays within the
        # budget's row model (whole groups per chunk).
        for (g_lo, g_hi), (w_lo, w_hi) in self._stat_chunks():
            # int32 is deliberate: the cumsum runs over one chunk of
            # 0/1 presence flags, bounded by the chunker's row budget
            # (far below 2**31); the stat itself accumulates in int64.
            prefix = np.cumsum(  # repro: noqa[DTY001]
                presence[:, w_lo:w_hi], axis=1, dtype=np.int32
            )
            ends = (starts[g_lo + 1:g_hi + 1] - w_lo - 1).astype(np.intp)
            counts = np.diff(
                prefix[:, ends], axis=1, prepend=0
            ).astype(np.int64)
            butterflies += int((counts * (counts - 1) // 2).sum())
        outcome.butterflies_present = butterflies

    def _stat_chunks(self):
        """Group-aligned chunks over *index order* (for the counters)."""
        starts = self.index.group_start
        n_groups = self.index.n_groups
        cap = max(WEDGE_CHUNK, 1)
        g_lo = 0
        while g_lo < n_groups:
            g_hi = g_lo + 1
            while (
                g_hi < n_groups
                and starts[g_hi + 1] - starts[g_lo] <= cap
            ):
                g_hi += 1
            yield (g_lo, g_hi), (int(starts[g_lo]), int(starts[g_hi]))
            g_lo = g_hi

    def _scan_winners(
        self, masks: np.ndarray, outcome: BlockOutcome
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Bound-ordered group scan: per-world best pair sums and the
        candidate ``(row, scan-group)`` pairs within margin of them.

        Fills ``outcome.wedges_scanned``/``outcome.rows_pruned`` as a
        byproduct — the scan's own work is the kernel counterpart of the
        scalar pruned search's counters.
        """
        index = self.index
        n_rows = masks.shape[0]
        best = np.full(n_rows, -np.inf)
        cand_rows: List[np.ndarray] = []
        cand_groups: List[np.ndarray] = []
        cand_sums: List[np.ndarray] = []
        active = np.arange(n_rows)
        for g_lo, g_hi in index.chunks:
            if active.size == 0:
                break
            bound = index.scan_bound[g_lo]
            keep = best[active] <= bound + _margin(best[active])
            outcome.rows_pruned += int(active.size - keep.sum())
            active = active[keep]
            if active.size == 0:
                break
            w_lo = int(index.scan_start[g_lo])
            w_hi = int(index.scan_start[g_hi])
            outcome.wedges_scanned += int(active.size) * (w_hi - w_lo)
            seg_starts = index.scan_start[g_lo:g_hi] - w_lo
            sizes = np.diff(index.scan_start[g_lo:g_hi + 1])
            sub = masks[active]
            present = (
                sub[:, index.scan_e1[w_lo:w_hi]]
                & sub[:, index.scan_e2[w_lo:w_hi]]
            )
            values = np.where(present, index.scan_w[w_lo:w_hi], -np.inf)
            top1 = np.maximum.reduceat(values, seg_starts, axis=1)
            spread = np.repeat(top1, sizes, axis=1)
            is_top = values == spread
            # int32 tie counts are chunk-bounded (a segment never has
            # more wedges than the chunk width) and only compared
            # against the constant 2 — never folded into the scores.
            ties = np.add.reduceat(  # repro: noqa[DTY001]
                is_top.astype(np.int32), seg_starts, axis=1
            )
            runner = np.maximum.reduceat(
                np.where(is_top, -np.inf, values), seg_starts, axis=1
            )
            with np.errstate(invalid="ignore"):
                pair = top1 + np.where(ties >= 2, top1, runner)
            pair = np.nan_to_num(pair, nan=-np.inf, posinf=np.inf,
                                 neginf=-np.inf)
            updated = np.maximum(best[active], pair.max(axis=1))
            best[active] = updated
            threshold = np.where(
                np.isfinite(updated), updated - _margin(updated), np.inf
            )
            hit_rows, hit_cols = np.nonzero(pair >= threshold[:, None])
            if hit_rows.size:
                cand_rows.append(active[hit_rows])
                cand_groups.append(g_lo + hit_cols)
                cand_sums.append(pair[hit_rows, hit_cols])
        if not cand_rows:
            empty = np.zeros(0, dtype=np.int64)
            return best, empty, empty
        rows = np.concatenate(cand_rows)
        groups = np.concatenate(cand_groups)
        sums = np.concatenate(cand_sums)
        # Drop candidates recorded before their row's best tightened.
        final = np.where(
            np.isfinite(best[rows]), best[rows] - _margin(best[rows]),
            np.inf,
        )
        fresh = sums >= final
        return best, rows[fresh], groups[fresh]

    def _materialise(
        self,
        masks: np.ndarray,
        best: np.ndarray,
        rows: np.ndarray,
        scan_groups: np.ndarray,
        outcome: BlockOutcome,
    ) -> None:
        """Assemble the candidate butterflies and apply tie semantics.

        Any butterfly that can end up in a winner set — exactly equal or
        rtol-equal to the row's true canonical maximum — has a wedge-pair
        sum within ``_margin`` of the row's best pair sum, so the walk
        below only forms pairs above that cutoff: wedges are visited
        heaviest-first (the scan order pre-sorts them), and both loops
        break as soon as the heaviest remaining pair falls under it.
        """
        index = self.index
        exact = self.tie_mode == "exact"
        weight_of = index.wedge_weight
        scan_wedge = index.scan_wedge
        scan_start = index.scan_start
        by_row: Dict[int, List[int]] = defaultdict(list)
        for row, scan_group in zip(rows.tolist(), scan_groups.tolist()):
            by_row[row].append(scan_group)
        for row, row_groups in by_row.items():
            mask = masks[row]
            # Rows holding candidates always have a finite best.
            row_best = float(best[row])
            cutoff = row_best - _CANDIDATE_MARGIN * WEIGHT_RTOL * abs(
                row_best
            )
            found: List[Tuple[float, Butterfly]] = []
            for scan_group in row_groups:
                group = int(index.scan_order[scan_group])
                heavy_first = scan_wedge[
                    scan_start[scan_group]:scan_start[scan_group + 1]
                ]
                present = [
                    int(w) for w in heavy_first
                    if mask[index.wedge_e1[w]] and mask[index.wedge_e2[w]]
                ]
                weights = [float(weight_of[w]) for w in present]
                for i in range(len(present) - 1):
                    if weights[i] + weights[i + 1] < cutoff:
                        break
                    for j in range(i + 1, len(present)):
                        if weights[i] + weights[j] < cutoff:
                            break
                        butterfly = self._butterfly(
                            group, present[i], present[j]
                        )
                        found.append((butterfly.weight, butterfly))
            if not found:
                continue
            w_max = max(weight for weight, _ in found)
            if exact:
                winners = [bf for w, bf in found if w == w_max]
            else:
                winners = [
                    bf for w, bf in found if weights_equal(w, w_max)
                ]
            outcome.winners[row] = winners

    def _butterfly(self, group: int, a: int, b: int) -> Butterfly:
        """Cached canonical assembly of one wedge pair (winners recur)."""
        key = (a, b)
        cached = self._butterflies.get(key)
        if cached is not None:
            return cached
        index = self.index
        butterfly = assemble_butterfly(
            int(index.group_x[group]),
            int(index.group_z[group]),
            int(index.wedge_mid[a]),
            int(index.wedge_mid[b]),
            (
                int(index.wedge_e1[a]), int(index.wedge_e2[a]),
                int(index.wedge_e1[b]), int(index.wedge_e2[b]),
            ),
            self.graph.n_left,
            self.graph.weights,
        )
        self._butterflies[key] = butterfly
        return butterfly


def first_all_present(
    present: np.ndarray, indptr: np.ndarray, members: np.ndarray
) -> np.ndarray:
    """Per world, the first CSR set whose members are all present.

    The shared world-check primitive: the Karp-Luby union kernel asks
    "which is the first event (weight order) fully contained in this
    world?", which is a masked gather over the flattened member array
    followed by a per-set missing-count segment reduction.

    Args:
        present: ``(block, n_atoms)`` boolean presence matrix.
        indptr: ``(n_sets + 1,)`` CSR row pointer; every set must be
            non-empty (``np.add.reduceat`` misreads empty segments).
        members: Flattened member (atom/edge) indices of all sets.

    Returns:
        ``(block,)`` int array of first satisfied set indices; rows
        satisfying no set return the index of the first unsatisfied set
        scan (callers conditioning a pick, as Karp-Luby does, always
        have at least one satisfied set).
    """
    if indptr.shape[0] < 2:
        raise ConfigurationError(
            "first_all_present needs at least one set"
        )
    if np.any(np.diff(indptr) <= 0):
        raise ConfigurationError(
            "first_all_present requires non-empty CSR sets"
        )
    gathered = ~present[:, members]
    # int32 missing-member counts are bounded by the largest CSR set
    # size and only tested against zero, so narrowing cannot alias.
    missing = np.add.reduceat(  # repro: noqa[DTY001]
        gathered.astype(np.int32), indptr[:-1], axis=1
    )
    return np.argmax(missing == 0, axis=1)
