"""Vectorised Karp-Luby union trials (Algorithm 4's inner loop).

One scalar Karp-Luby trial picks an event ``j`` from the normalised
weight distribution, samples a world conditioned on ``A_j`` holding, and
accepts iff no earlier event also holds.  :class:`UnionBlockKernel` runs
a whole block of those trials in NumPy:

1. the event→atom membership matrix (``r × n_atoms``) and the atom
   probability vector are built once per event family;
2. the block's event picks are one ``searchsorted`` over a ``(block,)``
   uniform vector, its worlds one ``(block, n_atoms)`` Bernoulli matrix
   conditioned row-wise on the picked event's atoms;
3. "first satisfied event" routes through the wedge kernel's shared CSR
   presence primitive
   (:func:`~repro.kernels.wedge_block.first_all_present`): a masked
   gather over the flattened event-member array and a per-event
   missing-count segment reduction, then ``argmax``; acceptance is
   ``first == picked``.  The CSR form only touches each event's own
   atoms — the dense matmul it replaced multiplied every world against
   every (event, atom) cell.

The kernel draws the same *kind* of randomness as the scalar
:meth:`~repro.sampling.karp_luby.KarpLubyUnionSampler.trial` (one
uniform for the event pick, atom-level Bernoullis for the world) but
materialises every atom instead of lazily sampling earlier events'
atoms — distributionally identical (the extra atoms are independent of
the acceptance indicator) and deterministic for a fixed block size.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..sampling.karp_luby import Atom, KarpLubyUnionSampler
from .wedge_block import first_all_present


class UnionBlockKernel:
    """Blocked trial driver for one :class:`KarpLubyUnionSampler`.

    The kernel updates the wrapped sampler's ``n_trials``/``accepted``
    counters, so :meth:`KarpLubyUnionSampler.estimate` keeps working and
    scalar and blocked trials may interleave (each consuming its own
    draws).
    """

    def __init__(self, sampler: KarpLubyUnionSampler) -> None:
        self.sampler = sampler
        atoms: List[Atom] = sorted(
            {atom for event in sampler.events for atom in event}
        )
        index_of: Dict[Atom, int] = {
            atom: index for index, atom in enumerate(atoms)
        }
        self.atom_probs = np.asarray(
            [float(sampler.prob_of(atom)) for atom in atoms], dtype=float
        )
        self.membership = np.zeros(
            (len(sampler.events), len(atoms)), dtype=bool
        )
        for row, event in enumerate(sampler.events):
            for atom in event:
                self.membership[row, index_of[atom]] = True
        # CSR view of the same membership for the world-check primitive
        # (events are butterfly edge sets, so never empty unless the
        # sampler is degenerate — run_block shortcuts those cases).
        members: List[int] = []
        indptr: List[int] = [0]
        for event in sampler.events:
            members.extend(sorted(index_of[atom] for atom in event))
            indptr.append(len(members))
        self._event_members = np.asarray(members, dtype=np.int64)
        self._event_indptr = np.asarray(indptr, dtype=np.int64)

    def run_block(self, count: int) -> np.ndarray:
        """Run ``count`` trials at once; returns per-trial acceptance.

        The returned ``(count,)`` boolean vector lets callers reconstruct
        running estimates at any trial index inside the block (for
        convergence traces); the wrapped sampler's counters are already
        advanced by the whole block.
        """
        sampler = self.sampler
        sampler.n_trials += count
        if sampler.is_empty:
            return np.zeros(count, dtype=bool)
        if sampler.is_certain:
            sampler.accepted += count
            return np.ones(count, dtype=bool)
        picks = np.searchsorted(
            sampler._cumulative, sampler.rng.random(count), side="right"
        )
        picks = np.minimum(picks, len(sampler.events) - 1)
        present = (
            sampler.rng.random((count, self.atom_probs.size))
            < self.atom_probs
        )
        present |= self.membership[picks]
        # An event is satisfied when it misses zero absent atoms; the
        # conditioned pick is always satisfied, so argmax is well-defined.
        first = first_all_present(
            present, self._event_indptr, self._event_members
        )
        accepted = first == picks
        sampler.accepted += int(accepted.sum())
        return accepted
