"""Batched trial kernels: the vectorised sampling hot path.

This package evaluates Monte-Carlo trials in *blocks* — one NumPy kernel
call per few hundred trials instead of a Python-level per-trial loop.
Every estimator routes through it when given a ``block_size``:

- MC-VP / OS: :class:`BlockedWinnerLoop` draws one mask matrix per block
  and hands rows to the scalar per-world search (bit-identical results).
- OLS: :class:`BlockedOptimizedLoop` + :class:`CandidateBlockKernel`
  replace the per-trial candidate walk with gather/reduce/argmax.
- OLS-KL: :class:`UnionBlockKernel` vectorises the Karp-Luby
  (event, world) trials of each candidate.

See ``docs/performance.md`` for block-size selection and the
scalar/batched equivalence contract.
"""

from .blocks import (
    DEFAULT_BLOCK_SIZE,
    block_lengths,
    block_starts,
    resolve_block_size,
    trials_in_blocks,
)
from .frequency_block import BlockedWinnerLoop, MaskTrialFn
from .karp_luby_block import UnionBlockKernel
from .ols_kernel import BlockedOptimizedLoop, CandidateBlockKernel

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "BlockedOptimizedLoop",
    "BlockedWinnerLoop",
    "CandidateBlockKernel",
    "MaskTrialFn",
    "UnionBlockKernel",
    "block_lengths",
    "block_starts",
    "resolve_block_size",
    "trials_in_blocks",
]
