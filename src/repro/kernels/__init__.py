"""Batched trial kernels: the vectorised sampling hot path.

This package evaluates Monte-Carlo trials in *blocks* — one NumPy kernel
call per few hundred trials instead of a Python-level per-trial loop.
Every estimator routes through it when given a ``block_size``:

- MC-VP / OS: :class:`BlockedWinnerLoop` draws one mask matrix per block
  and hands the whole matrix to the vectorised wedge kernel
  (:class:`WedgeBlockKernel` over a once-built :class:`WedgeIndex`),
  whose per-world winner sets are bit-identical to the scalar search.
- OLS: :class:`BlockedOptimizedLoop` + :class:`CandidateBlockKernel`
  replace the per-trial candidate walk with gather/reduce/argmax.
- OLS-KL: :class:`UnionBlockKernel` vectorises the Karp-Luby
  (event, world) trials of each candidate through the shared
  :func:`first_all_present` CSR presence primitive.

Peak block memory is capped by the bytes budget of
:mod:`repro.kernels.memory` (:func:`resolve_block_budget`).  See
``docs/kernels.md`` for the kernel design and the scalar/batched
equivalence contract, ``docs/performance.md`` for measured numbers.
"""

from .blocks import (
    DEFAULT_BLOCK_SIZE,
    block_lengths,
    block_starts,
    resolve_block_size,
    trials_in_blocks,
)
from .frequency_block import BlockedWinnerLoop, BlockFn, MaskTrialFn
from .karp_luby_block import UnionBlockKernel
from .memory import (
    DEFAULT_BYTES_BUDGET,
    BlockBudget,
    kernel_row_bytes,
    resolve_block_budget,
)
from .ols_kernel import BlockedOptimizedLoop, CandidateBlockKernel
from .wedge_block import (
    WedgeBlockKernel,
    WedgeIndex,
    build_wedge_index,
    first_all_present,
)

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_BYTES_BUDGET",
    "BlockBudget",
    "BlockFn",
    "BlockedOptimizedLoop",
    "BlockedWinnerLoop",
    "CandidateBlockKernel",
    "MaskTrialFn",
    "UnionBlockKernel",
    "WedgeBlockKernel",
    "WedgeIndex",
    "block_lengths",
    "block_starts",
    "build_wedge_index",
    "first_all_present",
    "kernel_row_bytes",
    "resolve_block_budget",
    "resolve_block_size",
    "trials_in_blocks",
]
