"""Block scheduling for the batched trial kernels.

A *block* is a contiguous run of Monte-Carlo trials evaluated by one
vectorised kernel call instead of a Python-level per-trial loop.  The
runtime engine executes blocked loops with ``unit="block"``: its
checkpoints land on block boundaries only, so the snapshotted RNG stream
position is always exact (no half-consumed mask matrix), and a resumed
run reproduces the uninterrupted run bit for bit at the same block size.

The schedule is deterministic: ``n_trials`` splits into full blocks of
``block_size`` trials plus one trailing remainder block, and degraded or
deadline-stopped runs normalise their estimates over
``completed_blocks × block_size + remainder`` via :func:`trials_in_blocks`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import ConfigurationError

#: Default trials per vectorised block.  Large enough to amortise the
#: Python dispatch of one kernel call over hundreds of trials, small
#: enough that a ``(block, n_edges)`` float matrix stays cache-friendly
#: and deadline checks (between blocks) stay responsive.
DEFAULT_BLOCK_SIZE = 256


def resolve_block_size(
    n_trials: int, block_size: Optional[int] = None
) -> int:
    """The effective block size for a run of ``n_trials`` trials.

    ``None`` selects :data:`DEFAULT_BLOCK_SIZE`; either way the result is
    clamped to ``n_trials`` so a tiny run is one exact block.

    Raises:
        ConfigurationError: If ``block_size`` is given but not positive.
    """
    if block_size is None:
        block_size = DEFAULT_BLOCK_SIZE
    if block_size <= 0:
        raise ConfigurationError(
            f"block_size must be positive, got {block_size}"
        )
    return max(1, min(block_size, n_trials))


def block_lengths(n_trials: int, block_size: int) -> List[int]:
    """Per-block trial counts: full blocks plus one remainder block.

    Raises:
        ConfigurationError: On non-positive ``n_trials``/``block_size``.
    """
    if n_trials <= 0:
        raise ConfigurationError(
            f"n_trials must be positive, got {n_trials}"
        )
    if block_size <= 0:
        raise ConfigurationError(
            f"block_size must be positive, got {block_size}"
        )
    full, remainder = divmod(n_trials, block_size)
    lengths = [block_size] * full
    if remainder:
        lengths.append(remainder)
    return lengths


def trials_in_blocks(lengths: Sequence[int], completed: int) -> int:
    """Trials contained in the first ``completed`` blocks of a schedule.

    This is the normaliser a degraded blocked run divides by:
    ``completed_blocks × block_size`` plus the remainder block if it ran.
    """
    if completed <= 0:
        return 0
    return int(sum(lengths[: min(completed, len(lengths))]))


def block_starts(lengths: Sequence[int]) -> List[int]:
    """Trial count preceding each block (0-based cumulative offsets)."""
    starts: List[int] = []
    total = 0
    for length in lengths:
        starts.append(total)
        total += length
    return starts
