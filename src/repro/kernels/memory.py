"""Bytes-budgeted block sizing for the vectorised wedge kernel.

The batched winner kernel (:mod:`repro.kernels.wedge_block`) trades
memory for speed: every block materialises a ``(block, n_edges)`` mask
matrix, a ``(block, n_wedges)`` wedge-presence matrix, per-group count
rows, and bounded chunk scratch for the winner scan.  On large graphs a
naive ``block_size=256`` would allocate hundreds of megabytes, so the
kernel caps the block size to a configurable **bytes budget** instead of
trusting the caller's number blindly.

The per-row cost model (see ``docs/kernels.md`` for the derivation)::

    row_bytes = n_edges                  # mask row (bool)
              + n_wedges                 # wedge presence row (bool)
              + 4 * chunk_wedges         # int32 count scratch (chunked)
              + 8 * n_groups             # per-group count row (int64)
              + 24 * chunk_wedges        # three float64 chunk buffers
              + 16 * chunk_groups        # top-1/top-2 chunk rows

and ``block = clamp(budget // row_bytes, 1, requested)``.  The policy is
deterministic — the same graph and budget always resolve to the same
block size, which checkpoint resume relies on — and it only ever
*shrinks* the requested block, so the MC-VP/OS bit-identity contract
(results identical for any block size) makes the cap semantically free.

Batched runs surface the decision through the ``kernel.bytes_budget``
and ``kernel.block_bytes`` gauges (see ``docs/observability.md``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

#: Default peak-bytes budget for one block's kernel working set (64 MiB).
DEFAULT_BYTES_BUDGET = 64 * 1024 * 1024

#: Upper bound on wedges reduced per *counter* chunk (MC-VP's
#: index-order presence pass).  Bounds the int32 prefix-sum scratch
#: independently of the wedge-index size (a single oversized group
#: still forms its own chunk).
WEDGE_CHUNK = 8192

#: Upper bound on wedges evaluated per *winner-scan* chunk.  Much
#: smaller than :data:`WEDGE_CHUNK`: the scan visits chunks in
#: descending static-bound order and exits between chunks, so the chunk
#: width is the floor on wasted work per world — most worlds find a
#: winner within the first few hundred wedges, and a narrow chunk lets
#: them stop there (measured ~15x scan speedup over 8192 on the bench
#: datasets, with the per-chunk NumPy dispatch overhead amortised away
#: by ~1024 wedges).
SCAN_CHUNK = 1024


@dataclass(frozen=True)
class BlockBudget:
    """Resolved block sizing for one batched run.

    Attributes:
        block_size: The effective block size (requested, possibly
            shrunk to fit the budget; always at least 1).
        row_bytes: Estimated working-set bytes per block row.
        block_bytes: Estimated peak working-set bytes of one block
            (``block_size * row_bytes``).
        budget_bytes: The budget the block was sized against.
        capped: Whether the budget shrank the requested block.
    """

    block_size: int
    row_bytes: int
    block_bytes: int
    budget_bytes: int
    capped: bool


def kernel_row_bytes(
    n_edges: int,
    n_wedges: int,
    n_groups: int,
    chunk_wedges: int = WEDGE_CHUNK,
) -> int:
    """Estimated kernel working-set bytes per block row.

    Mirrors the allocations of
    :meth:`~repro.kernels.wedge_block.WedgeBlockKernel.evaluate_block`;
    the chunk terms are bounded by ``chunk_wedges`` because the winner
    scan and the count reduction both work on group chunks, never on the
    whole wedge axis at float width.
    """
    chunk = min(max(int(chunk_wedges), 1), max(int(n_wedges), 1))
    # Chunks hold whole groups; in the worst case every chunk group has
    # two wedges, so the group-row scratch is at most chunk/2 wide.
    chunk_groups = max(chunk // 2, 1)
    return int(
        max(int(n_edges), 1)
        + max(int(n_wedges), 1)
        + 4 * chunk
        + 8 * max(int(n_groups), 1)
        + 24 * chunk
        + 16 * chunk_groups
    )


def resolve_block_budget(
    requested: int,
    n_edges: int,
    n_wedges: int,
    n_groups: int,
    budget_bytes: int | None = None,
    chunk_wedges: int = WEDGE_CHUNK,
) -> BlockBudget:
    """Cap a requested block size to the kernel bytes budget.

    Args:
        requested: Block size the caller asked for (already clamped to
            the trial budget by
            :func:`~repro.kernels.blocks.resolve_block_size`).
        n_edges: Edge count of the graph.
        n_wedges: Wedge count of the precomputed index.
        n_groups: Endpoint-pair group count of the index.
        budget_bytes: Peak working-set budget per block (``None`` uses
            :data:`DEFAULT_BYTES_BUDGET`).
        chunk_wedges: Winner-scan chunk width (kernel internal).

    Returns:
        The resolved :class:`BlockBudget`; ``block_size`` is never
        larger than ``requested`` and never smaller than 1 (one row must
        always fit, otherwise no block size could make progress).

    Raises:
        ConfigurationError: On a non-positive requested size or budget.
    """
    if requested < 1:
        raise ConfigurationError(
            f"block_size must be positive, got {requested}"
        )
    budget = DEFAULT_BYTES_BUDGET if budget_bytes is None else int(budget_bytes)
    if budget < 1:
        raise ConfigurationError(
            f"bytes_budget must be positive, got {budget}"
        )
    row = kernel_row_bytes(
        n_edges, n_wedges, n_groups, chunk_wedges=chunk_wedges
    )
    fitting = max(1, budget // row)
    block = min(int(requested), fitting)
    return BlockBudget(
        block_size=block,
        row_bytes=row,
        block_bytes=block * row,
        budget_bytes=budget,
        capped=block < int(requested),
    )
