"""Application layers for the paper's two motivating use cases:
recommendation (Figure 2) and brain-network analysis (Figure 3)."""

from .brain import (
    BrainAnalysis,
    ButterflyFinding,
    analyse_brain,
    compare_groups,
)
from .recommend import (
    Interaction,
    Recommendation,
    build_interest_graph,
    recommend,
)

__all__ = [
    "Interaction",
    "Recommendation",
    "build_interest_graph",
    "recommend",
    "ButterflyFinding",
    "BrainAnalysis",
    "analyse_brain",
    "compare_groups",
]
