"""Use case 2: brain-network analysis via top-k MPMBs (Figure 3).

The paper computes the top-10 MPMBs on hemisphere-crossing ABIDE
networks for a Typical Controls (TC) brain and an Autism Spectrum
Disorder (ASD) brain, observing that (a) the MPMBs concentrate into a few
ROI clusters and (b) TC activation intensity — the probability-weighted
strength of the discovered butterflies — is about twice the ASD one,
because ASD patients lack long-range connections.

This module runs that analysis end to end on the synthetic ABIDE-like
networks (see :mod:`repro.datasets.abide` for the substitution
rationale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

from ..core import find_top_k_mpmb
from ..graph import UncertainBipartiteGraph
from ..sampling import RngLike, ensure_rng


@dataclass(frozen=True)
class ButterflyFinding:
    """One discovered butterfly with its analysis attributes.

    Attributes:
        rois: The four ROI labels ``(left1, left2, right1, right2)``.
        probability: Estimated ``P(B)``.
        weight: Butterfly weight (summed ROI-pair distances — larger
            means longer-range activity).
        intensity: ``probability x weight`` — the activation-intensity
            proxy the Figure 3 colouring encodes.
    """

    rois: Tuple[Hashable, Hashable, Hashable, Hashable]
    probability: float
    weight: float

    @property
    def intensity(self) -> float:
        return self.probability * self.weight


@dataclass(frozen=True)
class BrainAnalysis:
    """Top-k MPMB analysis of one brain network.

    Attributes:
        group: Network/group name (e.g. ``"abide-tc"``).
        findings: The top-k butterflies, most probable first.
    """

    group: str
    findings: Tuple[ButterflyFinding, ...]

    @property
    def mean_intensity(self) -> float:
        """Average activation intensity over the findings (0 if none)."""
        if not self.findings:
            return 0.0
        return sum(f.intensity for f in self.findings) / len(self.findings)

    def roi_clusters(self) -> Dict[Hashable, int]:
        """How often each ROI participates across the findings.

        The paper observes the top MPMBs concentrate into a few clusters;
        a skewed histogram here is the tabular analogue of Figure 3's
        clustered glass brains.
        """
        counts: Dict[Hashable, int] = {}
        for finding in self.findings:
            for roi in finding.rois:
                counts[roi] = counts.get(roi, 0) + 1
        return counts


def analyse_brain(
    graph: UncertainBipartiteGraph,
    k: int = 10,
    method: str = "ols",
    n_trials: int = 4_000,
    n_prepare: int = 100,
    rng: RngLike = None,
) -> BrainAnalysis:
    """Top-k MPMB analysis of one hemisphere-crossing network."""
    top = find_top_k_mpmb(
        graph, k, method=method, n_trials=n_trials,
        n_prepare=n_prepare, rng=rng,
    )
    findings = tuple(
        ButterflyFinding(
            rois=butterfly.labels(graph),
            probability=probability,
            weight=butterfly.weight,
        )
        for butterfly, probability in top
    )
    return BrainAnalysis(group=graph.name or "brain", findings=findings)


def compare_groups(
    tc: UncertainBipartiteGraph,
    asd: UncertainBipartiteGraph,
    k: int = 10,
    method: str = "ols",
    n_trials: int = 4_000,
    n_prepare: int = 100,
    rng: RngLike = None,
) -> Tuple[BrainAnalysis, BrainAnalysis, float]:
    """Figure 3 head-to-head: analyse TC and ASD, return the intensity ratio.

    Returns:
        ``(tc_analysis, asd_analysis, intensity_ratio)`` where the ratio
        is TC mean intensity over ASD mean intensity (the paper reports
        roughly 2x; ``inf`` when the ASD analysis found nothing).
    """
    generator = ensure_rng(rng)
    tc_analysis = analyse_brain(
        tc, k=k, method=method, n_trials=n_trials,
        n_prepare=n_prepare, rng=generator,
    )
    asd_analysis = analyse_brain(
        asd, k=k, method=method, n_trials=n_trials,
        n_prepare=n_prepare, rng=generator,
    )
    if asd_analysis.mean_intensity == 0.0:
        ratio = float("inf") if tc_analysis.mean_intensity > 0 else 0.0
    else:
        ratio = tc_analysis.mean_intensity / asd_analysis.mean_intensity
    return tc_analysis, asd_analysis, ratio
