"""Use case 1: UserCF-style recommendation via MPMB (Figure 2).

A user-item network with *liking* probabilities is mined for butterflies:
two users agreeing on two items.  Plain most-probable butterflies
gravitate to hot items (everyone likes football), so — following the
optimised UserCF variants the paper cites — cold items earn a reward
weight, and the *maximum weighted* most-probable butterfly surfaces
niche agreement instead.  The recommendation itself is classic UserCF:
within a discovered butterfly ``(alice, bob, item1, item2)``, whatever
else ``bob`` likes becomes a candidate recommendation for ``alice``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence, Tuple

import math

from ..core import find_top_k_mpmb
from ..graph import GraphBuilder, UncertainBipartiteGraph
from ..sampling import RngLike

#: (user, item, liking probability) observation.
Interaction = Tuple[Hashable, Hashable, float]


@dataclass(frozen=True)
class Recommendation:
    """One recommendation produced by :func:`recommend`.

    Attributes:
        user: Who the item is recommended to.
        item: The recommended item.
        peer: The butterfly partner whose taste justified it.
        via_items: The two items both users agree on.
        probability: The supporting butterfly's estimated ``P(B)``.
        weight: The supporting butterfly's weight (cold-item reward
            included) — higher means nicher agreement.
    """

    user: Hashable
    item: Hashable
    peer: Hashable
    via_items: Tuple[Hashable, Hashable]
    probability: float
    weight: float


def build_interest_graph(
    interactions: Sequence[Interaction],
    cold_reward: float = 1.0,
    name: str = "user-item",
) -> UncertainBipartiteGraph:
    """Build the weighted uncertain user-item network.

    Edge probability is the observed liking probability; edge weight is
    the cold-item reward ``1 + cold_reward / log2(1 + popularity)`` so
    that items few users touch weigh more (Figure 2(b)'s re-weighting).

    Args:
        interactions: ``(user, item, probability)`` triples; duplicates
            of the same (user, item) pair are rejected by the builder.
        cold_reward: Strength of the cold-item reward; 0 disables
            re-weighting (Figure 2(a)'s plain most-probable butterfly).
        name: Dataset name recorded on the graph.
    """
    if cold_reward < 0:
        raise ValueError(f"cold_reward must be non-negative, got {cold_reward}")
    popularity: Dict[Hashable, int] = {}
    for _user, item, _prob in interactions:
        popularity[item] = popularity.get(item, 0) + 1

    builder = GraphBuilder(name=name)
    for user, item, prob in interactions:
        weight = 1.0 + cold_reward / math.log2(1.0 + popularity[item] + 1.0)
        builder.add_edge(user, item, weight=weight, prob=prob)
    return builder.build()


def recommend(
    interactions: Sequence[Interaction],
    for_user: Hashable | None = None,
    k_butterflies: int = 10,
    cold_reward: float = 1.0,
    method: str = "ols",
    n_trials: int = 4_000,
    n_prepare: int = 100,
    rng: RngLike = None,
) -> List[Recommendation]:
    """Produce MPMB-backed recommendations from raw interactions.

    The top-k MPMBs are mined; each butterfly ``(u1, u2, v1, v2)``
    generates recommendations both ways: items the peer likes (with any
    probability) that the user has not interacted with.

    Args:
        interactions: ``(user, item, probability)`` observations.
        for_user: Restrict output to one user (``None`` = all users).
        k_butterflies: How many MPMBs to mine (Section VII top-k).
        cold_reward: Cold-item reward strength (see
            :func:`build_interest_graph`).
        method: MPMB method to run.
        n_trials: Sampling trials.
        n_prepare: Preparing trials (OLS variants).
        rng: Seed or generator.

    Returns:
        Recommendations sorted by supporting-butterfly probability, then
        weight; deduplicated per (user, item).
    """
    graph = build_interest_graph(interactions, cold_reward=cold_reward)
    liked: Dict[Hashable, set] = {}
    for user, item, _prob in interactions:
        liked.setdefault(user, set()).add(item)

    top = find_top_k_mpmb(
        graph, k_butterflies, method=method, n_trials=n_trials,
        n_prepare=n_prepare, rng=rng,
    )

    seen: set = set()
    results: List[Recommendation] = []
    for butterfly, probability in top:
        u1, u2, v1, v2 = butterfly.labels(graph)
        for user, peer in ((u1, u2), (u2, u1)):
            if for_user is not None and user != for_user:
                continue
            for item in sorted(liked.get(peer, ()), key=str):
                if item in liked.get(user, ()):
                    continue
                if (user, item) in seen:
                    continue
                seen.add((user, item))
                results.append(
                    Recommendation(
                        user=user,
                        item=item,
                        peer=peer,
                        via_items=(v1, v2),
                        probability=probability,
                        weight=butterfly.weight,
                    )
                )
    results.sort(key=lambda r: (-r.probability, -r.weight, str(r.item)))
    return results
