"""Sublinear candidate pre-screen over the wedge-CSR index.

Before OLS/OLS-KL spends any sampling budget, the pre-screen drops
candidates that are *dominated*: their best possible ``P(B)`` cannot
beat a certified lower bound already held by some other candidate.  Both
sides of the comparison use the candidate-relative semantics of
Lemma VI.5 — exactly the quantity the downstream estimators certify.

For candidate ``j`` with existence probability ``E_j = Pr[E(B_j)]``:

- ``P(B_j) ≤ E_j`` is a free upper bound (a butterfly cannot be maximum
  without existing).
- ``P(B_j) ≥ E_j − M_j`` where ``M_j`` upper-bounds the probability
  mass of strictly heavier butterflies: conditioned on ``E(B_j)``, the
  probability that some heavier butterfly exists is at most
  ``μ_≥(w_j) / Pr[E(B_j)]``, so
  ``P(B_j) = Pr[E(B_j)]·Pr[no heavier | E(B_j)] ≥ E_j − μ_≥(w_j)``.

``M_j`` is the *smaller* of two sound bounds:

1. the exact heavier mass **within the candidate set**
   (``Σ_{i: w_i > w_j} E_i`` over the weight-sorted prefix — free,
   candidate-relative), and
2. a sampled upper bound on the heavier mass over the **whole graph**,
   estimated in sublinear time by drawing uniform wedge *pairs* from
   the existing wedge-CSR index (the per-wedge sampling template of
   "Efficient Butterfly Counting for Large Bipartite Networks" /
   "Approximate Butterfly Counting in Sublinear Time"): with ``T``
   same-group wedge pairs overall, the estimator ``T·p(pair)·1[weight
   above threshold]`` is unbiased for ``μ_≥`` and an
   empirical-Bernstein upper limit at the pre-screen's δ-share makes
   it one-sided safe.

A candidate is dropped iff its upper bound ``E_j`` falls below the best
certified lower bound ``L* = max_j (E_j − M_j)``.  Sampling ties are
counted as heavier, which can only inflate ``M_j`` — the elimination
rule stays sound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..core.candidates import CandidateSet
from ..kernels.wedge_block import WedgeIndex, build_wedge_index
from ..observability import Observer, ensure_observer
from ..sampling import RngLike, ensure_rng
from .intervals import EBInterval, split_delta

#: Relative slack when classifying a sampled butterfly as heavier than a
#: candidate threshold: the wedge index stores per-wedge weight sums, so
#: a butterfly weight re-associates the four edge weights differently
#: than the candidate's canonical sum.  Ties never block (blocking is
#: strictly heavier), so counting near-ties as heavier only inflates the
#: upper bound — the safe direction.
WEIGHT_RTOL = 1e-9


@dataclass
class PrescreenReport:
    """Outcome of one pre-screen pass.

    Attributes:
        survivors: Candidate indices (into the weight-sorted candidate
            order) that remain in play.
        eliminated: Candidate indices dropped as dominated.
        n_samples: Wedge-pair samples actually drawn (0 when the graph
            has fewer than two same-group wedges or sampling was
            disabled).
        best_lower: The certified lower bound ``L*`` the elimination
            rule compared against.
        lower_bounds: Per-candidate certified lower bounds
            ``E_j − M_j`` (candidate order).
    """

    survivors: List[int]
    eliminated: List[int]
    n_samples: int
    best_lower: float
    lower_bounds: List[float] = field(default_factory=list)


def _decode_pairs(
    offsets: np.ndarray, sizes: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """Map flat pair offsets to (first, second) wedge slots per group.

    Pairs ``(i, j)`` with ``i < j`` inside a group of ``k`` wedges are
    enumerated row-major: row ``i`` contributes ``k−1−i`` pairs, so the
    pairs preceding row ``i`` number ``S(i) = i·(2k−i−1)/2``.  The row
    is recovered from the quadratic inverse and nudged to absorb float
    rounding; the column is the remaining offset.
    """
    k = sizes.astype(np.float64)
    disc = (2.0 * k - 1.0) ** 2 - 8.0 * offsets.astype(np.float64)
    disc = np.maximum(disc, 0.0)
    first = np.floor(((2.0 * k - 1.0) - np.sqrt(disc)) / 2.0).astype(np.int64)
    first = np.clip(first, 0, sizes - 2)

    def before(i: np.ndarray) -> np.ndarray:
        return i * (2 * sizes - i - 1) // 2

    # One correction step in each direction covers sqrt rounding error.
    first = np.where(before(first) > offsets, first - 1, first)
    first = np.where(
        (first + 1 <= sizes - 2) & (before(first + 1) <= offsets),
        first + 1,
        first,
    )
    second = first + 1 + (offsets - before(first))
    return first, second


def prescreen_candidates(
    candidates: CandidateSet,
    rng: RngLike = None,
    n_samples: int = 2048,
    delta: float = 0.025,
    wedge_index: Optional[WedgeIndex] = None,
    observer: Optional[Observer] = None,
) -> PrescreenReport:
    """Drop dominated candidates before any estimator runs.

    Args:
        candidates: The weight-sorted candidate set ``C_MB``.
        rng: Seed or generator for the wedge-pair draws.
        n_samples: Wedge-pair samples for the full-graph heavier-mass
            bound (0 disables sampling; the exact candidate-prefix
            bound still applies).
        delta: Failure budget of the pre-screen's sampled bounds (split
            per candidate by a union bound).
        wedge_index: Optional prebuilt wedge-CSR index; built from the
            candidate graph when absent and sampling is enabled.
        observer: Optional observer; records
            ``adaptive.prescreen.samples``.

    Returns:
        A :class:`PrescreenReport`; with fewer than two candidates the
        pass is a no-op that keeps everything.
    """
    observer = ensure_observer(observer)
    m = len(candidates)
    if m < 2:
        return PrescreenReport(
            survivors=list(range(m)), eliminated=[], n_samples=0,
            best_lower=0.0,
            lower_bounds=[
                candidates.existence_probability(i) for i in range(m)
            ],
        )

    existence = [candidates.existence_probability(i) for i in range(m)]
    # Exact heavier mass within the candidate set: candidates are
    # weight-sorted, so the strictly-heavier prefix is a prefix sum.
    prefix = [0.0] * (m + 1)
    for i in range(m):
        prefix[i + 1] = prefix[i] + existence[i]
    candidate_mass = [prefix[candidates.heavier_count(i)] for i in range(m)]

    sampled_upper = [float("inf")] * m
    samples_drawn = 0
    if n_samples > 0:
        graph = candidates.graph
        if wedge_index is None:
            wedge_index = build_wedge_index(graph)
        sizes = np.diff(wedge_index.group_start).astype(np.int64)
        pair_counts = sizes * (sizes - 1) // 2
        total_pairs = int(pair_counts.sum())
        if total_pairs > 0:
            generator = ensure_rng(rng)
            cumulative = np.cumsum(pair_counts)
            draws = generator.integers(0, total_pairs, size=n_samples)
            samples_drawn = n_samples
            groups = np.searchsorted(cumulative, draws, side="right")
            offsets = draws - (cumulative[groups] - pair_counts[groups])
            first, second = _decode_pairs(offsets, sizes[groups])
            base = wedge_index.group_start[groups]
            wedge_a = base + first
            wedge_b = base + second
            probs = np.asarray(graph.probs, dtype=np.float64)
            presence = (
                probs[wedge_index.wedge_e1[wedge_a]]
                * probs[wedge_index.wedge_e2[wedge_a]]
                * probs[wedge_index.wedge_e1[wedge_b]]
                * probs[wedge_index.wedge_e2[wedge_b]]
            )
            weights = (
                wedge_index.wedge_weight[wedge_a]
                + wedge_index.wedge_weight[wedge_b]
            )
            values = float(total_pairs) * presence
            # Sort samples lightest-first; every candidate threshold is
            # then a suffix, evaluated from shared prefix sums.
            order = np.argsort(weights)
            weights = weights[order]
            values = values[order]
            value_sum = np.concatenate(([0.0], np.cumsum(values)))
            square_sum = np.concatenate(([0.0], np.cumsum(values * values)))
            delta_arm = split_delta(delta, m)
            for i in range(m):
                threshold = candidates[i].weight
                margin = WEIGHT_RTOL * max(1.0, abs(threshold))
                cut = int(
                    np.searchsorted(weights, threshold - margin, side="right")
                )
                total = float(value_sum[-1] - value_sum[cut])
                total_sq = float(square_sum[-1] - square_sum[cut])
                interval = EBInterval(range_width=float(total_pairs))
                interval.update_block(n_samples, total, total_sq)
                sampled_upper[i] = interval.upper(delta_arm)
    observer.inc("adaptive.prescreen.samples", float(samples_drawn))

    lower_bounds = [
        max(0.0, existence[i] - min(candidate_mass[i], sampled_upper[i]))
        for i in range(m)
    ]
    best_lower = max(lower_bounds)
    survivors = [i for i in range(m) if existence[i] >= best_lower]
    eliminated = [i for i in range(m) if existence[i] < best_lower]
    return PrescreenReport(
        survivors=survivors,
        eliminated=eliminated,
        n_samples=samples_drawn,
        best_lower=best_lower,
        lower_bounds=lower_bounds,
    )
