"""Empirical-Bernstein anytime confidence intervals.

The racing scheduler needs per-candidate intervals that stay valid at
*every* elimination check, not just at one pre-registered sample size.
Two standard ingredients provide that:

1. **Empirical Bernstein** (Maurer & Pontil 2009).  For ``t`` i.i.d.
   observations in ``[0, R]`` with sample mean ``m̂`` and sample
   variance ``V̂``, with probability at least ``1 − δ``::

       |m̂ − μ| ≤ sqrt(2 V̂ ln(3/δ) / t) + 3 R ln(3/δ) / t

   The variance-adaptive first term is what makes racing pay off: a
   candidate whose blocking indicator is nearly constant gets a tight
   interval after a handful of trials, regardless of the worst-case
   Theorem IV.1 budget.

2. **A union-bound δ-split over checks** (:func:`anytime_delta`).  Check
   ``k`` spends ``δ·6/(π²k²)``; the series sums to ``δ``, so *all*
   checks hold simultaneously with probability ``1 − δ`` no matter when
   the scheduler stops.  Splitting each check's budget further over the
   ``m`` candidates (:func:`split_delta`) gives the per-arm, per-check
   failure probability the scheduler feeds into :meth:`EBInterval.radius`.

The final claim is then reported as a *realised* ε: the incumbent's
half-width divided by ``max(estimate, μ)`` (:func:`realized_epsilon`),
which is the relative-error form Theorem IV.1 certifies — but measured
from the trials actually spent instead of the worst-case budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from ..errors import ConfigurationError

#: ``Σ 6/(π²k²) = 1`` — the convergent series behind the per-check split.
_BASEL = math.pi * math.pi / 6.0


def anytime_delta(delta: float, check: int) -> float:
    """Failure budget assigned to elimination check ``check`` (1-based).

    The budgets over all checks sum to ``delta``, so intervals computed
    at every check hold simultaneously with probability ``1 − delta``
    — the property that makes stopping at a data-dependent time sound.
    """
    if check <= 0:
        raise ConfigurationError(f"check index must be >= 1, got {check}")
    return delta / (_BASEL * check * check)


def split_delta(delta: float, arms: int) -> float:
    """Per-arm share of one check's failure budget (plain union bound)."""
    if arms <= 0:
        raise ConfigurationError(f"arm count must be >= 1, got {arms}")
    return delta / arms


def realized_epsilon(halfwidth: float, estimate: float, mu: float) -> float:
    """The relative error the final interval actually certifies.

    Theorem IV.1 budgets target ``|P̂ − P| ≤ ε·max(P̂, μ)``; inverting
    that for the achieved half-width gives the realised ε an adaptive
    run reports instead of the worst-case target.
    """
    scale = max(estimate, mu)
    if scale <= 0.0:
        return math.inf
    return halfwidth / scale


@dataclass
class EBInterval:
    """Streaming moments of one candidate's bounded trial values.

    Stores only ``(count, Σx, Σx²)`` so the blocked kernels can feed a
    whole block in one :meth:`update_block` call and checkpoints can
    carry the exact state (:meth:`to_dict` / :meth:`from_dict`).

    Attributes:
        range_width: ``R`` — the known value range ``[0, R]``.
        count: Number of observations.
        total: Sum of observations.
        total_sq: Sum of squared observations.
    """

    range_width: float = 1.0
    count: int = 0
    total: float = 0.0
    total_sq: float = 0.0

    def update(self, value: float) -> None:
        """Fold one observation into the moments."""
        self.count += 1
        self.total += value
        self.total_sq += value * value

    def update_block(self, count: int, total: float, total_sq: float) -> None:
        """Fold a whole block's pre-aggregated moments in one call."""
        if count < 0:
            raise ConfigurationError(f"block count must be >= 0, got {count}")
        self.count += count
        self.total += total
        self.total_sq += total_sq

    @property
    def mean(self) -> float:
        """Sample mean (0.0 before any observation)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 below two observations)."""
        if self.count < 2:
            return 0.0
        mean = self.mean
        raw = (self.total_sq - self.count * mean * mean) / (self.count - 1)
        return max(0.0, raw)

    def radius(self, delta: float) -> float:
        """Maurer-Pontil empirical-Bernstein radius at confidence ``δ``."""
        if self.count == 0:
            return math.inf
        log_term = math.log(3.0 / delta)
        return (
            math.sqrt(2.0 * self.variance * log_term / self.count)
            + 3.0 * self.range_width * log_term / self.count
        )

    def lower(self, delta: float) -> float:
        """Lower confidence limit, clamped to the value range."""
        if self.count == 0:
            return 0.0
        return max(0.0, self.mean - self.radius(delta))

    def upper(self, delta: float) -> float:
        """Upper confidence limit, clamped to the value range."""
        if self.count == 0:
            return self.range_width
        return min(self.range_width, self.mean + self.radius(delta))

    def to_dict(self) -> Dict[str, float]:
        """Checkpoint payload — exact moments, nothing derived."""
        return {
            "range_width": float(self.range_width),
            "count": int(self.count),
            "total": float(self.total),
            "total_sq": float(self.total_sq),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, float]) -> "EBInterval":
        """Rebuild the exact interval state from a checkpoint payload."""
        return cls(
            range_width=float(payload["range_width"]),
            count=int(payload["count"]),
            total=float(payload["total"]),
            total_sq=float(payload["total_sq"]),
        )
