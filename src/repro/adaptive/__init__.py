"""Anytime adaptive trial allocation (racing + sublinear pre-screen).

The static Theorem IV.1 / Lemma VI.4 budgets are worst-case: they size
every candidate for the full ε-δ target even when the incumbent
separates after a fraction of the trials.  This package replaces the
fixed budgets with an *anytime* scheme:

- :mod:`~repro.adaptive.intervals` — empirical-Bernstein confidence
  sequences per candidate, valid at every check simultaneously through
  a union-bound δ-split, so stopping early still certifies an overall
  ε-δ statement (reported as a *realised*, not worst-case, budget).
- :mod:`~repro.adaptive.racing` — a racing scheduler that re-allocates
  each block of trials to the surviving candidates and eliminates any
  candidate whose upper bound falls below the incumbent's lower bound.
- :mod:`~repro.adaptive.prescreen` — a sublinear pre-screen that
  samples wedge pairs through the existing wedge-CSR index to bound the
  heavier-butterfly mass and drop dominated candidates before any
  OLS/OLS-KL sampling starts.

Everything is opt-in behind ``adaptive=`` / ``--adaptive`` /
``mode="adaptive"``; with the switch off every method is bit-identical
to the fixed-budget paths.
"""

from .intervals import (
    EBInterval,
    anytime_delta,
    realized_epsilon,
    split_delta,
)
from .prescreen import PrescreenReport, prescreen_candidates
from .racing import (
    ADAPTIVE_STOP,
    AdaptiveConfig,
    RacingFrequencyLoop,
    adaptive_karp_luby,
    resolve_adaptive,
)

__all__ = [
    "ADAPTIVE_STOP",
    "AdaptiveConfig",
    "EBInterval",
    "PrescreenReport",
    "RacingFrequencyLoop",
    "adaptive_karp_luby",
    "anytime_delta",
    "prescreen_candidates",
    "realized_epsilon",
    "resolve_adaptive",
    "split_delta",
]
