"""Racing trial allocation with anytime elimination.

Two schedulers share the empirical-Bernstein machinery of
:mod:`~repro.adaptive.intervals`:

- :class:`RacingFrequencyLoop` wraps the frequency-method loops (MC-VP,
  OS, and OLS's optimised estimator — scalar and blocked alike) and
  stops the whole run as soon as the incumbent butterfly's lower
  confidence limit clears every rival's upper limit.  Frequency trials
  are shared by all arms, so "racing" degenerates to certified early
  stopping; the stop rule is a pure function of the checkpointed winner
  counts, evaluated at deterministic trial boundaries, which makes
  checkpoint/resume exact with no extra state.
- :func:`adaptive_karp_luby` replaces Algorithm 4's fixed per-candidate
  Lemma VI.4 budgets: each engine unit is one *round* handing a block
  of union trials to every surviving candidate, candidates whose
  ``P(B)`` upper bound falls below the incumbent's lower bound are
  eliminated and stop consuming trials, and the run ends when one
  survivor remains (or every survivor exhausts its static budget — the
  fixed-path worst case).  Survivor set and interval state ride in the
  checkpoint payload.

Both paths report the ε they *realised* — the final half-width of the
incumbent's interval in Theorem IV.1's relative form — through the
``adaptive.realized_epsilon`` gauge and the extended
:class:`~repro.runtime.degradation.Guarantee` payload, alongside
``adaptive.trials_saved`` and ``adaptive.candidates_eliminated``.

An early stop triggered by the racing rule is a *certified* outcome,
not degradation: the engine's ``"adaptive-stop"`` interrupt reason is
cleared before results are assembled, unlike ``"deadline"`` or
``"interrupted"`` which keep marking the run degraded.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from itertools import accumulate
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from ..butterfly import ButterflyKey
from ..core.candidates import CandidateSet
from ..core.estimation import EstimationOutcome
from ..core.karp_luby_estimator import _candidate_budget, _to_probability
from ..errors import CheckpointError, ConfigurationError
from ..kernels import UnionBlockKernel
from ..observability import Observer, ensure_observer
from ..runtime.degradation import Guarantee
from ..runtime.engine import LoopInterrupt, LoopReport, execute_trial_loop
from ..runtime.policy import RuntimePolicy
from ..sampling import (
    ConvergenceTrace,
    KarpLubyUnionSampler,
    RngLike,
    ensure_rng,
    monte_carlo_trial_bound,
)
from ..sampling.rng import restore_rng_state, rng_state_payload
from .intervals import (
    EBInterval,
    anytime_delta,
    realized_epsilon,
    split_delta,
)
from .prescreen import prescreen_candidates

#: Engine interrupt reason for a *certified* racing stop.  Result
#: assembly clears it — unlike ``"deadline"``, it does not degrade.
ADAPTIVE_STOP = "adaptive-stop"


@dataclass(frozen=True)
class AdaptiveConfig:
    """Tuning knobs of the anytime adaptive mode.

    Attributes:
        delta: Total failure budget of the anytime claim (pre-screen +
            every elimination check, union-bounded).  ``None`` inherits
            the method's own δ so the adaptive run certifies the same
            confidence level as the fixed-budget run it replaces.
        block_trials: Karp-Luby trials handed to each surviving
            candidate per racing round.
        check_every: Trials between stop-rule evaluations on the
            frequency methods' scalar paths (blocked paths check at
            every block boundary).
        min_trials: Trials required before the first frequency-method
            stop-rule evaluation may fire.
        prescreen: Run the sublinear wedge-pair pre-screen before
            OLS/OLS-KL sampling (half of ``delta`` is spent on it).
        prescreen_samples: Wedge-pair samples the pre-screen draws.
    """

    delta: Optional[float] = None
    block_trials: int = 256
    check_every: int = 256
    min_trials: int = 64
    prescreen: bool = True
    prescreen_samples: int = 2048

    def __post_init__(self) -> None:
        if self.delta is not None and not 0.0 < self.delta < 1.0:
            raise ConfigurationError(
                f"adaptive delta must be in (0, 1), got {self.delta}"
            )
        for name in ("block_trials", "check_every", "min_trials"):
            value = getattr(self, name)
            if value <= 0:
                raise ConfigurationError(
                    f"adaptive {name} must be positive, got {value}"
                )
        if self.prescreen_samples < 0:
            raise ConfigurationError(
                "adaptive prescreen_samples must be >= 0, got "
                f"{self.prescreen_samples}"
            )


def resolve_adaptive(
    value: Union[None, bool, Dict, AdaptiveConfig],
) -> Optional[AdaptiveConfig]:
    """Normalise an ``adaptive=`` argument into a config (or ``None``).

    ``None``/``False`` disable the mode (the fixed-budget paths run
    bit-identically); ``True`` enables the defaults; a dict supplies
    :class:`AdaptiveConfig` fields; a config passes through.
    """
    if value is None or value is False:
        return None
    if value is True:
        return AdaptiveConfig()
    if isinstance(value, AdaptiveConfig):
        return value
    if isinstance(value, dict):
        return AdaptiveConfig(**value)
    raise ConfigurationError(
        f"adaptive must be a bool, dict, or AdaptiveConfig, got {value!r}"
    )


class RacingFrequencyLoop:
    """Certified early stopping for the winner-frequency loops.

    Wraps an engine loop (scalar or blocked) and raises
    :data:`ADAPTIVE_STOP` once the incumbent's empirical-Bernstein
    lower limit exceeds every rival's upper limit — including, when
    ``phantom`` is set, a phantom zero-count arm standing in for every
    butterfly not yet observed (MC-VP/OS race over an open set of
    arms; OLS's optimised estimator races over the fixed candidate
    list and needs no phantom).

    The stop rule for the state after unit ``t`` is evaluated at the
    *start* of unit ``t+1`` from the inner loop's own counts, so a
    resumed run stops at exactly the trial a continuous run would have
    — the checkpoint payload is the inner loop's, untouched.
    """

    def __init__(
        self,
        inner,
        counts_fn: Callable[[], Sequence[int]],
        config: AdaptiveConfig,
        delta: float,
        mu: float,
        phantom: bool = True,
        unit_lengths: Optional[Sequence[int]] = None,
    ) -> None:
        self.inner = inner
        self._counts_fn = counts_fn
        self.config = config
        self.delta = delta
        self.mu = mu
        self.phantom = phantom
        self._cumulative = (
            list(accumulate(unit_lengths))
            if unit_lengths is not None
            else None
        )
        self.stopped_at: Optional[int] = None
        self.eliminated = 0
        self.halfwidth = math.inf
        self.realized = math.inf

    def run_trial(self, trial: int) -> None:
        done, check = self._boundary(trial - 1)
        if (
            check is not None
            and done >= self.config.min_trials
            and self._separated(done, check)
        ):
            self.stopped_at = done
            raise LoopInterrupt(ADAPTIVE_STOP)
        self.inner.run_trial(trial)

    def state_payload(self, completed: int) -> Dict:
        return self.inner.state_payload(completed)

    def restore_state(self, payload: Dict) -> None:
        self.inner.restore_state(payload)

    def _boundary(self, units: int) -> "tuple[int, Optional[int]]":
        """(trials done, check index) for ``units`` completed units."""
        if units <= 0:
            return 0, None
        if self._cumulative is not None:
            return int(self._cumulative[units - 1]), units
        if units % self.config.check_every != 0:
            return units, None
        return units, units // self.config.check_every

    def _separated(self, done: int, check: int) -> bool:
        counts = [int(count) for count in self._counts_fn()]
        arms = len(counts)
        if arms == 0 or (arms == 1 and not self.phantom):
            return False
        delta_check = anytime_delta(self.delta, check)
        delta_arm = split_delta(delta_check, arms + int(self.phantom))
        intervals = [
            EBInterval(1.0, done, float(c), float(c)) for c in counts
        ]
        lowers = [iv.lower(delta_arm) for iv in intervals]
        uppers = [iv.upper(delta_arm) for iv in intervals]
        best = max(range(arms), key=lambda i: (lowers[i], -i))
        rival = max(
            (uppers[i] for i in range(arms) if i != best),
            default=0.0,
        )
        if self.phantom:
            rival = max(
                rival, EBInterval(1.0, done, 0.0, 0.0).upper(delta_arm)
            )
        if lowers[best] <= rival:
            return False
        self.eliminated = arms - 1
        self.halfwidth = (uppers[best] - lowers[best]) / 2.0
        self.realized = realized_epsilon(
            self.halfwidth, intervals[best].mean, self.mu
        )
        return True


def frequency_racing_summary(
    racer: RacingFrequencyLoop,
    report: LoopReport,
    observer: Observer,
) -> Optional[Guarantee]:
    """Post-run bookkeeping for an adaptive frequency-method run.

    When the engine stopped through the racing rule, the stop is
    certified: the report's stop reason is cleared so downstream result
    assembly does not flag the run degraded, the ``adaptive.*`` metrics
    are recorded, and the realised guarantee (with the
    ``realized_trials``/``eliminated`` payload) is returned.  Runs that
    completed their full budget, or degraded for real reasons, return
    ``None`` untouched.
    """
    if report.stop_reason != ADAPTIVE_STOP:
        return None
    report.stop_reason = None
    saved = report.n_trials_target - report.n_trials
    observer.inc("adaptive.trials_saved", float(saved))
    observer.inc(
        "adaptive.candidates_eliminated", float(racer.eliminated)
    )
    observer.set("adaptive.realized_epsilon", float(racer.realized))
    return Guarantee(
        mu=racer.mu,
        epsilon=racer.realized,
        delta=racer.delta,
        achieved_trials=report.n_trials,
        target_trials=report.n_trials_target,
        realized_trials=report.n_trials,
        eliminated=racer.eliminated,
    )


class _RacingKarpLubyLoop:
    """Algorithm 4's candidate sampling as racing rounds.

    One engine unit is one *round*: every surviving, trial-needing
    candidate receives up to ``block_trials`` Karp-Luby union trials
    (through the vectorised :class:`~repro.kernels.UnionBlockKernel`
    when a block size is set), capped at its static Lemma VI.4 budget.
    Eliminations for the state after round ``k`` are applied at the
    start of round ``k+1`` — a pure function of the checkpointed
    interval state, so resume replays them exactly.
    """

    def __init__(
        self,
        candidates: CandidateSet,
        generator,
        budgets: List[int],
        mass: List[float],
        delta_race: float,
        config: AdaptiveConfig,
        pre_eliminated: Iterable[int] = (),
        track: Optional[Iterable[ButterflyKey]] = None,
        deadline=None,
        block_size: Optional[int] = None,
    ) -> None:
        self.candidates = candidates
        self.generator = generator
        self.items = candidates.butterflies
        self.m = len(candidates)
        self.budgets = budgets
        self.mass = mass
        self.delta_race = delta_race
        self.config = config
        self.deadline = deadline
        self.block_size = block_size
        self._tracked = set(track) if track is not None else set()
        self.existence = [
            candidates.existence_probability(i) for i in range(self.m)
        ]
        self.alive = [True] * self.m
        for index in pre_eliminated:
            self.alive[index] = False
        self.done = [0] * self.m
        self.intervals = [EBInterval(1.0) for _ in range(self.m)]
        self.eliminated_upper: List[Optional[float]] = [None] * self.m
        self.race_eliminated = 0
        self.traces: Dict[ButterflyKey, ConvergenceTrace] = {}
        self._samplers: Dict[int, KarpLubyUnionSampler] = {}
        self._events: Dict[int, list] = {}

    # ------------------------------------------------------------------
    # Engine contract
    # ------------------------------------------------------------------

    def run_trial(self, trial: int) -> None:
        self._check(trial - 1)
        interrupted = False
        for index in range(self.m):
            if not self._needs_trials(index):
                continue
            if self.deadline is not None and self.deadline.expired:
                interrupted = True
                break
            share = min(
                self.config.block_trials,
                self.budgets[index] - self.done[index],
            )
            sampler = self._sampler(index)
            before = sampler.accepted
            if self.block_size is not None:
                UnionBlockKernel(sampler).run_block(share)
            else:
                for _ in range(share):
                    sampler.trial()
            accepted = sampler.accepted - before
            self.intervals[index].update_block(
                share, float(accepted), float(accepted)
            )
            self.done[index] += share
            key = self.items[index].key
            if key in self._tracked:
                trace = self.traces.setdefault(
                    key, ConvergenceTrace(label=str(key))
                )
                trace.record(self.done[index], self._estimate(index))
        if interrupted:
            raise LoopInterrupt("deadline")

    def state_payload(self, completed: int) -> Dict:
        return {
            "candidates": [list(b.key) for b in self.items],
            "alive": [int(flag) for flag in self.alive],
            "done": [int(n) for n in self.done],
            "intervals": [iv.to_dict() for iv in self.intervals],
            "eliminated_upper": [
                None if value is None else float(value)
                for value in self.eliminated_upper
            ],
            "race_eliminated": int(self.race_eliminated),
            "traces": {
                "|".join(map(str, key)): [
                    [n, value] for n, value in trace.checkpoints
                ]
                for key, trace in self.traces.items()
            },
            "rng": rng_state_payload(self.generator),
        }

    def restore_state(self, payload: Dict) -> None:
        keys = [
            tuple(int(part) for part in raw)
            for raw in payload["candidates"]
        ]
        current = [b.key for b in self.items]
        if keys != current:
            raise CheckpointError(
                "checkpointed candidate set does not match the current "
                f"candidate set ({len(keys)} vs {len(current)} candidates)"
            )
        self.alive = [bool(flag) for flag in payload["alive"]]
        self.done = [int(n) for n in payload["done"]]
        self.intervals = [
            EBInterval.from_dict(raw) for raw in payload["intervals"]
        ]
        self.eliminated_upper = [
            None if value is None else float(value)
            for value in payload["eliminated_upper"]
        ]
        self.race_eliminated = int(payload["race_eliminated"])
        self.traces = {}
        for raw_key, recorded in payload["traces"].items():
            key = tuple(int(part) for part in raw_key.split("|"))
            trace = ConvergenceTrace(label=str(key))
            trace.checkpoints = [
                (int(n), float(value)) for n, value in recorded
            ]
            self.traces[key] = trace
        self._samplers = {}
        restore_rng_state(self.generator, payload["rng"])

    # ------------------------------------------------------------------
    # Racing internals
    # ------------------------------------------------------------------

    def _events_of(self, index: int) -> list:
        if index not in self._events:
            self._events[index] = self.candidates.difference_events(index)
        return self._events[index]

    def _sampler(self, index: int) -> KarpLubyUnionSampler:
        sampler = self._samplers.get(index)
        if sampler is None:
            probs = self.candidates.graph.probs
            sampler = KarpLubyUnionSampler(
                self._events_of(index),
                lambda e: float(probs[e]),
                self.generator,
            )
            self._samplers[index] = sampler
            # The sampler's event-ordered sum is the S_i every estimate
            # uses from here on (bit-consistent with the fixed path).
            self.mass[index] = sampler.weight_sum
        return sampler

    def _needs_trials(self, index: int) -> bool:
        return (
            self.alive[index]
            and self.existence[index] > 0.0
            and self.mass[index] > 0.0
            and self.done[index] < self.budgets[index]
        )

    def _estimate(self, index: int) -> float:
        existence = self.existence[index]
        if existence == 0.0:
            return 0.0
        raw = self.intervals[index].mean * self.mass[index]
        return _to_probability(raw, existence)

    def bounds_at(self, check: int) -> List["tuple[float, float]"]:
        """Per-candidate ``P(B)`` intervals at elimination check ``k``."""
        delta_arm = split_delta(
            anytime_delta(self.delta_race, check), self.m
        )
        bounds = []
        for index in range(self.m):
            existence = self.existence[index]
            if existence == 0.0 or self.mass[index] == 0.0:
                bounds.append((self._estimate(index), self._estimate(index)))
                continue
            interval = self.intervals[index]
            if interval.count == 0:
                bounds.append((0.0, existence))
                continue
            mass = self.mass[index]
            low = _to_probability(interval.upper(delta_arm) * mass, existence)
            high = _to_probability(interval.lower(delta_arm) * mass, existence)
            bounds.append((low, high))
        return bounds

    def _check(self, check: int) -> None:
        """Eliminate and possibly stop, for the state after round ``check``."""
        survivors = [i for i in range(self.m) if self.alive[i]]
        if check >= 1 and len(survivors) > 1:
            bounds = self.bounds_at(check)
            best_lower = max(bounds[i][0] for i in survivors)
            for index in survivors:
                if bounds[index][1] < best_lower:
                    self.alive[index] = False
                    self.eliminated_upper[index] = bounds[index][1]
                    self.race_eliminated += 1
            survivors = [i for i in range(self.m) if self.alive[i]]
        if len(survivors) <= 1:
            raise LoopInterrupt(ADAPTIVE_STOP)
        if not any(self._needs_trials(i) for i in survivors):
            raise LoopInterrupt(ADAPTIVE_STOP)

    @property
    def total_trials(self) -> int:
        return sum(self.done)

    def estimates(self) -> Dict[ButterflyKey, float]:
        """Final reported estimates.

        Survivors report their point estimates.  Race-eliminated
        candidates report the *smaller* of their point estimate and the
        certified upper bound that eliminated them, so a noisy partial
        estimate cannot outrank the certified winner.  (Pre-screen
        eliminations are capped by the driver, which holds the
        pre-screen bounds.)
        """
        values: Dict[ButterflyKey, float] = {}
        for index in range(self.m):
            estimate = self._estimate(index)
            ceiling = self.eliminated_upper[index]
            if ceiling is not None:
                estimate = min(estimate, ceiling)
            values[self.items[index].key] = estimate
        return values


def adaptive_karp_luby(
    candidates: CandidateSet,
    rng: RngLike = None,
    *,
    config: AdaptiveConfig,
    n_trials: Optional[int] = None,
    mu: float = 0.05,
    epsilon: float = 0.1,
    delta: float = 0.1,
    min_trials: int = 16,
    max_trials: int = 200_000,
    track: Optional[Iterable[ButterflyKey]] = None,
    checkpoints: int = 40,
    block_size: Optional[int] = None,
    runtime: Optional[RuntimePolicy] = None,
    observer: Optional[Observer] = None,
) -> EstimationOutcome:
    """Anytime replacement for Algorithm 4's fixed Lemma VI.4 budgets.

    Runs the sublinear pre-screen (unless disabled), then races the
    surviving candidates: blocks of Karp-Luby trials per round, interval
    eliminations between rounds, early stop at one survivor.  The
    static Lemma VI.4 budgets are still computed — they cap each
    candidate's trials and are the baseline the reported
    ``trials_saved`` is measured against.

    The total failure budget δ (``config.delta`` or the method's
    ``delta``) splits half to the pre-screen and half to the racing
    checks (all of it to racing when the pre-screen is off), so the
    returned guarantee certifies the overall claim at δ with the ε the
    intervals actually realised.

    Returns an :class:`~repro.core.estimation.EstimationOutcome` with
    ``method="karp-luby"`` (interchangeable with the fixed-path
    estimator) whose stats add ``trials_saved`` and
    ``candidates_eliminated``, and whose guarantee is populated even on
    complete runs — the *realised* budget.  A deadline expiry still
    degrades, but the anytime intervals keep the partial run's bounds
    honest: the guarantee reflects the trials and eliminations that
    actually happened.
    """
    observer = ensure_observer(observer)
    generator = ensure_rng(rng)
    if n_trials is not None and n_trials <= 0:
        raise ConfigurationError(
            f"n_trials must be positive, got {n_trials}"
        )
    base = monte_carlo_trial_bound(mu, epsilon, delta)
    m = len(candidates)
    if m == 0:
        return EstimationOutcome(
            method="karp-luby",
            estimates={},
            stats={"total_trials": 0.0, "base_trials": float(base)},
        )
    delta_total = config.delta if config.delta is not None else delta
    use_prescreen = config.prescreen and m >= 2
    delta_pre = delta_total / 2.0 if use_prescreen else 0.0
    delta_race = delta_total - delta_pre

    pre_lower: List[float] = []
    pre_eliminated: List[int] = []
    if use_prescreen:
        report = prescreen_candidates(
            candidates, generator,
            n_samples=config.prescreen_samples,
            delta=delta_pre, observer=observer,
        )
        pre_eliminated = report.eliminated
        pre_lower = report.lower_bounds

    mass = [candidates.blocking_mass(i) for i in range(m)]
    budgets = []
    for index in range(m):
        existence = candidates.existence_probability(index)
        if existence == 0.0 or mass[index] == 0.0:
            budgets.append(0)
            continue
        budgets.append(_candidate_budget(
            n_trials, existence, mass[index], mu, epsilon, delta,
            min_trials, max_trials,
        ))
    static_total = sum(budgets)
    max_rounds = 1
    for index in range(m):
        if index in pre_eliminated or budgets[index] == 0:
            continue
        max_rounds = max(
            max_rounds,
            -(-budgets[index] // config.block_trials),
        )

    deadline = runtime.make_deadline() if runtime is not None else None
    if block_size is not None and block_size <= 0:
        raise ConfigurationError(
            f"block_size must be positive, got {block_size}"
        )
    loop = _RacingKarpLubyLoop(
        candidates, generator, budgets, mass, delta_race, config,
        pre_eliminated=pre_eliminated, track=track, deadline=deadline,
        block_size=block_size,
    )
    with observer.span(
        "sampling", method="ols-kl", candidates=m, adaptive=True
    ):
        report_loop = execute_trial_loop(
            method="ols-kl",
            graph_name=candidates.graph.name,
            n_target=max_rounds,
            loop=loop,
            policy=runtime,
            deadline=deadline,
            unit="round",
            observer=observer,
        )
    for done in loop.done:
        observer.observe("ols-kl.trials_per_candidate", done)

    used = loop.total_trials
    saved = static_total - used
    eliminated = loop.race_eliminated + len(pre_eliminated)
    estimates = loop.estimates()
    if pre_eliminated:
        # Cap pre-screen-eliminated candidates at their certified lower
        # bound — they received no trials, and reporting their bare
        # existence probability could outrank the certified winner.
        for index in pre_eliminated:
            key = candidates[index].key
            estimates[key] = min(estimates[key], pre_lower[index])

    final_check = max(1, report_loop.completed)
    bounds = loop.bounds_at(final_check)
    winner = max(
        (i for i in range(m) if loop.alive[i]),
        key=lambda i: (estimates[candidates[i].key], -i),
        default=0,
    )
    halfwidth = (bounds[winner][1] - bounds[winner][0]) / 2.0
    realized = realized_epsilon(
        halfwidth, estimates[candidates[winner].key], mu
    )

    stop_reason = report_loop.stop_reason
    if stop_reason == ADAPTIVE_STOP:
        stop_reason = None
    degraded = stop_reason is not None
    if not degraded:
        observer.inc("adaptive.trials_saved", float(max(0, saved)))
        observer.inc("adaptive.candidates_eliminated", float(eliminated))
        observer.set("adaptive.realized_epsilon", float(realized))
    guarantee = Guarantee(
        mu=mu,
        epsilon=realized,
        delta=delta_total,
        achieved_trials=used,
        target_trials=static_total,
        realized_trials=used,
        eliminated=eliminated,
    )
    return EstimationOutcome(
        method="karp-luby",
        estimates=estimates,
        traces=loop.traces,
        trials_per_candidate=list(loop.done),
        stats={
            "total_trials": float(used),
            "base_trials": float(base),
            "trials_saved": float(max(0, saved)),
            "candidates_eliminated": float(eliminated),
        },
        stop_reason=stop_reason,
        target_trials=static_total if degraded else None,
        guarantee=guarantee,
    )


def adaptive_delta(
    config: AdaptiveConfig, runtime: Optional[RuntimePolicy]
) -> float:
    """The δ an adaptive frequency run certifies.

    ``config.delta`` when set, else the runtime policy's guarantee δ,
    else the paper default 0.1 — mirroring how degraded frequency runs
    re-widen their guarantees.
    """
    if config.delta is not None:
        return config.delta
    if runtime is not None:
        return runtime.guarantee_delta
    return 0.1


def adaptive_mu(runtime: Optional[RuntimePolicy]) -> float:
    """The μ the realised-ε statement normalises against."""
    if runtime is not None:
        return runtime.guarantee_mu
    return 0.05


def split_worker_delta(
    config: AdaptiveConfig, n_workers: int, default_delta: float = 0.1
) -> AdaptiveConfig:
    """δ-split an adaptive config across pool workers.

    Each worker races its own trial shard independently; giving every
    worker ``δ/n`` keeps the pooled claim at δ by a union bound.
    """
    if n_workers <= 1:
        return config
    effective = (
        config.delta if config.delta is not None else default_delta
    )
    return replace(config, delta=effective / n_workers)
