"""Butterfly support and bitruss decomposition (Related Work, [42]):
per-edge/per-vertex butterfly participation, expected supports on
uncertain graphs, and the peeling-based bitruss hierarchy."""

from .bitruss import BitrussResult, bitruss_decomposition
from .support import (
    SupportProfile,
    butterfly_support_profile,
    edge_butterfly_support,
    expected_edge_support,
    vertex_butterfly_counts,
)

__all__ = [
    "SupportProfile",
    "butterfly_support_profile",
    "edge_butterfly_support",
    "expected_edge_support",
    "vertex_butterfly_counts",
    "BitrussResult",
    "bitruss_decomposition",
]
