"""Bitruss decomposition on (uncertain) bipartite graphs.

The ``k``-bitruss of a bipartite graph is its maximal subgraph in which
every edge participates in at least ``k`` butterflies; the *bitruss
number* of an edge is the largest ``k`` whose k-bitruss contains it.
Decomposition peels edges in increasing support order, updating the
support of surviving edges as butterflies break ([42] studies the
uncertain variant; here the ``expected`` mode peels on expected support).

The peeling needs, for each removed edge, the butterflies it currently
participates in; those are recomputed locally from common neighbourhoods
(an edge is in a butterfly with each pair (wedge partner, co-neighbour)),
so the total work is output-sensitive rather than requiring a global
butterfly materialisation per round.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

import numpy as np

from ..graph import UncertainBipartiteGraph
from .support import edge_butterfly_support, expected_edge_support


@dataclass(frozen=True)
class BitrussResult:
    """Output of :func:`bitruss_decomposition`.

    Attributes:
        edge_truss: Per-edge bitruss numbers (peeling thresholds).  In
            ``expected`` mode these are the (float) expected supports at
            peel time, monotonically non-decreasing along the peel order.
        max_truss: The largest bitruss number.
    """

    edge_truss: np.ndarray

    @property
    def max_truss(self) -> float:
        return float(self.edge_truss.max(initial=0.0))

    def k_bitruss_edges(self, k: float) -> np.ndarray:
        """Edge indices belonging to the k-bitruss."""
        return np.flatnonzero(self.edge_truss >= k)


def bitruss_decomposition(
    graph: UncertainBipartiteGraph,
    mode: str = "deterministic",
) -> BitrussResult:
    """Peel the graph into its bitruss hierarchy.

    Args:
        graph: The bipartite network (probabilities are ignored in
            ``deterministic`` mode).
        mode: ``"deterministic"`` peels on exact backbone support;
            ``"expected"`` peels on the expected support of
            :func:`~repro.support.support.expected_edge_support`.

    Returns:
        A :class:`BitrussResult` with one truss number per edge.
    """
    if mode not in ("deterministic", "expected"):
        raise ValueError(
            f"mode must be 'deterministic' or 'expected', got {mode!r}"
        )
    if mode == "deterministic":
        support = edge_butterfly_support(graph).astype(np.float64)
    else:
        support = expected_edge_support(graph)

    probs = graph.probs
    alive: Set[int] = set(range(graph.n_edges))
    # Mutable adjacency: left vertex -> {right vertex: edge index}.
    adj_left: List[Dict[int, int]] = [
        dict(entries) for entries in graph.adjacency_left
    ]
    adj_right: List[Dict[int, int]] = [
        dict(entries) for entries in graph.adjacency_right
    ]

    truss = np.zeros(graph.n_edges, dtype=np.float64)
    heap: List[Tuple[float, int]] = [
        (support[e], e) for e in range(graph.n_edges)
    ]
    heapq.heapify(heap)
    peeled_level = 0.0

    while heap:
        level, edge = heapq.heappop(heap)
        if edge not in alive:
            continue
        if level > support[edge] + 1e-12:
            # Stale entry: the support has decreased since this entry was
            # pushed, and a fresher entry is already in the heap.
            continue
        peeled_level = max(peeled_level, support[edge])
        truss[edge] = peeled_level
        alive.remove(edge)

        u = int(graph.edge_left[edge])
        v = int(graph.edge_right[edge])
        del adj_left[u][v]
        del adj_right[v][u]

        # Butterflies through (u, v) pair a co-neighbour u' of v with a
        # co-neighbour v' of u such that (u', v') is alive.
        for u_other, e_uov in list(adj_right[v].items()):
            row = adj_left[u_other]
            for v_other, e_uv2 in list(adj_left[u].items()):
                e_cross = row.get(v_other)
                if e_cross is None:
                    continue
                for affected in (e_uov, e_uv2, e_cross):
                    delta = _support_delta(
                        mode, probs, edge, affected,
                        (edge, e_uov, e_uv2, e_cross),
                    )
                    support[affected] = max(
                        0.0, support[affected] - delta
                    )
                    heapq.heappush(heap, (support[affected], affected))
    return BitrussResult(edge_truss=truss)


def _support_delta(
    mode: str,
    probs: np.ndarray,
    removed: int,
    affected: int,
    butterfly_edges: Tuple[int, int, int, int],
) -> float:
    """Support lost by ``affected`` when ``removed`` kills one butterfly."""
    if mode == "deterministic":
        return 1.0
    p_affected = float(probs[affected])
    if p_affected == 0.0:
        return 0.0
    existence = 1.0
    for e in butterfly_edges:
        existence *= float(probs[e])
    return existence / p_affected
