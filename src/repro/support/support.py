"""Per-edge butterfly support, deterministic and expected.

The *support* of an edge is the number of butterflies containing it —
the quantity bitruss decomposition peels on ([42] in the paper's related
work).  On uncertain graphs the natural analogue is the *expected*
support: for each butterfly containing ``e``, the probability that the
other three edges exist (conditioning on ``e`` itself being present).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..butterfly import Butterfly, enumerate_butterflies
from ..graph import UncertainBipartiteGraph


@dataclass(frozen=True)
class SupportProfile:
    """Every support quantity of one graph, from one enumeration.

    Attributes:
        edge_support: Backbone butterfly count per edge
            (:func:`edge_butterfly_support`).
        expected_support: Conditional expected support per edge
            (:func:`expected_edge_support`).
        vertex_counts: Per-vertex participation counts
            (:func:`vertex_butterfly_counts`).
    """

    edge_support: np.ndarray
    expected_support: np.ndarray
    vertex_counts: Dict[str, np.ndarray]


def butterfly_support_profile(
    graph: UncertainBipartiteGraph,
) -> SupportProfile:
    """All three support quantities from a single enumeration pass.

    Calling :func:`edge_butterfly_support`,
    :func:`expected_edge_support` and :func:`vertex_butterfly_counts`
    separately materialises the full butterfly list three times —
    enumeration is the dominant cost on dense graphs.  This profile
    enumerates once and feeds the shared list to all three.
    """
    butterflies = list(enumerate_butterflies(graph))
    return SupportProfile(
        edge_support=edge_butterfly_support(graph, butterflies),
        expected_support=expected_edge_support(graph, butterflies),
        vertex_counts=vertex_butterfly_counts(graph, butterflies),
    )


def edge_butterfly_support(
    graph: UncertainBipartiteGraph,
    butterflies: Optional[List[Butterfly]] = None,
) -> np.ndarray:
    """Backbone butterfly support per edge.

    Returns:
        ``int64`` array of length ``n_edges``; entry ``e`` counts the
        butterflies whose four edges include ``e``.
    """
    if butterflies is None:
        butterflies = list(enumerate_butterflies(graph))
    support = np.zeros(graph.n_edges, dtype=np.int64)
    for butterfly in butterflies:
        for edge in butterfly.edges:
            support[edge] += 1
    return support


def expected_edge_support(
    graph: UncertainBipartiteGraph,
    butterflies: Optional[List[Butterfly]] = None,
) -> np.ndarray:
    """Expected butterfly support per edge, conditioned on the edge.

    For edge ``e``: ``Σ_{B ∋ e} Π_{e' ∈ B, e' ≠ e} p(e')`` — the expected
    number of butterflies through ``e`` in a world where ``e`` exists.
    This is the uncertain-graph peeling weight used by
    :func:`~repro.support.bitruss.bitruss_decomposition` in expected mode.
    """
    if butterflies is None:
        butterflies = list(enumerate_butterflies(graph))
    probs = graph.probs
    support = np.zeros(graph.n_edges, dtype=np.float64)
    for butterfly in butterflies:
        existence = butterfly.existence_probability(graph)
        for edge in butterfly.edges:
            p = float(probs[edge])
            if p > 0.0:
                support[edge] += existence / p
            # p == 0: no world contains e, the conditional support is 0.
    return support


def vertex_butterfly_counts(
    graph: UncertainBipartiteGraph,
    butterflies: Optional[List[Butterfly]] = None,
) -> Dict[str, np.ndarray]:
    """Per-vertex butterfly participation counts.

    Returns:
        ``{"left": counts over left vertices, "right": counts over right
        vertices}`` — each butterfly contributes once to each of its four
        corners (the classic per-vertex butterfly counting output of
        BFC-VP [50]).
    """
    if butterflies is None:
        butterflies = list(enumerate_butterflies(graph))
    left = np.zeros(graph.n_left, dtype=np.int64)
    right = np.zeros(graph.n_right, dtype=np.int64)
    for butterfly in butterflies:
        left[butterfly.u1] += 1
        left[butterfly.u2] += 1
        right[butterfly.v1] += 1
        right[butterfly.v2] += 1
    return {"left": left, "right": right}
