"""The query broker: one validated request in, one response out, always.

:meth:`QueryBroker.handle` is the service's single choke point.  Every
admitted failure mode resolves to a *well-formed*
:class:`~repro.service.schemas.QueryResponse` — the chaos suite's core
invariant is that no well-formed request can crash the service:

* **cache hit** → ``ok`` (no token spent, no engine run);
* **backpressure** (token bucket empty or in-flight cap reached) →
  ``rejected``/``admission-rejected``;
* **open breaker** → ``rejected``/``circuit-open``;
* **unknown/quarantined graph** → ``failed``/``graph-unavailable``;
* **deadline expiry** → ``degraded`` with the engine's partial result
  and *re-widened* ε-δ guarantee (Theorem IV.1 inverted for the trials
  actually completed) — never an error;
* **transient worker-pool failure** → retried with deterministic
  jitter; past the attempt cap → ``failed`` (and the dataset's breaker
  records it);
* **estimator/engine error** (including injected crashes) →
  ``failed`` with the error message.

Determinism contract: a scalar request (``block_size=None``, no
deadline, no injected faults) executes ``find_mpmb`` with exactly the
CLI's argument shape, so service answers are bit-identical to
``python -m repro search`` for the same parameters and seed.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core import find_mpmb
from ..core.results import MPMBResult
from ..errors import (
    AdmissionRejectedError,
    CircuitOpenError,
    GraphUnavailableError,
    ReproError,
    WorkerFailureError,
)
from ..observability import Observer, ensure_observer
from ..runtime import (
    RuntimePolicy,
    WorkerPool,
    backoff_seconds,
    recompute_guarantee,
    run_parallel_trials,
)
from ..runtime.faults import ServiceFaultPlan
from ..sampling.rng import RngLike, ensure_rng
from .admission import AdmissionController
from .breaker import STATE_VALUES, BreakerBoard
from .cache import ResultCache
from .registry import GraphRegistry, RegistryEntry
from .schemas import QueryRequest, QueryResponse


def _ranking_rows(
    result: MPMBResult, top_k: Optional[int] = None
) -> List[Dict[str, Any]]:
    """JSON-ready ranked rows (all of them when ``top_k`` is None)."""
    return [
        {
            "labels": list(labels),
            "weight": float(weight),
            "probability": float(probability),
        }
        for labels, weight, probability in result.labelled_ranking(top_k)
    ]


class QueryBroker:
    """Multiplexes concurrent queries onto the runtime engine.

    Args:
        registry: The load-once graph registry.
        admission: Token-bucket + in-flight admission control
            (defaults: 50/s sustained, burst 10, 4 in flight).
        breakers: Per-dataset circuit breaker board.
        cache: Versioned LRU result cache.
        observer: Metrics/span sink (``service.*``,
            ``service-request``).
        faults: Chaos plan; its ``request_faults`` engine plan is
            injected into every executed request.
        retry_attempts: Executions per request before a transient
            :class:`~repro.errors.WorkerFailureError` becomes terminal.
        retry_rng: Seed/stream for the deterministic retry jitter
            (routed through ``ensure_rng``; replays are identical for
            the same seed and request sequence).
        sleep: Injectable sleep for retry backoff.
        clock: Injectable monotonic clock for deadlines.
    """

    def __init__(
        self,
        registry: GraphRegistry,
        admission: Optional[AdmissionController] = None,
        breakers: Optional[BreakerBoard] = None,
        cache: Optional[ResultCache] = None,
        observer: Optional[Observer] = None,
        faults: Optional[ServiceFaultPlan] = None,
        retry_attempts: int = 2,
        retry_rng: RngLike = 0,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.registry = registry
        self.admission = admission or AdmissionController(clock=clock)
        self.breakers = breakers or BreakerBoard(clock=clock)
        self.cache = cache or ResultCache()
        self.observer = ensure_observer(observer)
        self.faults = faults or ServiceFaultPlan()
        self.retry_attempts = max(1, int(retry_attempts))
        self._retry_rng = ensure_rng(retry_rng)
        self._sleep = sleep
        self._clock = clock
        # Per-dataset persistent worker pools, keyed on the registry
        # checksum so a reload (new graph bytes) republishes rather
        # than serving stale shared memory.  Guarded by _pools_lock:
        # the map is touched from every pooled request thread plus
        # reload()/close(); pool construction and teardown stay
        # outside the lock (publishing a graph to shared memory and
        # spawning workers is slow).
        self._pools: Dict[str, Tuple[Optional[str], WorkerPool]] = {}
        self._pools_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------

    def handle(self, request: QueryRequest) -> QueryResponse:
        """Resolve one validated request to a response.  Never raises."""
        observer = self.observer
        observer.inc("service.requests.total")
        with observer.span(
            "service-request",
            dataset=request.dataset,
            method=request.method,
        ):
            response = self._dispatch(request)
        self._account(response)
        return response

    def _dispatch(self, request: QueryRequest) -> QueryResponse:
        """The lifecycle: route → cache → breaker → admit → execute."""
        observer = self.observer
        registry = self.registry
        if (
            request.profile != registry.profile
            or request.dataset_seed != registry.dataset_seed
        ):
            # The registry holds one graph per dataset, built with the
            # server's profile/seed.  Serving a mismatched identity from
            # it would label results for a graph that was never built —
            # breaking bit-identity with `python -m repro search`.
            return self._respond(
                request, status="failed", reason="graph-unavailable",
                detail=(
                    f"this service serves profile "
                    f"{registry.profile!r} with dataset_seed "
                    f"{registry.dataset_seed}; requested profile "
                    f"{request.profile!r} with dataset_seed "
                    f"{request.dataset_seed}"
                ),
            )
        try:
            entry = self.registry.get(request.dataset)
        except GraphUnavailableError as error:
            return self._respond(
                request, status="failed", reason="graph-unavailable",
                detail=str(error),
            )

        cache_key = (entry.version, request.canonical_params())
        if request.use_cache:
            payload = self.cache.get(cache_key)
            if payload is not None:
                observer.inc("service.cache.hits")
                return self._from_cached(request, entry, payload)
            observer.inc("service.cache.misses")

        breaker = self.breakers.get(request.dataset)
        try:
            breaker.allow()
        except CircuitOpenError as error:
            observer.inc("service.breaker.rejected")
            return self._respond(
                request, status="rejected", reason="circuit-open",
                detail=str(error), entry=entry,
            )
        finally:
            observer.set(
                "service.breaker.state", STATE_VALUES[breaker.state]
            )

        try:
            self.admission.admit()
        except AdmissionRejectedError as error:
            breaker.cancel_probe()  # the probe never executed
            observer.inc("service.admission.rejected")
            return self._respond(
                request, status="rejected", reason="admission-rejected",
                detail=str(error), entry=entry,
            )
        except BaseException:
            # admit() raising anything unexpected must still hand the
            # half-open probe slot back, or the breaker leaks capacity.
            breaker.cancel_probe()
            raise
        try:
            observer.set(
                "service.queue.depth", float(self.admission.inflight)
            )
            return self._execute(request, entry, breaker, cache_key)
        except BaseException:
            # _execute() records the breaker outcome on every normal
            # path; anything escaping it (observer faults, injected
            # chaos, interpreter shutdown) never did, so return the
            # probe slot.  cancel_probe() is a no-op once an outcome
            # was recorded, making this safe to run unconditionally.
            breaker.cancel_probe()
            raise
        finally:
            self.admission.release()
            observer.set(
                "service.queue.depth", float(self.admission.inflight)
            )

    def _execute(
        self,
        request: QueryRequest,
        entry: RegistryEntry,
        breaker,
        cache_key,
    ) -> QueryResponse:
        """Run the engine with deadline propagation and bounded retry."""
        observer = self.observer
        graph = entry.graph
        if graph is None:  # reloaded-to-quarantine race
            breaker.cancel_probe()  # the probe never executed
            return self._respond(
                request, status="failed", reason="graph-unavailable",
                detail=f"dataset {request.dataset!r} became unavailable",
                entry=entry,
            )
        trials = request.resolved_trials()
        deadline_at: Optional[float] = None
        if request.deadline_seconds is not None:
            deadline_at = self._clock() + request.deadline_seconds

        attempt = 0
        while True:
            attempt += 1
            if deadline_at is not None:
                remaining = deadline_at - self._clock()
                if remaining <= 0.0:
                    # Expired before (or between) executions: a
                    # degraded zero-trial answer with an honestly
                    # vacuous guarantee, not an error.  No breaker
                    # outcome will be recorded, so hand back any
                    # half-open probe slot this request holds.
                    breaker.cancel_probe()
                    observer.inc("service.deadline.degraded")
                    return self._respond(
                        request, status="degraded",
                        reason="deadline", entry=entry,
                        degraded_reason="deadline",
                        target_trials=trials,
                        guarantee=recompute_guarantee(
                            0, max(1, trials)
                        ).to_dict(),
                    )
            else:
                remaining = None
            try:
                result = self._run(
                    request, entry, graph, trials, remaining
                )
            except WorkerFailureError as error:
                if attempt < self.retry_attempts:
                    observer.inc("service.retries")
                    self._sleep(
                        backoff_seconds(attempt, jitter=self._retry_rng)
                    )
                    continue
                self._record_failure(breaker)
                return self._respond(
                    request, status="failed", reason="worker-failure",
                    detail=str(error), entry=entry,
                )
            except ReproError as error:
                # Estimator/engine errors, injected crashes, corrupt
                # checkpoints: terminal for this request, contained for
                # the service.
                self._record_failure(breaker)
                return self._respond(
                    request, status="failed", reason="execution-error",
                    detail=str(error), entry=entry,
                )
            breaker.record_success()
            return self._finish(request, entry, result, cache_key)

    def _record_failure(self, breaker) -> None:
        """Note a terminal failure, counting open transitions."""
        before = breaker.open_transitions
        breaker.record_failure()
        if breaker.open_transitions > before:
            self.observer.inc("service.breaker.opened")
        self.observer.set(
            "service.breaker.state", STATE_VALUES[breaker.state]
        )

    def _pool_for(
        self, request: QueryRequest, entry: RegistryEntry
    ) -> WorkerPool:
        """The dataset's persistent worker pool, (re)built as needed.

        Pools are cached per dataset and keyed on the registry
        checksum: consecutive pooled requests against the same graph
        bytes reuse the shared-memory segment and the attached worker
        processes (``worker.shm.reused``).  A checksum change (reload)
        or a batched request against an index-less pool tears the pool
        down and republishes.

        Thread safety: concurrent pooled requests race on the pool
        map, so it is only touched under ``_pools_lock`` — but never
        across the slow parts (closing a stale pool, building the
        wedge index, publishing shared memory, spawning workers).
        Two threads may therefore build pools for the same dataset
        concurrently; the second publisher re-checks the map and, if
        a usable pool got there first, closes its own build and uses
        the winner — no pool is leaked and no published pool is ever
        closed while cached.
        """
        needs_index = (
            request.block_size is not None
            and request.method in ("mc-vp", "os")
        )
        stale: Optional[WorkerPool] = None
        with self._pools_lock:
            cached = self._pools.get(request.dataset)
            if cached is not None:
                if self._pool_usable(cached, entry, needs_index):
                    return cached[1]
                del self._pools[request.dataset]
                stale = cached[1]
        if stale is not None:
            stale.close()
        wedge_index = None
        if needs_index:
            from ..kernels.wedge_block import build_wedge_index

            with self.observer.span("wedge-index", shared=True):
                wedge_index = build_wedge_index(entry.graph)
        pool = WorkerPool(
            entry.graph,
            wedge_index=wedge_index,
            checksum=entry.checksum,
            observer=self.observer if self.observer.enabled else None,
        )
        surplus: Optional[WorkerPool] = None
        with self._pools_lock:
            raced = self._pools.get(request.dataset)
            if raced is not None and self._pool_usable(
                raced, entry, needs_index
            ):
                # Another thread published a usable pool while we were
                # building: keep the winner, discard our build.
                surplus, pool = pool, raced[1]
            else:
                if raced is not None:
                    surplus = raced[1]
                self._pools[request.dataset] = (entry.checksum, pool)
        if surplus is not None:
            surplus.close()
        return pool

    def _pool_usable(
        self,
        cached: Tuple[Optional[str], WorkerPool],
        entry: RegistryEntry,
        needs_index: bool,
    ) -> bool:
        """Whether a cached pool still serves this entry's bytes."""
        checksum, pool = cached
        return checksum == entry.checksum and (
            not needs_index or pool.handle.has_index
        )

    def _run(
        self,
        request: QueryRequest,
        entry: RegistryEntry,
        graph,
        trials: int,
        remaining_seconds: Optional[float],
    ) -> MPMBResult:
        """One engine execution with the request's exact CLI shape."""
        request_faults = self.faults.request_faults
        adaptive: Dict[str, Any] = {}
        if request.mode == "adaptive":
            # The request's δ (when it sized the budget) is also the
            # anytime failure budget, matching the CLI's --adaptive.
            adaptive["adaptive"] = (
                {"delta": request.delta}
                if request.delta is not None
                else True
            )
        if request.workers > 1:
            pool_kwargs: Dict[str, Any] = {
                "pool": self._pool_for(request, entry),
            }
            if remaining_seconds is not None:
                # Deadline propagation for pooled runs: workers still
                # running at the remaining budget are terminated as
                # stragglers and not retried in-pool (a retry could
                # only finish past the deadline); whatever completed
                # merges into a degraded result with a re-widened
                # guarantee.  If every worker is cut down, the pool's
                # WorkerFailureError sends us back around the retry
                # loop, whose deadline check degrades explicitly.
                pool_kwargs["straggler_timeout"] = remaining_seconds
                pool_kwargs["max_attempts"] = 1
            return run_parallel_trials(
                graph, trials, request.workers, method=request.method,
                rng=request.seed, n_prepare=request.prepare,
                block_size=request.block_size,
                faults=request_faults,
                sleep=self._sleep,
                observer=(
                    self.observer if self.observer.enabled else None
                ),
                **adaptive,
                **pool_kwargs,
            )
        kwargs: Dict[str, Any] = {}
        if remaining_seconds is not None or request_faults is not None:
            kwargs["runtime"] = RuntimePolicy(
                timeout_seconds=remaining_seconds,
                faults=request_faults,
                clock=self._clock,
            )
        if request.block_size is not None:
            kwargs["block_size"] = request.block_size
        return find_mpmb(
            graph, method=request.method, n_trials=trials,
            n_prepare=request.prepare, rng=request.seed,
            observer=self.observer if self.observer.enabled else None,
            **adaptive,
            **kwargs,
        )

    # ------------------------------------------------------------------
    # Response assembly
    # ------------------------------------------------------------------

    def _finish(
        self,
        request: QueryRequest,
        entry: RegistryEntry,
        result: MPMBResult,
        cache_key,
    ) -> QueryResponse:
        """Turn an engine result into a response; cache complete ones."""
        observer = self.observer
        guarantee = (
            result.guarantee.to_dict()
            if result.guarantee is not None
            else None
        )
        if result.degraded:
            if result.degraded_reason == "deadline":
                observer.inc("service.deadline.degraded")
            return self._respond(
                request, status="degraded",
                reason=result.degraded_reason, entry=entry,
                ranking=_ranking_rows(result, request.top_k),
                n_trials=result.n_trials,
                target_trials=result.target_trials,
                guarantee=guarantee,
                degraded_reason=result.degraded_reason,
            )
        payload = {
            "ranking": _ranking_rows(result),  # full; sliced per request
            "n_trials": result.n_trials,
            "guarantee": guarantee,
        }
        if request.use_cache:
            self.cache.put(cache_key, payload)
        return self._respond(
            request, status="ok", entry=entry,
            ranking=payload["ranking"][: request.top_k],
            n_trials=result.n_trials,
            guarantee=guarantee,
        )

    def _from_cached(
        self,
        request: QueryRequest,
        entry: RegistryEntry,
        payload: Dict[str, Any],
    ) -> QueryResponse:
        return self._respond(
            request, status="ok", entry=entry, cache_hit=True,
            ranking=list(payload["ranking"][: request.top_k]),
            n_trials=int(payload["n_trials"]),
            guarantee=payload["guarantee"],
        )

    def _respond(
        self,
        request: QueryRequest,
        status: str,
        entry: Optional[RegistryEntry] = None,
        **fields: Any,
    ) -> QueryResponse:
        return QueryResponse(
            status=status,
            dataset=request.dataset,
            method=request.method,
            graph_version=None if entry is None else entry.version,
            **fields,
        )

    def _account(self, response: QueryResponse) -> None:
        """Final per-request metric rollup."""
        observer = self.observer
        observer.inc(f"service.requests.{response.status}")
        observer.set("service.cache.hit_rate", self.cache.hit_rate)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def reload(self, dataset: Optional[str] = None) -> None:
        """Reload graph(s) and drop the (now unreachable) cached answers.

        Cached worker pools for the reloaded dataset(s) are closed —
        their shared-memory segments hold the *old* graph bytes, and
        the checksum key would force a republish anyway.
        """
        self.registry.reload(dataset)
        self.cache.clear()
        with self._pools_lock:
            names = (
                list(self._pools) if dataset is None
                else [dataset] if dataset in self._pools else []
            )
            doomed = [self._pools.pop(name) for name in names]
        for _, pool in doomed:
            pool.close()

    def close(self) -> None:
        """Release every cached worker pool and its shared segment."""
        with self._pools_lock:
            doomed = list(self._pools.values())
            self._pools.clear()
        for _, pool in doomed:
            pool.close()

    def health(self) -> Dict[str, Any]:
        """Liveness payload: the process is up and answering."""
        return {"status": "alive", "inflight": self.admission.inflight}

    def readiness(self) -> Dict[str, Any]:
        """Readiness payload: registry + breaker health."""
        return {
            "ready": self.registry.ready(),
            "datasets": self.registry.describe(),
            "breakers": self.breakers.states(),
        }
