"""Fault-tolerant MPMB query service.

Turns the batch reproduction stack into a long-lived, failure-contained
query service (see ``docs/service.md``):

* :class:`~repro.service.registry.GraphRegistry` — load-once, versioned
  graph store with checksum validation, warm derived artifacts, and
  quarantine-don't-crash handling of corrupt datasets.
* :class:`~repro.service.schemas.QueryRequest` /
  :class:`~repro.service.schemas.QueryResponse` — the validated
  admission and exit contracts.
* :class:`~repro.service.admission.AdmissionController` — token-bucket
  rate limiting plus a bounded in-flight cap (explicit backpressure,
  never unbounded queues).
* :class:`~repro.service.breaker.CircuitBreaker` — per-dataset
  closed/open/half-open failure isolation.
* :class:`~repro.service.cache.ResultCache` — versioned LRU result
  cache, invalidated by registry reloads.
* :class:`~repro.service.broker.QueryBroker` — the single choke point
  multiplexing requests onto the runtime engine and worker pool, with
  deadline propagation into the engine's degradation path and
  deterministic retry jitter.
* :mod:`~repro.service.chaos` — scripted, deterministic chaos
  scenarios asserting that no injected fault crashes the service.
* :mod:`~repro.service.http` — stdlib JSON-over-HTTP front-end
  (``python -m repro serve``).
"""

from .admission import AdmissionController, TokenBucket
from .breaker import BreakerBoard, CircuitBreaker
from .broker import QueryBroker
from .cache import ResultCache
from .registry import GraphRegistry, RegistryEntry, graph_checksum
from .schemas import STATUSES, QueryRequest, QueryResponse

__all__ = [
    "AdmissionController",
    "TokenBucket",
    "BreakerBoard",
    "CircuitBreaker",
    "QueryBroker",
    "ResultCache",
    "GraphRegistry",
    "RegistryEntry",
    "graph_checksum",
    "STATUSES",
    "QueryRequest",
    "QueryResponse",
]
