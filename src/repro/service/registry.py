"""Load-once graph registry with checksum validation and quarantine.

The service never rebuilds a graph per request: a :class:`GraphRegistry`
loads each configured dataset once, validates the built artifact
against a SHA-256 checksum of its edge arrays and labels, warms the
query-relevant derived structures (adjacency lists, the weight-ordered
edge index of Algorithm 2, a top-weight candidate backbone), and serves
the result to every request until an explicit :meth:`~GraphRegistry.reload`.

Failure containment is the point: a dataset whose artifact fails
checksum validation is **quarantined** — the entry records the failure,
requests for it get an explicit
:class:`~repro.errors.GraphUnavailableError`, and every other dataset
keeps serving.  A corrupt artifact never crashes the process.  Loads
are versioned; the result cache keys on the version, so a reload
invalidates stale cached answers without a flush protocol.

Chaos hooks: the injectable ``sleep``/``clock`` and the consulted
:class:`~repro.runtime.faults.ServiceFaultPlan` (slow loads, transient
load failures, corrupt artifacts) make every failure path
deterministic in tests.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..butterfly.top_weight import top_weight_butterflies
from ..datasets import load_dataset
from ..errors import GraphUnavailableError, ReproError
from ..graph import UncertainBipartiteGraph
from ..observability import Observer, ensure_observer
from ..runtime.faults import ServiceFaultPlan
from ..runtime.shm import graph_checksum

__all__ = [
    "DEFAULT_BACKBONE_K",
    "DEFAULT_LOAD_ATTEMPTS",
    "GraphRegistry",
    "RegistryEntry",
    "graph_checksum",
]

#: How many top-weight butterflies the warm backbone keeps per graph.
DEFAULT_BACKBONE_K = 8

#: Load attempts per dataset before the entry is marked failed.
DEFAULT_LOAD_ATTEMPTS = 3


@dataclass
class RegistryEntry:
    """One dataset slot: its graph, warm artifacts, and health.

    Attributes:
        dataset: Registered dataset name.
        status: ``"ready"``, ``"quarantined"``, or ``"failed"``.
        graph: The served graph (``None`` unless ready).
        version: Monotone load counter; bumped by every (re)load so
            version-keyed caches self-invalidate.
        checksum: Content hash the artifact validated against.
        backbone: Top-weight candidate butterflies kept warm for
            diagnostics and future warm-start strategies.
        error: Why the entry is quarantined/failed (``None`` if ready).
        load_seconds: Wall time of the last load (includes injected
            delays — surfaced so slow-load chaos is observable).
    """

    dataset: str
    status: str = "failed"
    graph: Optional[UncertainBipartiteGraph] = None
    version: int = 0
    checksum: Optional[str] = None
    backbone: Tuple = ()
    error: Optional[str] = None
    load_seconds: float = 0.0

    #: Keys of :meth:`describe`, pinned for probe-payload stability.
    DESCRIBE_KEYS = (
        "dataset", "status", "version", "checksum", "error",
        "load_seconds", "n_edges",
    )

    def describe(self) -> Dict[str, object]:
        """JSON-ready health row for the readiness probe."""
        return {
            "dataset": self.dataset,
            "status": self.status,
            "version": self.version,
            "checksum": self.checksum,
            "error": self.error,
            "load_seconds": round(self.load_seconds, 6),
            "n_edges": None if self.graph is None else self.graph.n_edges,
        }


class GraphRegistry:
    """Load-once, versioned home of every servable graph.

    Args:
        datasets: Dataset names to manage (loaded by :meth:`load_all`
            or lazily on first :meth:`get`).
        profile: Dataset profile for every load.
        dataset_seed: Generation seed for every load.
        backbone_k: Size of the warm top-weight backbone.
        max_load_attempts: Attempts per load before the entry fails.
        faults: Optional chaos plan (slow loads, transient load
            failures, corrupt artifacts).
        observer: Metrics/span sink (``service.registry.*``,
            ``registry-load``).
        sleep: Injectable sleep used for injected load delays.
        clock: Injectable monotonic clock for load timing.
    """

    def __init__(
        self,
        datasets: Sequence[str],
        profile: str = "bench",
        dataset_seed: int = 0,
        backbone_k: int = DEFAULT_BACKBONE_K,
        max_load_attempts: int = DEFAULT_LOAD_ATTEMPTS,
        faults: Optional[ServiceFaultPlan] = None,
        observer: Optional[Observer] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.profile = profile
        self.dataset_seed = dataset_seed
        self.backbone_k = int(backbone_k)
        self.max_load_attempts = max(1, int(max_load_attempts))
        self.faults = faults or ServiceFaultPlan()
        self.observer = ensure_observer(observer)
        self._sleep = sleep
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: Dict[str, RegistryEntry] = {
            name: RegistryEntry(dataset=name) for name in datasets
        }

    @property
    def datasets(self) -> List[str]:
        """Managed dataset names, in configuration order."""
        return list(self._entries)

    def load_all(self) -> None:
        """Load (or reload) every managed dataset.

        Never raises: per-dataset failures are contained in the
        entries' status so one bad artifact cannot take down startup.
        """
        for name in self._entries:
            self._load(name)

    def reload(self, dataset: Optional[str] = None) -> None:
        """Reload one dataset (or all), bumping version(s).

        Version-keyed result caches are invalidated implicitly: cached
        answers for the old version can no longer be looked up.
        """
        names = self._entries.keys() if dataset is None else (dataset,)
        for name in names:
            self._require_known(name)
            self._load(name)

    def get(self, dataset: str) -> RegistryEntry:
        """The ready entry for ``dataset``, loading lazily if needed.

        Raises:
            GraphUnavailableError: Unknown, quarantined, or failed
                datasets — the caller turns this into an explicit
                response, never a crash.
        """
        entry = self._require_known(dataset)
        if entry.version == 0 or entry.status != "ready":
            # The version/status pair mutates under the registry lock
            # but this check runs outside it, so a racer can observe
            # the version bump before the status flip of an in-flight
            # first load.  Re-entering _load serialises us behind
            # that load; its under-lock ``only_if_unloaded`` re-check
            # then returns the winner's finished entry (and for a
            # genuinely failed dataset, the same failed entry —
            # loads are never retried here).
            entry = self._load(dataset, only_if_unloaded=True)
        if entry.status != "ready" or entry.graph is None:
            raise GraphUnavailableError(
                f"dataset {dataset!r} is {entry.status}: {entry.error}"
            )
        return entry

    def ready(self) -> bool:
        """Whether every managed dataset is loaded and servable."""
        return all(
            entry.status == "ready" for entry in self._entries.values()
        )

    def describe(self) -> List[Dict[str, object]]:
        """Health rows for all entries (readiness probe payload)."""
        return [entry.describe() for entry in self._entries.values()]

    def _require_known(self, dataset: str) -> RegistryEntry:
        entry = self._entries.get(dataset)
        if entry is None:
            known = ", ".join(self._entries) or "none"
            raise GraphUnavailableError(
                f"unknown dataset {dataset!r}; serving: {known}"
            )
        return entry

    def _load(
        self, dataset: str, only_if_unloaded: bool = False
    ) -> RegistryEntry:
        """(Re)load one dataset under the registry lock.

        All failure modes — injected or real — end in a quarantined or
        failed entry, never an exception.  ``only_if_unloaded`` makes
        the call idempotent for lazy first loads: :meth:`get` checks
        ``version == 0`` outside the lock, so two concurrent first
        requests can both reach here — the loser of that race must
        reuse the winner's load instead of redoing it (and bumping the
        version, which would orphan version-keyed cache entries).
        """
        with self._lock:
            entry = self._entries[dataset]
            if only_if_unloaded and entry.version > 0:
                return entry
            started = self._clock()
            with self.observer.span("registry-load", dataset=dataset):
                delay = self.faults.load_delay(dataset)
                if delay > 0.0:
                    # Deliberate: the load-once registry serialises
                    # (re)loads of ALL datasets under one lock, chaos
                    # delay included — get() of an already-loaded
                    # dataset never takes this lock, so requests only
                    # queue behind a load when they need its result.
                    self._sleep(delay)  # repro: noqa[LCK003]
                graph, error = self._build(dataset)
                entry.version += 1
                entry.load_seconds = self._clock() - started
                if graph is None:
                    entry.status = "failed"
                    entry.graph = None
                    entry.checksum = None
                    entry.backbone = ()
                    entry.error = error
                    return entry
                checksum = graph_checksum(graph)
                if self.faults.artifact_is_corrupt(dataset):
                    # The chaos plan simulates an artifact corrupted
                    # after manifest time: the recorded hash disagrees
                    # with the served bytes.
                    recorded = "0" * len(checksum)
                else:
                    recorded = checksum
                if recorded != checksum:
                    entry.status = "quarantined"
                    entry.graph = None
                    entry.checksum = None
                    entry.backbone = ()
                    entry.error = (
                        f"checksum mismatch: artifact hashes to "
                        f"{checksum[:12]}..., manifest records "
                        f"{recorded[:12]}..."
                    )
                    self.observer.inc("service.registry.quarantined")
                    return entry
                self._warm(graph, entry)
                entry.status = "ready"
                entry.graph = graph
                entry.checksum = checksum
                entry.error = None
                self.observer.inc("service.registry.loads")
                return entry

    def _build(
        self, dataset: str
    ) -> Tuple[Optional[UncertainBipartiteGraph], Optional[str]]:
        """Build the graph, retrying transient (injected) load faults."""
        last_error: Optional[str] = None
        for attempt in range(1, self.max_load_attempts + 1):
            if self.faults.load_should_fail(dataset, attempt):
                last_error = (
                    f"injected transient load failure "
                    f"(attempt {attempt})"
                )
                continue
            try:
                return (
                    load_dataset(
                        dataset, self.profile, rng=self.dataset_seed
                    ),
                    None,
                )
            except ReproError as error:
                last_error = str(error)
        return None, (
            f"load failed after {self.max_load_attempts} attempts: "
            f"{last_error}"
        )

    def _warm(
        self, graph: UncertainBipartiteGraph, entry: RegistryEntry
    ) -> None:
        """Materialise the derived structures queries will touch.

        Forces the graph's lazy caches (adjacency lists, the
        weight-ordered edge index that Algorithm 2's A1/A2 angle scans
        consume) and lists a small top-weight candidate backbone, so
        the first request pays no cold-start cost.
        """
        graph.adjacency_left
        graph.adjacency_right
        graph.edges_by_weight_desc
        entry.backbone = tuple(
            top_weight_butterflies(graph, self.backbone_k)
        )
