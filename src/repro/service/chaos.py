"""Scripted, deterministic chaos scenarios for the query service.

Each scenario builds a fresh service stack (registry → broker) around a
:class:`~repro.runtime.faults.ServiceFaultPlan`, drives a scripted
request sequence, and checks the service's **core invariant**: under
injected faults, every well-formed request resolves to a well-formed
response — success, an explicit backpressure/breaker rejection, or a
degraded result carrying a re-widened guarantee.  Never a crash, never
a hang, never unbounded queueing.

Everything is deterministic: injected clocks (no real time), recorded
sleeps (no real waiting), seeded RNGs, and fault schedules fixed ahead
of time.  The same scenarios run as unit tests
(``tests/test_service_chaos.py``) and as the CI ``chaos-smoke`` job::

    PYTHONPATH=src python -m repro.service.chaos            # all
    PYTHONPATH=src python -m repro.service.chaos worker-crash
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..observability import Observer
from ..runtime.faults import FaultPlan, ServiceFaultPlan
from .admission import AdmissionController
from .breaker import BreakerBoard
from .broker import QueryBroker
from .cache import ResultCache
from .registry import GraphRegistry
from .schemas import STATUSES, QueryRequest, QueryResponse

#: Dataset all scenarios query (smallest bench profile).
DATASET = "abide"

#: Tiny budgets: chaos tests exercise control flow, not estimates.
TRIALS = 40


class FakeClock:
    """A manually-stepped monotonic clock."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += float(seconds)


@dataclass
class ScenarioReport:
    """Outcome of one scripted scenario run."""

    name: str
    passed: bool
    checks: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)

    def check(self, ok: bool, description: str) -> None:
        """Record one invariant check."""
        (self.checks if ok else self.failures).append(description)
        if not ok:
            self.passed = False


@dataclass(frozen=True)
class Scenario:
    """One named chaos scenario: a fault plan plus a scripted driver."""

    name: str
    description: str
    run: Callable[["ScenarioReport"], None]


def _stack(
    faults: Optional[ServiceFaultPlan] = None,
    clock: Optional[FakeClock] = None,
    rate: float = 1000.0,
    burst: float = 1000.0,
    max_inflight: int = 8,
    failure_threshold: int = 2,
    cooldown_seconds: float = 10.0,
    retry_attempts: int = 2,
) -> Tuple[QueryBroker, Observer, FakeClock, List[float]]:
    """A fully-injected service stack (no real clocks or sleeps)."""
    clock = clock or FakeClock()
    slept: List[float] = []
    observer = Observer()
    registry = GraphRegistry(
        [DATASET], faults=faults, observer=observer,
        sleep=slept.append, clock=clock,
    )
    broker = QueryBroker(
        registry,
        admission=AdmissionController(
            rate=rate, burst=burst, max_inflight=max_inflight,
            clock=clock,
        ),
        breakers=BreakerBoard(
            failure_threshold=failure_threshold,
            cooldown_seconds=cooldown_seconds, clock=clock,
        ),
        cache=ResultCache(),
        observer=observer,
        faults=faults,
        retry_attempts=retry_attempts,
        retry_rng=0,
        sleep=slept.append,
        clock=clock,
    )
    return broker, observer, clock, slept


def _request(**overrides) -> QueryRequest:
    params = dict(dataset=DATASET, method="os", trials=TRIALS, seed=7)
    params.update(overrides)
    return QueryRequest(**params)


def well_formed(response: QueryResponse, report: ScenarioReport) -> None:
    """The core invariant checks every scenario applies per response."""
    report.check(
        response.status in STATUSES,
        f"status {response.status!r} is well-formed",
    )
    if response.status == "degraded":
        report.check(
            response.guarantee is not None,
            "degraded response carries a re-widened guarantee",
        )
    if response.status in ("rejected", "failed"):
        report.check(
            response.reason is not None,
            f"{response.status} response explains itself",
        )


def _run_slow_load(report: ScenarioReport) -> None:
    """A slow artifact store delays startup but never wedges serving."""
    faults = ServiceFaultPlan(load_delay_seconds={DATASET: 45.0})
    broker, observer, clock, slept = _stack(faults=faults)
    report.check(not broker.registry.ready(), "not ready before load")
    broker.registry.load_all()
    report.check(45.0 in slept, "injected load delay was slept")
    report.check(broker.registry.ready(), "ready after slow load")
    response = broker.handle(_request())
    well_formed(response, report)
    report.check(response.status == "ok", "request served after slow load")


def _run_corrupt_artifact(report: ScenarioReport) -> None:
    """A corrupt artifact is quarantined; the service answers, not dies."""
    faults = ServiceFaultPlan(corrupt_artifacts=(DATASET,))
    broker, observer, clock, _ = _stack(faults=faults)
    broker.registry.load_all()
    report.check(
        not broker.registry.ready(), "corrupt dataset is not ready"
    )
    response = broker.handle(_request())
    well_formed(response, report)
    report.check(
        response.status == "failed"
        and response.reason == "graph-unavailable",
        "quarantined graph yields explicit graph-unavailable",
    )
    counters = observer.export_document("chaos", DATASET)["counters"]
    report.check(
        counters.get("service.registry.quarantined", 0.0) >= 1.0,
        "quarantine was counted",
    )
    # Recovery: the fixed artifact reloads and serves.
    broker.registry.faults = ServiceFaultPlan()
    broker.reload(DATASET)
    response = broker.handle(_request())
    well_formed(response, report)
    report.check(
        response.status == "ok", "served after quarantine recovery"
    )


def _run_worker_crash(report: ScenarioReport) -> None:
    """Worker crashes degrade or fail explicitly and open the breaker."""
    faults = ServiceFaultPlan(
        request_faults=FaultPlan(worker_crash_attempts={0: 99, 1: 99}),
    )
    broker, observer, clock, slept = _stack(faults=faults)
    broker.registry.load_all()
    # Transient single-worker crash: retried inside the pool, request
    # still succeeds (worker 0 recovers on its second attempt).
    transient = ServiceFaultPlan(
        request_faults=FaultPlan(worker_crash_attempts={0: 1}),
    )
    broker.faults = transient
    response = broker.handle(_request(workers=2, use_cache=False))
    well_formed(response, report)
    report.check(
        response.status == "ok", "transient worker crash is absorbed"
    )
    # Permanent all-worker crashes: broker retries, then fails
    # explicitly; repeated failures open the dataset's breaker.
    broker.faults = faults
    first = broker.handle(_request(workers=2, use_cache=False))
    well_formed(first, report)
    report.check(
        first.status == "failed" and first.reason == "worker-failure",
        "permanent worker failure is an explicit failed response",
    )
    report.check(len(slept) > 0, "broker retried with backoff first")
    second = broker.handle(_request(workers=2, use_cache=False))
    well_formed(second, report)
    third = broker.handle(_request(workers=2, use_cache=False))
    well_formed(third, report)
    report.check(
        third.status == "rejected" and third.reason == "circuit-open",
        "breaker opens after repeated failures",
    )
    # Half-open probe after cooldown, with the fault gone: recovery.
    broker.faults = ServiceFaultPlan()
    clock.advance(11.0)
    probe = broker.handle(_request(workers=2, use_cache=False))
    well_formed(probe, report)
    report.check(
        probe.status == "ok", "half-open probe closes the breaker"
    )


def _run_load_spike(report: ScenarioReport) -> None:
    """A request spike is shed explicitly; memory stays bounded."""
    broker, observer, clock, _ = _stack(rate=1.0, burst=3.0)
    broker.registry.load_all()
    statuses: Dict[str, int] = {}
    for index in range(10):
        response = broker.handle(
            _request(seed=index, use_cache=False)
        )
        well_formed(response, report)
        statuses[response.status] = statuses.get(response.status, 0) + 1
    report.check(statuses.get("ok", 0) == 3, "burst capacity served")
    report.check(
        statuses.get("rejected", 0) == 7,
        "overflow rejected explicitly (backpressure)",
    )
    counters = observer.export_document("chaos", DATASET)["counters"]
    report.check(
        counters.get("service.admission.rejected", 0.0) == 7.0,
        "admission rejections counted",
    )
    # Tokens refill with time: the service recovers on its own.
    clock.advance(2.0)
    response = broker.handle(_request(use_cache=False))
    well_formed(response, report)
    report.check(
        response.status == "ok", "served again after the spike passes"
    )


def _run_deadline_expiry(report: ScenarioReport) -> None:
    """An expiring deadline degrades with a re-widened guarantee."""
    broker, observer, clock, _ = _stack()
    broker.registry.load_all()
    # The broker's injected clock never advances, so a generous
    # deadline completes the run...
    response = broker.handle(
        _request(deadline_seconds=60.0, use_cache=False)
    )
    well_formed(response, report)
    report.check(
        response.status == "ok", "unhurried deadline completes"
    )

    # ...while a clock that steps forward on every read expires the
    # deadline mid-loop: the engine stops between trials and the
    # response carries the partial result with a re-widened guarantee.
    class SteppingClock(FakeClock):
        def __call__(self) -> float:
            self.now += 0.01
            return self.now

    stepping = SteppingClock()
    registry = GraphRegistry(
        [DATASET], observer=observer, clock=stepping
    )
    hurried = QueryBroker(
        registry, observer=observer, clock=stepping,
        sleep=lambda _: None,
    )
    registry.load_all()
    response = hurried.handle(
        _request(trials=5000, deadline_seconds=1.0, use_cache=False)
    )
    well_formed(response, report)
    report.check(
        response.status == "degraded"
        and response.degraded_reason == "deadline",
        "expired deadline degrades instead of erroring",
    )
    report.check(
        response.guarantee is not None
        and 0 < response.guarantee["achieved_trials"] < 5000,
        "guarantee re-widened to the trials actually completed",
    )
    report.check(
        len(response.ranking) > 0,
        "degraded response still carries the partial ranking",
    )


#: All scripted scenarios, in documentation order.
SCENARIOS: Tuple[Scenario, ...] = (
    Scenario("slow-load",
             "artifact store is slow; startup delayed, never wedged",
             _run_slow_load),
    Scenario("corrupt-artifact",
             "artifact fails checksum; quarantined, others keep serving",
             _run_corrupt_artifact),
    Scenario("worker-crash",
             "workers crash transiently and permanently; retry, "
             "explicit failure, breaker open/half-open/close",
             _run_worker_crash),
    Scenario("load-spike",
             "burst beyond admission capacity; explicit shedding and "
             "self-recovery",
             _run_load_spike),
    Scenario("deadline-expiry",
             "per-request deadline expires mid-run; degraded result "
             "with re-widened guarantee",
             _run_deadline_expiry),
)


def run_scenario(name: str) -> ScenarioReport:
    """Run one scenario by name and return its report.

    Raises:
        ConfigurationError: For unknown scenario names.
    """
    for scenario in SCENARIOS:
        if scenario.name == name:
            report = ScenarioReport(name=name, passed=True)
            scenario.run(report)
            return report
    known = ", ".join(s.name for s in SCENARIOS)
    raise ConfigurationError(
        f"unknown chaos scenario {name!r}; known: {known}"
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: run the named scenarios (default: all)."""
    if argv is None:
        argv = sys.argv[1:]
    names = argv or [scenario.name for scenario in SCENARIOS]
    exit_code = 0
    for name in names:
        report = run_scenario(name)
        verdict = "PASS" if report.passed else "FAIL"
        print(f"[{verdict}] {name}: {len(report.checks)} checks")
        for failure in report.failures:
            print(f"         FAILED: {failure}")
            exit_code = 1
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
