"""Per-dataset circuit breakers (closed → open → half-open → closed).

A dataset whose requests keep failing (estimator errors, permanent
worker-pool failures) stops being routed: its breaker **opens** after
``failure_threshold`` consecutive failures and rejects requests
instantly with :class:`~repro.errors.CircuitOpenError` — protecting
both the service (no capacity burned on a known-bad target) and the
failing backend (no retry storm).  After ``cooldown_seconds`` the
breaker **half-opens** and admits a limited number of probe requests;
one probe success closes it again, one probe failure re-opens it and
restarts the cooldown.

Breakers are per dataset, so one poisoned dataset cannot darken the
others.  The clock is injectable: chaos tests step time to drive the
open → half-open transition deterministically.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict

from ..errors import CircuitOpenError, ConfigurationError

#: Gauge encoding of breaker states (``service.breaker.state``).
STATE_VALUES = {"closed": 0.0, "half-open": 1.0, "open": 2.0}


class CircuitBreaker:
    """One dataset's failure-isolation state machine.

    Args:
        failure_threshold: Consecutive failures that open the breaker.
        cooldown_seconds: Open time before probes are admitted.
        half_open_probes: Probe requests admitted while half-open.
        clock: Injectable monotonic clock.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_seconds: float = 30.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold <= 0:
            raise ConfigurationError(
                f"failure_threshold must be positive, "
                f"got {failure_threshold}"
            )
        if cooldown_seconds <= 0.0:
            raise ConfigurationError(
                f"cooldown_seconds must be positive, "
                f"got {cooldown_seconds}"
            )
        if half_open_probes <= 0:
            raise ConfigurationError(
                f"half_open_probes must be positive, "
                f"got {half_open_probes}"
            )
        self.failure_threshold = int(failure_threshold)
        self.cooldown_seconds = float(cooldown_seconds)
        self.half_open_probes = int(half_open_probes)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        self._probes_out = 0
        self._open_transitions = 0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half-open"`` (cooldown-aware)."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    @property
    def open_transitions(self) -> int:
        """How many times this breaker has opened (monotone)."""
        with self._lock:
            return self._open_transitions

    def allow(self) -> None:
        """Gate one request through the breaker.

        Raises:
            CircuitOpenError: The breaker is open (cooldown running) or
                half-open with all probe slots taken.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == "closed":
                return
            if self._state == "half-open":
                if self._probes_out < self.half_open_probes:
                    self._probes_out += 1
                    return
                raise CircuitOpenError(
                    "breaker half-open: probe slots exhausted; "
                    "retry later"
                )
            remaining = (
                self.cooldown_seconds - (self._clock() - self._opened_at)
            )
            raise CircuitOpenError(
                f"breaker open after {self._failures} consecutive "
                f"failures; half-opens in {max(0.0, remaining):.1f}s"
            )

    def cancel_probe(self) -> None:
        """Return a probe slot whose request never actually executed.

        A half-open :meth:`allow` consumes a probe slot expecting a
        later ``record_success``/``record_failure``; when the request
        is shed before execution (admission rejection, graph gone,
        deadline already expired) neither runs, and without this the
        slot would leak — wedging the breaker half-open forever.
        No-op unless half-open with outstanding probes.
        """
        with self._lock:
            if self._state == "half-open" and self._probes_out > 0:
                self._probes_out -= 1

    def record_success(self) -> None:
        """Note a completed request; closes a half-open breaker."""
        with self._lock:
            self._failures = 0
            self._probes_out = 0
            self._state = "closed"

    def record_failure(self) -> None:
        """Note a failed request; may open (or re-open) the breaker."""
        with self._lock:
            self._maybe_half_open()
            self._failures += 1
            if self._state == "half-open":
                self._trip()  # failed probe: back to open, new cooldown
            elif (
                self._state == "closed"
                and self._failures >= self.failure_threshold
            ):
                self._trip()

    def _maybe_half_open(self) -> None:
        """Open → half-open once the cooldown has elapsed (lock held)."""
        if (
            self._state == "open"
            and self._clock() - self._opened_at >= self.cooldown_seconds
        ):
            self._state = "half-open"
            self._probes_out = 0

    def _trip(self) -> None:
        """Transition to open and restart the cooldown (lock held)."""
        self._state = "open"
        self._opened_at = self._clock()
        self._probes_out = 0
        self._open_transitions += 1


class BreakerBoard:
    """Lazy per-dataset collection of identically-configured breakers."""

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_seconds: float = 30.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._config = dict(
            failure_threshold=failure_threshold,
            cooldown_seconds=cooldown_seconds,
            half_open_probes=half_open_probes,
        )
        self._clock = clock
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()

    def get(self, dataset: str) -> CircuitBreaker:
        """The breaker guarding ``dataset`` (created on first use)."""
        with self._lock:
            breaker = self._breakers.get(dataset)
            if breaker is None:
                breaker = CircuitBreaker(clock=self._clock, **self._config)
                self._breakers[dataset] = breaker
            return breaker

    def states(self) -> Dict[str, str]:
        """Dataset -> current breaker state (for health probes)."""
        with self._lock:
            breakers = dict(self._breakers)
        return {name: b.state for name, b in breakers.items()}
