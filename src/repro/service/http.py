"""Stdlib HTTP front-end for the query broker.

A thin JSON-over-HTTP adapter — all policy (admission, breakers,
deadlines, caching) lives in :class:`~repro.service.broker.QueryBroker`;
this module only maps transport:

* ``POST /query``    — body: a :class:`QueryRequest` JSON object;
  response: a :class:`QueryResponse` JSON object.  Status codes:
  200 ``ok``/``degraded``, 400 malformed request, 429 ``rejected``
  (backpressure or open breaker), 500 ``failed``.
* ``GET /healthz``   — liveness: 200 while the process can answer.
* ``GET /readyz``    — readiness: 200 when every graph is loaded and
  servable, 503 otherwise (body lists per-dataset health).
* ``GET /metrics``   — the observer's metrics document as JSON.

Built on :class:`http.server.ThreadingHTTPServer` (one thread per
connection; the broker's locks make the shared state safe) so the
service has **zero third-party dependencies**.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from ..errors import ConfigurationError, ReproError
from .broker import QueryBroker
from .schemas import QueryRequest

#: Cap on accepted request bodies (a query is a small JSON object;
#: anything bigger is shed before it is even parsed).
MAX_BODY_BYTES = 64 * 1024

#: HTTP status per response status.
_HTTP_STATUS = {"ok": 200, "degraded": 200, "rejected": 429, "failed": 500}


class QueryRequestHandler(BaseHTTPRequestHandler):
    """Routes the four service endpoints onto the broker."""

    #: Injected by :func:`make_server`.
    broker: QueryBroker = None  # type: ignore[assignment]
    #: Silence per-request stderr logging unless enabled.
    verbose = False

    server_version = "repro-mpmb-service/1"

    def log_message(self, format: str, *args: Any) -> None:
        if self.verbose:
            super().log_message(format, *args)

    # -- GET ----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        if self.path == "/healthz":
            self._send(200, self.broker.health())
        elif self.path == "/readyz":
            payload = self.broker.readiness()
            self._send(200 if payload["ready"] else 503, payload)
        elif self.path == "/metrics":
            document = self.broker.observer.export_document(
                method="service", graph_name="service"
            )
            self._send(200, document)
        else:
            self._send(404, {"error": f"unknown path {self.path!r}"})

    # -- POST ---------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        if self.path != "/query":
            self._send(404, {"error": f"unknown path {self.path!r}"})
            return
        request, problem = self._read_request()
        if request is None:
            self._send(400, {"error": problem})
            return
        response = self.broker.handle(request)
        self._send(
            _HTTP_STATUS.get(response.status, 500), response.to_dict()
        )

    def _read_request(
        self,
    ) -> Tuple[Optional[QueryRequest], Optional[str]]:
        """Parse and validate the body; (None, reason) on any problem."""
        header = self.headers.get("Content-Length", 0) or 0
        try:
            length = int(header)
        except (TypeError, ValueError):
            return None, f"invalid Content-Length header: {header!r}"
        if length <= 0:
            return None, "empty request body"
        if length > MAX_BODY_BYTES:
            return None, (
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            return None, f"request body is not valid JSON: {error}"
        try:
            return QueryRequest.from_dict(payload), None
        except (ConfigurationError, ReproError) as error:
            return None, str(error)

    # -- plumbing -----------------------------------------------------

    def _send(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


def make_server(
    broker: QueryBroker,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """A ready-to-serve HTTP server bound to ``host:port``.

    Port 0 binds an ephemeral port (useful in tests); read the bound
    address from ``server.server_address``.  Call ``serve_forever()``
    to run and ``shutdown()`` from another thread to stop.
    """
    handler = type(
        "BoundQueryRequestHandler",
        (QueryRequestHandler,),
        {"broker": broker, "verbose": verbose},
    )
    return ThreadingHTTPServer((host, port), handler)
