"""Token-bucket admission control with bounded in-flight capacity.

The service sheds load *explicitly*: a request is either admitted, or
rejected immediately with :class:`~repro.errors.AdmissionRejectedError`
(HTTP 429).  Nothing waits in an unbounded queue — the only "queue" is
the bounded in-flight slot count, so memory use is capped regardless of
offered load.

Two independent limits compose:

* a **token bucket** (sustained rate + burst capacity) smooths spikes —
  a burst up to ``burst`` requests is admitted instantly, after which
  admissions are paced at ``rate`` per second;
* a **concurrency cap** (``max_inflight``) bounds simultaneous engine
  executions regardless of token availability.

The clock is injectable, so load-spike chaos tests drive refill
deterministically instead of sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from ..errors import AdmissionRejectedError, ConfigurationError


class TokenBucket:
    """A classic token bucket over an injectable monotonic clock.

    Args:
        rate: Sustained admissions per second (tokens refilled
            continuously at this rate).
        burst: Bucket capacity — the largest instantaneous burst.
        clock: Monotonic clock (injectable for deterministic tests).
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0.0:
            raise ConfigurationError(f"rate must be positive, got {rate}")
        if burst < 1.0:
            raise ConfigurationError(
                f"burst must be at least 1, got {burst}"
            )
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()
        self._lock = threading.Lock()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; never blocks."""
        with self._lock:
            now = self._clock()
            elapsed = max(0.0, now - self._stamp)
            self._stamp = now
            self._tokens = min(
                self.burst, self._tokens + elapsed * self.rate
            )
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    @property
    def available(self) -> float:
        """Tokens currently in the bucket (refill not applied)."""
        with self._lock:
            return self._tokens


class AdmissionController:
    """Bounded admission: token bucket + in-flight concurrency cap.

    Usage::

        ticket = controller.admit()   # raises AdmissionRejectedError
        try:
            ...                        # execute the request
        finally:
            controller.release()

    Args:
        rate: Sustained admissions per second.
        burst: Instantaneous burst capacity.
        max_inflight: Simultaneous admitted requests; the bounded
            "queue" that caps service memory.
        clock: Injectable monotonic clock.
    """

    def __init__(
        self,
        rate: float = 50.0,
        burst: float = 10.0,
        max_inflight: int = 4,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_inflight <= 0:
            raise ConfigurationError(
                f"max_inflight must be positive, got {max_inflight}"
            )
        self.bucket = TokenBucket(rate, burst, clock=clock)
        self.max_inflight = int(max_inflight)
        self._inflight = 0
        self._lock = threading.Lock()

    @property
    def inflight(self) -> int:
        """Requests currently admitted and executing."""
        with self._lock:
            return self._inflight

    def admit(self) -> None:
        """Admit one request or reject it immediately.

        Raises:
            AdmissionRejectedError: No in-flight slot or no token —
                the caller must answer with an explicit backpressure
                rejection, not queue the request.
        """
        with self._lock:
            if self._inflight >= self.max_inflight:
                raise AdmissionRejectedError(
                    f"at capacity: {self._inflight}/{self.max_inflight} "
                    "requests in flight; retry later"
                )
            if not self.bucket.try_acquire():
                raise AdmissionRejectedError(
                    "rate limit exceeded (token bucket empty); "
                    "retry later"
                )
            self._inflight += 1

    def release(self) -> None:
        """Return the in-flight slot taken by :meth:`admit`."""
        with self._lock:
            if self._inflight > 0:
                self._inflight -= 1
