"""Versioned LRU result cache for the query broker.

Keys are ``(graph_version, canonical request params)``: a registry
reload bumps the version, so every stale answer becomes unreachable
without an explicit flush protocol (the LRU then evicts it naturally).
Degraded results are never cached — a deadline-shortened answer must
not shadow the full-budget answer a later, unhurried request would get.

The cache stores the broker's *full* ranked payload; ``top_k`` slicing
happens per request, so requests differing only in ``top_k`` share one
entry (see ``QueryRequest.canonical_params``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional, Tuple

from ..errors import ConfigurationError

CacheKey = Tuple[int, Tuple[Hashable, ...]]


class ResultCache:
    """A bounded, thread-safe LRU mapping cache keys to result payloads.

    Args:
        max_entries: Hard capacity; the least recently *used* entry is
            evicted on overflow.  Zero disables caching entirely (every
            ``get`` misses, every ``put`` is dropped).
    """

    def __init__(self, max_entries: int = 128) -> None:
        if max_entries < 0:
            raise ConfigurationError(
                f"max_entries must be non-negative, got {max_entries}"
            )
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[CacheKey, Dict[str, Any]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """``hits / (hits + misses)`` over the cache lifetime (0.0 cold)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def get(self, key: CacheKey) -> Optional[Dict[str, Any]]:
        """The cached payload for ``key``, refreshing its recency."""
        with self._lock:
            payload = self._entries.get(key)
            if payload is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return payload

    def put(self, key: CacheKey, payload: Dict[str, Any]) -> None:
        """Store ``payload`` under ``key``, evicting LRU on overflow."""
        if self.max_entries == 0:
            return
        with self._lock:
            self._entries[key] = payload
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (hit/miss counters survive)."""
        with self._lock:
            self._entries.clear()
