"""Validated request/response schema of the MPMB query service.

A :class:`QueryRequest` is the service's admission contract: every
field is validated *before* any resource is spent, with the same rules
the CLI enforces (``__main__._validate_search``), so a malformed
request can never reach the engine.  A :class:`QueryResponse` is the
service's exit contract: every request — including rejected, failed,
and deadline-degraded ones — resolves to one well-formed response.

Budgets may be given either directly (``trials``) or as an ε-δ accuracy
target that is sized via Theorem IV.1
(:func:`repro.sampling.bounds.monte_carlo_trial_bound`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.mpmb import METHODS
from ..errors import ConfigurationError
from ..runtime import POOLABLE_METHODS
from ..sampling.bounds import monte_carlo_trial_bound

#: Response statuses a request can resolve to.  ``rejected`` covers
#: admission control and open circuit breakers (retry later);
#: ``degraded`` is a *successful* partial answer with a re-widened
#: guarantee; ``failed`` is an explicit terminal error.
STATUSES = ("ok", "degraded", "rejected", "failed")

_REQUEST_FIELDS = frozenset((
    "dataset", "profile", "dataset_seed", "method", "trials", "mu",
    "epsilon", "delta", "prepare", "top_k", "block_size", "seed",
    "deadline_seconds", "workers", "use_cache", "mode",
))

#: Allocation modes: ``"fixed"`` runs the full sized budget,
#: ``"adaptive"`` enables the anytime racing stop rule
#: (:mod:`repro.adaptive`) which may finish early with a certified
#: realised guarantee.
MODES = ("fixed", "adaptive")


@dataclass(frozen=True)
class QueryRequest:
    """One validated MPMB query.

    Attributes:
        dataset: Registered dataset name (see ``repro.datasets``).
        profile: Dataset profile (``"bench"`` or ``"paper"``).
        dataset_seed: Dataset generation seed (part of the graph
            identity, so it routes through the registry key).
        method: One of :data:`repro.core.mpmb.METHODS`.
        trials: Explicit trial budget; mutually exclusive with the
            ε-δ target below.
        mu: Target probability ``μ`` for ε-δ sizing (default 0.05).
        epsilon: Relative error target; with ``delta`` it sizes the
            budget via Theorem IV.1.
        delta: Failure probability of the sized guarantee.
        prepare: Preparing-phase trials (OLS variants).
        top_k: How many ranked butterflies the response carries.
        block_size: Batched-kernel block size (``None`` = scalar loop,
            the bit-identical-to-CLI default).
        seed: Run RNG seed.
        deadline_seconds: Per-request wall-clock budget, propagated into
            the engine's timeout degradation path.
        workers: Parallel worker processes (poolable methods only).
        use_cache: Whether the result cache may serve/store this query.
        mode: ``"fixed"`` (default) spends the whole budget;
            ``"adaptive"`` races candidates and stops early once the
            winner is certified (sampling methods only).
    """

    dataset: str
    profile: str = "bench"
    dataset_seed: int = 0
    method: str = "ols"
    trials: Optional[int] = None
    mu: float = 0.05
    epsilon: Optional[float] = None
    delta: Optional[float] = None
    prepare: int = 100
    top_k: int = 1
    block_size: Optional[int] = None
    seed: Optional[int] = None
    deadline_seconds: Optional[float] = None
    workers: int = 1
    use_cache: bool = True
    mode: str = "fixed"

    def __post_init__(self) -> None:
        self._validate()

    def _validate(self) -> None:
        if not self.dataset or not isinstance(self.dataset, str):
            raise ConfigurationError("dataset must be a non-empty string")
        if self.profile not in ("bench", "paper"):
            raise ConfigurationError(
                f"profile must be 'bench' or 'paper', got {self.profile!r}"
            )
        if self.method not in METHODS:
            raise ConfigurationError(
                f"unknown method {self.method!r}; expected one of "
                f"{', '.join(METHODS)}"
            )
        exact = self.method.startswith("exact-")
        sized = self.epsilon is not None or self.delta is not None
        if sized and (self.epsilon is None or self.delta is None):
            raise ConfigurationError(
                "epsilon and delta must be given together"
            )
        if sized and self.trials is not None:
            raise ConfigurationError(
                "give either trials or an epsilon/delta target, not both"
            )
        if not exact and not sized and self.trials is None:
            raise ConfigurationError(
                f"method {self.method!r} needs a budget: trials or an "
                "epsilon/delta target"
            )
        if self.trials is not None:
            if self.trials < 0 or (
                self.trials == 0 and self.method != "ols-kl" and not exact
            ):
                raise ConfigurationError(
                    f"trials must be at least 1 for method "
                    f"{self.method!r} (got {self.trials}); only ols-kl "
                    "accepts 0 for dynamic Lemma VI.4 sizing"
                )
        if self.prepare <= 0:
            raise ConfigurationError(
                f"prepare must be at least 1 (got {self.prepare})"
            )
        if self.top_k <= 0:
            raise ConfigurationError(
                f"top_k must be at least 1 (got {self.top_k})"
            )
        if self.block_size is not None and self.block_size <= 0:
            raise ConfigurationError(
                f"block_size must be at least 1 (got {self.block_size})"
            )
        if (
            self.deadline_seconds is not None
            and self.deadline_seconds <= 0
        ):
            raise ConfigurationError(
                f"deadline_seconds must be positive "
                f"(got {self.deadline_seconds})"
            )
        if self.workers <= 0:
            raise ConfigurationError(
                f"workers must be at least 1 (got {self.workers})"
            )
        if self.workers > 1 and self.method not in POOLABLE_METHODS:
            raise ConfigurationError(
                f"workers > 1 requires a poolable method "
                f"({', '.join(POOLABLE_METHODS)}); {self.method!r} "
                "results cannot be pooled"
            )
        if exact and (
            self.deadline_seconds is not None
            or self.block_size is not None
            or self.workers > 1
        ):
            raise ConfigurationError(
                "deadline_seconds/block_size/workers do not apply to "
                f"the exact method {self.method!r}"
            )
        if self.mode not in MODES:
            raise ConfigurationError(
                f"mode must be one of {', '.join(MODES)}, "
                f"got {self.mode!r}"
            )
        if self.mode == "adaptive" and exact:
            raise ConfigurationError(
                f"mode 'adaptive' does not apply to the exact method "
                f"{self.method!r}"
            )
        # Exercise the Theorem IV.1 sizing now so out-of-range ε-δ
        # targets are rejected at admission, not mid-execution.
        if sized:
            self.resolved_trials()

    def resolved_trials(self) -> int:
        """The trial budget, sizing ε-δ targets via Theorem IV.1."""
        if self.trials is not None:
            return self.trials
        if self.epsilon is None or self.delta is None:
            return 0  # exact methods: no sampling budget
        return monte_carlo_trial_bound(self.mu, self.epsilon, self.delta)

    def canonical_params(self) -> Tuple:
        """Hashable identity of the *answer* this request asks for.

        Two requests with equal canonical params (on the same graph
        version) are served the same cached result.  Presentation-only
        fields (``use_cache``) and the deadline (which changes *whether*
        the run completes, not what a complete run returns) are
        excluded; ``top_k`` is excluded because the cache stores the
        full ranking and slices per request.

        ``mode`` (and, for adaptive mode, the ``mu``/``delta`` knobs
        that shape the stop rule) MUST be part of the identity: an
        adaptive run stops at a different trial count than a fixed run
        of the same budget, so serving one for the other would hand
        back a result the request never asked for.
        """
        anytime = (
            (self.mode, self.mu, self.delta)
            if self.mode != "fixed"
            else self.mode
        )
        return (
            self.dataset, self.profile, self.dataset_seed, self.method,
            self.resolved_trials(), self.prepare, self.block_size,
            self.seed, self.workers, anytime,
        )

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "QueryRequest":
        """Build a validated request from a decoded JSON object.

        Raises:
            ConfigurationError: For non-object payloads, unknown keys,
                or any field that fails validation.
        """
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"request body must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        unknown = sorted(set(payload) - _REQUEST_FIELDS)
        if unknown:
            raise ConfigurationError(
                f"unknown request field(s): {', '.join(unknown)}"
            )
        try:
            return QueryRequest(**payload)
        except TypeError as error:
            raise ConfigurationError(str(error)) from error


@dataclass(frozen=True)
class QueryResponse:
    """One well-formed service answer.

    Attributes:
        status: One of :data:`STATUSES`.
        dataset: Echo of the routed dataset (empty when the request
            never parsed far enough to know it).
        method: Echo of the method.
        reason: Machine-readable detail for non-``ok`` statuses
            (``"admission-rejected"``, ``"circuit-open"``,
            ``"graph-unavailable"``, a degradation reason, ...).
        detail: Human-readable elaboration of ``reason``.
        ranking: Top-k rows ``{"labels", "weight", "probability"}``,
            most probable first.
        n_trials: Trials the estimates cover (0 when none ran).
        target_trials: The budget the run was sized for.
        guarantee: ε-δ statement actually certified (re-widened for
            degraded runs); ``None`` when no trials ran or the method
            is exact.
        degraded_reason: Engine degradation reason when
            ``status == "degraded"``.
        cache_hit: Whether the result came from the result cache.
        graph_version: Registry version of the graph that answered.
    """

    status: str
    dataset: str = ""
    method: str = ""
    reason: Optional[str] = None
    detail: Optional[str] = None
    ranking: List[Dict[str, Any]] = field(default_factory=list)
    n_trials: int = 0
    target_trials: Optional[int] = None
    guarantee: Optional[Dict[str, Any]] = None
    degraded_reason: Optional[str] = None
    cache_hit: bool = False
    graph_version: Optional[int] = None

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise ConfigurationError(
                f"status must be one of {', '.join(STATUSES)}, "
                f"got {self.status!r}"
            )

    @property
    def retryable(self) -> bool:
        """Whether a client should retry later (backpressure/breaker)."""
        return self.status == "rejected"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (schema: ``docs/service.md``)."""
        return {
            "format": 1,
            "kind": "repro-query-response",
            "status": self.status,
            "dataset": self.dataset,
            "method": self.method,
            "reason": self.reason,
            "detail": self.detail,
            "ranking": list(self.ranking),
            "n_trials": self.n_trials,
            "target_trials": self.target_trials,
            "guarantee": self.guarantee,
            "degraded_reason": self.degraded_reason,
            "cache_hit": self.cache_hit,
            "graph_version": self.graph_version,
        }
