"""Repetition runner: error bars for sampling-method estimates.

The paper's convergence figures track one run; reviewers often also want
*across-run* dispersion.  :func:`repeat_method` executes a method ``R``
times with statistically independent child RNG streams (numpy seed
spawning, so runs never share randomness) and aggregates per-butterfly
means and standard deviations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..butterfly import Butterfly, ButterflyKey
from ..core import find_mpmb
from ..graph import UncertainBipartiteGraph
from ..sampling import RngLike, spawn_rngs


@dataclass
class RepeatedEstimate:
    """Aggregated estimates over independent repetitions.

    Attributes:
        method: The repeated method's identifier.
        repetitions: Number of independent runs.
        means: Canonical key -> mean estimate (butterflies missing from a
            run contribute 0 for that run, matching how a single run
            reports unseen butterflies).
        stds: Canonical key -> sample standard deviation.
        butterflies: Canonical key -> butterfly object.
    """

    method: str
    repetitions: int
    means: Dict[ButterflyKey, float]
    stds: Dict[ButterflyKey, float]
    butterflies: Dict[ButterflyKey, Butterfly] = field(default_factory=dict)

    def interval(
        self, key: ButterflyKey, z: float = 2.0
    ) -> Tuple[float, float]:
        """A ``mean ± z·std/√R`` interval for one butterfly."""
        mean = self.means.get(key, 0.0)
        half = z * self.stds.get(key, 0.0) / np.sqrt(self.repetitions)
        return (max(0.0, mean - half), min(1.0, mean + half))

    def ranked(self) -> List[Tuple[Butterfly, float, float]]:
        """``(butterfly, mean, std)`` rows, highest mean first."""
        order = sorted(
            self.means.items(), key=lambda item: (-item[1], item[0])
        )
        return [
            (self.butterflies[key], mean, self.stds.get(key, 0.0))
            for key, mean in order
        ]


def repeat_method(
    graph: UncertainBipartiteGraph,
    method: str,
    n_trials: int,
    repetitions: int,
    rng: RngLike = None,
    n_prepare: Optional[int] = None,
    **kwargs,
) -> RepeatedEstimate:
    """Run one MPMB method ``repetitions`` times and aggregate.

    Args:
        graph: The uncertain bipartite network.
        method: Any :data:`repro.core.mpmb.METHODS` entry (exact methods
            work but are deterministic, so their std is 0).
        n_trials: Sampling trials per run.
        repetitions: Independent runs (must be >= 2 for a meaningful
            standard deviation).
        rng: Parent seed/generator; children are spawned from it.
        n_prepare: Optional preparing-trial override (OLS variants).
        **kwargs: Forwarded to :func:`repro.core.find_mpmb`.
    """
    if repetitions < 2:
        raise ValueError(
            f"repetitions must be at least 2, got {repetitions}"
        )
    children = spawn_rngs(rng, repetitions)
    per_run: List[Dict[ButterflyKey, float]] = []
    butterflies: Dict[ButterflyKey, Butterfly] = {}
    for child in children:
        if n_prepare is not None:
            result = find_mpmb(
                graph, method=method, n_trials=n_trials,
                n_prepare=n_prepare, rng=child, **kwargs,
            )
        else:
            result = find_mpmb(
                graph, method=method, n_trials=n_trials, rng=child,
                **kwargs,
            )
        per_run.append(dict(result.estimates))
        butterflies.update(result.butterflies)

    keys = sorted({key for run in per_run for key in run})
    means: Dict[ButterflyKey, float] = {}
    stds: Dict[ButterflyKey, float] = {}
    for key in keys:
        samples = np.array([run.get(key, 0.0) for run in per_run])
        means[key] = float(samples.mean())
        stds[key] = float(samples.std(ddof=1))
    return RepeatedEstimate(
        method=method,
        repetitions=repetitions,
        means=means,
        stds=stds,
        butterflies=butterflies,
    )
