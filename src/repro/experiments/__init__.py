"""Experiment harness: instrumentation, rendering, and the registry of
every reproduced table and figure (see DESIGN.md's experiment index).

Run experiments from the command line::

    python -m repro.experiments fig7
    python -m repro.experiments all --profile bench --seed 0
"""

from .figures import EXPERIMENTS, experiment_names, run_all, run_experiment
from .harness import (
    METHOD_ORDER,
    ExperimentConfig,
    ExperimentOutcome,
    run_method,
    time_preparing_phase,
)
from .instrument import Measurement, measure, peak_memory, timed
from .markdown import render_markdown_report, write_markdown_report
from .repetition import RepeatedEstimate, repeat_method
from .report import (
    format_bars,
    format_bytes,
    format_matrix,
    format_seconds,
    format_series,
    format_sparkline,
    format_table,
)

__all__ = [
    "EXPERIMENTS",
    "experiment_names",
    "run_experiment",
    "run_all",
    "ExperimentConfig",
    "ExperimentOutcome",
    "METHOD_ORDER",
    "run_method",
    "time_preparing_phase",
    "Measurement",
    "measure",
    "timed",
    "peak_memory",
    "format_table",
    "format_series",
    "format_sparkline",
    "format_bars",
    "format_matrix",
    "format_seconds",
    "format_bytes",
    "render_markdown_report",
    "write_markdown_report",
    "RepeatedEstimate",
    "repeat_method",
]
