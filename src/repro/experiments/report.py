"""Plain-text rendering of experiment outputs.

The paper's evaluation is figures and tables; this reproduction renders
the same content as aligned ASCII tables, series listings, bar charts and
heat matrices, so every experiment's output is diffable and readable in a
terminal or log file.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import math


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table.

    Args:
        headers: Column names.
        rows: Row cells; every row must match ``headers`` in length.
        title: Optional title printed above the table.
    """
    cells = [[_fmt(cell) for cell in row] for row in rows]
    for i, row in enumerate(cells):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(str(header)), *(len(row[i]) for row in cells))
        if cells else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    for row in cells:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Sequence[tuple],
    title: str = "",
) -> str:
    """Render several named series against a shared x-axis as a table.

    Args:
        x_label: Name of the x column.
        x_values: The shared x values.
        series: ``(name, values)`` pairs, each aligned with ``x_values``.
        title: Optional title.
    """
    headers = [x_label] + [name for name, _values in series]
    rows = []
    for i, x in enumerate(x_values):
        row = [x]
        for _name, values in series:
            row.append(values[i] if i < len(values) else "")
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_bars(
    values: Sequence[float],
    reference: Optional[float] = None,
    width: int = 50,
    title: str = "",
    log_scale: bool = True,
) -> str:
    """Render a bar chart (one bar per value), optionally with a
    reference line marker (Figure 10's ``1/|C_MB|`` red line).

    Bars use a log scale by default since trial-number ratios span
    orders of magnitude.
    """
    finite = [v for v in values if v > 0]
    if not finite:
        return (title + "\n" if title else "") + "(no positive values)"
    if log_scale:
        lo = math.log10(min(finite)) - 0.5
        hi = math.log10(max(max(finite), reference or 0.0) + 1e-300) + 0.5

        def scale(v: float) -> int:
            if v <= 0:
                return 0
            return int(round((math.log10(v) - lo) / (hi - lo) * width))
    else:
        hi_lin = max(max(finite), reference or 0.0)

        def scale(v: float) -> int:
            return int(round(v / hi_lin * width)) if hi_lin else 0

    ref_pos = scale(reference) if reference and reference > 0 else None
    lines: List[str] = []
    if title:
        lines.append(title)
    for i, value in enumerate(values):
        length = scale(value)
        bar = list("#" * length + " " * (width - length))
        if ref_pos is not None and 0 <= ref_pos < width:
            bar[ref_pos] = "|"
        lines.append(f"{i:>4d} [{''.join(bar)}] {value:.4g}")
    if reference is not None:
        lines.append(f"     reference line '|' = {reference:.4g}")
    return "\n".join(lines)


def format_matrix(
    matrix,
    row_labels: Sequence[object],
    col_labels: Sequence[object],
    title: str = "",
    cell_format: str = "{:.3g}",
) -> str:
    """Render a 2-D matrix (Figure 6's ratio heat map, as numbers)."""
    headers = [""] + [_fmt(c) for c in col_labels]
    rows = []
    for label, row in zip(row_labels, matrix):
        cells: List[object] = [label]
        for value in row:
            if value is None or (isinstance(value, float) and math.isnan(value)):
                cells.append("-")
            else:
                cells.append(cell_format.format(value))
        rows.append(cells)
    return format_table(headers, rows, title=title)


#: Eight-level block characters for sparklines.
_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def format_sparkline(
    values: Sequence[float],
    low: Optional[float] = None,
    high: Optional[float] = None,
) -> str:
    """Render a numeric series as a unicode sparkline.

    Args:
        values: The series (empty input renders as an empty string).
        low: Scale floor; defaults to ``min(values)``.
        high: Scale ceiling; defaults to ``max(values)``.  A flat series
            renders at mid height.
    """
    if not values:
        return ""
    lo = min(values) if low is None else low
    hi = max(values) if high is None else high
    if hi <= lo:
        return _SPARK_LEVELS[3] * len(values)
    span = hi - lo
    chars = []
    for value in values:
        fraction = (value - lo) / span
        index = min(
            len(_SPARK_LEVELS) - 1,
            max(0, int(fraction * len(_SPARK_LEVELS))),
        )
        chars.append(_SPARK_LEVELS[index])
    return "".join(chars)


def format_seconds(seconds: float) -> str:
    """Human-readable duration (µs/ms/s)."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def format_bytes(n_bytes: float) -> str:
    """Human-readable byte count."""
    value = float(n_bytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f}{unit}"
        value /= 1024
    return f"{value:.1f}GiB"  # pragma: no cover - unreachable


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)
