"""Timing and memory instrumentation for the experiment harness.

The paper reports wall-clock execution time (Figures 7-9) and peak memory
(Figure 13).  :func:`timed` wraps a callable with ``perf_counter``;
:func:`peak_memory` uses :mod:`tracemalloc` so the measurement reflects
Python-object allocations of the measured call only (the graph itself is
allocated outside the window, matching the paper's "extra space beyond
the network" discussion in Section VIII-E).
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass
from typing import Any, Callable, Tuple


@dataclass(frozen=True)
class Measurement:
    """A measured call: its return value, duration, and peak allocation.

    Attributes:
        value: The wrapped callable's return value.
        seconds: Wall-clock duration.
        peak_bytes: Peak tracemalloc allocation during the call
            (0 when memory tracing was disabled).
    """

    value: Any
    seconds: float
    peak_bytes: int


def timed(fn: Callable[[], Any]) -> Tuple[Any, float]:
    """Run ``fn`` and return ``(result, wall_seconds)``."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def peak_memory(fn: Callable[[], Any]) -> Tuple[Any, int]:
    """Run ``fn`` under tracemalloc and return ``(result, peak_bytes)``.

    Nested calls are supported: if tracing is already active the existing
    trace is reused (peak is reset around the call).
    """
    already_tracing = tracemalloc.is_tracing()
    if not already_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    try:
        result = fn()
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        if not already_tracing:
            tracemalloc.stop()
    return result, peak


def measure(fn: Callable[[], Any], trace_memory: bool = False) -> Measurement:
    """Run ``fn`` measuring wall time and (optionally) peak allocations.

    Note that memory tracing slows the call down noticeably, so timing
    experiments keep it off and the Figure 13 memory experiment runs
    separately.
    """
    if trace_memory:
        start = time.perf_counter()
        result, peak = peak_memory(fn)
        return Measurement(result, time.perf_counter() - start, peak)
    result, seconds = timed(fn)
    return Measurement(result, seconds, 0)
