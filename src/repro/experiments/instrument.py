"""Timing and memory instrumentation for the experiment harness.

The paper reports wall-clock execution time (Figures 7-9) and peak memory
(Figure 13).  Timing delegates to the shared
:func:`repro.observability.profiling.stopwatch` (one clock idiom for the
whole codebase); :func:`peak_memory` uses :mod:`tracemalloc` so the
measurement reflects Python-object allocations of the measured call only
(the graph itself is allocated outside the window, matching the paper's
"extra space beyond the network" discussion in Section VIII-E).

Measurements can feed a :class:`~repro.observability.metrics.MetricsRegistry`
directly: pass ``metrics=`` and ``name=`` to :func:`measure` and the
duration (and peak bytes, when traced) land as ``<name>.seconds`` /
``<name>.peak_bytes`` gauges alongside the estimator's own metrics.
"""

from __future__ import annotations

import tracemalloc
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

from ..observability.metrics import MetricsRegistry
from ..observability.profiling import stopwatch


@dataclass(frozen=True)
class Measurement:
    """A measured call: its return value, duration, and peak allocation.

    Attributes:
        value: The wrapped callable's return value.
        seconds: Wall-clock duration.
        peak_bytes: Peak tracemalloc allocation during the call
            (0 when memory tracing was disabled).
    """

    value: Any
    seconds: float
    peak_bytes: int


def timed(fn: Callable[[], Any]) -> Tuple[Any, float]:
    """Run ``fn`` and return ``(result, wall_seconds)``."""
    with stopwatch() as clock:
        result = fn()
    return result, clock.seconds


def peak_memory(fn: Callable[[], Any]) -> Tuple[Any, int]:
    """Run ``fn`` under tracemalloc and return ``(result, peak_bytes)``.

    Nested calls are supported: if tracing is already active the existing
    trace is reused (peak is reset around the call).
    """
    already_tracing = tracemalloc.is_tracing()
    if not already_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    try:
        result = fn()
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        if not already_tracing:
            tracemalloc.stop()
    return result, peak


def measure(
    fn: Callable[[], Any],
    trace_memory: bool = False,
    metrics: Optional[MetricsRegistry] = None,
    name: Optional[str] = None,
) -> Measurement:
    """Run ``fn`` measuring wall time and (optionally) peak allocations.

    Note that memory tracing slows the call down noticeably, so timing
    experiments keep it off and the Figure 13 memory experiment runs
    separately.

    Args:
        fn: Zero-argument callable to measure.
        trace_memory: Record peak allocations via :func:`peak_memory`.
        metrics: Optional registry receiving the measurement as gauges.
        name: Gauge name prefix (required with ``metrics``): the
            duration lands in ``<name>.seconds`` and, when traced,
            the allocation peak in ``<name>.peak_bytes``.
    """
    if (metrics is None) != (name is None):
        raise ValueError("metrics and name must be given together")
    with stopwatch() as clock:
        if trace_memory:
            result, peak = peak_memory(fn)
        else:
            result, peak = fn(), 0
    measurement = Measurement(result, clock.seconds, peak)
    if metrics is not None and name is not None:
        metrics.set(f"{name}.seconds", measurement.seconds)
        if trace_memory:
            metrics.set(f"{name}.peak_bytes", float(peak))
    return measurement
