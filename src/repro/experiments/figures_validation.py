"""Theory-validation experiment: Lemma VI.5 bound vs observed error.

Not a paper figure — the paper proves the candidate-omission bound but
never measures it.  This experiment constructs small random instances
where the exact answer is computable, deliberately deletes one candidate
from a complete ``C_MB``, and compares each surviving candidate's OLS
overestimation against the Lemma VI.5 bound.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..core import (
    CandidateSet,
    backbone_butterflies,
    exact_mpmb_by_worlds,
    ordering_listing_sampling,
)
from ..core.bounds import lemma_vi5_error_bound
from ..datasets import random_bipartite
from ..datasets.synthetic import uniform_probs, uniform_weights
from .harness import ExperimentConfig, ExperimentOutcome
from .report import format_table


def lemma_vi5_validation(config: ExperimentConfig) -> ExperimentOutcome:
    """Measure the Lemma VI.5 overestimation against its bound.

    For several seeded 5x5 random graphs: compute exact probabilities,
    drop the second-heaviest candidate from the otherwise complete set,
    run the OLS sampling phase at a generous budget, and tabulate the
    worst observed overestimate and the worst bound.
    """
    rows: List[list] = []
    data: Dict[int, dict] = {}
    for seed in (3, 10, 15, 21):
        graph = random_bipartite(
            5, 5, 14, rng=seed,
            weight_fn=uniform_weights(1.0, 4.0),
            prob_fn=uniform_probs(0.2, 0.8),
            name=f"vi5-{seed}",
        )
        exact = exact_mpmb_by_worlds(graph)
        inventory = backbone_butterflies(graph)
        if len(inventory) < 3:
            continue
        full = CandidateSet(graph, inventory)
        dropped_index = 1
        kept = [b for i, b in enumerate(full) if i != dropped_index]
        truncated = CandidateSet(graph, kept)

        result = ordering_listing_sampling(
            graph, max(20_000, config.n_sampling),
            candidates=truncated, rng=config.seed + seed,
        )

        ordered = list(full)
        weights = [b.weight for b in ordered]
        kept_keys = {b.key for b in kept}
        in_set = [b.key in kept_keys for b in ordered]
        exact_probs = [exact.estimates[b.key] for b in ordered]

        worst_error = 0.0
        worst_bound = 0.0
        for index, butterfly in enumerate(ordered):
            if not in_set[index]:
                continue
            bound = lemma_vi5_error_bound(
                exact_probs, in_set, weights, index
            )
            error = max(
                0.0,
                result.probability(butterfly.key) - exact_probs[index],
            )
            worst_error = max(worst_error, error)
            worst_bound = max(worst_bound, bound)

        data[seed] = {
            "dropped": ordered[dropped_index].key,
            "worst_error": worst_error,
            "worst_bound": worst_bound,
        }
        rows.append([
            seed,
            len(inventory),
            str(ordered[dropped_index].key),
            f"{worst_error:.4f}",
            f"{worst_bound:.4f}",
            "yes" if worst_error <= worst_bound + 0.02 else "VIOLATED",
        ])
    text = format_table(
        ["seed", "#butterflies", "dropped candidate",
         "worst overestimate", "Lemma VI.5 bound", "within bound"],
        rows,
        title=(
            "Lemma VI.5 validation — observed OLS overestimation vs the "
            "candidate-omission bound (one candidate deliberately "
            "dropped; sampling noise allowance 0.02)"
        ),
    )
    return ExperimentOutcome(
        name="lemma-vi5",
        title="Lemma VI.5 error-bound validation",
        data=data,
        text=text,
    )
