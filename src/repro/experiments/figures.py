"""Registry of every reproduced table and figure.

Each entry maps an experiment id to a callable taking an
:class:`~repro.experiments.harness.ExperimentConfig` and returning an
:class:`~repro.experiments.harness.ExperimentOutcome`.  The CLI
(``python -m repro.experiments``) and the benchmark suite both dispatch
through this table, so the index in DESIGN.md stays authoritative.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .figures_convergence import (
    fig11_convergence_sampling,
    fig12_convergence_preparing,
)
from .figures_theory import (
    fig6_ratio_matrix,
    fig10_trial_ratio,
    table3_datasets,
    table4_trial_numbers,
)
from .figures_usecases import fig2_recommendation, fig3_brain
from .figures_validation import lemma_vi5_validation
from .figures_time import (
    ablation_pruning,
    fig7_overall_time,
    fig8_phase_time,
    fig9_scalability,
    fig13_memory,
)
from .harness import ExperimentConfig, ExperimentOutcome

ExperimentFn = Callable[[ExperimentConfig], ExperimentOutcome]

EXPERIMENTS: Dict[str, ExperimentFn] = {
    "table3": table3_datasets,
    "table4": table4_trial_numbers,
    "fig2": fig2_recommendation,
    "fig3": fig3_brain,
    "fig6": fig6_ratio_matrix,
    "fig7": fig7_overall_time,
    "fig8": fig8_phase_time,
    "fig9": fig9_scalability,
    "fig10": fig10_trial_ratio,
    "fig11": fig11_convergence_sampling,
    "fig12": fig12_convergence_preparing,
    "fig13": fig13_memory,
    "ablation-prune": ablation_pruning,
    "lemma-vi5": lemma_vi5_validation,
}


def experiment_names() -> List[str]:
    """All experiment ids in presentation order."""
    return list(EXPERIMENTS)


def run_experiment(
    name: str, config: ExperimentConfig | None = None
) -> ExperimentOutcome:
    """Run one experiment by id.

    Raises:
        KeyError: For an unknown experiment id.
    """
    if name not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; known: {', '.join(EXPERIMENTS)}"
        )
    return EXPERIMENTS[name](config or ExperimentConfig())


def run_all(
    config: ExperimentConfig | None = None,
) -> List[ExperimentOutcome]:
    """Run the full suite in order (this is the EXPERIMENTS.md generator)."""
    config = config or ExperimentConfig()
    return [fn(config) for fn in EXPERIMENTS.values()]
