"""Timing and memory experiments: Figures 7, 8, 9 and 13.

Every timing experiment reports two numbers per cell:

* ``measured`` — wall-clock seconds of the scaled run this machine
  actually executed;
* ``extrapolated`` — the measured per-trial cost multiplied up to the
  paper's trial setting (20 000 direct/sampling trials), which is the
  number comparable to the paper's Figure 7/8/9 bars.

The paper's claims are *relative* (OS ≈ 1000x over MC-VP, OLS up to 180x
over OS, OLS ≈ 3-8x over OLS-KL); EXPERIMENTS.md records how the shapes
observed here compare.
"""

from __future__ import annotations

from typing import Dict, List

from ..core import (
    estimate_probabilities_karp_luby,
    estimate_probabilities_optimized,
    ordering_sampling,
)
from ..graph import sample_vertices
from ..sampling import ensure_rng
from .harness import (
    METHOD_ORDER,
    ExperimentConfig,
    ExperimentOutcome,
    run_method,
    time_preparing_phase,
)
from .instrument import measure
from .report import format_seconds, format_table


def fig7_overall_time(config: ExperimentConfig) -> ExperimentOutcome:
    """Figure 7: overall execution time of the four methods per dataset."""
    headers = [
        "dataset",
        "mc-vp", "os", "ols-kl", "ols",
        "os/mc-vp speedup", "ols/os speedup", "ols-kl/ols",
    ]
    rows: List[list] = []
    data: Dict[str, Dict[str, float]] = {}
    for name in config.datasets:
        graph = config.load(name)
        extrapolated: Dict[str, float] = {}

        for method in METHOD_ORDER:
            measurement = run_method(graph, method, config)
            if method == "mc-vp":
                per_trial = measurement.seconds / config.n_mcvp
                extrapolated[method] = per_trial * config.paper_direct
            elif method == "os":
                per_trial = measurement.seconds / config.n_direct
                extrapolated[method] = per_trial * config.paper_direct
            elif method == "ols":
                # Preparing runs at the paper's own budget; only the
                # sampling phase extrapolates.
                _candidates, prep_seconds = time_preparing_phase(
                    graph, config
                )
                sampling_seconds = measurement.seconds - prep_seconds
                per_trial = max(sampling_seconds, 0.0) / config.n_sampling
                extrapolated[method] = (
                    prep_seconds + per_trial * config.paper_direct
                )
            else:  # ols-kl uses its dynamic Lemma VI.4 budget as-is.
                extrapolated[method] = measurement.seconds

        data[name] = extrapolated
        rows.append([
            name,
            format_seconds(extrapolated["mc-vp"]),
            format_seconds(extrapolated["os"]),
            format_seconds(extrapolated["ols-kl"]),
            format_seconds(extrapolated["ols"]),
            f"{extrapolated['mc-vp'] / extrapolated['os']:.0f}x",
            f"{extrapolated['os'] / extrapolated['ols']:.0f}x",
            f"{extrapolated['ols-kl'] / extrapolated['ols']:.1f}x",
        ])
    text = format_table(
        headers, rows,
        title=(
            "Figure 7 — overall executing time, extrapolated to the "
            f"paper's N={config.paper_direct} trial setting "
            f"(profile={config.profile})"
        ),
    )
    return ExperimentOutcome(
        name="fig7", title="Overall executing time", data=data, text=text
    )


def fig8_phase_time(config: ExperimentConfig) -> ExperimentOutcome:
    """Figure 8: preparing + sampling time at N ∈ {0, 25, 50, 75, 100}%.

    ``N=0%`` is the preparing phase alone (OLS variants only); the other
    columns are cumulative time after running that fraction of the
    sampling-phase trials.  OS has no preparing phase, so its 0% column
    is zero and its fractions scale the direct trials.
    """
    fractions = (0.25, 0.5, 0.75, 1.0)
    headers = ["dataset", "method", "N=0%", "N=25%", "N=50%", "N=75%", "N=100%"]
    rows: List[list] = []
    data: Dict[str, Dict[str, List[float]]] = {}
    for name in config.datasets:
        graph = config.load(name)
        per_dataset: Dict[str, List[float]] = {}

        # OS: no preparing phase; time fractions of the direct budget.
        os_times = [0.0]
        for fraction in fractions:
            n = max(1, int(config.n_direct * fraction))
            measurement = run_method(graph, "os", config, n_override=n)
            os_times.append(measurement.seconds)
        per_dataset["os"] = os_times

        # OLS variants: one shared preparing phase, then the estimator at
        # each fraction over the same candidate set.
        candidates, prep_seconds = time_preparing_phase(graph, config)
        for method, runner in (
            ("ols-kl", _kl_runner(candidates, config)),
            ("ols", _optimized_runner(candidates, config)),
        ):
            times = [prep_seconds]
            for fraction in fractions:
                if len(candidates) == 0:
                    times.append(prep_seconds)
                    continue
                measurement = measure(lambda f=fraction: runner(f))
                times.append(prep_seconds + measurement.seconds)
            per_dataset[method] = times

        data[name] = per_dataset
        for method in ("os", "ols-kl", "ols"):
            rows.append(
                [name, method]
                + [format_seconds(t) for t in per_dataset[method]]
            )
    text = format_table(
        headers, rows,
        title=(
            "Figure 8 — executing time vs sampling-phase trial fraction "
            f"(measured at the scaled budget, profile={config.profile})"
        ),
    )
    return ExperimentOutcome(
        name="fig8", title="Phase-resolved executing time", data=data,
        text=text,
    )


def _optimized_runner(candidates, config: ExperimentConfig):
    def run(fraction: float):
        n = max(1, int(config.n_sampling * fraction))
        return estimate_probabilities_optimized(
            candidates, n, rng=config.seed + 31
        )

    return run


def _kl_runner(candidates, config: ExperimentConfig):
    # Fixed per-candidate trials scaled by the fraction, so the sweep is
    # monotone like the paper's x-axis.
    base = max(32, config.n_sampling // max(1, len(candidates)))

    def run(fraction: float):
        n = max(1, int(base * fraction))
        return estimate_probabilities_karp_luby(
            candidates, rng=config.seed + 32, n_trials=n
        )

    return run


def fig9_scalability(config: ExperimentConfig) -> ExperimentOutcome:
    """Figure 9: executing time on 25/50/75/100% vertex samples."""
    fractions = (0.25, 0.5, 0.75, 1.0)
    headers = ["dataset", "method", "25%", "50%", "75%", "100%"]
    rows: List[list] = []
    data: Dict[str, Dict[str, List[float]]] = {}
    for name in config.datasets:
        graph = config.load(name)
        per_dataset: Dict[str, List[float]] = {m: [] for m in ("os", "ols-kl", "ols")}
        for fraction in fractions:
            rng = ensure_rng(config.seed + int(fraction * 100))
            sub = sample_vertices(graph, fraction, rng)
            for method in ("os", "ols-kl", "ols"):
                measurement = run_method(sub, method, config)
                per_dataset[method].append(measurement.seconds)
        data[name] = per_dataset
        for method in ("os", "ols-kl", "ols"):
            rows.append(
                [name, method]
                + [format_seconds(t) for t in per_dataset[method]]
            )
    text = format_table(
        headers, rows,
        title=(
            "Figure 9 — scalability over vertex-sampled datasets "
            f"(measured at the scaled budget, profile={config.profile})"
        ),
    )
    return ExperimentOutcome(
        name="fig9", title="Scalability", data=data, text=text
    )


def fig13_memory(config: ExperimentConfig) -> ExperimentOutcome:
    """Figure 13: peak memory consumption of the four methods.

    Peak tracemalloc allocations during a short run of each method (the
    network itself is allocated beforehand and excluded, matching the
    paper's observation that the index size is tiny next to the network).
    MC-VP's store-everything behaviour should dominate.
    """
    headers = ["dataset", "mc-vp", "os", "ols-kl", "ols"]
    rows: List[list] = []
    data: Dict[str, Dict[str, int]] = {}
    short = ExperimentConfig(
        profile=config.profile,
        seed=config.seed,
        n_direct=max(10, config.n_direct // 20),
        n_mcvp=2,
        n_prepare=max(10, config.n_prepare // 2),
        n_sampling=max(10, config.n_sampling // 20),
        datasets=config.datasets,
    )
    for name in config.datasets:
        graph = config.load(name)
        graph.adjacency_left  # materialise shared caches outside the window
        graph.adjacency_right
        graph.edges_by_weight_desc
        peaks: Dict[str, int] = {}
        for method in METHOD_ORDER:
            measurement = run_method(
                graph, method, short, trace_memory=True
            )
            peaks[method] = measurement.peak_bytes
        data[name] = peaks
        rows.append([name] + [_fmt_bytes(peaks[m]) for m in METHOD_ORDER])
    text = format_table(
        headers, rows,
        title=(
            "Figure 13 — peak extra memory per method (tracemalloc, "
            "network allocated outside the measurement window)"
        ),
    )
    return ExperimentOutcome(
        name="fig13", title="Memory consumption", data=data, text=text
    )


def _fmt_bytes(n: int) -> str:
    from .report import format_bytes

    return format_bytes(n)


def ablation_pruning(config: ExperimentConfig) -> ExperimentOutcome:
    """Ablation: OS with and without the Section V-B edge-ordering prune.

    Not a paper figure — DESIGN.md calls the prune out as a key design
    decision, and this experiment quantifies it: identical estimates
    (same RNG consumption), different work.
    """
    headers = [
        "dataset", "os (prune)", "os (no prune)", "speedup",
        "edges/trial (prune)", "edges/trial (no prune)",
    ]
    rows: List[list] = []
    data: Dict[str, Dict[str, float]] = {}
    n = max(50, config.n_direct // 4)
    for name in config.datasets:
        graph = config.load(name)
        with_prune = measure(
            lambda: ordering_sampling(graph, n, rng=config.seed + 5, prune=True)
        )
        without = measure(
            lambda: ordering_sampling(graph, n, rng=config.seed + 5, prune=False)
        )
        edges_with = with_prune.value.stats["edges_processed"] / n
        edges_without = without.value.stats["edges_processed"] / n
        data[name] = {
            "seconds_prune": with_prune.seconds,
            "seconds_noprune": without.seconds,
            "edges_prune": edges_with,
            "edges_noprune": edges_without,
        }
        rows.append([
            name,
            format_seconds(with_prune.seconds),
            format_seconds(without.seconds),
            f"{without.seconds / with_prune.seconds:.1f}x",
            f"{edges_with:.0f}",
            f"{edges_without:.0f}",
        ])
    text = format_table(
        headers, rows,
        title=f"Ablation — Section V-B edge-ordering prune ({n} trials)",
    )
    return ExperimentOutcome(
        name="ablation-prune", title="Edge-ordering prune ablation",
        data=data, text=text,
    )
