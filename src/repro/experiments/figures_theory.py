"""Theory-driven experiments: Tables III-IV, Figure 6, Figure 10.

These reproduce the paper content that is computed rather than timed:
dataset statistics, the ε-δ trial-number settings, and the
Karp-Luby-vs-optimised trial ratio analyses of Equation 8 / Equation 9.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core import prepare_candidates
from ..core.bounds import (
    balance_ratio,
    candidate_hit_probability,
    candidate_trial_ratios,
    monte_carlo_trial_bound,
    ratio_matrix,
)
from ..datasets import PAPER_SHAPES
from ..graph import compute_stats
from .harness import ExperimentConfig, ExperimentOutcome
from .report import format_bars, format_matrix, format_table


def table3_datasets(config: ExperimentConfig) -> ExperimentOutcome:
    """Table III: dataset details, paper shape vs. generated stand-in."""
    headers = [
        "dataset", "|E| (paper)", "|E| (ours)", "|L| (paper)", "|L| (ours)",
        "|R| (paper)", "|R| (ours)", "weight", "probability",
    ]
    rows: List[list] = []
    stats_by_name = {}
    for name in config.datasets:
        graph = config.load(name)
        stats = compute_stats(graph)
        stats_by_name[name] = stats
        paper_e, paper_l, paper_r, weight_kind, prob_kind = PAPER_SHAPES[name]
        rows.append([
            name, paper_e, stats.n_edges, paper_l, stats.n_left,
            paper_r, stats.n_right, weight_kind, prob_kind,
        ])
    text = format_table(
        headers, rows,
        title=f"Table III — dataset details (profile={config.profile})",
    )
    return ExperimentOutcome(
        name="table3",
        title="Dataset details",
        data={"stats": stats_by_name, "rows": rows},
        text=text,
    )


def table4_trial_numbers(config: ExperimentConfig) -> ExperimentOutcome:
    """Table IV: trial numbers of the four methods in both phases.

    The direct-method entry is the Theorem IV.1 bound at the paper's
    μ=0.05, ε=δ=0.1 setting (the paper rounds it to 2x10^4); the
    preparing entry is 100 trials with the implied Lemma VI.1 miss
    probability for a P(B)=0.05 butterfly.
    """
    bound = monte_carlo_trial_bound(config.mu, config.epsilon, config.delta)
    miss = 1.0 - candidate_hit_probability(config.mu, config.n_prepare)
    rows = [
        ["MC-VP", "-", f"{bound} (paper: 20,000)"],
        ["OS", "-", f"{bound} (paper: 20,000)"],
        ["OLS-KL", f"{config.n_prepare}", "dynamic (Lemma VI.4)"],
        ["OLS", f"{config.n_prepare}", f"{bound} (paper: 20,000)"],
    ]
    text = format_table(
        ["Sampling Methods", "Preparing Phase", "Sampling Phase"],
        rows,
        title=(
            "Table IV — trial numbers "
            f"(Theorem IV.1 bound at mu={config.mu}, eps=delta="
            f"{config.epsilon}: N >= {bound}; "
            f"P(B)={config.mu} miss probability after "
            f"{config.n_prepare} preparing trials: {miss:.3%})"
        ),
    )
    return ExperimentOutcome(
        name="table4",
        title="Trial numbers per method and phase",
        data={"bound": bound, "miss_probability": miss, "rows": rows},
        text=text,
    )


def fig6_ratio_matrix(config: ExperimentConfig) -> ExperimentOutcome:
    """Figure 6: the ``N_kl/N_op`` matrix over ``(P(B), Pr[E(B)])``.

    ``S_i = 1`` as in the paper; cells with ``P(B) > Pr[E(B)]`` are
    infeasible and left blank.  Larger values mean Karp-Luby needs more
    trials than the optimised estimator for the same guarantee.
    """
    mus = [0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5]
    existence = [0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0]
    matrix = ratio_matrix(mus, existence, blocking_mass=1.0)
    text = format_matrix(
        matrix,
        row_labels=[f"P(B)={mu}" for mu in mus],
        col_labels=[f"PrE={e}" for e in existence],
        title="Figure 6 — N_kl/N_op ratio matrix (S_i = 1, Equation 8)",
    )
    return ExperimentOutcome(
        name="fig6",
        title="Karp-Luby vs optimised trial-number ratio matrix",
        data={"mus": mus, "existence": existence, "matrix": matrix},
        text=text,
    )


def fig10_trial_ratio(
    config: ExperimentConfig, dataset: str | None = None
) -> ExperimentOutcome:
    """Figure 10: per-candidate ``N_kl/N_op`` bars vs the ``1/|C_MB|`` line.

    For each dataset the candidate set is listed with the configured
    preparing budget; each bar is Equation 8 at μ=0.1 (the paper's
    setting); the reference line is Equation 9's break-even value.  Bars
    above the line mean the optimised estimator wins for that candidate.
    """
    names = [dataset] if dataset else list(config.datasets)
    sections: List[str] = []
    data = {}
    for name in names:
        graph = config.load(name)
        candidates = prepare_candidates(
            graph, config.n_prepare, rng=config.seed + 11
        )
        if len(candidates) == 0:
            sections.append(f"[{name}] no candidates found")
            continue
        ratios = candidate_trial_ratios(candidates, mu=0.1)
        reference = balance_ratio(len(candidates))
        above = sum(1 for r in ratios if r > reference)
        data[name] = {
            "ratios": ratios,
            "reference": reference,
            "fraction_above": above / len(ratios),
        }
        sections.append(format_bars(
            ratios,
            reference=reference,
            title=(
                f"Figure 10 [{name}] — N_kl/N_op per candidate "
                f"(|C_MB|={len(candidates)}, 1/|C_MB|={reference:.4g}, "
                f"{above}/{len(ratios)} bars above the line)"
            ),
        ))
    return ExperimentOutcome(
        name="fig10",
        title="Per-candidate trial-number ratios",
        data=data,
        text="\n\n".join(sections),
    )
