"""Shared experiment configuration and method runners.

The paper's testbed is C++17/-O3; this reproduction is pure Python, so
every timing experiment runs a *scaled* trial budget and, where the paper
used its defaults (``N = 2x10^4`` direct trials, 100 preparing trials),
also reports the extrapolation ``measured_per_trial x paper_N``.  The
scaling knobs live in one :class:`ExperimentConfig` so the whole suite
can be cranked up on faster machines (or down for CI smoke runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..core import (
    mc_vp,
    ordering_listing_sampling,
    ordering_sampling,
    prepare_candidates,
)
from ..core.results import MPMBResult
from ..datasets import DATASET_NAMES, load_dataset
from ..graph import UncertainBipartiteGraph
from ..observability import Observer
from ..runtime import RuntimePolicy
from .instrument import Measurement, measure

#: Methods in the paper's plotting order.
METHOD_ORDER: Tuple[str, ...] = ("mc-vp", "os", "ols-kl", "ols")


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiments.

    Attributes:
        profile: Dataset profile (``"bench"`` or ``"paper"``).
        seed: Base seed; per-run seeds derive from it deterministically.
        n_direct: Measured OS trials (paper: 20 000).
        n_mcvp: Measured MC-VP trials (extrapolated to ``paper_direct``).
        n_prepare: Preparing-phase trials (paper: 100).
        n_sampling: OLS sampling-phase trials (paper: 20 000).
        paper_direct: The paper's direct/sampling trial setting used for
            extrapolated columns.
        datasets: Dataset names to sweep.
        mu: ε-δ target probability (Section VIII-B uses 0.05).
        epsilon: Relative error target.
        delta: Failure probability target.
        timeout_seconds: Optional per-run wall-clock budget; expired
            runs return degraded results with re-widened guarantees
            instead of blocking the whole sweep.
        block_size: Route the sampling methods through the batched
            kernel layer with this many trials per vectorised call;
            ``None`` keeps the scalar loops (see ``docs/performance.md``).
        adaptive: Run the sampling methods in anytime adaptive mode —
            racing elimination with empirical-Bernstein intervals and,
            for OLS-KL, the sublinear pre-screen — reporting realised
            instead of worst-case budgets (``docs/performance.md``).
    """

    profile: str = "bench"
    seed: int = 0
    n_direct: int = 2_000
    n_mcvp: int = 8
    n_prepare: int = 100
    n_sampling: int = 2_000
    paper_direct: int = 20_000
    datasets: Tuple[str, ...] = DATASET_NAMES
    mu: float = 0.05
    epsilon: float = 0.1
    delta: float = 0.1
    timeout_seconds: Optional[float] = None
    block_size: Optional[int] = None
    adaptive: bool = False

    def runtime_policy(self) -> Optional[RuntimePolicy]:
        """The runtime policy experiment runs execute under, if any."""
        if self.timeout_seconds is None:
            return None
        return RuntimePolicy(
            timeout_seconds=self.timeout_seconds,
            guarantee_mu=self.mu,
            guarantee_delta=self.delta,
        )

    def load(self, name: str) -> UncertainBipartiteGraph:
        """Load one dataset deterministically for this config."""
        return load_dataset(name, self.profile, rng=self.seed)


@dataclass
class ExperimentOutcome:
    """Uniform experiment output: structured data plus rendered text.

    Attributes:
        name: Experiment id (``"fig7"``, ``"table3"``, ...).
        title: Human-readable description.
        data: Experiment-specific structured payload (rows, matrices,
            traces) — whatever the paired test/benchmark asserts on.
        text: The rendered report.
    """

    name: str
    title: str
    data: Dict[str, object] = field(default_factory=dict)
    text: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.text


def run_method(
    graph: UncertainBipartiteGraph,
    method: str,
    config: ExperimentConfig,
    rng_offset: int = 0,
    trace_memory: bool = False,
    n_override: Optional[int] = None,
    observer: Optional[Observer] = None,
) -> Measurement:
    """Run one MPMB method with the config's scaled trial budget.

    Args:
        graph: Dataset to analyse.
        method: One of :data:`METHOD_ORDER`.
        config: Shared knobs.
        rng_offset: Added to the config seed so repeated runs differ.
        trace_memory: Record peak allocations (Figure 13) — slows the run.
        n_override: Replace the method's default measured trial count.
        observer: Optional :class:`~repro.observability.Observer`.  The
            method records its spans/metrics into it, and the harness
            adds ``harness.<method>.seconds`` (plus ``.peak_bytes`` when
            memory is traced) gauges for the measured call.

    Returns:
        A :class:`~repro.experiments.instrument.Measurement` whose value
        is the :class:`~repro.core.results.MPMBResult`.
    """
    seed = config.seed + 1_000_003 * (rng_offset + 1)
    runner = _method_runner(graph, method, config, seed, n_override,
                            observer)
    instrumented = observer is not None and observer.enabled
    return measure(
        runner,
        trace_memory=trace_memory,
        metrics=observer.metrics if instrumented else None,
        name=f"harness.{method}" if instrumented else None,
    )


def _method_runner(
    graph: UncertainBipartiteGraph,
    method: str,
    config: ExperimentConfig,
    seed: int,
    n_override: Optional[int],
    observer: Optional[Observer] = None,
) -> Callable[[], MPMBResult]:
    runtime = config.runtime_policy()
    block_size = config.block_size
    adaptive = {"delta": config.delta} if config.adaptive else None
    if method == "mc-vp":
        n = n_override or config.n_mcvp
        return lambda: mc_vp(
            graph, n, rng=seed, block_size=block_size,
            runtime=runtime, observer=observer, adaptive=adaptive,
        )
    if method == "os":
        n = n_override or config.n_direct
        return lambda: ordering_sampling(
            graph, n, rng=seed, block_size=block_size,
            runtime=runtime, observer=observer, adaptive=adaptive,
        )
    if method == "ols":
        n = n_override or config.n_sampling
        return lambda: ordering_listing_sampling(
            graph, n, n_prepare=config.n_prepare,
            estimator="optimized", rng=seed, block_size=block_size,
            runtime=runtime, observer=observer, adaptive=adaptive,
        )
    if method == "ols-kl":
        n = n_override if n_override is not None else 0  # 0 = dynamic
        return lambda: ordering_listing_sampling(
            graph, n, n_prepare=config.n_prepare,
            estimator="karp-luby", rng=seed,
            mu=config.mu, epsilon=config.epsilon, delta=config.delta,
            block_size=block_size, runtime=runtime, observer=observer,
            adaptive=adaptive,
        )
    raise ValueError(
        f"unknown method {method!r}; expected one of {METHOD_ORDER}"
    )


def time_preparing_phase(
    graph: UncertainBipartiteGraph,
    config: ExperimentConfig,
    rng_offset: int = 0,
):
    """Time the OLS preparing phase alone; returns ``(candidates, secs)``."""
    seed = config.seed + 7_000_037 * (rng_offset + 1)
    measurement = measure(
        lambda: prepare_candidates(graph, config.n_prepare, rng=seed)
    )
    return measurement.value, measurement.seconds
