"""Use-case experiments: Figure 2 (recommendation) and Figure 3 (brain).

The introduction's two motivating studies, runnable through the same
experiment registry as the evaluation figures.  Figure 2 contrasts the
most probable butterfly with and without the cold-item reward weighting;
Figure 3 compares top-k MPMBs between a TC and an ASD brain network.
"""

from __future__ import annotations

from ..apps import build_interest_graph, compare_groups
from ..core import find_mpmb
from ..datasets import abide_groups
from .harness import ExperimentConfig, ExperimentOutcome
from .report import format_table

#: The Figure 2 toy world: two users agree on hot and cold items; a
#: crowd inflates the hot items.
FIGURE2_INTERACTIONS = [
    ("alice", "football", 0.72),
    ("alice", "harry-potter", 0.72),
    ("alice", "skating", 0.70),
    ("alice", "chess", 0.70),
    ("bob", "football", 0.72),
    ("bob", "harry-potter", 0.72),
    ("bob", "skating", 0.70),
    ("bob", "chess", 0.70),
] + [
    (f"user{i}", item, 0.8)
    for i in range(12)
    for item in ("football", "harry-potter")
]


def fig2_recommendation(config: ExperimentConfig) -> ExperimentOutcome:
    """Figure 2: cold-item reward redirects the MPMB to niche agreement."""
    rows = []
    data = {}
    for label, reward in (("flat (Fig. 2a)", 0.0), ("rewarded (Fig. 2b)", 2.0)):
        graph = build_interest_graph(
            FIGURE2_INTERACTIONS, cold_reward=reward
        )
        result = find_mpmb(
            graph, method="ols", n_trials=max(2_000, config.n_sampling),
            n_prepare=config.n_prepare, rng=config.seed + 41,
        )
        best = result.best
        labels = best.labels(graph) if best else None
        data[label] = {
            "butterfly": labels,
            "weight": best.weight if best else 0.0,
            "probability": result.best_probability,
        }
        rows.append([
            label,
            str(labels),
            f"{best.weight:.2f}" if best else "-",
            f"{result.best_probability:.3f}",
        ])
    text = format_table(
        ["weighting", "MPMB", "weight", "P(B)"],
        rows,
        title="Figure 2 — recommendation use case (hot vs cold items)",
    )
    return ExperimentOutcome(
        name="fig2", title="Recommendation use case", data=data, text=text
    )


def fig3_brain(config: ExperimentConfig) -> ExperimentOutcome:
    """Figure 3: top-10 MPMBs in TC vs ASD brains; intensity contrast."""
    tc, asd = abide_groups(n_rois=28, rng=config.seed + 3)
    tc_analysis, asd_analysis, ratio = compare_groups(
        tc, asd, k=10,
        n_trials=max(2_000, config.n_sampling),
        n_prepare=max(100, config.n_prepare),
        rng=config.seed + 5,
    )
    rows = []
    for analysis in (tc_analysis, asd_analysis):
        clusters = sorted(
            analysis.roi_clusters().items(), key=lambda kv: -kv[1]
        )
        hubs = ", ".join(f"{roi}x{n}" for roi, n in clusters[:4])
        rows.append([
            analysis.group,
            len(analysis.findings),
            f"{analysis.mean_intensity:.3f}",
            hubs,
        ])
    text = format_table(
        ["group", "top-k found", "mean intensity", "recurrent ROIs"],
        rows,
        title=(
            "Figure 3 — brain-network use case "
            f"(TC/ASD intensity ratio {ratio:.2f}; paper: ~2x)"
        ),
    )
    return ExperimentOutcome(
        name="fig3",
        title="Brain-network use case",
        data={
            "tc": tc_analysis,
            "asd": asd_analysis,
            "intensity_ratio": ratio,
        },
        text=text,
    )
