"""Command-line entry point for the experiment suite.

Usage::

    python -m repro.experiments table3
    python -m repro.experiments fig7 --profile bench --seed 0
    python -m repro.experiments all --direct 1000 --sampling 1000
    python -m repro.experiments list
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .figures import experiment_names, run_experiment
from .harness import ExperimentConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), or 'all', or 'list'",
    )
    parser.add_argument(
        "--profile", default="bench", choices=("bench", "paper"),
        help="dataset profile (default: bench)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument(
        "--direct", type=int, default=2_000,
        help="measured OS trials (default: 2000)",
    )
    parser.add_argument(
        "--mcvp", type=int, default=8,
        help="measured MC-VP trials (default: 8)",
    )
    parser.add_argument(
        "--prepare", type=int, default=100,
        help="preparing-phase trials (default: 100, the paper setting)",
    )
    parser.add_argument(
        "--sampling", type=int, default=2_000,
        help="OLS sampling-phase trials (default: 2000)",
    )
    parser.add_argument(
        "--datasets", nargs="*", default=None,
        help="restrict to these datasets (default: all four)",
    )
    parser.add_argument(
        "--report", default=None, metavar="PATH",
        help="also write the outcomes as a Markdown replication report",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in experiment_names():
            print(name)
        return 0

    config = ExperimentConfig(
        profile=args.profile,
        seed=args.seed,
        n_direct=args.direct,
        n_mcvp=args.mcvp,
        n_prepare=args.prepare,
        n_sampling=args.sampling,
        datasets=tuple(args.datasets) if args.datasets else
        ExperimentConfig.datasets,
    )

    names = (
        experiment_names() if args.experiment == "all"
        else [args.experiment]
    )
    outcomes = []
    for name in names:
        start = time.perf_counter()
        try:
            outcome = run_experiment(name, config)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        elapsed = time.perf_counter() - start
        outcomes.append(outcome)
        print(outcome.text)
        print(f"[{name} completed in {elapsed:.1f}s]")
        print()
    if args.report:
        from .markdown import write_markdown_report

        write_markdown_report(outcomes, args.report, config)
        print(f"wrote Markdown report to {args.report}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
