"""Convergence experiments: Figures 11 and 12.

Figure 11 traces the running estimate of one butterfly with
``P(B) ≈ 0.05`` through the sampling phase of OS, OLS and OLS-KL at twice
the theoretical trial number, checking the tail stays inside the ±2ε
band.  Figure 12 repeats the *preparing* phase at increasing trial
budgets (each run independent, hence fluctuating rather than converging)
to show a small preparing budget suffices.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..butterfly import ButterflyKey
from ..core import (
    ordering_listing_sampling,
    ordering_sampling,
    prepare_candidates,
)
from ..graph import UncertainBipartiteGraph
from .harness import ExperimentConfig, ExperimentOutcome
from .report import format_series, format_sparkline

#: The paper traces a butterfly with P(B) ≈ 0.05.
TARGET_PROBABILITY = 0.05


def pick_tracked_butterfly(
    graph: UncertainBipartiteGraph,
    config: ExperimentConfig,
    target: float = TARGET_PROBABILITY,
) -> Optional[ButterflyKey]:
    """Choose the candidate whose estimated ``P(B)`` is nearest ``target``.

    A quick OLS pass supplies rough estimates; returns ``None`` when the
    graph produced no candidates at all.
    """
    pilot = ordering_listing_sampling(
        graph,
        max(500, config.n_sampling // 4),
        n_prepare=config.n_prepare,
        rng=config.seed + 101,
    )
    if not pilot.estimates:
        return None
    key, _probability = min(
        pilot.estimates.items(),
        key=lambda item: (abs(item[1] - target), item[0]),
    )
    return key


def fig11_convergence_sampling(
    config: ExperimentConfig, dataset: str | None = None
) -> ExperimentOutcome:
    """Figure 11: sampling-phase convergence at twice the trial budget."""
    names = [dataset] if dataset else list(config.datasets)
    sections: List[str] = []
    data: Dict[str, dict] = {}
    double = 2 * config.n_sampling
    for name in names:
        graph = config.load(name)
        key = pick_tracked_butterfly(graph, config)
        if key is None:
            sections.append(f"[{name}] no butterfly to track")
            continue

        os_result = ordering_sampling(
            graph, double, rng=config.seed + 201, track=[key],
        )
        ols_result = ordering_listing_sampling(
            graph, double, n_prepare=config.n_prepare,
            rng=config.seed + 202, track=[key],
        )
        olskl_result = ordering_listing_sampling(
            graph, 0, n_prepare=config.n_prepare, estimator="karp-luby",
            rng=config.seed + 203, track=[key],
            mu=config.mu, epsilon=config.epsilon, delta=config.delta,
        )

        traces = {
            "os": os_result.traces.get(key),
            "ols": ols_result.traces.get(key),
            "ols-kl": olskl_result.traces.get(key),
        }
        reference = os_result.probability(key)
        banded = {
            method: (
                trace.within_band(reference, 2 * config.epsilon)
                if trace and trace.checkpoints and reference > 0
                else None
            )
            for method, trace in traces.items()
        }
        data[name] = {
            "key": key,
            "reference": reference,
            "traces": traces,
            "within_band": banded,
        }

        base = traces["os"]
        x = [
            f"{100 * n // double}%" for n in base.trials()
        ] if base else []
        series = []
        for method, trace in traces.items():
            if trace is None or not trace.checkpoints:
                continue
            values = [f"{v:.4f}" for v in trace.estimates()]
            # Align ragged traces (OLS-KL checkpoints per its own budget).
            if len(values) != len(x):
                values = _resample(values, len(x))
            series.append((method, values))
        sparklines = "; ".join(
            f"{method}: {format_sparkline(trace.estimates())}"
            for method, trace in traces.items()
            if trace is not None and trace.checkpoints
        )
        sections.append(format_series(
            "trials", x, series,
            title=(
                f"Figure 11 [{name}] — P(B) convergence for B={key} "
                f"(OS reference {reference:.4f}, band ±{2 * config.epsilon:.0%}"
                f"; in-band after warm-up: {banded})\n{sparklines}"
            ),
        ))
    return ExperimentOutcome(
        name="fig11",
        title="Sampling-phase convergence",
        data=data,
        text="\n\n".join(sections),
    )


def fig12_convergence_preparing(
    config: ExperimentConfig, dataset: str | None = None
) -> ExperimentOutcome:
    """Figure 12: estimate stability as the preparing budget grows.

    Each point is an *independent* OLS run with a different preparing
    trial count (up to twice the default); once the tracked butterfly
    reliably enters the candidate set, the estimates settle into the
    band, confirming Lemma VI.1's small-budget claim.
    """
    names = [dataset] if dataset else list(config.datasets)
    steps = 8
    sections: List[str] = []
    data: Dict[str, dict] = {}
    for name in names:
        graph = config.load(name)
        key = pick_tracked_butterfly(graph, config)
        if key is None:
            sections.append(f"[{name}] no butterfly to track")
            continue
        budgets = [
            max(1, (2 * config.n_prepare * step) // steps)
            for step in range(1, steps + 1)
        ]
        estimates: List[float] = []
        for offset, budget in enumerate(budgets):
            result = ordering_listing_sampling(
                graph, config.n_sampling, n_prepare=budget,
                rng=config.seed + 301 + offset, track=[key],
            )
            estimates.append(result.probability(key))
        reference = estimates[-1]
        data[name] = {
            "key": key,
            "budgets": budgets,
            "estimates": estimates,
            "reference": reference,
        }
        sections.append(format_series(
            "prep trials", budgets,
            [("P(B)", [f"{v:.4f}" for v in estimates])],
            title=(
                f"Figure 12 [{name}] — preparing-phase sufficiency for "
                f"B={key} (independent runs; final estimate "
                f"{reference:.4f})  {format_sparkline(estimates)}"
            ),
        ))
    return ExperimentOutcome(
        name="fig12",
        title="Preparing-phase trial sufficiency",
        data=data,
        text="\n\n".join(sections),
    )


def candidate_recall_curve(
    graph: UncertainBipartiteGraph,
    config: ExperimentConfig,
    key: ButterflyKey,
    budgets: List[int],
    repeats: int = 20,
) -> List[float]:
    """Empirical Lemma VI.1 check: how often ``key`` enters ``C_MB``.

    For each preparing budget, runs ``repeats`` independent preparing
    phases and reports the fraction that captured the butterfly —
    comparable against ``1 - (1 - P(B))^N``.
    """
    recalls: List[float] = []
    for budget in budgets:
        hits = 0
        for repeat in range(repeats):
            candidates = prepare_candidates(
                graph, budget, rng=config.seed + 401 + 97 * repeat + budget
            )
            if any(b.key == key for b in candidates):
                hits += 1
        recalls.append(hits / repeats)
    return recalls


def _resample(values: List[str], length: int) -> List[str]:
    """Stretch/shrink a trace to ``length`` points by nearest index."""
    if not values or length <= 0:
        return []
    return [
        values[min(len(values) - 1, (i * len(values)) // length)]
        for i in range(length)
    ]
