"""Markdown replication-report generation.

``python -m repro.experiments all`` prints every experiment's text
report; this module turns the same outcomes into a single Markdown
document — a machine-written sibling of EXPERIMENTS.md, suitable for
committing alongside a run so reviewers can diff reproductions across
machines or library versions.
"""

from __future__ import annotations

import platform
import time
from pathlib import Path
from typing import List, Sequence, Union

from .harness import ExperimentConfig, ExperimentOutcome

#: Static one-line context per experiment id, prepended to its report.
_CONTEXT = {
    "table3": "Dataset details (paper shape vs generated stand-in).",
    "table4": "Trial numbers per method and phase (Theorem IV.1 / "
              "Lemma VI.1 settings).",
    "fig2": "Recommendation use case: cold-item reward vs hot items.",
    "fig3": "Brain use case: TC vs ASD top-k MPMB intensity.",
    "fig6": "Equation 8 ratio matrix over (P(B), Pr[E(B)]).",
    "fig7": "Overall executing time of MC-VP / OS / OLS-KL / OLS.",
    "fig8": "Preparing vs sampling time across trial fractions.",
    "fig9": "Scalability over vertex-sampled datasets.",
    "fig10": "Per-candidate N_kl/N_op bars vs the 1/|C_MB| line.",
    "fig11": "Sampling-phase convergence of a tracked butterfly.",
    "fig12": "Preparing-phase trial sufficiency (Lemma VI.1).",
    "fig13": "Peak memory per method.",
    "ablation-prune": "Section V-B edge-ordering prune, on vs off.",
    "lemma-vi5": "Observed OLS overestimation vs the Lemma VI.5 bound.",
}


def render_markdown_report(
    outcomes: Sequence[ExperimentOutcome],
    config: ExperimentConfig | None = None,
) -> str:
    """Render experiment outcomes as one Markdown document."""
    lines: List[str] = [
        "# MPMB replication report",
        "",
        f"Generated {time.strftime('%Y-%m-%d %H:%M:%S')} on "
        f"{platform.platform()} / Python {platform.python_version()}.",
        "",
    ]
    if config is not None:
        lines += [
            "Configuration: "
            f"profile=`{config.profile}`, seed={config.seed}, "
            f"direct trials={config.n_direct}, "
            f"MC-VP trials={config.n_mcvp}, "
            f"preparing trials={config.n_prepare}, "
            f"sampling trials={config.n_sampling}, "
            f"extrapolation target={config.paper_direct}.",
            "",
        ]
    lines += [
        "Pure-Python reproduction: absolute numbers are not comparable "
        "to the paper's C++17/-O3 testbed; the *shapes* (orderings, "
        "speedup factors, convergence) are the reproduced claims — see "
        "EXPERIMENTS.md for the paper-vs-measured discussion.",
        "",
    ]
    for outcome in outcomes:
        lines.append(f"## {outcome.name} — {outcome.title}")
        lines.append("")
        context = _CONTEXT.get(outcome.name)
        if context:
            lines.append(context)
            lines.append("")
        lines.append("```")
        lines.append(outcome.text.rstrip())
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def write_markdown_report(
    outcomes: Sequence[ExperimentOutcome],
    target: Union[str, Path],
    config: ExperimentConfig | None = None,
) -> None:
    """Write :func:`render_markdown_report` output to ``target``."""
    Path(target).write_text(
        render_markdown_report(outcomes, config), encoding="utf-8"
    )
