"""Exact MPMB solvers (exponential — validation oracles for small graphs).

Computing ``P(B)`` exactly is #P-hard (Lemma III.1), so these solvers are
not part of the scalable pipeline; they exist to validate the sampling
methods on small instances and to measure the Lemma VI.5 error bound.

Two independent formulations are provided (and cross-checked in tests):

* :func:`exact_mpmb_by_worlds` — enumerate presence patterns of the
  *relevant* edges (those on at least one backbone butterfly; all other
  edges cannot change ``S_MB`` and marginalise out of Equation 4) and
  accumulate each pattern's probability onto its maximum butterflies.
* :func:`exact_mpmb_by_inclusion_exclusion` — the Lemma VI.5 derivation
  with the *complete* candidate set:
  ``P(B_i) = Pr[E(B_i)] · (1 − Pr[∪_{j≤L(i)} E(B_j \\ B_i)])``,
  with the union computed exactly by inclusion-exclusion.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..butterfly import Butterfly, ButterflyKey, enumerate_butterflies
from ..errors import IntractableError
from ..graph import UncertainBipartiteGraph
from ..sampling import exact_union_probability
from .candidates import CandidateSet
from .results import MPMBResult

#: Default cap on enumerated relevant-edge patterns (2^22 ≈ 4.2e6).
DEFAULT_MAX_WORLDS = 1 << 22

#: Default cap on inclusion-exclusion subsets per candidate.
DEFAULT_MAX_SUBSETS = 1 << 20


def backbone_butterflies(graph: UncertainBipartiteGraph) -> List[Butterfly]:
    """All butterflies of the backbone graph, via BFC-VP enumeration."""
    return list(enumerate_butterflies(graph))


def exact_mpmb_by_worlds(
    graph: UncertainBipartiteGraph,
    max_worlds: int = DEFAULT_MAX_WORLDS,
) -> MPMBResult:
    """Exact ``P(B)`` for every backbone butterfly via world enumeration.

    Only edges participating in at least one backbone butterfly are
    enumerated; all other edges leave ``S_MB`` unchanged in every world,
    so their probability mass marginalises out.

    Returns:
        An :class:`~repro.core.results.MPMBResult` with
        ``method="exact-worlds"`` and :attr:`prob_no_butterfly` filled in.

    Raises:
        IntractableError: If the relevant-edge count makes ``2^k`` exceed
            ``max_worlds``.
    """
    butterflies = backbone_butterflies(graph)
    if not butterflies:
        return MPMBResult(
            method="exact-worlds",
            graph=graph,
            n_trials=0,
            estimates={},
            butterflies={},
            prob_no_butterfly=1.0,
        )

    relevant = sorted({e for b in butterflies for e in b.edges})
    k = len(relevant)
    if k >= 63 or (1 << k) > max_worlds:
        raise IntractableError(
            f"{k} relevant edges imply 2^{k} patterns, exceeding the "
            f"budget of {max_worlds}"
        )
    position = {edge: i for i, edge in enumerate(relevant)}
    n_patterns = 1 << k

    # World-pattern probabilities, vectorised: probs[w] = Π p-or-(1-p).
    pattern_probs = np.ones(n_patterns)
    bits = np.arange(n_patterns, dtype=np.uint64)
    edge_probs = graph.probs
    for edge, pos in position.items():
        present = (bits >> np.uint64(pos)) & np.uint64(1)
        p = float(edge_probs[edge])
        pattern_probs *= np.where(present == 1, p, 1.0 - p)

    # Per-butterfly required-edge bitmasks.
    masks = np.array(
        [
            sum(1 << position[e] for e in b.edges)
            for b in butterflies
        ],
        dtype=np.uint64,
    )

    # Sweep weight classes heaviest-first; a pattern is "claimed" by the
    # first class containing a complete butterfly (Equation 3's max).
    candidates = CandidateSet(graph, butterflies)
    ordered = candidates.butterflies
    key_to_mask = {b.key: m for b, m in zip(butterflies, masks)}
    estimates: Dict[ButterflyKey, float] = {}
    unclaimed = np.ones(n_patterns, dtype=bool)
    for cls in candidates.weight_classes():
        complete_any = np.zeros(n_patterns, dtype=bool)
        complete_per: List[np.ndarray] = []
        for index in cls:
            mask = key_to_mask[ordered[index].key]
            complete = (bits & mask) == mask
            complete_per.append(complete)
            complete_any |= complete
        for index, complete in zip(cls, complete_per):
            estimates[ordered[index].key] = float(
                pattern_probs[complete & unclaimed].sum()
            )
        unclaimed &= ~complete_any
        if not unclaimed.any():
            break

    return MPMBResult(
        method="exact-worlds",
        graph=graph,
        n_trials=0,
        estimates=estimates,
        butterflies={b.key: b for b in butterflies},
        prob_no_butterfly=float(pattern_probs[unclaimed].sum()),
    )


def exact_mpmb_by_inclusion_exclusion(
    graph: UncertainBipartiteGraph,
    max_subsets: int = DEFAULT_MAX_SUBSETS,
) -> MPMBResult:
    """Exact ``P(B)`` via the Lemma VI.5 first-hit decomposition.

    For each backbone butterfly ``B_i`` (candidate set = *all* backbone
    butterflies, so nothing is missing and the Lemma VI.5 error is zero):

        ``P(B_i) = Pr[E(B_i)] · (1 − Pr[∪_{j ≤ L(i)} E(B_j \\ B_i)])``

    The union over blocking events is evaluated by inclusion-exclusion.

    Raises:
        IntractableError: If some candidate has too many strictly-heavier
            blockers for the ``max_subsets`` budget.
    """
    butterflies = backbone_butterflies(graph)
    candidates = CandidateSet(graph, butterflies)
    probs = graph.probs
    estimates: Dict[ButterflyKey, float] = {}
    for index, butterfly in enumerate(candidates):
        existence = candidates.existence_probability(index)
        if existence == 0.0:
            estimates[butterfly.key] = 0.0
            continue
        events = candidates.difference_events(index)
        union = exact_union_probability(
            events, lambda e: float(probs[e]), max_subsets=max_subsets
        )
        estimates[butterfly.key] = existence * (1.0 - union)
    return MPMBResult(
        method="exact-inclusion-exclusion",
        graph=graph,
        n_trials=0,
        estimates=estimates,
        butterflies={b.key: b for b in candidates},
    )


def exact_probability(
    graph: UncertainBipartiteGraph,
    butterfly: Butterfly,
    max_subsets: int = DEFAULT_MAX_SUBSETS,
) -> float:
    """Exact ``P(B)`` for a single butterfly (Equation 4).

    Builds the complete backbone candidate set and applies the first-hit
    decomposition for just the requested butterfly.

    Raises:
        KeyError: If ``butterfly`` is not a butterfly of the backbone.
        IntractableError: If too many heavier blockers exist.
    """
    candidates = CandidateSet(graph, backbone_butterflies(graph))
    index = candidates.index_of(butterfly)
    existence = candidates.existence_probability(index)
    if existence == 0.0:
        return 0.0
    probs = graph.probs
    union = exact_union_probability(
        candidates.difference_events(index),
        lambda e: float(probs[e]),
        max_subsets=max_subsets,
    )
    return existence * (1.0 - union)
