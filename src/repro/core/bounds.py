"""Trial-number theory: Theorem IV.1, Lemmas V.2 / VI.1 / VI.4 / VI.5.

These functions make the paper's accuracy analysis executable: the
benchmarks use them to pick trial counts that give all methods the same
ε-δ guarantee (Section VIII-B) and to regenerate the Figure 6 ratio
matrix and the Figure 10 per-candidate ratio bars.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..sampling.bounds import monte_carlo_trial_bound
from .candidates import CandidateSet

__all__ = [
    "monte_carlo_trial_bound",
    "os_trial_bound",
    "optimized_trial_bound",
    "karp_luby_trial_ratio",
    "karp_luby_trial_bound",
    "karp_luby_achievable_epsilon",
    "balance_ratio",
    "candidate_hit_probability",
    "preparing_trials_for_recall",
    "ratio_matrix",
    "candidate_trial_ratios",
    "lemma_vi5_error_bound",
]


def os_trial_bound(
    mu: float, epsilon: float = 0.1, delta: float = 0.1
) -> int:
    """Lemma V.2: OS needs ``N_os ≥ (1/μ)·4 ln(2/δ)/ε²`` trials.

    OS estimates ``P(B)`` directly, so this is exactly the Theorem IV.1
    Monte-Carlo bound.
    """
    return monte_carlo_trial_bound(mu, epsilon, delta)


def optimized_trial_bound(
    mu: float, epsilon: float = 0.1, delta: float = 0.1
) -> int:
    """Lemma VI.4 (first part): the optimised estimator's trial bound.

    Algorithm 5 also estimates ``P(B)`` directly, hence the same
    Monte-Carlo bound as OS.
    """
    return monte_carlo_trial_bound(mu, epsilon, delta)


def karp_luby_trial_ratio(
    existence_prob: float, blocking_mass: float, mu: float
) -> float:
    """Equation 8: ``N_kl / N_op`` for one candidate butterfly.

    Args:
        existence_prob: ``Pr[E(B_i)]`` — the candidate's four edges all
            existing.
        blocking_mass: ``S_i`` — the summed probability of the
            edge-difference events of strictly heavier candidates.
        mu: The target probability ``μ = P(B_i)`` being certified.

    Returns:
        The ratio ``Pr[E(B_i)] · S_i · (Pr[E(B_i)]/μ − 1)``.  Values
        below ``1/|C_MB|`` would favour Karp-Luby over the optimised
        estimator (Equation 9); the paper observes they rarely are.

    Raises:
        ValueError: If ``mu`` is non-positive or exceeds
            ``existence_prob`` (``P(B) ≤ Pr[E(B)]`` always).
    """
    if not 0.0 < mu <= 1.0:
        raise ConfigurationError(f"mu must be in (0, 1], got {mu}")
    if not 0.0 <= existence_prob <= 1.0:
        raise ConfigurationError(
            f"existence_prob must be in [0, 1], got {existence_prob}"
        )
    if blocking_mass < 0.0:
        raise ConfigurationError(
            f"blocking_mass must be non-negative, got {blocking_mass}"
        )
    if mu > existence_prob > 0.0:
        raise ConfigurationError(
            f"mu={mu} exceeds existence_prob={existence_prob}; "
            "P(B) can never exceed Pr[E(B)]"
        )
    return existence_prob * blocking_mass * (existence_prob / mu - 1.0)


def karp_luby_trial_bound(
    existence_prob: float,
    blocking_mass: float,
    mu: float,
    epsilon: float = 0.1,
    delta: float = 0.1,
    minimum: int = 1,
) -> int:
    """Lemma VI.4 (second part): Karp-Luby trials for an ε-δ guarantee.

    ``N_kl ≥ ratio(Eq. 8) · (1/μ)·4 ln(2/δ)/ε²``, floored at ``minimum``
    (a ratio of zero — e.g. for the heaviest candidate, which nothing
    blocks — still needs at least one trial in practice).
    """
    ratio = karp_luby_trial_ratio(existence_prob, blocking_mass, mu)
    base = monte_carlo_trial_bound(mu, epsilon, delta)
    return max(minimum, math.ceil(ratio * base))


def karp_luby_achievable_epsilon(
    existence_prob: float,
    blocking_mass: float,
    mu: float,
    n_trials: int,
    delta: float = 0.1,
) -> float:
    """Invert Lemma VI.4: the ε a Karp-Luby budget actually certifies.

    Solving ``N = ratio(Eq. 8) · (1/μ)·4 ln(2/δ)/ε²`` for ε gives
    ``ε = sqrt(ratio · 4 ln(2/δ) / (μ·N))``.  Used to re-widen the
    guarantee of a deadline-degraded OLS-KL run from the trials each
    candidate actually received.  A ratio of zero (nothing blocks the
    candidate) certifies ε = 0: the estimate equals ``Pr[E(B)]`` exactly.
    """
    if n_trials <= 0:
        raise ConfigurationError(f"n_trials must be positive, got {n_trials}")
    if not 0.0 < delta < 1.0:
        raise ConfigurationError(f"delta must be in (0, 1), got {delta}")
    ratio = karp_luby_trial_ratio(existence_prob, blocking_mass, mu)
    if ratio <= 0.0:
        return 0.0
    return math.sqrt(ratio * 4.0 * math.log(2.0 / delta) / (mu * n_trials))


def balance_ratio(candidate_count: int) -> float:
    """Equation 9: the break-even ratio ``1/|C_MB|``.

    When ``N_kl/N_op`` (Equation 8) exceeds this value, the optimised
    estimator wins on total work despite its ``O(|C_MB|)`` per-trial cost.
    """
    if candidate_count <= 0:
        raise ConfigurationError(
            f"candidate_count must be positive, got {candidate_count}"
        )
    return 1.0 / candidate_count


def candidate_hit_probability(probability: float, n_prepare: int) -> float:
    """Lemma VI.1: chance a butterfly with ``P(B)=probability`` enters
    ``C_MB`` within ``n_prepare`` preparing trials, i.e.
    ``1 − (1 − P(B))^N``."""
    if not 0.0 <= probability <= 1.0:
        raise ConfigurationError(f"probability must be in [0, 1], got {probability}")
    if n_prepare < 0:
        raise ConfigurationError(f"n_prepare must be non-negative, got {n_prepare}")
    return 1.0 - (1.0 - probability) ** n_prepare


def preparing_trials_for_recall(
    probability: float, target_recall: float
) -> int:
    """Invert Lemma VI.1: preparing trials so that a butterfly with
    ``P(B)=probability`` is captured with chance ``target_recall``.

    The paper's default (``N_os=100``) makes the miss probability of a
    ``P(B)=0.05`` butterfly below 0.6%.
    """
    if not 0.0 < probability < 1.0:
        raise ConfigurationError(f"probability must be in (0, 1), got {probability}")
    if not 0.0 < target_recall < 1.0:
        raise ConfigurationError(
            f"target_recall must be in (0, 1), got {target_recall}"
        )
    # A denormal target_recall underflows log1p-style: log(1 - tiny) is
    # exactly 0.0 in float64, so the ceil would report zero preparing
    # trials — yet capturing anything requires at least one trial.
    return max(
        1,
        math.ceil(
            math.log(1.0 - target_recall) / math.log(1.0 - probability)
        ),
    )


def ratio_matrix(
    mus: Sequence[float],
    existence_probs: Sequence[float],
    blocking_mass: float = 1.0,
) -> np.ndarray:
    """The Figure 6 matrix: Equation 8 over a ``(μ, Pr[E(B)])`` grid.

    Cells where ``μ > Pr[E(B)]`` are infeasible (``P(B) ≤ Pr[E(B)]``) and
    filled with ``nan``.

    Returns:
        Array of shape ``(len(mus), len(existence_probs))``; rows vary
        ``μ = P(B)``, columns vary ``Pr[E(B)]``.
    """
    matrix = np.full((len(mus), len(existence_probs)), np.nan)
    for i, mu in enumerate(mus):
        for j, existence in enumerate(existence_probs):
            if mu <= existence:
                matrix[i, j] = karp_luby_trial_ratio(
                    existence, blocking_mass, mu
                )
    return matrix


def candidate_trial_ratios(
    candidates: CandidateSet, mu: float = 0.1
) -> List[float]:
    """The Figure 10 bars: Equation 8 evaluated per candidate butterfly.

    ``Pr[E(B_i)]`` and ``S_i`` come from the candidate set itself;
    ``μ`` is the common certification target (the paper uses 0.1).  A
    butterfly cannot have ``P(B) > Pr[E(B)]``, so for candidates whose
    existence probability is at or below ``μ`` the target is clamped to
    half the existence probability, keeping the ratio finite and
    meaningful.
    """
    ratios: List[float] = []
    for index in range(len(candidates)):
        existence = candidates.existence_probability(index)
        if existence == 0.0:
            ratios.append(0.0)
            continue
        target = min(mu, 0.5 * existence)
        ratios.append(
            karp_luby_trial_ratio(
                existence, candidates.blocking_mass(index), target
            )
        )
    return ratios


def lemma_vi5_error_bound(
    exact_probabilities: Sequence[float],
    in_candidate_set: Sequence[bool],
    weights: Sequence[float],
    index: int,
) -> float:
    """Lemma VI.5: the overestimation bound for one candidate.

    ``P̂(B_i) − P(B_i) ≤ Σ P(B_j)`` over strictly-heavier butterflies
    ``B_j`` missing from ``C_MB``.

    Args:
        exact_probabilities: Exact ``P(B_j)`` for every butterfly of the
            backbone, in any consistent order.
        in_candidate_set: Parallel flags — whether each butterfly made it
            into ``C_MB``.
        weights: Parallel butterfly weights.
        index: Position of the butterfly whose error is bounded.
    """
    n = len(exact_probabilities)
    if not (len(in_candidate_set) == len(weights) == n):
        raise ConfigurationError("parallel sequences must have equal length")
    if not 0 <= index < n:
        raise IndexError(f"index {index} out of range for {n} butterflies")
    threshold = weights[index]
    return float(
        sum(
            p
            for p, present, w in zip(
                exact_probabilities, in_candidate_set, weights
            )
            if w > threshold and not present
        )
    )
