"""Algorithm 4 — per-candidate probability estimation via Karp-Luby.

For each candidate ``B_i`` the estimator targets the union of the
blocking events ``E(B_j \\ B_i)`` over strictly heavier candidates
``B_j`` and converts the union estimate into

    ``P(B_i) = (1 − (Cnt_i/N_kl) · S_i) · Pr[E(B_i)]``    (Alg. 4 line 10).

Trial counts are either fixed or sized dynamically per candidate through
the Lemma VI.4 ratio (Equation 8) against a common Monte-Carlo baseline —
which is exactly how the paper configures OLS-KL in Section VIII-B.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..butterfly import ButterflyKey
from ..sampling import (
    ConvergenceTrace,
    KarpLubyUnionSampler,
    RngLike,
    checkpoint_schedule,
    ensure_rng,
    monte_carlo_trial_bound,
)
from .bounds import karp_luby_trial_bound
from .candidates import CandidateSet
from .estimation import EstimationOutcome


def estimate_probabilities_karp_luby(
    candidates: CandidateSet,
    rng: RngLike = None,
    n_trials: Optional[int] = None,
    mu: float = 0.05,
    epsilon: float = 0.1,
    delta: float = 0.1,
    min_trials: int = 16,
    max_trials: int = 200_000,
    track: Optional[Iterable[ButterflyKey]] = None,
    checkpoints: int = 40,
) -> EstimationOutcome:
    """Estimate ``P(B)`` for every candidate with per-candidate KL runs.

    Args:
        candidates: The weight-sorted candidate set.
        rng: Seed or generator.
        n_trials: Fixed ``N_kl`` for every candidate; ``None`` (default)
            sizes each candidate dynamically via Lemma VI.4 with the
            ``mu``/``epsilon``/``delta`` target.
        mu: Certification target ``μ`` for the dynamic sizing; clamped
            per candidate to its existence probability (``P(B) ≤
            Pr[E(B)]``).
        epsilon: Relative error of the ε-δ guarantee.
        delta: Failure probability of the ε-δ guarantee.
        min_trials: Floor on the per-candidate trial count (a ratio of 0
            still needs some trials to return an estimate).
        max_trials: Cap on the per-candidate trial count.
        track: Optional butterfly keys to trace (Figure 11).
        checkpoints: Number of evenly spaced trace checkpoints.

    Returns:
        An :class:`~repro.core.estimation.EstimationOutcome` with
        ``method="karp-luby"`` and stats counters ``total_trials`` and
        ``base_trials`` (the Monte-Carlo baseline the ratios scale).
    """
    if n_trials is not None and n_trials <= 0:
        raise ValueError(f"n_trials must be positive, got {n_trials}")
    generator = ensure_rng(rng)
    graph = candidates.graph
    probs = graph.probs
    tracked = set(track) if track is not None else set()

    estimates: Dict[ButterflyKey, float] = {}
    traces: Dict[ButterflyKey, ConvergenceTrace] = {}
    trials_per_candidate: List[int] = []
    total_trials = 0
    base = monte_carlo_trial_bound(mu, epsilon, delta)

    for index, butterfly in enumerate(candidates):
        existence = candidates.existence_probability(index)
        if existence == 0.0:
            estimates[butterfly.key] = 0.0
            trials_per_candidate.append(0)
            continue
        events = candidates.difference_events(index)
        if not events:
            # Nothing heavier can block this candidate: P(B) = Pr[E(B)].
            estimates[butterfly.key] = existence
            trials_per_candidate.append(0)
            if butterfly.key in tracked:
                trace = ConvergenceTrace(label=str(butterfly.key))
                trace.record(1, existence)
                traces[butterfly.key] = trace
            continue

        sampler = KarpLubyUnionSampler(
            events, lambda e: float(probs[e]), generator
        )
        budget = _candidate_budget(
            n_trials, existence, sampler.weight_sum, mu,
            epsilon, delta, min_trials, max_trials,
        )
        trials_per_candidate.append(budget)
        total_trials += budget

        if butterfly.key in tracked:
            trace = ConvergenceTrace(label=str(butterfly.key))
            schedule = set(checkpoint_schedule(budget, checkpoints))
            for trial in range(1, budget + 1):
                sampler.trial()
                if trial in schedule:
                    trace.record(
                        trial,
                        _to_probability(sampler.estimate().raw_probability,
                                        existence),
                    )
            traces[butterfly.key] = trace
        else:
            sampler.run(budget)
        estimates[butterfly.key] = _to_probability(
            sampler.estimate().raw_probability, existence
        )

    return EstimationOutcome(
        method="karp-luby",
        estimates=estimates,
        traces=traces,
        trials_per_candidate=trials_per_candidate,
        stats={
            "total_trials": float(total_trials),
            "base_trials": float(base),
        },
    )


def _candidate_budget(
    n_trials: Optional[int],
    existence: float,
    blocking_mass: float,
    mu: float,
    epsilon: float,
    delta: float,
    min_trials: int,
    max_trials: int,
) -> int:
    """Per-candidate trial count: fixed, or dynamic per Lemma VI.4."""
    if n_trials is not None:
        return n_trials
    target = min(mu, existence)
    bound = karp_luby_trial_bound(
        existence, blocking_mass, target, epsilon, delta, minimum=min_trials
    )
    return max(min_trials, min(max_trials, bound))


def _to_probability(raw_union: float, existence: float) -> float:
    """Algorithm 4 line 10 with clamping into ``[0, Pr[E(B)]]``."""
    value = (1.0 - raw_union) * existence
    return float(min(existence, max(0.0, value)))
