"""Algorithm 4 — per-candidate probability estimation via Karp-Luby.

For each candidate ``B_i`` the estimator targets the union of the
blocking events ``E(B_j \\ B_i)`` over strictly heavier candidates
``B_j`` and converts the union estimate into

    ``P(B_i) = (1 − (Cnt_i/N_kl) · S_i) · Pr[E(B_i)]``    (Alg. 4 line 10).

Trial counts are either fixed or sized dynamically per candidate through
the Lemma VI.4 ratio (Equation 8) against a common Monte-Carlo baseline —
which is exactly how the paper configures OLS-KL in Section VIII-B.

The candidate loop routes through the resilient runtime engine with
``unit="candidate"``: checkpoints snapshot fully-completed candidates
only, and a wall-clock deadline can stop *inside* a candidate's trial
run — the partial estimate is kept and the outcome degrades with a
guarantee re-widened via the inverted Lemma VI.4 bound.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..butterfly import ButterflyKey
from ..errors import CheckpointError, ConfigurationError
from ..kernels import UnionBlockKernel, resolve_block_size
from ..observability import Observer, ensure_observer
from ..sampling import (
    ConvergenceTrace,
    KarpLubyUnionSampler,
    RngLike,
    checkpoint_schedule,
    ensure_rng,
    monte_carlo_trial_bound,
)
from ..sampling.rng import restore_rng_state, rng_state_payload
from ..runtime.degradation import Guarantee
from ..runtime.engine import LoopInterrupt, execute_trial_loop
from ..runtime.policy import Deadline, RuntimePolicy
from .bounds import karp_luby_achievable_epsilon, karp_luby_trial_bound
from .candidates import CandidateSet
from .estimation import EstimationOutcome

#: How many Karp-Luby trials run between mid-candidate deadline checks.
DEADLINE_CHECK_EVERY = 64


class _KarpLubyLoop:
    """Algorithm 4's candidate loop behind the engine's contract.

    One engine "trial" is one candidate.  Snapshot state covers
    fully-completed candidates only — their estimates, per-candidate
    trial counts, traces — plus the candidate keys (resume validation)
    and the RNG stream position; a candidate interrupted mid-run is
    re-estimated from scratch on resume, which keeps the checkpoint
    payload exact.
    """

    def __init__(
        self,
        candidates: CandidateSet,
        generator,
        n_trials: Optional[int],
        mu: float,
        epsilon: float,
        delta: float,
        min_trials: int,
        max_trials: int,
        track: Optional[Iterable[ButterflyKey]] = None,
        checkpoints: int = 40,
        deadline: Optional[Deadline] = None,
        block_size: Optional[int] = None,
    ) -> None:
        self.candidates = candidates
        self.generator = generator
        self.items = candidates.butterflies
        self.n_trials = n_trials
        self.mu = mu
        self.epsilon = epsilon
        self.delta = delta
        self.min_trials = min_trials
        self.max_trials = max_trials
        self.deadline = deadline
        self.block_size = block_size
        self._tracked = set(track) if track is not None else set()
        self._checkpoints = checkpoints
        self.estimates: Dict[ButterflyKey, float] = {}
        self.traces: Dict[ButterflyKey, ConvergenceTrace] = {}
        self.trials_per_candidate: List[int] = []

    @property
    def total_trials(self) -> int:
        return sum(self.trials_per_candidate)

    def run_trial(self, trial: int) -> None:
        """Estimate candidate ``trial - 1`` (engine trials are 1-based)."""
        index = trial - 1
        butterfly = self.items[index]
        probs = self.candidates.graph.probs
        existence = self.candidates.existence_probability(index)
        if existence == 0.0:
            self.estimates[butterfly.key] = 0.0
            self.trials_per_candidate.append(0)
            return
        events = self.candidates.difference_events(index)
        if not events:
            # Nothing heavier can block this candidate: P(B) = Pr[E(B)].
            self.estimates[butterfly.key] = existence
            self.trials_per_candidate.append(0)
            if butterfly.key in self._tracked:
                trace = ConvergenceTrace(label=str(butterfly.key))
                trace.record(1, existence)
                self.traces[butterfly.key] = trace
            return

        sampler = KarpLubyUnionSampler(
            events, lambda e: float(probs[e]), self.generator
        )
        budget = _candidate_budget(
            self.n_trials, existence, sampler.weight_sum, self.mu,
            self.epsilon, self.delta, self.min_trials, self.max_trials,
        )
        trace: Optional[ConvergenceTrace] = None
        schedule: set = set()
        if butterfly.key in self._tracked:
            trace = ConvergenceTrace(label=str(butterfly.key))
            schedule = set(checkpoint_schedule(budget, self._checkpoints))

        if self.block_size is not None:
            done = self._run_blocked(
                sampler, budget, existence, trace, schedule
            )
        else:
            done = 0
            for step in range(1, budget + 1):
                sampler.trial()
                done = step
                if trace is not None and step in schedule:
                    trace.record(
                        step,
                        _to_probability(
                            sampler.estimate().raw_probability, existence
                        ),
                    )
                if (
                    self.deadline is not None
                    and step < budget
                    and step % DEADLINE_CHECK_EVERY == 0
                    and self.deadline.expired
                ):
                    break

        self.estimates[butterfly.key] = _to_probability(
            sampler.estimate().raw_probability, existence
        )
        self.trials_per_candidate.append(done)
        if trace is not None:
            self.traces[butterfly.key] = trace
        if done < budget:
            # The partial estimate above is kept for the degraded result,
            # but the engine's completed count excludes this candidate.
            raise LoopInterrupt("deadline")

    def _run_blocked(
        self,
        sampler: KarpLubyUnionSampler,
        budget: int,
        existence: float,
        trace: Optional[ConvergenceTrace],
        schedule: set,
    ) -> int:
        """This candidate's trials via the vectorised union kernel.

        Deadlines are checked between blocks (the block takes over the
        scalar path's every-:data:`DEADLINE_CHECK_EVERY` cadence), and
        scheduled trace points inside a block are reconstructed from the
        kernel's per-trial acceptance vector.
        """
        kernel = UnionBlockKernel(sampler)
        block = resolve_block_size(budget, self.block_size)
        done = 0
        while done < budget:
            length = min(block, budget - done)
            accepted = kernel.run_block(length)
            if trace is not None:
                points = [
                    t for t in range(done + 1, done + length + 1)
                    if t in schedule
                ]
                if points:
                    before = sampler.accepted - int(accepted.sum())
                    cumulative = np.cumsum(accepted)
                    for t in points:
                        raw = (
                            (before + int(cumulative[t - done - 1])) / t
                            * sampler.weight_sum
                        )
                        trace.record(t, _to_probability(raw, existence))
            done += length
            if (
                self.deadline is not None
                and done < budget
                and self.deadline.expired
            ):
                break
        return done

    def state_payload(self, completed: int) -> Dict:
        completed_items = self.items[:completed]
        index_of = {b.key: i for i, b in enumerate(self.items)}
        return {
            "candidates": [list(b.key) for b in self.items],
            "estimates": [
                [list(b.key), float(self.estimates[b.key])]
                for b in completed_items
            ],
            "trials_per_candidate": [
                int(n) for n in self.trials_per_candidate[:completed]
            ],
            "traces": {
                "|".join(map(str, key)): [
                    [n, value] for n, value in trace.checkpoints
                ]
                for key, trace in self.traces.items()
                if index_of[key] < completed
            },
            "rng": rng_state_payload(self.generator),
        }

    def restore_state(self, payload: Dict) -> None:
        keys = [tuple(int(part) for part in raw) for raw in
                payload["candidates"]]
        current = [b.key for b in self.items]
        if keys != current:
            raise CheckpointError(
                "checkpointed candidate set does not match the current "
                f"candidate set ({len(keys)} vs {len(current)} candidates)"
            )
        self.estimates = {
            tuple(int(part) for part in raw): float(value)
            for raw, value in payload["estimates"]
        }
        self.trials_per_candidate = [
            int(n) for n in payload["trials_per_candidate"]
        ]
        self.traces = {}
        for raw_key, recorded in payload["traces"].items():
            key = tuple(int(part) for part in raw_key.split("|"))
            trace = ConvergenceTrace(label=str(key))
            trace.checkpoints = [
                (int(n), float(value)) for n, value in recorded
            ]
            self.traces[key] = trace
        restore_rng_state(self.generator, payload["rng"])


def estimate_probabilities_karp_luby(
    candidates: CandidateSet,
    rng: RngLike = None,
    n_trials: Optional[int] = None,
    mu: float = 0.05,
    epsilon: float = 0.1,
    delta: float = 0.1,
    min_trials: int = 16,
    max_trials: int = 200_000,
    track: Optional[Iterable[ButterflyKey]] = None,
    checkpoints: int = 40,
    block_size: Optional[int] = None,
    runtime: Optional[RuntimePolicy] = None,
    observer: Optional[Observer] = None,
) -> EstimationOutcome:
    """Estimate ``P(B)`` for every candidate with per-candidate KL runs.

    Args:
        candidates: The weight-sorted candidate set.
        rng: Seed or generator.
        n_trials: Fixed ``N_kl`` for every candidate; ``None`` (default)
            sizes each candidate dynamically via Lemma VI.4 with the
            ``mu``/``epsilon``/``delta`` target.
        mu: Certification target ``μ`` for the dynamic sizing; clamped
            per candidate to its existence probability (``P(B) ≤
            Pr[E(B)]``).
        epsilon: Relative error of the ε-δ guarantee.
        delta: Failure probability of the ε-δ guarantee.
        min_trials: Floor on the per-candidate trial count (a ratio of 0
            still needs some trials to return an estimate).
        max_trials: Cap on the per-candidate trial count.
        track: Optional butterfly keys to trace (Figure 11).
        checkpoints: Number of evenly spaced trace checkpoints.
        block_size: Run each candidate's union trials through the
            vectorised :class:`~repro.kernels.UnionBlockKernel` in
            blocks of this size (``None`` keeps the scalar lazy trials).
            Unbiased either way; deterministic for a fixed block size.
        runtime: Optional :class:`~repro.runtime.policy.RuntimePolicy`
            enabling candidate-granular checkpoint/resume and deadline
            degradation (the deadline is also checked *inside* each
            candidate's trial run — every
            :data:`DEADLINE_CHECK_EVERY` trials on the scalar path,
            between blocks on the batched path).
        observer: Optional :class:`~repro.observability.Observer`
            recording the ``sampling`` span, engine counters, and the
            per-candidate trial-count histogram (the Lemma VI.4 budget
            spread).

    Returns:
        An :class:`~repro.core.estimation.EstimationOutcome` with
        ``method="karp-luby"`` and stats counters ``total_trials`` and
        ``base_trials`` (the Monte-Carlo baseline the ratios scale).  A
        degraded outcome keeps every estimate computed so far (including
        the partially-sampled candidate) and re-widens ε through the
        inverted Lemma VI.4 bound over the trials each candidate
        actually received; unprocessed candidates have no estimate.
    """
    if n_trials is not None and n_trials <= 0:
        raise ConfigurationError(f"n_trials must be positive, got {n_trials}")
    observer = ensure_observer(observer)
    generator = ensure_rng(rng)
    base = monte_carlo_trial_bound(mu, epsilon, delta)
    if len(candidates) == 0:
        return EstimationOutcome(
            method="karp-luby",
            estimates={},
            stats={"total_trials": 0.0, "base_trials": float(base)},
        )
    deadline = runtime.make_deadline() if runtime is not None else None
    if block_size is not None:
        if block_size <= 0:
            raise ConfigurationError(
                f"block_size must be positive, got {block_size}"
            )
        observer.set("kernel.block_size", float(block_size))
    loop = _KarpLubyLoop(
        candidates, generator, n_trials, mu, epsilon, delta,
        min_trials, max_trials,
        track=track, checkpoints=checkpoints, deadline=deadline,
        block_size=block_size,
    )
    with observer.span(
        "sampling", method="ols-kl", candidates=len(candidates)
    ):
        report = execute_trial_loop(
            method="ols-kl",
            graph_name=candidates.graph.name,
            n_target=len(candidates),
            loop=loop,
            policy=runtime,
            deadline=deadline,
            unit="candidate",
            observer=observer,
        )
    for done in loop.trials_per_candidate:
        observer.observe("ols-kl.trials_per_candidate", done)
    guarantee = None
    target_trials = None
    if report.degraded:
        guarantee, target_trials = _degraded_guarantee(
            candidates, loop, n_trials, mu, epsilon, delta,
            min_trials, max_trials,
        )
    return EstimationOutcome(
        method="karp-luby",
        estimates=dict(loop.estimates),
        traces=loop.traces,
        trials_per_candidate=list(loop.trials_per_candidate),
        stats={
            "total_trials": float(loop.total_trials),
            "base_trials": float(base),
        },
        stop_reason=report.stop_reason,
        target_trials=target_trials,
        guarantee=guarantee,
    )


def _degraded_guarantee(
    candidates: CandidateSet,
    loop: _KarpLubyLoop,
    n_trials: Optional[int],
    mu: float,
    epsilon: float,
    delta: float,
    min_trials: int,
    max_trials: int,
) -> tuple:
    """Re-widen a degraded KL run's guarantee from achieved trials.

    ε is the *widest* error certified among the candidates that received
    trials (inverted Lemma VI.4); it is infinite when a trial-needing
    candidate received none.  The target budget sums every candidate's
    planned trial count, so callers can see how far the run got.
    """
    target_total = 0
    eps_values: List[float] = []
    shortfall = False
    for index in range(len(candidates)):
        existence = candidates.existence_probability(index)
        if existence == 0.0:
            continue
        mass = candidates.blocking_mass(index)
        if mass == 0.0:
            continue
        budget = _candidate_budget(
            n_trials, existence, mass, mu, epsilon, delta,
            min_trials, max_trials,
        )
        target_total += budget
        done = (
            loop.trials_per_candidate[index]
            if index < len(loop.trials_per_candidate)
            else 0
        )
        if done > 0:
            eps_values.append(
                karp_luby_achievable_epsilon(
                    existence, mass, min(mu, existence), done, delta
                )
            )
        else:
            shortfall = True
    if shortfall or not eps_values:
        achieved_epsilon = math.inf
    else:
        achieved_epsilon = max(eps_values)
    guarantee = Guarantee(
        mu=mu,
        epsilon=achieved_epsilon,
        delta=delta,
        achieved_trials=loop.total_trials,
        target_trials=target_total,
    )
    return guarantee, target_total


def _candidate_budget(
    n_trials: Optional[int],
    existence: float,
    blocking_mass: float,
    mu: float,
    epsilon: float,
    delta: float,
    min_trials: int,
    max_trials: int,
) -> int:
    """Per-candidate trial count: fixed, or dynamic per Lemma VI.4."""
    if n_trials is not None:
        return n_trials
    target = min(mu, existence)
    bound = karp_luby_trial_bound(
        existence, blocking_mass, target, epsilon, delta, minimum=min_trials
    )
    return max(min_trials, min(max_trials, bound))


def _to_probability(raw_union: float, existence: float) -> float:
    """Algorithm 4 line 10 with clamping into ``[0, Pr[E(B)]]``."""
    value = (1.0 - raw_union) * existence
    return float(min(existence, max(0.0, value)))
