"""Algorithm 1 — Monte-Carlo with Vertex Priority (the MC-VP baseline).

Each trial samples one possible world and enumerates *all* of its
butterflies with the BFC-VP vertex-priority scheme [50], keeping the
maximum-weight set ``S_MB``; each member of ``S_MB`` earns ``1/N`` of
probability.  The method is deliberately unoptimised beyond vertex
priority — it generates and stores every angle and inspects every
butterfly, which is exactly the cost profile the paper's Section V
optimisations remove.
"""

from __future__ import annotations

from collections import defaultdict
from itertools import combinations
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..butterfly import Butterfly, ButterflyKey
from ..butterfly.bfc_vp import assemble_butterfly
from ..errors import ConfigurationError
from ..graph import (
    UncertainBipartiteGraph,
    degree_priority,
    expected_degree_priority,
)
from ..kernels import (
    BlockedWinnerLoop,
    WedgeBlockKernel,
    WedgeIndex,
    build_wedge_index,
    resolve_block_budget,
    resolve_block_size,
)
from ..observability import Observer, ensure_observer
from ..observability.profiling import stopwatch
from ..sampling import RngLike, ensure_rng
from ..worlds import WorldSampler
from .results import (
    MPMBResult,
    record_sampling_metrics,
    result_from_frequency_loop,
)
from ..runtime.engine import execute_trial_loop
from ..runtime.frequency import WinnerCountLoop
from ..runtime.policy import RuntimePolicy


def mc_vp(
    graph: UncertainBipartiteGraph,
    n_trials: int,
    rng: RngLike = None,
    track: Optional[Iterable[ButterflyKey]] = None,
    checkpoints: int = 40,
    antithetic: bool = False,
    priority_kind: str = "degree",
    block_size: Optional[int] = None,
    bytes_budget: Optional[int] = None,
    wedge_index: Optional[WedgeIndex] = None,
    runtime: Optional[RuntimePolicy] = None,
    observer: Optional[Observer] = None,
    adaptive=None,
) -> MPMBResult:
    """Run MC-VP for ``n_trials`` Monte-Carlo rounds.

    Args:
        graph: The uncertain bipartite network.
        n_trials: ``N_mc`` — number of sampled possible worlds.
        rng: Seed or generator.
        track: Optional butterfly keys whose running estimate is traced
            (for the Figure 11 convergence experiment).
        checkpoints: Number of evenly spaced trace checkpoints.
        antithetic: Sample worlds in antithetic pairs (variance
            reduction extension).
        block_size: Run through the batched kernel layer, drawing this
            many worlds per vectorised RNG call and evaluating the
            whole block through the vectorised wedge kernel
            (:class:`~repro.kernels.wedge_block.WedgeBlockKernel`);
            ``None`` keeps the scalar per-trial loop.  Mask blocks are
            stream-equivalent to scalar draws and the kernel reproduces
            the scalar search's exact winner semantics, so results are
            bit-identical either way; see ``docs/kernels.md``.
        bytes_budget: Peak working-set bytes one kernel block may use
            (``None`` uses the 64 MiB default); the effective block
            size is shrunk to fit, which is semantically free.  Only
            meaningful with ``block_size``.
        wedge_index: Optional prebuilt
            :class:`~repro.kernels.wedge_block.WedgeIndex` (e.g. one
            attached from shared memory by the worker pool); reused
            only when its ``priority_kind`` matches, rebuilt otherwise.
            Only meaningful with ``block_size``.
        priority_kind: Vertex-priority ranking — ``"degree"`` (the
            paper's BFC-VP order) or ``"expected-degree"`` (rank by
            ``d̄(u) = Σ p(e)``, the quantity Lemma IV.1's cost is
            actually written in; an ablation variant).
        runtime: Optional :class:`~repro.runtime.policy.RuntimePolicy`
            enabling checkpoint/resume, deadlines, and graceful
            degradation for the trial loop.
        observer: Optional :class:`~repro.observability.Observer`
            recording the ``sampling`` span, trial throughput, and the
            ``mc-vp.*`` counters.
        adaptive: Optional :class:`~repro.adaptive.AdaptiveConfig` (or
            anything :func:`~repro.adaptive.resolve_adaptive` accepts)
            enabling the anytime racing stop rule — the run ends early,
            certified, once the incumbent butterfly's lower confidence
            limit clears every rival's (and the unseen-butterfly
            phantom's) upper limit.  ``None`` (default) keeps the fixed
            budget bit-identical.

    Returns:
        An :class:`~repro.core.results.MPMBResult` with ``method="mc-vp"``
        and stats counters ``angles_processed``, ``angles_stored_peak``
        and ``butterflies_checked``.
    """
    observer = ensure_observer(observer)
    if priority_kind == "degree":
        priority = degree_priority(graph)
    elif priority_kind == "expected-degree":
        priority = expected_degree_priority(graph)
    else:
        raise ConfigurationError(
            f"priority_kind must be 'degree' or 'expected-degree', "
            f"got {priority_kind!r}"
        )
    sampler = WorldSampler(graph, ensure_rng(rng), antithetic=antithetic)
    stats = {
        "angles_processed": 0.0,
        "angles_stored_peak": 0.0,
        "butterflies_checked": 0.0,
    }

    def mask_trial(mask: np.ndarray) -> List[Butterfly]:
        winners, trial_stats = _max_butterflies_vertex_priority(
            graph, mask, priority
        )
        stats["angles_processed"] += trial_stats[0]
        stats["angles_stored_peak"] = max(
            stats["angles_stored_peak"], trial_stats[0]
        )
        stats["butterflies_checked"] += trial_stats[1]
        return winners

    def run_trial() -> List[Butterfly]:
        return mask_trial(sampler.sample_mask())

    loop = WinnerCountLoop(
        graph, sampler, run_trial, n_trials,
        track=track, checkpoints=checkpoints, stats=stats,
        observer=observer,
    )

    def wrap(engine_loop, unit_lengths=None):
        """Wrap the engine loop in the racing stop rule when enabled."""
        if adaptive is None:
            return engine_loop, None
        # Lazy import: repro.adaptive consumes the core estimators, so
        # importing it eagerly here would cycle at package load.
        from ..adaptive.racing import (
            RacingFrequencyLoop,
            adaptive_delta,
            adaptive_mu,
            resolve_adaptive,
        )

        config = resolve_adaptive(adaptive)
        if config is None:
            return engine_loop, None
        racer = RacingFrequencyLoop(
            engine_loop,
            counts_fn=lambda: loop.counts.values(),
            config=config,
            delta=adaptive_delta(config, runtime),
            mu=adaptive_mu(runtime),
            phantom=True,
            unit_lengths=unit_lengths,
        )
        return racer, racer

    with observer.span("sampling", method="mc-vp"), stopwatch() as timer:
        if block_size is None:
            engine_loop, racer = wrap(loop)
            report = execute_trial_loop(
                method="mc-vp",
                graph_name=graph.name,
                n_target=n_trials,
                loop=engine_loop,
                policy=runtime,
                observer=observer,
            )
        else:
            block = resolve_block_size(n_trials, block_size)
            with observer.span("wedge-index"):
                if (
                    wedge_index is None
                    or wedge_index.priority_kind != priority_kind
                ):
                    wedge_index = build_wedge_index(
                        graph, priority, priority_kind=priority_kind
                    )
            kernel = WedgeBlockKernel(graph, wedge_index, tie_mode="exact")
            budget = resolve_block_budget(
                block, graph.n_edges, wedge_index.n_wedges,
                wedge_index.n_groups, budget_bytes=bytes_budget,
            )
            block = budget.block_size
            observer.set("kernel.block_size", float(block))
            observer.set("kernel.bytes_budget", float(budget.budget_bytes))
            observer.set("kernel.block_bytes", float(budget.block_bytes))
            observer.set("kernel.wedges", float(wedge_index.n_wedges))

            def block_fn(masks: np.ndarray) -> List[List[Butterfly]]:
                outcome = kernel.evaluate_block(masks)
                stats["angles_processed"] += outcome.wedges_present
                stats["angles_stored_peak"] = max(
                    stats["angles_stored_peak"],
                    outcome.wedges_present_peak,
                )
                stats["butterflies_checked"] += (
                    outcome.butterflies_present
                )
                return outcome.winners

            blocked = BlockedWinnerLoop(
                loop, mask_trial, n_trials, block,
                observer=observer, block_fn=block_fn,
            )
            engine_loop, racer = wrap(blocked, unit_lengths=blocked.lengths)
            report = execute_trial_loop(
                method="mc-vp",
                graph_name=graph.name,
                n_target=blocked.n_blocks,
                loop=engine_loop,
                policy=runtime,
                unit="block",
                unit_lengths=blocked.lengths,
                observer=observer,
            )
    guarantee = None
    if racer is not None:
        from ..adaptive.racing import frequency_racing_summary

        # Must run before result assembly: a certified racing stop is
        # cleared from the report so the result is not marked degraded.
        guarantee = frequency_racing_summary(racer, report, observer)
    result = result_from_frequency_loop(
        "mc-vp", graph, loop, report, policy=runtime
    )
    if guarantee is not None:
        result.guarantee = guarantee
        result.stats["trials_saved"] = float(
            report.n_trials_target - report.n_trials
        )
        result.stats["candidates_eliminated"] = float(racer.eliminated)
    record_sampling_metrics(observer, result, timer.seconds)
    return result


def _max_butterflies_vertex_priority(
    graph: UncertainBipartiteGraph,
    mask: np.ndarray,
    priority: np.ndarray,
) -> Tuple[List[Butterfly], Tuple[int, int]]:
    """One MC-VP trial body (Algorithm 1 lines 5-17).

    Builds every angle of the sampled world grouped by endpoint pair,
    combines each angle pair into a butterfly, and keeps the maximum
    weight set.  Returns ``(S_MB, (n_angles, n_butterflies_checked))``.
    """
    offset = graph.n_left
    weights = graph.weights
    edge_left = graph.edge_left
    edge_right = graph.edge_right

    # World adjacency over global vertex ids (Algorithm 1 works on V).
    adjacency: List[List[Tuple[int, int]]] = [
        [] for _ in range(graph.n_vertices)
    ]
    for e in np.flatnonzero(mask):
        e = int(e)
        u = int(edge_left[e])
        v = offset + int(edge_right[e])
        adjacency[u].append((v, e))
        adjacency[v].append((u, e))

    n_angles = 0
    n_checked = 0
    w_max = -np.inf
    winners: List[Butterfly] = []

    for x in range(graph.n_vertices):
        px = priority[x]
        groups: Dict[int, List[Tuple[int, int, int]]] = defaultdict(list)
        for y, edge_xy in adjacency[x]:
            if px <= priority[y]:
                continue
            for z, edge_yz in adjacency[y]:
                if z == x or px <= priority[z]:
                    continue
                groups[z].append((y, edge_xy, edge_yz))
                n_angles += 1
        for z, angles in groups.items():
            if len(angles) < 2:
                continue
            for (m1, e1a, e1b), (m2, e2a, e2b) in combinations(angles, 2):
                # Algorithm 1 materialises every butterfly before comparing
                # (that cost is what Section V removes).  Assembling also
                # fixes the weight's summation order to the canonical edge
                # order, so equal-weight ties compare exactly.
                n_checked += 1
                butterfly = assemble_butterfly(
                    x, z, m1, m2, (e1a, e1b, e2a, e2b), offset, weights
                )
                if butterfly.weight < w_max:
                    continue
                if butterfly.weight > w_max:
                    w_max = butterfly.weight
                    winners = [butterfly]
                else:
                    winners.append(butterfly)
    return winners, (n_angles, n_checked)
