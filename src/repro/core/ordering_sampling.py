"""Algorithm 2 — Ordering Sampling (OS).

OS keeps MC-VP's outer Monte-Carlo loop but replaces the per-trial
butterfly enumeration with the Section V weight-ordered search
(:func:`repro.butterfly.max_weight.max_weight_butterflies`): edges are
consumed heaviest-first, only the top-2 angle classes per endpoint pair
are stored, and only maximum-weight butterflies are materialised.  The
three optimisations are individually toggleable for the ablation
benchmarks.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from ..butterfly import Butterfly, ButterflyKey, max_weight_butterflies
from ..graph import UncertainBipartiteGraph
from ..kernels import (
    BlockedWinnerLoop,
    WedgeBlockKernel,
    WedgeIndex,
    build_wedge_index,
    resolve_block_budget,
    resolve_block_size,
)
from ..observability import Observer, ensure_observer
from ..observability.profiling import stopwatch
from ..sampling import RngLike, ensure_rng
from ..worlds import WorldSampler
from .results import (
    MPMBResult,
    record_sampling_metrics,
    result_from_frequency_loop,
)
from ..runtime.engine import execute_trial_loop
from ..runtime.frequency import WinnerCountLoop
from ..runtime.policy import RuntimePolicy


def os_trial(
    graph: UncertainBipartiteGraph,
    sampler: WorldSampler,
    prune: bool = True,
    pair_side: str = "auto",
) -> List[Butterfly]:
    """One OS trial (Algorithm 2 lines 4-20): sample a world, return its
    maximum-weight butterfly set ``S_MB`` (possibly empty)."""
    mask = sampler.sample_mask()
    order = graph.edges_by_weight_desc
    present_sorted = order[mask[order]]
    search = max_weight_butterflies(
        graph, present_sorted, prune=prune, pair_side=pair_side
    )
    return search.butterflies


def ordering_sampling(
    graph: UncertainBipartiteGraph,
    n_trials: int,
    rng: RngLike = None,
    track: Optional[Iterable[ButterflyKey]] = None,
    checkpoints: int = 40,
    prune: bool = True,
    pair_side: str = "auto",
    antithetic: bool = False,
    block_size: Optional[int] = None,
    bytes_budget: Optional[int] = None,
    wedge_index: Optional[WedgeIndex] = None,
    runtime: Optional[RuntimePolicy] = None,
    observer: Optional[Observer] = None,
    adaptive=None,
) -> MPMBResult:
    """Run Ordering Sampling for ``n_trials`` Monte-Carlo rounds.

    Args:
        graph: The uncertain bipartite network.
        n_trials: ``N_os`` — number of sampled possible worlds.
        rng: Seed or generator.
        track: Optional butterfly keys to trace (Figure 11).
        checkpoints: Number of evenly spaced trace checkpoints.
        prune: Apply the Section V-B edge-ordering early exit (ablation
            switch; the result distribution is identical either way).
        pair_side: Endpoint-pair side for the angle index — ``"auto"``
            (Lemma V.1 cost minimisation), ``"left"`` or ``"right"``.
        antithetic: Sample worlds in antithetic pairs (variance
            reduction; see :class:`~repro.worlds.sampler.WorldSampler`).
        block_size: Run through the batched kernel layer, drawing this
            many worlds per vectorised RNG call and evaluating the
            whole block through the vectorised wedge kernel in ``rtol``
            tie mode, which reproduces the weight-ordered search's
            :func:`~repro.butterfly.max_weight.weights_equal` winner
            classes (``None`` keeps the scalar per-trial loop).  Winner
            sets, traces, and estimates are bit-identical either way;
            the batched path reports the kernel scan's own work
            counters — ``wedges_scanned`` presence evaluations and
            ``trials_pruned`` early-exited worlds — instead of the
            scalar scan's per-edge counters, which have no vectorised
            equivalent — see ``docs/kernels.md``.
        bytes_budget: Peak working-set bytes one kernel block may use
            (``None`` uses the 64 MiB default); the effective block
            size is shrunk to fit.  Only meaningful with ``block_size``.
        wedge_index: Optional prebuilt
            :class:`~repro.kernels.wedge_block.WedgeIndex` (e.g. one
            attached from shared memory by the worker pool); reused
            only when built with degree priorities, rebuilt otherwise.
            Only meaningful with ``block_size``.
        runtime: Optional :class:`~repro.runtime.policy.RuntimePolicy`
            enabling checkpoint/resume, deadlines, and graceful
            degradation for the trial loop.
        observer: Optional :class:`~repro.observability.Observer`
            recording the ``edge-ordering``/``sampling`` spans, trial
            throughput, and the ``os.*`` counters (including the
            ``os.prune_rate`` of the Section V-B early exit).
        adaptive: Optional :class:`~repro.adaptive.AdaptiveConfig` (or
            anything :func:`~repro.adaptive.resolve_adaptive` accepts)
            enabling the anytime racing stop rule — the run ends early,
            certified, once the incumbent butterfly's lower confidence
            limit clears every rival's (and the unseen-butterfly
            phantom's) upper limit.  ``None`` (default) keeps the fixed
            budget bit-identical.

    Returns:
        An :class:`~repro.core.results.MPMBResult` with ``method="os"``
        and stats counters ``edges_processed``, ``angles_processed`` and
        ``angles_stored`` aggregated over trials.
    """
    observer = ensure_observer(observer)
    sampler = WorldSampler(graph, ensure_rng(rng), antithetic=antithetic)
    with observer.span("edge-ordering"):
        order = graph.edges_by_weight_desc
    if block_size is None:
        stats = {
            "edges_processed": 0.0,
            "angles_processed": 0.0,
            "angles_stored": 0.0,
            "trials_pruned": 0.0,
        }
    else:
        # The scalar scan's per-edge counters have no vectorised
        # equivalent; the batched path reports the kernel scan's own
        # pruned work (same spirit: how much the bound order saved).
        stats = {
            "wedges_scanned": 0.0,
            "trials_pruned": 0.0,
        }

    def mask_trial(mask: np.ndarray) -> List[Butterfly]:
        present_sorted = order[mask[order]]
        search = max_weight_butterflies(
            graph, present_sorted, prune=prune, pair_side=pair_side
        )
        stats["edges_processed"] += search.n_edges_processed
        stats["angles_processed"] += search.n_angles_processed
        stats["angles_stored"] += search.n_angles_stored
        if search.pruned:
            stats["trials_pruned"] += 1
        return search.butterflies

    def run_trial() -> List[Butterfly]:
        return mask_trial(sampler.sample_mask())

    loop = WinnerCountLoop(
        graph, sampler, run_trial, n_trials,
        track=track, checkpoints=checkpoints, stats=stats,
        observer=observer,
    )

    def wrap(engine_loop, unit_lengths=None):
        """Wrap the engine loop in the racing stop rule when enabled."""
        if adaptive is None:
            return engine_loop, None
        # Lazy import: repro.adaptive consumes the core estimators, so
        # importing it eagerly here would cycle at package load.
        from ..adaptive.racing import (
            RacingFrequencyLoop,
            adaptive_delta,
            adaptive_mu,
            resolve_adaptive,
        )

        config = resolve_adaptive(adaptive)
        if config is None:
            return engine_loop, None
        racer = RacingFrequencyLoop(
            engine_loop,
            counts_fn=lambda: loop.counts.values(),
            config=config,
            delta=adaptive_delta(config, runtime),
            mu=adaptive_mu(runtime),
            phantom=True,
            unit_lengths=unit_lengths,
        )
        return racer, racer

    with observer.span("sampling", method="os"), stopwatch() as timer:
        if block_size is None:
            engine_loop, racer = wrap(loop)
            report = execute_trial_loop(
                method="os",
                graph_name=graph.name,
                n_target=n_trials,
                loop=engine_loop,
                policy=runtime,
                observer=observer,
            )
        else:
            block = resolve_block_size(n_trials, block_size)
            with observer.span("wedge-index"):
                if (
                    wedge_index is None
                    or wedge_index.priority_kind != "degree"
                ):
                    wedge_index = build_wedge_index(graph)
            kernel = WedgeBlockKernel(graph, wedge_index, tie_mode="rtol")
            budget = resolve_block_budget(
                block, graph.n_edges, wedge_index.n_wedges,
                wedge_index.n_groups, budget_bytes=bytes_budget,
            )
            block = budget.block_size
            observer.set("kernel.block_size", float(block))
            observer.set("kernel.bytes_budget", float(budget.budget_bytes))
            observer.set("kernel.block_bytes", float(budget.block_bytes))
            observer.set("kernel.wedges", float(wedge_index.n_wedges))

            def block_fn(masks: np.ndarray) -> List[List[Butterfly]]:
                outcome = kernel.evaluate_block(masks, with_stats=False)
                stats["wedges_scanned"] += outcome.wedges_scanned
                stats["trials_pruned"] += outcome.rows_pruned
                return outcome.winners

            blocked = BlockedWinnerLoop(
                loop, mask_trial, n_trials, block,
                observer=observer, block_fn=block_fn,
            )
            engine_loop, racer = wrap(blocked, unit_lengths=blocked.lengths)
            report = execute_trial_loop(
                method="os",
                graph_name=graph.name,
                n_target=blocked.n_blocks,
                loop=engine_loop,
                policy=runtime,
                unit="block",
                unit_lengths=blocked.lengths,
                observer=observer,
            )
    guarantee = None
    if racer is not None:
        from ..adaptive.racing import frequency_racing_summary

        # Must run before result assembly: a certified racing stop is
        # cleared from the report so the result is not marked degraded.
        guarantee = frequency_racing_summary(racer, report, observer)
    result = result_from_frequency_loop(
        "os", graph, loop, report, policy=runtime
    )
    if guarantee is not None:
        result.guarantee = guarantee
        result.stats["trials_saved"] = float(
            report.n_trials_target - report.n_trials
        )
        result.stats["candidates_eliminated"] = float(racer.eliminated)
    record_sampling_metrics(observer, result, timer.seconds)
    return result
