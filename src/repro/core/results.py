"""Result types shared by every MPMB method.

All four sampling methods (MC-VP, OS, OLS-KL, OLS) and both exact solvers
return an :class:`MPMBResult`: a mapping from canonical butterfly keys to
estimated (or exact) probabilities ``P(B)``, the butterflies themselves,
optional convergence traces, and instrumentation counters used by the
experiment harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..butterfly import Butterfly, ButterflyKey
from ..errors import ConfigurationError
from ..graph import UncertainBipartiteGraph
from ..observability import Observer
from ..runtime.degradation import Guarantee, recompute_guarantee
from ..sampling import ConvergenceTrace


@dataclass
class MPMBResult:
    """Outcome of an MPMB computation.

    Attributes:
        method: Identifier of the producing method (``"mc-vp"``, ``"os"``,
            ``"ols"``, ``"ols-kl"``, ``"exact-worlds"``,
            ``"exact-inclusion-exclusion"``).
        graph: The analysed graph.
        n_trials: Sampling-phase trial count (0 for exact methods).
        estimates: Canonical butterfly key -> estimated ``P(B)``.
        butterflies: Canonical key -> :class:`Butterfly` object.
        traces: Optional convergence traces for tracked butterflies.
        stats: Instrumentation counters (method-specific; e.g. angles
            processed, candidates listed, preparing trials).
        prob_no_butterfly: For exact solvers, the probability that a world
            contains no butterfly at all; ``None`` for sampling methods
            that did not measure it.
        degraded: True when the run stopped before its target budget
            (deadline expiry, interruption, or dropped workers); the
            estimates cover only ``n_trials`` completed trials.
        degraded_reason: Why the run degraded (``"deadline"``,
            ``"interrupted"``, ``"workers-dropped"``); ``None`` for
            complete runs.
        target_trials: The budget the run was sized for (set only on
            degraded results; complete runs have it equal to
            ``n_trials`` implicitly).
        guarantee: The ε-δ statement the run actually certifies.  For
            degraded frequency runs ε is *re-widened*: Theorem IV.1 is
            inverted for the achieved trial count instead of silently
            reporting the target-budget guarantee.
    """

    method: str
    graph: UncertainBipartiteGraph
    n_trials: int
    estimates: Dict[ButterflyKey, float]
    butterflies: Dict[ButterflyKey, Butterfly]
    traces: Dict[ButterflyKey, ConvergenceTrace] = field(default_factory=dict)
    stats: Dict[str, float] = field(default_factory=dict)
    prob_no_butterfly: Optional[float] = None
    degraded: bool = False
    degraded_reason: Optional[str] = None
    target_trials: Optional[int] = None
    guarantee: Optional[Guarantee] = None

    def probability(self, butterfly: Butterfly | ButterflyKey) -> float:
        """Estimated ``P(B)`` (0.0 for butterflies never observed)."""
        key = butterfly.key if isinstance(butterfly, Butterfly) else butterfly
        return self.estimates.get(key, 0.0)

    @property
    def best(self) -> Optional[Butterfly]:
        """The MPMB — highest estimated probability, or ``None`` when the
        graph yielded no butterfly in any trial/world.

        Ties break deterministically by canonical key.
        """
        ranking = self.ranked()
        return ranking[0][0] if ranking else None

    @property
    def best_probability(self) -> float:
        """``P(B)`` of :attr:`best` (0.0 when no butterfly exists)."""
        ranking = self.ranked()
        return ranking[0][1] if ranking else 0.0

    def ranked(self) -> List[Tuple[Butterfly, float]]:
        """All observed butterflies, most probable first.

        Ties break by canonical key so results are reproducible across
        runs with the same seed.
        """
        order = sorted(
            self.estimates.items(), key=lambda item: (-item[1], item[0])
        )
        return [
            (self.butterflies[key], probability)
            for key, probability in order
        ]

    def top_k(self, k: int) -> List[Tuple[Butterfly, float]]:
        """The top-k MPMBs (Section VII)."""
        if k <= 0:
            raise ConfigurationError(f"k must be positive, got {k}")
        return self.ranked()[:k]

    def labelled_ranking(
        self, k: Optional[int] = None
    ) -> List[Tuple[tuple, float, float]]:
        """Human-readable ranking: (vertex labels, weight, probability)."""
        rows = self.ranked() if k is None else self.top_k(k)
        return [
            (butterfly.labels(self.graph), butterfly.weight, probability)
            for butterfly, probability in rows
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        best = self.best
        described = f"{best} P={self.best_probability:.4f}" if best else "none"
        return (
            f"<MPMBResult {self.method} trials={self.n_trials} "
            f"observed={len(self.estimates)} best={described}>"
        )


def result_from_frequency_loop(
    method: str,
    graph: UncertainBipartiteGraph,
    loop,
    report,
    policy=None,
) -> MPMBResult:
    """Assemble an :class:`MPMBResult` from an engine-driven winner loop.

    Shared by MC-VP and OS: winner frequencies are computed over the
    trials the engine actually completed, and an early stop yields a
    degraded result whose ε is re-widened for the achieved trial count
    (policy ``guarantee_mu``/``guarantee_delta``, paper defaults
    otherwise).

    Args:
        method: Result method identifier.
        graph: The analysed graph.
        loop: The :class:`~repro.runtime.frequency.WinnerCountLoop`.
        report: The engine's :class:`~repro.runtime.engine.LoopReport`.
        policy: The :class:`~repro.runtime.policy.RuntimePolicy`, if any.
    """
    degraded = report.degraded
    guarantee = None
    # Block-granular runs count engine units in blocks; ``n_trials`` /
    # ``n_trials_target`` resolve them back to Monte-Carlo trials so a
    # degraded blocked run normalises (and re-widens ε) over completed
    # blocks × block size + remainder, never over block counts.
    if degraded:
        guarantee = recompute_guarantee(
            report.n_trials,
            report.n_trials_target,
            mu=policy.guarantee_mu if policy is not None else 0.05,
            delta=policy.guarantee_delta if policy is not None else 0.1,
        )
    return MPMBResult(
        method=method,
        graph=graph,
        n_trials=report.n_trials,
        estimates=loop.probabilities(report.n_trials),
        butterflies=dict(loop.butterflies),
        traces=loop.traces,
        stats=loop.stats,
        degraded=degraded,
        degraded_reason=report.stop_reason,
        target_trials=report.n_trials_target if degraded else None,
        guarantee=guarantee,
    )


def record_sampling_metrics(
    observer: Observer, result: MPMBResult, seconds: float
) -> None:
    """Record the per-method metrics shared by every sampling estimator.

    Writes the common ``sampling.*`` family (trial throughput, achieved
    vs. target budget) plus one ``<method>.<stat>`` counter per entry of
    the result's instrumentation stats, and — when the method counted
    ``trials_pruned`` (the Section V-B ``w(e_i) + w̄ < w_max`` early
    exit) — the derived ``<method>.prune_rate`` gauge.

    Counters are *incremented*, not set, so per-worker registries merged
    by the pool sum to the pooled totals.
    """
    if not observer.enabled:
        return
    metrics = observer.metrics
    metrics.inc("sampling.trials", result.n_trials)
    if seconds > 0:
        metrics.set(
            "sampling.trials_per_second", result.n_trials / seconds
        )
    target = (
        result.target_trials
        if result.target_trials is not None else result.n_trials
    )
    metrics.set("sampling.target_trials", float(target))
    for key, value in sorted(result.stats.items()):
        metrics.inc(f"{result.method}.{key}", float(value))
    pruned = result.stats.get("trials_pruned")
    if pruned is not None and result.n_trials > 0:
        metrics.set(
            f"{result.method}.prune_rate", pruned / result.n_trials
        )


def merge_results(first: MPMBResult, second: MPMBResult) -> MPMBResult:
    """Pool two independent frequency-based runs of the same method.

    The Monte-Carlo methods estimate ``P(B)`` as a winner frequency, so
    two runs with ``N₁`` and ``N₂`` trials pool into the
    trial-count-weighted average — equivalent to one ``N₁+N₂``-trial run
    over the union of their sampled worlds.  Useful for distributing
    trials across processes or sessions (results round-trip through
    :mod:`repro.core.serialize`).

    Raises:
        ValueError: If the runs disagree on graph or method, or either
            is not a frequency-based sampling run (exact solvers and
            OLS-KL's ratio-based estimates do not pool this way).
    """
    poolable = ("mc-vp", "os", "ols")
    if first.method != second.method:
        raise ConfigurationError(
            f"cannot merge {first.method!r} with {second.method!r}"
        )
    if first.method not in poolable:
        raise ConfigurationError(
            f"method {first.method!r} is not frequency-based; only "
            f"{poolable} results pool by trial-weighted averaging"
        )
    if first.graph is not second.graph and first.graph != second.graph:
        raise ConfigurationError("results were computed on different graphs")
    if first.n_trials <= 0 or second.n_trials <= 0:
        raise ConfigurationError("both results need positive trial counts")

    total = first.n_trials + second.n_trials
    keys = set(first.estimates) | set(second.estimates)
    estimates = {
        key: (
            first.estimates.get(key, 0.0) * first.n_trials
            + second.estimates.get(key, 0.0) * second.n_trials
        ) / total
        for key in keys
    }
    butterflies = dict(first.butterflies)
    butterflies.update(second.butterflies)
    stats = dict(first.stats)
    for key, value in second.stats.items():
        stats[key] = stats.get(key, 0.0) + value
    degraded = first.degraded or second.degraded
    reasons = [
        r for r in (first.degraded_reason, second.degraded_reason) if r
    ]
    targets = [
        t for t in (first.target_trials, second.target_trials)
        if t is not None
    ]
    # Anytime guarantees pool conservatively: each shard certifies its
    # own (ε, δ) claim, so the union holds at the summed δ with the
    # widest ε — only meaningful when *both* shards certified one.
    guarantee = None
    if first.guarantee is not None and second.guarantee is not None:
        a, b = first.guarantee, second.guarantee
        guarantee = Guarantee(
            mu=min(a.mu, b.mu),
            epsilon=max(a.epsilon, b.epsilon),
            delta=min(1.0, a.delta + b.delta),
            achieved_trials=a.achieved_trials + b.achieved_trials,
            target_trials=a.target_trials + b.target_trials,
            realized_trials=(
                None
                if a.realized_trials is None or b.realized_trials is None
                else a.realized_trials + b.realized_trials
            ),
            eliminated=(
                None
                if a.eliminated is None or b.eliminated is None
                else max(a.eliminated, b.eliminated)
            ),
        )
    return MPMBResult(
        method=first.method,
        graph=first.graph,
        n_trials=total,
        estimates=estimates,
        butterflies=butterflies,
        stats=stats,
        degraded=degraded,
        degraded_reason=reasons[0] if reasons else None,
        target_trials=sum(targets) if targets else None,
        guarantee=guarantee,
    )
