"""Algorithm 5 — the paper's optimised probability estimator.

All candidates share each trial: a trial walks the weight-sorted
candidate list, lazily sampling only the edges the inspected butterflies
touch (memoised within the trial so shared edges stay consistent), and
stops as soon as the next candidate's weight drops below the best
existing butterfly found so far.  Every candidate in the trial's
maximum-weight class earns ``1/N``.

Compared with the per-candidate Karp-Luby runs of Algorithm 4 this costs
``O(N·|C_MB|)`` instead of ``O(N·|C_MB|²)`` (Lemma VI.3) while directly
estimating ``P(B)``, which Lemma VI.4 shows usually needs *fewer* trials
for the same ε-δ guarantee.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..butterfly import ButterflyKey
from ..sampling import (
    ConvergenceTrace,
    RngLike,
    checkpoint_schedule,
    ensure_rng,
)
from ..worlds.sampler import LazyEdgeTrial
from .candidates import CandidateSet
from .estimation import EstimationOutcome


def estimate_probabilities_optimized(
    candidates: CandidateSet,
    n_trials: int,
    rng: RngLike = None,
    track: Optional[Iterable[ButterflyKey]] = None,
    checkpoints: int = 40,
) -> EstimationOutcome:
    """Estimate ``P(B)`` for every candidate with shared trials.

    Args:
        candidates: The weight-sorted candidate set from the preparing
            phase.
        n_trials: ``N_op`` — shared trial count.
        rng: Seed or generator.
        track: Optional butterfly keys to trace (Figure 11).
        checkpoints: Number of evenly spaced trace checkpoints.

    Returns:
        An :class:`~repro.core.estimation.EstimationOutcome` with
        ``method="optimized"``; candidates never observed as maximum get
        estimate 0.0.

    Raises:
        ValueError: If ``n_trials`` is not positive.
    """
    if n_trials <= 0:
        raise ValueError(f"n_trials must be positive, got {n_trials}")
    generator = ensure_rng(rng)
    graph = candidates.graph
    items = candidates.butterflies
    counts = [0] * len(items)
    tracked = set(track) if track is not None else set()
    traces = {key: ConvergenceTrace(label=str(key)) for key in tracked}
    tracked_indices = [
        index for index, butterfly in enumerate(items)
        if butterfly.key in tracked
    ]
    schedule = set(checkpoint_schedule(n_trials, checkpoints))
    edges_sampled = 0

    for trial in range(1, n_trials + 1):
        lazy = LazyEdgeTrial(graph, generator)
        w_max = float("-inf")
        # Walk candidates heaviest-first; the first existing butterfly
        # pins w_max, equal-weight peers are still checked, and the loop
        # exits at the first strictly lighter candidate (Alg. 5 line 5).
        for index, butterfly in enumerate(items):
            if butterfly.weight < w_max:
                break
            if lazy.all_present(butterfly.edges):
                counts[index] += 1
                w_max = butterfly.weight
        edges_sampled += lazy.n_sampled
        if traces and trial in schedule:
            for index in tracked_indices:
                traces[items[index].key].record(trial, counts[index] / trial)

    estimates = {
        butterfly.key: count / n_trials
        for butterfly, count in zip(items, counts)
    }
    return EstimationOutcome(
        method="optimized",
        estimates=estimates,
        traces=traces,
        trials_per_candidate=[n_trials] * len(items),
        stats={
            "total_trials": float(n_trials),
            "edges_sampled": float(edges_sampled),
        },
    )
