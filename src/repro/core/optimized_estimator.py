"""Algorithm 5 — the paper's optimised probability estimator.

All candidates share each trial: a trial walks the weight-sorted
candidate list, lazily sampling only the edges the inspected butterflies
touch (memoised within the trial so shared edges stay consistent), and
stops as soon as the next candidate's weight drops below the best
existing butterfly found so far.  Every candidate in the trial's
maximum-weight class earns ``1/N``.

Compared with the per-candidate Karp-Luby runs of Algorithm 4 this costs
``O(N·|C_MB|)`` instead of ``O(N·|C_MB|²)`` (Lemma VI.3) while directly
estimating ``P(B)``, which Lemma VI.4 shows usually needs *fewer* trials
for the same ε-δ guarantee.

The trial loop routes through the resilient runtime engine
(:func:`~repro.runtime.engine.execute_trial_loop`), so it supports
checkpoint/resume, deadlines, and graceful degradation when a
:class:`~repro.runtime.policy.RuntimePolicy` is supplied.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..butterfly import ButterflyKey
from ..errors import CheckpointError, ConfigurationError
from ..observability import Observer, ensure_observer
from ..sampling import (
    ConvergenceTrace,
    RngLike,
    checkpoint_schedule,
    ensure_rng,
)
from ..kernels import BlockedOptimizedLoop, resolve_block_size
from ..sampling.rng import restore_rng_state, rng_state_payload
from ..worlds.sampler import LazyEdgeTrial, WorldSampler
from ..runtime.degradation import recompute_guarantee
from ..runtime.engine import execute_trial_loop
from ..runtime.policy import RuntimePolicy
from .candidates import CandidateSet
from .estimation import EstimationOutcome


class _OptimizedLoop:
    """Algorithm 5's inner loop behind the engine's checkpoint contract.

    Snapshot state: per-candidate winner counts (in candidate order),
    the candidate keys themselves (resume validation), the lazy-sampling
    edge counter, trace checkpoints, and the RNG stream position.
    """

    def __init__(
        self,
        candidates: CandidateSet,
        generator,
        n_target: int,
        track: Optional[Iterable[ButterflyKey]] = None,
        checkpoints: int = 40,
    ) -> None:
        self.candidates = candidates
        self.generator = generator
        self.items = candidates.butterflies
        self.counts = [0] * len(self.items)
        self.edges_sampled = 0
        self.edges_queried = 0
        tracked = set(track) if track is not None else set()
        self.traces: Dict[ButterflyKey, ConvergenceTrace] = {
            key: ConvergenceTrace(label=str(key)) for key in tracked
        }
        self._tracked_indices = [
            index for index, butterfly in enumerate(self.items)
            if butterfly.key in tracked
        ]
        self._schedule = set(checkpoint_schedule(n_target, checkpoints))

    def run_trial(self, trial: int) -> None:
        lazy = LazyEdgeTrial(self.candidates.graph, self.generator)
        w_max = float("-inf")
        # Walk candidates heaviest-first; the first existing butterfly
        # pins w_max, equal-weight peers are still checked, and the loop
        # exits at the first strictly lighter candidate (Alg. 5 line 5).
        for index, butterfly in enumerate(self.items):
            if butterfly.weight < w_max:
                break
            if lazy.all_present(butterfly.edges):
                self.counts[index] += 1
                w_max = butterfly.weight
        self.edges_sampled += lazy.n_sampled
        self.edges_queried += lazy.n_queries
        if self.traces and trial in self._schedule:
            for index in self._tracked_indices:
                self.traces[self.items[index].key].record(
                    trial, self.counts[index] / trial
                )

    def state_payload(self, completed: int) -> Dict:
        return {
            "candidates": [list(b.key) for b in self.items],
            "counts": list(self.counts),
            "edges_sampled": int(self.edges_sampled),
            "edges_queried": int(self.edges_queried),
            "traces": {
                "|".join(map(str, key)): [
                    [n, value] for n, value in trace.checkpoints
                ]
                for key, trace in self.traces.items()
            },
            "rng": rng_state_payload(self.generator),
        }

    def restore_state(self, payload: Dict) -> None:
        keys = [tuple(int(part) for part in raw) for raw in
                payload["candidates"]]
        current = [b.key for b in self.items]
        if keys != current:
            raise CheckpointError(
                "checkpointed candidate set does not match the current "
                f"candidate set ({len(keys)} vs {len(current)} candidates)"
            )
        self.counts = [int(count) for count in payload["counts"]]
        self.edges_sampled = int(payload["edges_sampled"])
        # Checkpoints written before the query counter existed lack the
        # key; resuming from them keeps the hit rate merely incomplete.
        self.edges_queried = int(payload.get("edges_queried", 0))
        for key, trace in self.traces.items():
            recorded = payload["traces"].get("|".join(map(str, key)), [])
            trace.checkpoints = [
                (int(n), float(value)) for n, value in recorded
            ]
        restore_rng_state(self.generator, payload["rng"])

    def estimates(self, completed: int) -> Dict[ButterflyKey, float]:
        if completed <= 0:
            return {butterfly.key: 0.0 for butterfly in self.items}
        return {
            butterfly.key: count / completed
            for butterfly, count in zip(self.items, self.counts)
        }


def estimate_probabilities_optimized(
    candidates: CandidateSet,
    n_trials: int,
    rng: RngLike = None,
    track: Optional[Iterable[ButterflyKey]] = None,
    checkpoints: int = 40,
    block_size: Optional[int] = None,
    runtime: Optional[RuntimePolicy] = None,
    observer: Optional[Observer] = None,
    adaptive=None,
) -> EstimationOutcome:
    """Estimate ``P(B)`` for every candidate with shared trials.

    Args:
        candidates: The weight-sorted candidate set from the preparing
            phase.
        n_trials: ``N_op`` — shared trial count.
        rng: Seed or generator.
        track: Optional butterfly keys to trace (Figure 11).
        checkpoints: Number of evenly spaced trace checkpoints.
        block_size: Route the trials through the vectorised block kernel
            (:class:`~repro.kernels.BlockedOptimizedLoop`), evaluating
            this many trials per kernel call.  ``None`` (default) keeps
            the scalar lazy-sampling walk.  The two paths agree in
            distribution but consume randomness differently (the kernel
            draws full-world masks, the scalar walk samples edges
            lazily); for a fixed block size the kernel path is exactly
            reproducible across any checkpoint/resume split — see
            ``docs/performance.md`` for the equivalence contract.
        runtime: Optional :class:`~repro.runtime.policy.RuntimePolicy`
            enabling checkpoint/resume and deadline degradation.
        observer: Optional :class:`~repro.observability.Observer`
            recording the ``sampling`` span and engine counters.
        adaptive: Optional :class:`~repro.adaptive.AdaptiveConfig` (or
            anything :func:`~repro.adaptive.resolve_adaptive` accepts).
            Wraps the trial loop in the anytime racing stop rule: the
            run ends early — certified, not degraded — once the
            incumbent candidate's empirical-Bernstein lower limit
            clears every rival's upper limit.  ``None`` (default) keeps
            the fixed-budget loop bit-identical.

    Returns:
        An :class:`~repro.core.estimation.EstimationOutcome` with
        ``method="optimized"``; candidates never observed as maximum get
        estimate 0.0.  A deadline-degraded outcome normalises over the
        trials actually completed and carries a re-widened guarantee.

    Raises:
        ValueError: If ``n_trials`` is not positive.
    """
    if n_trials <= 0:
        raise ConfigurationError(f"n_trials must be positive, got {n_trials}")
    observer = ensure_observer(observer)
    generator = ensure_rng(rng)
    if block_size is not None:
        block = resolve_block_size(n_trials, block_size)
        observer.set("kernel.block_size", float(block))
        sampler = WorldSampler(candidates.graph, generator)
        loop = BlockedOptimizedLoop(
            candidates, sampler, n_trials, block,
            track=track, checkpoints=checkpoints, observer=observer,
        )
    else:
        loop = _OptimizedLoop(
            candidates, generator, n_trials,
            track=track, checkpoints=checkpoints,
        )
    racer = None
    engine_loop = loop
    if adaptive is not None:
        # Lazy import: repro.adaptive consumes the core estimators, so
        # importing it eagerly here would cycle at package load.
        from ..adaptive.racing import (
            RacingFrequencyLoop,
            adaptive_delta,
            adaptive_mu,
            resolve_adaptive,
        )

        config = resolve_adaptive(adaptive)
        if config is not None:
            racer = RacingFrequencyLoop(
                loop,
                counts_fn=lambda: loop.counts,
                config=config,
                delta=adaptive_delta(config, runtime),
                mu=adaptive_mu(runtime),
                phantom=False,
                unit_lengths=(
                    loop.lengths if block_size is not None else None
                ),
            )
            engine_loop = racer
    with observer.span(
        "sampling", method="ols", candidates=len(candidates)
    ):
        if block_size is not None:
            report = execute_trial_loop(
                method="ols",
                graph_name=candidates.graph.name,
                n_target=loop.n_blocks,
                loop=engine_loop,
                policy=runtime,
                unit="block",
                unit_lengths=loop.lengths,
                observer=observer,
            )
        else:
            report = execute_trial_loop(
                method="ols",
                graph_name=candidates.graph.name,
                n_target=n_trials,
                loop=engine_loop,
                policy=runtime,
                observer=observer,
            )
    guarantee = None
    stats_extra = {}
    if racer is not None:
        from ..adaptive.racing import frequency_racing_summary

        guarantee = frequency_racing_summary(racer, report, observer)
        if guarantee is not None:
            stats_extra = {
                "trials_saved": float(n_trials - report.n_trials),
                "candidates_eliminated": float(racer.eliminated),
            }
    achieved = report.n_trials
    if report.degraded:
        guarantee = recompute_guarantee(
            achieved,
            n_trials,
            mu=runtime.guarantee_mu if runtime is not None else 0.05,
            delta=runtime.guarantee_delta if runtime is not None else 0.1,
        )
    return EstimationOutcome(
        method="optimized",
        estimates=loop.estimates(achieved),
        traces=loop.traces,
        trials_per_candidate=[achieved] * len(loop.items),
        stats={
            "total_trials": float(achieved),
            "edges_sampled": float(loop.edges_sampled),
            "edges_queried": float(loop.edges_queried),
            **stats_extra,
        },
        stop_reason=report.stop_reason,
        target_trials=n_trials if report.degraded else None,
        guarantee=guarantee,
    )
