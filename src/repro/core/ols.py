"""Algorithm 3 — Ordering-Listing Sampling (OLS).

OLS splits the work into two phases:

1. **Preparing phase** (lines 2-4): a small number of OS trials — the
   paper uses 100 against the 20 000 needed for direct estimation — whose
   per-trial maximum butterflies are unioned into the candidate set
   ``C_MB`` (Lemma VI.1 bounds the chance of missing a high-probability
   butterfly).
2. **Sampling phase** (line 5): a probability estimator runs over the
   small candidate set only, never touching the full network again —
   either the paper's optimised shared-trial estimator (Algorithm 5,
   method ``"ols"``) or per-candidate Karp-Luby (Algorithm 4, method
   ``"ols-kl"``).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ..butterfly import Butterfly, ButterflyKey, top_weight_butterflies
from ..butterfly.model import make_butterfly
from ..errors import CheckpointError, ConfigurationError
from ..graph import UncertainBipartiteGraph
from ..observability import Observer, ensure_observer
from ..observability.profiling import stopwatch
from ..sampling import RngLike, ensure_rng
from ..worlds import WorldSampler
from ..runtime.checkpoint import read_checkpoint
from ..runtime.policy import RuntimePolicy
from .candidates import CandidateSet
from .karp_luby_estimator import estimate_probabilities_karp_luby
from .optimized_estimator import estimate_probabilities_optimized
from .ordering_sampling import os_trial
from .results import MPMBResult, record_sampling_metrics

#: Paper default for the preparing phase (Section VIII-B).
DEFAULT_PREPARE_TRIALS = 100


def prepare_candidates(
    graph: UncertainBipartiteGraph,
    n_prepare: int = DEFAULT_PREPARE_TRIALS,
    rng: RngLike = None,
    prune: bool = True,
    pair_side: str = "auto",
    seed_backbone_top: int = 0,
    observer: Optional[Observer] = None,
) -> CandidateSet:
    """The OLS preparing phase: list candidate butterflies via OS trials.

    Args:
        graph: The uncertain bipartite network.
        n_prepare: ``N_os`` preparing trials (paper default 100).
        rng: Seed or generator.
        prune: Forwarded to the OS trial (Section V-B switch).
        pair_side: Forwarded to the OS trial.
        observer: Optional :class:`~repro.observability.Observer`
            recording the ``candidate-generation`` span and the
            ``prepare.trials`` / ``candidates.listed`` metrics.
        seed_backbone_top: Additionally seed ``C_MB`` with the k heaviest
            *backbone* butterflies (an extension beyond the paper).  The
            Lemma VI.5 overestimation comes from strictly heavier
            butterflies missing from the candidate set, so guaranteeing
            the heaviest ones are present tightens the bound at the cost
            of one deterministic top-k search.

    Returns:
        The deduplicated, weight-sorted candidate set ``C_MB``.
    """
    if n_prepare <= 0:
        raise ConfigurationError(f"n_prepare must be positive, got {n_prepare}")
    if seed_backbone_top < 0:
        raise ConfigurationError(
            f"seed_backbone_top must be non-negative, got {seed_backbone_top}"
        )
    observer = ensure_observer(observer)
    sampler = WorldSampler(graph, ensure_rng(rng))
    collected: Dict[ButterflyKey, Butterfly] = {}
    with observer.span("candidate-generation", trials=n_prepare):
        if seed_backbone_top:
            for butterfly in top_weight_butterflies(
                graph, seed_backbone_top, pair_side=pair_side
            ):
                collected.setdefault(butterfly.key, butterfly)
        for _ in range(n_prepare):
            for butterfly in os_trial(
                graph, sampler, prune=prune, pair_side=pair_side
            ):
                collected.setdefault(butterfly.key, butterfly)
    observer.inc("prepare.trials", n_prepare)
    observer.set("candidates.listed", float(len(collected)))
    return CandidateSet(graph, collected.values())


def adaptive_prepare_candidates(
    graph: UncertainBipartiteGraph,
    patience: int = 50,
    max_trials: int = 5_000,
    rng: RngLike = None,
    prune: bool = True,
    pair_side: str = "auto",
    seed_backbone_top: int = 0,
    observer: Optional[Observer] = None,
) -> Tuple[CandidateSet, int]:
    """Preparing phase that stops when the candidate set stabilises.

    Instead of a fixed ``N_os``, keep running OS trials until ``patience``
    consecutive trials contribute no new butterfly (or ``max_trials`` is
    reached).  By Lemma VI.1 a butterfly with ``P(B) = p`` is missed
    after ``t`` dry trials with probability ``(1-p)^t``, so a long dry
    streak certifies that every remaining missing butterfly has small
    ``P(B)`` — which is exactly what the Lemma VI.5 error bound needs.

    Instrumentation matches :func:`prepare_candidates`: the trials run
    inside a ``candidate-generation`` span and feed the
    ``prepare.trials`` counter and ``candidates.listed`` gauge, and
    ``seed_backbone_top`` seeds the heaviest backbone butterflies the
    same way.

    Returns:
        ``(candidate_set, trials_used)``.
    """
    if patience <= 0:
        raise ConfigurationError(f"patience must be positive, got {patience}")
    if max_trials <= 0:
        raise ConfigurationError(f"max_trials must be positive, got {max_trials}")
    if seed_backbone_top < 0:
        raise ConfigurationError(
            f"seed_backbone_top must be non-negative, got {seed_backbone_top}"
        )
    observer = ensure_observer(observer)
    sampler = WorldSampler(graph, ensure_rng(rng))
    collected: Dict[ButterflyKey, Butterfly] = {}
    dry = 0
    trials = 0
    with observer.span(
        "candidate-generation", patience=patience, max_trials=max_trials
    ):
        if seed_backbone_top:
            for butterfly in top_weight_butterflies(
                graph, seed_backbone_top, pair_side=pair_side
            ):
                collected.setdefault(butterfly.key, butterfly)
        while trials < max_trials and dry < patience:
            trials += 1
            new = False
            for butterfly in os_trial(
                graph, sampler, prune=prune, pair_side=pair_side
            ):
                if butterfly.key not in collected:
                    collected[butterfly.key] = butterfly
                    new = True
            dry = 0 if new else dry + 1
    observer.inc("prepare.trials", trials)
    observer.set("candidates.listed", float(len(collected)))
    return CandidateSet(graph, collected.values()), trials


def ordering_listing_sampling(
    graph: UncertainBipartiteGraph,
    n_trials: int,
    n_prepare: int = DEFAULT_PREPARE_TRIALS,
    estimator: str = "optimized",
    rng: RngLike = None,
    track: Optional[Iterable[ButterflyKey]] = None,
    checkpoints: int = 40,
    prune: bool = True,
    pair_side: str = "auto",
    candidates: Optional[CandidateSet] = None,
    mu: float = 0.05,
    epsilon: float = 0.1,
    delta: float = 0.1,
    block_size: Optional[int] = None,
    runtime: Optional[RuntimePolicy] = None,
    observer: Optional[Observer] = None,
    adaptive=None,
) -> MPMBResult:
    """Run OLS end to end (Algorithm 3).

    Args:
        graph: The uncertain bipartite network.
        n_trials: Sampling-phase trials — ``N_op`` for the optimised
            estimator; for Karp-Luby this is the *fixed* per-candidate
            ``N_kl``, or pass ``n_trials=0`` to use the dynamic Lemma VI.4
            sizing with the ``mu``/``epsilon``/``delta`` target.
        n_prepare: Preparing-phase OS trials (paper default 100).
        estimator: ``"optimized"`` (Algorithm 5 — the paper's OLS) or
            ``"karp-luby"`` (Algorithm 4 — OLS-KL).
        rng: Seed or generator (shared across both phases).
        track: Optional butterfly keys to trace (Figure 11).
        checkpoints: Number of evenly spaced trace checkpoints.
        prune: Section V-B switch for the preparing phase.
        pair_side: Angle-index side for the preparing phase.
        candidates: Pre-computed candidate set; skips the preparing phase
            when given (used by experiments that sweep the sampling phase
            over one fixed candidate set).
        mu: Dynamic Karp-Luby certification target (ignored otherwise).
        epsilon: ε of the ε-δ guarantee for dynamic sizing.
        delta: δ of the ε-δ guarantee for dynamic sizing.
        block_size: Route the sampling phase through the batched kernel
            layer (:mod:`repro.kernels`), evaluating this many trials
            per vectorised call; ``None`` keeps the scalar loops.  See
            ``docs/performance.md``.
        runtime: Optional :class:`~repro.runtime.policy.RuntimePolicy`
            for the sampling phase.  On resume the candidate set is
            rebuilt from the checkpoint itself (its payload stores the
            candidate keys), so the preparing phase is skipped entirely.
        observer: Optional :class:`~repro.observability.Observer`
            recording both phases' spans and the ``ols.*`` /
            ``ols-kl.*`` metrics (including the lazy-sampling cache hit
            rate for the optimised estimator).
        adaptive: Optional :class:`~repro.adaptive.AdaptiveConfig` (or
            anything :func:`~repro.adaptive.resolve_adaptive` accepts)
            enabling anytime trial allocation in the sampling phase:
            the optimised estimator gains the racing stop rule, and
            Karp-Luby routes through
            :func:`~repro.adaptive.racing.adaptive_karp_luby` — the
            sublinear pre-screen plus per-candidate racing elimination
            against the static Lemma VI.4 budgets.  ``None`` (default)
            keeps the fixed budgets bit-identical.

    Returns:
        An :class:`~repro.core.results.MPMBResult` with ``method="ols"``
        or ``"ols-kl"`` and stats including ``n_prepare``,
        ``candidates_listed`` and the estimator's counters.
    """
    if estimator not in ("optimized", "karp-luby"):
        raise ConfigurationError(
            "estimator must be 'optimized' or 'karp-luby', "
            f"got {estimator!r}"
        )
    observer = ensure_observer(observer)
    generator = ensure_rng(rng)
    resumed_candidates = False
    if candidates is None and runtime is not None:
        candidates = _candidates_from_checkpoint(
            graph, runtime,
            "ols" if estimator == "optimized" else "ols-kl",
        )
        resumed_candidates = candidates is not None
    with stopwatch() as timer:
        if candidates is None:
            candidates = prepare_candidates(
                graph, n_prepare, generator,
                prune=prune, pair_side=pair_side, observer=observer,
            )
        if len(candidates) == 0:
            return MPMBResult(
                method="ols" if estimator == "optimized" else "ols-kl",
                graph=graph,
                n_trials=0,
                estimates={},
                butterflies={},
                stats={
                    "n_prepare": float(n_prepare),
                    "candidates_listed": 0.0,
                },
            )

        if estimator == "optimized":
            if n_trials <= 0:
                raise ConfigurationError(
                    f"n_trials must be positive for the optimised "
                    f"estimator, got {n_trials}"
                )
            outcome = estimate_probabilities_optimized(
                candidates, n_trials, generator,
                track=track, checkpoints=checkpoints,
                block_size=block_size, runtime=runtime,
                observer=observer, adaptive=adaptive,
            )
            method = "ols"
        else:
            adaptive_config = None
            if adaptive is not None:
                # Lazy import: repro.adaptive consumes the core
                # estimators, importing it eagerly here would cycle.
                from ..adaptive.racing import resolve_adaptive

                adaptive_config = resolve_adaptive(adaptive)
            if adaptive_config is not None:
                from ..adaptive.racing import adaptive_karp_luby

                outcome = adaptive_karp_luby(
                    candidates, generator,
                    config=adaptive_config,
                    n_trials=n_trials if n_trials > 0 else None,
                    mu=mu, epsilon=epsilon, delta=delta,
                    track=track, checkpoints=checkpoints,
                    block_size=block_size, runtime=runtime,
                    observer=observer,
                )
            else:
                outcome = estimate_probabilities_karp_luby(
                    candidates, generator,
                    n_trials=n_trials if n_trials > 0 else None,
                    mu=mu, epsilon=epsilon, delta=delta,
                    track=track, checkpoints=checkpoints,
                    block_size=block_size, runtime=runtime,
                    observer=observer,
                )
            method = "ols-kl"

    stats = {
        "n_prepare": float(n_prepare),
        "candidates_listed": float(len(candidates)),
    }
    if resumed_candidates:
        stats["resumed_candidates"] = 1.0
    stats.update(outcome.stats)
    result = MPMBResult(
        method=method,
        graph=graph,
        n_trials=outcome.total_trials,
        estimates=outcome.estimates,
        butterflies={b.key: b for b in candidates},
        traces=outcome.traces,
        stats=stats,
        degraded=outcome.degraded,
        degraded_reason=outcome.stop_reason,
        target_trials=outcome.target_trials,
        guarantee=outcome.guarantee,
    )
    record_sampling_metrics(observer, result, timer.seconds)
    # Both counters are read defensively: outcomes that predate the
    # counters (or never track them, like resumed/degraded Karp-Luby
    # runs) carry neither or only one of the keys, and a missing counter
    # must not fail the run after the sampling itself succeeded.
    queried = stats.get("edges_queried", 0.0)
    sampled = stats.get("edges_sampled", 0.0)
    if observer.enabled and queried > 0:
        observer.set(
            f"{method}.lazy_cache.hit_rate",
            1.0 - sampled / queried,
        )
    return result


def _candidates_from_checkpoint(
    graph: UncertainBipartiteGraph,
    runtime: RuntimePolicy,
    method: str,
) -> Optional[CandidateSet]:
    """Rebuild ``C_MB`` from a resume checkpoint, if one is readable.

    The sampling-phase checkpoints store the candidate keys in their
    state payload, so a resumed OLS run can skip the preparing phase and
    continue against the exact candidate set the interrupted run used —
    necessary for bit-identical resumption, since re-running the
    preparing phase would consume RNG draws the original run already
    made.
    """
    if runtime.resume_from is None:
        return None
    document = read_checkpoint(runtime.resume_from)
    if document is None or document.get("method") != method:
        return None
    butterflies = []
    for raw_key in document["state"]["candidates"]:
        key = tuple(int(part) for part in raw_key)
        butterfly = make_butterfly(graph, *key)
        if butterfly is None:
            raise CheckpointError(
                f"checkpointed candidate {key} does not exist in "
                f"graph {graph.name!r}"
            )
        butterflies.append(butterfly)
    return CandidateSet(graph, butterflies)
