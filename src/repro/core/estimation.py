"""Shared types for the OLS sampling-phase probability estimators.

Both Algorithm 4 (Karp-Luby) and Algorithm 5 (the paper's optimised
shared-trial estimator) consume a
:class:`~repro.core.candidates.CandidateSet` and produce an
:class:`EstimationOutcome`; the OLS driver is agnostic to which one ran.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..butterfly import ButterflyKey
from ..runtime.degradation import Guarantee
from ..sampling import ConvergenceTrace


@dataclass
class EstimationOutcome:
    """Per-candidate probability estimates from one sampling phase.

    Attributes:
        method: ``"optimized"`` or ``"karp-luby"``.
        estimates: Canonical butterfly key -> estimated ``P(B)`` *relative
            to the candidate set* (Lemma VI.5 bounds the gap to the true
            value).
        traces: Convergence traces for tracked candidates.
        trials_per_candidate: Trials spent per candidate, in candidate
            order.  The optimised estimator shares trials, so the list
            repeats one number; Karp-Luby sizes each candidate separately
            (Lemma VI.4).
        stats: Aggregate counters (``total_trials``, ``edges_sampled``,
            ...).
        stop_reason: ``None`` for complete runs; ``"deadline"`` or
            ``"interrupted"`` when the phase stopped early under a
            :class:`~repro.runtime.policy.RuntimePolicy`.
        target_trials: The trial budget a degraded phase was sized for
            (``None`` for complete runs).
        guarantee: The re-widened ε-δ statement a degraded phase still
            certifies (``None`` for complete runs).
    """

    method: str
    estimates: Dict[ButterflyKey, float]
    traces: Dict[ButterflyKey, ConvergenceTrace] = field(default_factory=dict)
    trials_per_candidate: List[int] = field(default_factory=list)
    stats: Dict[str, float] = field(default_factory=dict)
    stop_reason: Optional[str] = None
    target_trials: Optional[int] = None
    guarantee: Optional[Guarantee] = None

    @property
    def total_trials(self) -> int:
        """Total sampling-phase trials across candidates."""
        return int(self.stats.get("total_trials", 0))

    @property
    def degraded(self) -> bool:
        """Whether the phase stopped before its budget."""
        return self.stop_reason is not None
