"""One-call facade for MPMB search (Definitions 5-6, Section VII).

:func:`find_mpmb` dispatches to any of the implemented methods; the
default is the paper's best performer, OLS with the optimised estimator.
:func:`find_top_k_mpmb` implements the Section VII top-k extension on top
of whichever method ran.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..butterfly import Butterfly
from ..errors import ConfigurationError
from ..graph import UncertainBipartiteGraph
from ..observability import Observer, ensure_observer
from ..sampling import RngLike
from .exact import exact_mpmb_by_inclusion_exclusion, exact_mpmb_by_worlds
from .mc_vp import mc_vp
from .ols import DEFAULT_PREPARE_TRIALS, ordering_listing_sampling
from .ordering_sampling import ordering_sampling
from .results import MPMBResult

#: Paper default for the direct sampling methods (Section VIII-B: assumes
#: μ=0.05 and ε=δ=0.1 in Theorem IV.1).
DEFAULT_TRIALS = 20_000

#: Every method name accepted by :func:`find_mpmb`.
METHODS = (
    "mc-vp",
    "os",
    "ols",
    "ols-kl",
    "exact-worlds",
    "exact-inclusion-exclusion",
)


def find_mpmb(
    graph: UncertainBipartiteGraph,
    method: str = "ols",
    n_trials: int = DEFAULT_TRIALS,
    n_prepare: int = DEFAULT_PREPARE_TRIALS,
    rng: RngLike = None,
    observer: Optional[Observer] = None,
    **kwargs,
) -> MPMBResult:
    """Find the most probable maximum weighted butterfly.

    Args:
        graph: The uncertain bipartite network.
        method: One of :data:`METHODS`.  ``"ols"`` (default) is the
            paper's fastest method; the exact methods are exponential and
            only suitable for small graphs.
        n_trials: Sampling trials (ignored by exact methods).  For
            ``"ols-kl"`` a value of 0 selects the dynamic Lemma VI.4
            per-candidate sizing.
        n_prepare: Preparing-phase trials (OLS variants only).
        rng: Seed or generator.
        observer: Optional :class:`~repro.observability.Observer`
            recording phase spans and per-method metrics.  Forwarded to
            the sampling methods; exact solvers run inside a single
            ``exact-solve`` span.
        **kwargs: Forwarded to the selected method (e.g. ``track=``,
            ``prune=``, ``mu=``, ``adaptive=`` for the anytime racing
            stop rule of the sampling methods).

    Returns:
        The :class:`~repro.core.results.MPMBResult`; ``result.best`` is
        the MPMB (or ``None`` when the graph has no butterfly).

    Raises:
        ValueError: For an unknown ``method``.
    """
    if method.startswith("exact-") and kwargs.get("adaptive") is not None:
        raise ConfigurationError(
            f"adaptive allocation does not apply to the exact method "
            f"{method!r}"
        )
    if method == "mc-vp":
        return mc_vp(graph, n_trials, rng=rng, observer=observer, **kwargs)
    elif method == "os":
        return ordering_sampling(
            graph, n_trials, rng=rng, observer=observer, **kwargs
        )
    elif method == "ols":
        return ordering_listing_sampling(
            graph, n_trials, n_prepare=n_prepare, estimator="optimized",
            rng=rng, observer=observer, **kwargs,
        )
    elif method == "ols-kl":
        return ordering_listing_sampling(
            graph, n_trials, n_prepare=n_prepare, estimator="karp-luby",
            rng=rng, observer=observer, **kwargs,
        )
    elif method == "exact-worlds":
        with ensure_observer(observer).span("exact-solve", method=method):
            return exact_mpmb_by_worlds(graph, **kwargs)
    elif method == "exact-inclusion-exclusion":
        with ensure_observer(observer).span("exact-solve", method=method):
            return exact_mpmb_by_inclusion_exclusion(graph, **kwargs)
    raise ConfigurationError(
        f"unknown method {method!r}; expected one of {', '.join(METHODS)}"
    )


def find_top_k_mpmb(
    graph: UncertainBipartiteGraph,
    k: int,
    method: str = "ols",
    n_trials: int = DEFAULT_TRIALS,
    n_prepare: int = DEFAULT_PREPARE_TRIALS,
    rng: RngLike = None,
    **kwargs,
) -> List[Tuple[Butterfly, float]]:
    """The top-k MPMBs (Section VII): butterflies ranked by ``P(B)``.

    For MC-VP and OS the ranking is over every butterfly that won a trial;
    for the OLS variants it is over the candidate set (justified by
    Lemma VI.1).  Returns at most ``k`` pairs — fewer when the graph holds
    fewer butterflies.
    """
    result = find_mpmb(
        graph, method=method, n_trials=n_trials, n_prepare=n_prepare,
        rng=rng, **kwargs,
    )
    return result.top_k(k)


def mpmb_probability(
    result: MPMBResult, butterfly: Optional[Butterfly] = None
) -> float:
    """Convenience accessor: ``P(B)`` of ``butterfly`` (default: the best)."""
    if butterfly is None:
        return result.best_probability
    return result.probability(butterfly)
