"""The candidate maximum-butterfly set ``C_MB`` (Section VI).

The OLS preparing phase collects every butterfly that was maximum in at
least one trial; the sampling phase then estimates probabilities over this
small, weight-sorted collection.  :class:`CandidateSet` owns the
deduplication, the descending weight order, the strictly-heavier prefix
``L(i)``, the edge-difference events ``B_j \\ B_i`` and their probability
mass ``S_i`` — everything Algorithms 4 and 5 consume.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, Iterator, List, Sequence

from ..butterfly import Butterfly, ButterflyKey
from ..graph import UncertainBipartiteGraph
from ..sampling.karp_luby import Event


class CandidateSet:
    """An immutable, weight-sorted, deduplicated butterfly collection.

    Candidates are ordered by weight descending; ties break by canonical
    key so that the Karp-Luby priority order (which index "claims" a
    world) is deterministic.  Indices are 0-based: ``heavier_count(i)`` is
    the paper's ``L(i)`` — candidates ``0 .. L(i)-1`` are strictly heavier
    than candidate ``i``.
    """

    def __init__(
        self,
        graph: UncertainBipartiteGraph,
        butterflies: Iterable[Butterfly],
    ) -> None:
        self.graph = graph
        unique: Dict[ButterflyKey, Butterfly] = {}
        for butterfly in butterflies:
            unique.setdefault(butterfly.key, butterfly)
        self._items: List[Butterfly] = sorted(
            unique.values(), key=lambda b: (-b.weight, b.key)
        )
        # Negated weights are ascending, enabling bisect for L(i).
        self._neg_weights = [-b.weight for b in self._items]

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Butterfly]:
        return iter(self._items)

    def __getitem__(self, index: int) -> Butterfly:
        return self._items[index]

    def __contains__(self, butterfly: Butterfly) -> bool:
        return any(item.key == butterfly.key for item in self._items)

    @property
    def butterflies(self) -> Sequence[Butterfly]:
        """The candidates in descending weight order."""
        return tuple(self._items)

    def index_of(self, butterfly: Butterfly | ButterflyKey) -> int:
        """Position of a butterfly in the sorted order.

        Raises:
            KeyError: If the butterfly is not a candidate.
        """
        key = butterfly.key if isinstance(butterfly, Butterfly) else butterfly
        for index, item in enumerate(self._items):
            if item.key == key:
                return index
        raise KeyError(f"butterfly {key} is not in the candidate set")

    # ------------------------------------------------------------------
    # Paper quantities
    # ------------------------------------------------------------------

    def heavier_count(self, index: int) -> int:
        """``L(i)``: number of candidates strictly heavier than ``i``.

        Because candidates are weight-sorted, this is the position of the
        first candidate in ``i``'s weight class.
        """
        return bisect_left(self._neg_weights, self._neg_weights[index])

    def existence_probability(self, index: int) -> float:
        """``Pr[E(B_i)]`` for candidate ``i``."""
        return self._items[index].existence_probability(self.graph)

    def difference_events(self, index: int) -> List[Event]:
        """The blocking events ``E(B_j \\ B_i)`` for all ``j < L(i)``.

        Each event is the set of edge indices of a strictly-heavier
        candidate minus the edges shared with candidate ``i``.  Given
        ``E(B_i)``, candidate ``i`` fails to be maximum *within the
        candidate set* iff at least one of these events holds, which is
        exactly the union Algorithm 4 estimates.

        Events whose probability is zero (some edge has ``p = 0``) are
        dropped: the corresponding heavier butterfly can never exist, so
        it never blocks anything, and zero-weight events would break the
        Karp-Luby weighting.
        """
        base = self._items[index].edge_set()
        probs = self.graph.probs
        events: List[Event] = []
        for j in range(self.heavier_count(index)):
            difference = self._items[j].edge_set() - base
            if all(probs[e] > 0.0 for e in difference):
                events.append(frozenset(difference))
        return events

    def blocking_mass(self, index: int) -> float:
        """``S_i = Σ_{j ≤ L(i)} Pr[E(B_j \\ B_i)]`` (Algorithm 4 line 4)."""
        probs = self.graph.probs
        total = 0.0
        for event in self.difference_events(index):
            mass = 1.0
            for edge in event:
                mass *= float(probs[edge])
            total += mass
        return total

    def weight_classes(self) -> List[List[int]]:
        """Indices grouped by equal weight, heaviest class first."""
        classes: List[List[int]] = []
        for index, butterfly in enumerate(self._items):
            if classes and self._items[classes[-1][0]].weight == butterfly.weight:
                classes[-1].append(index)
            else:
                classes.append([index])
        return classes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if not self._items:
            return "<CandidateSet empty>"
        return (
            f"<CandidateSet n={len(self._items)} "
            f"w_max={self._items[0].weight:g} "
            f"w_min={self._items[-1].weight:g}>"
        )
