"""Single-butterfly probability queries.

The paper's methods rank *all* butterflies; a common downstream question
is cheaper: *"what is P(B) for this specific butterfly?"*.  The exact
answer is #P-hard (Lemma III.1), and OLS only estimates relative to its
candidate set.  This module provides an unbiased conditional Monte-Carlo
estimator:

    ``P(B) = Pr[E(B)] · Pr[no strictly heavier butterfly | E(B)]``

Each trial samples a world *conditioned on B's four edges existing*
(independence makes that a simple forcing) and accepts iff the world's
maximum butterfly weight equals ``w(B)`` — i.e. nothing strictly heavier
materialised.  The acceptance rate estimates the conditional factor, and
multiplying by the closed-form ``Pr[E(B)]`` gives ``P(B)``.

Compared to running OS and reading one entry, the conditional estimator
(a) never wastes trials on worlds where ``B`` does not exist, improving
accuracy per trial by a factor of ``1/Pr[E(B)]`` (the Theorem IV.1 bound
applies to the conditional probability, which is larger than ``P(B)``),
and (b) needs no candidate set, so there is no Lemma VI.5 error.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..butterfly import Butterfly, max_weight_butterflies
from ..errors import ConfigurationError
from ..graph import UncertainBipartiteGraph
from ..sampling import (
    ConvergenceTrace,
    RngLike,
    checkpoint_schedule,
    ensure_rng,
    monte_carlo_trial_bound,
)
from ..worlds import WorldSampler


@dataclass(frozen=True)
class ProbabilityEstimate:
    """Output of :func:`estimate_probability`.

    Attributes:
        probability: The estimated ``P(B)``.
        existence_probability: Closed-form ``Pr[E(B)]``.
        conditional_probability: Estimated
            ``Pr[B ∈ S_MB | E(B)]`` (the acceptance rate).
        n_trials: Conditional trials run.
        trace: Convergence checkpoints of the ``P(B)`` estimate.
    """

    probability: float
    existence_probability: float
    conditional_probability: float
    n_trials: int
    trace: ConvergenceTrace

    def trial_bound(self, epsilon: float = 0.1, delta: float = 0.1) -> int:
        """Theorem IV.1 bound for the *conditional* estimate at the
        observed rate (``0`` when the rate is degenerate)."""
        rate = self.conditional_probability
        if not 0.0 < rate <= 1.0:
            return 0
        return monte_carlo_trial_bound(rate, epsilon, delta)


def estimate_probability(
    graph: UncertainBipartiteGraph,
    butterfly: Butterfly,
    n_trials: int,
    rng: RngLike = None,
    checkpoints: int = 40,
) -> ProbabilityEstimate:
    """Unbiased conditional Monte-Carlo estimate of ``P(B)``.

    Args:
        graph: The uncertain bipartite network.
        butterfly: The queried butterfly (must be a backbone butterfly of
            ``graph`` — build it with
            :func:`~repro.butterfly.model.make_butterfly`).
        n_trials: Conditional worlds to sample.
        rng: Seed or generator.
        checkpoints: Convergence-trace resolution.

    Raises:
        ValueError: If ``n_trials`` is not positive or the butterfly's
            edges do not belong to ``graph``.
    """
    if n_trials <= 0:
        raise ConfigurationError(f"n_trials must be positive, got {n_trials}")
    for edge in butterfly.edges:
        if not 0 <= edge < graph.n_edges:
            raise ConfigurationError(
                f"butterfly edge index {edge} outside the graph"
            )
    existence = butterfly.existence_probability(graph)
    trace = ConvergenceTrace(label=str(butterfly.key))
    if existence == 0.0:
        trace.record(1, 0.0)
        return ProbabilityEstimate(0.0, 0.0, 0.0, n_trials, trace)

    sampler = WorldSampler(graph, ensure_rng(rng))
    order = graph.edges_by_weight_desc
    target_weight = butterfly.weight
    forced = set(butterfly.edges)
    schedule = set(checkpoint_schedule(n_trials, checkpoints))
    accepted = 0

    for trial in range(1, n_trials + 1):
        mask = sampler.sample_mask()
        for edge in forced:
            mask[edge] = True
        present_sorted = order[mask[order]]
        search = max_weight_butterflies(graph, present_sorted)
        # B's edges are present, so the maximum is at least w(B); B is
        # maximum iff nothing strictly heavier completed.  The tiny
        # tolerance absorbs summation-order ulps on non-grid weights
        # (the search accumulates angle sums, the butterfly the
        # canonical edge order).
        if search.weight <= target_weight + 1e-9 * max(1.0, target_weight):
            accepted += 1
        if trial in schedule:
            trace.record(trial, existence * accepted / trial)

    conditional = accepted / n_trials
    return ProbabilityEstimate(
        probability=existence * conditional,
        existence_probability=existence,
        conditional_probability=conditional,
        n_trials=n_trials,
        trace=trace,
    )
