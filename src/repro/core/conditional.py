"""Conditional (what-if) MPMB analysis.

Because edges are independent (Definition 2), conditioning on a set of
edges being present or absent simply replaces their probabilities with
1 or 0 — the remaining edges' distribution is unchanged.  This module
exposes that observation as an API: build the conditioned network and
run any MPMB method on it, answering questions like *"if this
user-item rating turns out reliable, which butterfly becomes the most
probable maximum?"*.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence, Tuple


from ..errors import GraphValidationError
from ..graph import UncertainBipartiteGraph
from ..sampling import RngLike, ensure_rng
from .mpmb import find_mpmb
from .results import MPMBResult

#: A label-level edge reference: (left label, right label).
EdgeRef = Tuple[Hashable, Hashable]


def condition_graph(
    graph: UncertainBipartiteGraph,
    present: Iterable[EdgeRef] = (),
    absent: Iterable[EdgeRef] = (),
) -> UncertainBipartiteGraph:
    """A copy of ``graph`` conditioned on edge outcomes.

    Args:
        graph: The source network.
        present: Label pairs whose edges are forced to exist (``p = 1``).
        absent: Label pairs whose edges are forced absent (``p = 0``).

    Raises:
        GraphValidationError: If a referenced edge does not exist or the
            same edge is conditioned both ways.
    """
    present_idx = _resolve(graph, present)
    absent_idx = _resolve(graph, absent)
    clash = present_idx & absent_idx
    if clash:
        specs = sorted(str(graph.edge_spec(e)[:2]) for e in clash)
        raise GraphValidationError(
            f"edges conditioned both present and absent: {specs}"
        )
    probs = graph.probs.copy()
    probs[sorted(present_idx)] = 1.0
    probs[sorted(absent_idx)] = 0.0
    return UncertainBipartiteGraph(
        graph.left_labels,
        graph.right_labels,
        graph.edge_left.copy(),
        graph.edge_right.copy(),
        graph.weights.copy(),
        probs,
        name=f"{graph.name}|conditioned" if graph.name else "conditioned",
    )


def conditional_mpmb(
    graph: UncertainBipartiteGraph,
    present: Sequence[EdgeRef] = (),
    absent: Sequence[EdgeRef] = (),
    method: str = "ols",
    n_trials: int = 20_000,
    rng: RngLike = None,
    **kwargs,
) -> MPMBResult:
    """MPMB search on the conditioned network.

    Equivalent to ``find_mpmb(condition_graph(graph, present, absent))``;
    provided as one call because the conditioning trick (independence ⇒
    conditioning is probability rewriting) is the point of this module.
    """
    conditioned = condition_graph(graph, present, absent)
    return find_mpmb(
        conditioned, method=method, n_trials=n_trials, rng=rng, **kwargs
    )


def edge_influence(
    graph: UncertainBipartiteGraph,
    edge: EdgeRef,
    method: str = "exact-worlds",
    rng: RngLike = None,
    **kwargs,
) -> Tuple[MPMBResult, MPMBResult, float]:
    """How much one edge's outcome swings the MPMB probability.

    Runs the analysis twice — edge forced present, edge forced absent —
    and reports the absolute difference in the winning probability.

    Returns:
        ``(result_if_present, result_if_absent, probability_swing)``.
    """
    # Coerce once so the two runs consume disjoint spans of one stream;
    # forwarding a raw integer seed would give both runs identical,
    # fully correlated trial sequences.
    rng = ensure_rng(rng)
    if_present = conditional_mpmb(
        graph, present=[edge], method=method, rng=rng, **kwargs
    )
    if_absent = conditional_mpmb(
        graph, absent=[edge], method=method, rng=rng, **kwargs
    )
    swing = abs(
        if_present.best_probability - if_absent.best_probability
    )
    return if_present, if_absent, swing


def _resolve(
    graph: UncertainBipartiteGraph, refs: Iterable[EdgeRef]
) -> set:
    indices = set()
    for left, right in refs:
        try:
            edge = graph.edge_between(
                graph.left_index(left), graph.right_index(right)
            )
        except KeyError:
            edge = None
        if edge is None:
            raise GraphValidationError(
                f"no edge between {left!r} and {right!r}"
            )
        indices.add(edge)
    return indices
