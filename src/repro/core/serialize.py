"""JSON-friendly serialisation of MPMB results.

Long experiments (the paper-profile datasets take hours in Python) need
their outputs persisted; this module converts an
:class:`~repro.core.results.MPMBResult` to a plain dict — vertex labels
instead of internal indices, so a result remains meaningful even when
the graph is rebuilt later — and back, given the same graph.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from ..butterfly import butterfly_from_labels
from ..errors import ConfigurationError
from ..graph import UncertainBipartiteGraph
from ..runtime.degradation import Guarantee
from ..sampling import ConvergenceTrace
from .results import MPMBResult

FORMAT_VERSION = 1


def result_to_dict(result: MPMBResult) -> Dict:
    """Convert a result into a JSON-serialisable dict.

    Butterflies are stored by their four vertex *labels*; traces and
    stats are carried verbatim.  The graph itself is not embedded — store
    it separately with :func:`repro.graph.save_graph`.
    """
    graph = result.graph
    records = []
    for key, butterfly in result.butterflies.items():
        records.append({
            "labels": list(butterfly.labels(graph)),
            "weight": butterfly.weight,
            "probability": result.estimates.get(key, 0.0),
        })
    records.sort(key=lambda r: (-r["probability"], r["labels"]))
    payload = {
        "format": FORMAT_VERSION,
        "method": result.method,
        "n_trials": result.n_trials,
        "graph_name": graph.name,
        "prob_no_butterfly": result.prob_no_butterfly,
        "stats": dict(result.stats),
        "butterflies": records,
        "traces": {
            "|".join(map(str, key)): trace.checkpoints
            for key, trace in result.traces.items()
        },
    }
    # Degradation metadata rides along as optional keys so the format
    # version stays 1 and pre-runtime readers keep working.
    if result.degraded:
        payload["degraded"] = True
        payload["degraded_reason"] = result.degraded_reason
        payload["target_trials"] = result.target_trials
        payload["guarantee"] = (
            result.guarantee.to_dict()
            if result.guarantee is not None
            else None
        )
    elif result.guarantee is not None:
        # Certified anytime stops carry a *realised* guarantee without
        # being degraded; it must survive the round trip (the worker
        # pool ships results through this path).
        payload["guarantee"] = result.guarantee.to_dict()
    return payload


def result_from_dict(
    payload: Dict, graph: UncertainBipartiteGraph
) -> MPMBResult:
    """Rebuild an :class:`MPMBResult` from :func:`result_to_dict` output.

    Args:
        payload: The serialised dict.
        graph: The graph the result was computed on (labels must still
            resolve; weights are re-derived from the graph).

    Raises:
        ValueError: On unknown format versions or labels that no longer
            resolve to a butterfly of ``graph``.
    """
    version = payload.get("format")
    if version != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported result format {version!r}; "
            f"expected {FORMAT_VERSION}"
        )
    estimates = {}
    butterflies = {}
    for record in payload["butterflies"]:
        u1, u2, v1, v2 = record["labels"]
        try:
            butterfly = butterfly_from_labels(graph, u1, u2, v1, v2)
        except KeyError:
            butterfly = None
        if butterfly is None:
            raise ConfigurationError(
                f"butterfly {record['labels']} does not exist in the "
                "provided graph"
            )
        estimates[butterfly.key] = float(record["probability"])
        butterflies[butterfly.key] = butterfly
    traces = {}
    for key_text, checkpoints in payload.get("traces", {}).items():
        key = tuple(int(part) for part in key_text.split("|"))
        trace = ConvergenceTrace(label=key_text)
        for n_trials, estimate in checkpoints:
            trace.record(int(n_trials), float(estimate))
        traces[key] = trace
    raw_guarantee = payload.get("guarantee")
    raw_target = payload.get("target_trials")
    return MPMBResult(
        method=payload["method"],
        graph=graph,
        n_trials=int(payload["n_trials"]),
        estimates=estimates,
        butterflies=butterflies,
        traces=traces,
        stats=dict(payload.get("stats", {})),
        prob_no_butterfly=payload.get("prob_no_butterfly"),
        degraded=bool(payload.get("degraded", False)),
        degraded_reason=payload.get("degraded_reason"),
        target_trials=None if raw_target is None else int(raw_target),
        guarantee=(
            Guarantee.from_dict(raw_guarantee)
            if raw_guarantee is not None
            else None
        ),
    )


def save_result(
    result: MPMBResult, target: Union[str, Path]
) -> None:
    """Write a result as JSON."""
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(result_to_dict(result), handle, indent=2)


def load_result(
    source: Union[str, Path], graph: UncertainBipartiteGraph
) -> MPMBResult:
    """Read a result previously written by :func:`save_result`."""
    with open(source, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return result_from_dict(payload, graph)
