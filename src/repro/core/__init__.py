"""The paper's primary contribution: MPMB search algorithms and theory.

* :func:`find_mpmb` / :func:`find_top_k_mpmb` — one-call facade.
* :func:`mc_vp` — Algorithm 1 (baseline).
* :func:`ordering_sampling` — Algorithm 2 (OS).
* :func:`ordering_listing_sampling` / :func:`prepare_candidates` —
  Algorithm 3 (OLS) with either sampling-phase estimator.
* :func:`estimate_probabilities_karp_luby` — Algorithm 4.
* :func:`estimate_probabilities_optimized` — Algorithm 5.
* :func:`exact_mpmb_by_worlds` / :func:`exact_mpmb_by_inclusion_exclusion`
  / :func:`exact_probability` — exponential validation oracles.
* :mod:`repro.core.bounds` — Theorem IV.1 / Lemmas V.2, VI.1, VI.4, VI.5.
"""

from . import bounds
from .candidates import CandidateSet
from .conditional import (
    condition_graph,
    conditional_mpmb,
    edge_influence,
)
from .estimation import EstimationOutcome
from .exact import (
    backbone_butterflies,
    exact_mpmb_by_inclusion_exclusion,
    exact_mpmb_by_worlds,
    exact_probability,
)
from .karp_luby_estimator import estimate_probabilities_karp_luby
from .mc_vp import mc_vp
from .mpmb import (
    DEFAULT_TRIALS,
    METHODS,
    find_mpmb,
    find_top_k_mpmb,
    mpmb_probability,
)
from .ols import (
    DEFAULT_PREPARE_TRIALS,
    adaptive_prepare_candidates,
    ordering_listing_sampling,
    prepare_candidates,
)
from .optimized_estimator import estimate_probabilities_optimized
from .query import ProbabilityEstimate, estimate_probability
from .ordering_sampling import ordering_sampling, os_trial
from .results import MPMBResult, merge_results, result_from_frequency_loop
from .serialize import (
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)

__all__ = [
    "bounds",
    "CandidateSet",
    "condition_graph",
    "conditional_mpmb",
    "edge_influence",
    "EstimationOutcome",
    "MPMBResult",
    "merge_results",
    "result_from_frequency_loop",
    "result_to_dict",
    "result_from_dict",
    "save_result",
    "load_result",
    "backbone_butterflies",
    "exact_mpmb_by_worlds",
    "exact_mpmb_by_inclusion_exclusion",
    "exact_probability",
    "estimate_probabilities_karp_luby",
    "estimate_probabilities_optimized",
    "ProbabilityEstimate",
    "estimate_probability",
    "mc_vp",
    "ordering_sampling",
    "os_trial",
    "ordering_listing_sampling",
    "prepare_candidates",
    "adaptive_prepare_candidates",
    "find_mpmb",
    "find_top_k_mpmb",
    "mpmb_probability",
    "METHODS",
    "DEFAULT_TRIALS",
    "DEFAULT_PREPARE_TRIALS",
]
