"""repro — Most Probable Maximum Weighted Butterfly search.

A faithful Python reproduction of *"Most Probable Maximum Weighted
Butterfly Search"* (ICDE 2025): uncertain bipartite weighted networks,
the MPMB problem, the MC-VP baseline, the Ordering Sampling (OS) and
Ordering-Listing Sampling (OLS / OLS-KL) algorithms, exact validation
solvers, the #P-hardness reduction, trial-number theory, synthetic
stand-ins for the paper's datasets, and the full experiment harness.

Quickstart::

    from repro import GraphBuilder, find_mpmb

    builder = GraphBuilder()
    builder.add_edge("u1", "v1", weight=2, prob=0.5)
    builder.add_edge("u1", "v2", weight=2, prob=0.6)
    builder.add_edge("u1", "v3", weight=1, prob=0.8)
    builder.add_edge("u2", "v1", weight=3, prob=0.3)
    builder.add_edge("u2", "v2", weight=3, prob=0.4)
    builder.add_edge("u2", "v3", weight=1, prob=0.7)
    graph = builder.build()

    result = find_mpmb(graph, method="ols", n_trials=5000, rng=7)
    print(result.best.labels(graph), result.best_probability)
"""

from .butterfly import (
    Butterfly,
    butterfly_from_labels,
    count_butterflies,
    enumerate_butterflies,
    make_butterfly,
    max_weight_butterflies,
)
from .core import (
    DEFAULT_PREPARE_TRIALS,
    DEFAULT_TRIALS,
    METHODS,
    CandidateSet,
    MPMBResult,
    exact_mpmb_by_inclusion_exclusion,
    exact_mpmb_by_worlds,
    exact_probability,
    find_mpmb,
    find_top_k_mpmb,
    mc_vp,
    ordering_listing_sampling,
    ordering_sampling,
    prepare_candidates,
)
from .errors import (
    CheckpointError,
    DatasetError,
    EstimationError,
    GraphFormatError,
    GraphValidationError,
    IntractableError,
    ReproError,
    TrialBudgetExceeded,
    WorkerFailureError,
)
from .observability import (
    MetricsRegistry,
    Observer,
    PhaseTracer,
    ensure_observer,
)
from .runtime import (
    Deadline,
    FaultPlan,
    Guarantee,
    RuntimePolicy,
    recompute_guarantee,
    run_parallel_trials,
)
from .graph import (
    EdgeSpec,
    GraphBuilder,
    UncertainBipartiteGraph,
    load_graph,
    sample_vertices,
    save_graph,
)
from .counting import (
    butterfly_count_variance,
    enumerate_probable_butterflies,
    expected_butterfly_count,
)
from .worlds import PossibleWorld, WorldSampler

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # graph
    "UncertainBipartiteGraph",
    "GraphBuilder",
    "EdgeSpec",
    "load_graph",
    "save_graph",
    "sample_vertices",
    # worlds
    "PossibleWorld",
    "WorldSampler",
    # butterflies
    "Butterfly",
    "make_butterfly",
    "butterfly_from_labels",
    "count_butterflies",
    "enumerate_butterflies",
    "max_weight_butterflies",
    # core
    "MPMBResult",
    "CandidateSet",
    "find_mpmb",
    "find_top_k_mpmb",
    "mc_vp",
    "ordering_sampling",
    "ordering_listing_sampling",
    "prepare_candidates",
    "exact_mpmb_by_worlds",
    "exact_mpmb_by_inclusion_exclusion",
    "exact_probability",
    "METHODS",
    "DEFAULT_TRIALS",
    "DEFAULT_PREPARE_TRIALS",
    # counting
    "expected_butterfly_count",
    "butterfly_count_variance",
    "enumerate_probable_butterflies",
    # errors
    "ReproError",
    "GraphValidationError",
    "GraphFormatError",
    "IntractableError",
    "EstimationError",
    "DatasetError",
    "CheckpointError",
    "TrialBudgetExceeded",
    "WorkerFailureError",
    # runtime
    "RuntimePolicy",
    "Deadline",
    "FaultPlan",
    "Guarantee",
    "recompute_guarantee",
    "run_parallel_trials",
    # observability
    "Observer",
    "MetricsRegistry",
    "PhaseTracer",
    "ensure_observer",
]
