"""Uncertain butterfly counting substrate (the paper's Related Work):
distribution-based statistics of the butterfly-count random variable and
threshold-based probable-butterfly enumeration."""

from .expected import (
    butterfly_count_variance,
    exact_count_distribution,
    expected_butterfly_count,
    sample_butterfly_counts,
)
from .threshold import (
    count_probable_butterflies,
    enumerate_probable_butterflies,
)

__all__ = [
    "expected_butterfly_count",
    "butterfly_count_variance",
    "sample_butterfly_counts",
    "exact_count_distribution",
    "enumerate_probable_butterflies",
    "count_probable_butterflies",
]
