"""Threshold-based uncertain butterfly enumeration (Related Work, [41],
[42]).

Threshold-based methods mine every instance whose existence probability
clears a user threshold — "an instance with a low probability is
considered meaningless".  For butterflies, ``Pr[E(B)]`` is the product of
four edge probabilities, so the Section V ordering trick transfers from
the weight domain to the probability domain: process edges in
*probability-descending* order and prune once even the most optimistic
completion (the current edge times the three largest probabilities in
the graph) cannot reach the threshold.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from ..butterfly import Butterfly
from ..graph import UncertainBipartiteGraph

import numpy as np


def enumerate_probable_butterflies(
    graph: UncertainBipartiteGraph,
    threshold: float,
    prune: bool = True,
) -> Iterator[Butterfly]:
    """Yield every butterfly with ``Pr[E(B)] >= threshold``.

    Args:
        graph: The uncertain bipartite network.
        threshold: Existence-probability threshold in ``(0, 1]``.
            Edges with ``p = 0`` can never participate.
        prune: Apply the probability-ordering early exit (the result set
            is identical either way; disable for ablation).

    Yields:
        Canonical butterflies in discovery order (per probability-sorted
        edge insertion).
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    probs = graph.probs
    order = np.argsort(-probs, kind="stable")
    top3 = float(np.prod(probs[order[:3]])) if graph.n_edges >= 3 else 0.0
    edge_left = graph.edge_left
    edge_right = graph.edge_right
    weights = graph.weights

    # middle (right) vertex -> inserted (left vertex, edge) pairs;
    # angles keyed by left-vertex pairs, storing (middle, edge_lo, edge_hi,
    # angle probability).
    inserted: Dict[int, List[Tuple[int, int]]] = {}
    angles: Dict[Tuple[int, int], List[Tuple[int, int, int, float]]] = {}

    for e in order:
        e = int(e)
        p_e = float(probs[e])
        if p_e <= 0.0:
            break
        if prune and p_e * top3 < threshold:
            break
        u = int(edge_left[e])
        v = int(edge_right[e])
        bucket = inserted.setdefault(v, [])
        for u_other, e_other in bucket:
            angle_prob = p_e * float(probs[e_other])
            if u < u_other:
                pair, record = (u, u_other), (v, e, e_other)
            else:
                pair, record = (u_other, u), (v, e_other, e)
            pair_angles = angles.setdefault(pair, [])
            for middle, lo, hi, other_prob in pair_angles:
                existence = angle_prob * other_prob
                if existence >= threshold:
                    yield _build(
                        graph, pair, (middle, lo, hi), record, weights
                    )
            pair_angles.append((*record, angle_prob))
        bucket.append((u, e))


def count_probable_butterflies(
    graph: UncertainBipartiteGraph, threshold: float
) -> int:
    """Number of butterflies with ``Pr[E(B)] >= threshold``."""
    return sum(
        1 for _b in enumerate_probable_butterflies(graph, threshold)
    )


def _build(
    graph: UncertainBipartiteGraph,
    pair: Tuple[int, int],
    rec_a: Tuple[int, int, int],
    rec_b: Tuple[int, int, int],
    weights: np.ndarray,
) -> Butterfly:
    """Assemble the canonical butterfly from two angle records."""
    u1, u2 = pair
    middle_a, a_lo, a_hi = rec_a
    middle_b, b_lo, b_hi = rec_b
    if middle_a < middle_b:
        v1, v2 = middle_a, middle_b
        edges = (a_lo, b_lo, a_hi, b_hi)
    else:
        v1, v2 = middle_b, middle_a
        edges = (b_lo, a_lo, b_hi, a_hi)
    weight = float(sum(weights[e] for e in edges))
    return Butterfly(u1, u2, v1, v2, weight, edges)
