"""Distribution-based uncertain butterfly counting (Related Work, [41],
[44], [46]).

The paper's Related Work contrasts MPMB (a *probable-based* problem) with
*distribution-based* analyses that study the butterfly-count random
variable ``X = Σ_B 1[E(B)]`` over possible worlds.  This module provides
that substrate:

* :func:`expected_butterfly_count` — ``E[X]`` exactly, by linearity of
  expectation over the backbone butterflies (each exists with the product
  of its four edge probabilities).
* :func:`butterfly_count_variance` — ``Var[X]`` exactly, from pairwise
  covariances (two butterflies are dependent iff they share edges).
* :func:`sample_butterfly_counts` — the Monte-Carlo estimator of the
  count distribution, for graphs whose butterfly inventory is too large
  for the exact pairwise pass.
* :func:`exact_count_distribution` — the full probability mass function
  by relevant-edge world enumeration (tiny graphs only).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional

import numpy as np

from ..butterfly import Butterfly, enumerate_butterflies
from ..errors import IntractableError
from ..graph import UncertainBipartiteGraph
from ..sampling import RngLike, ensure_rng
from ..worlds import WorldSampler

#: Guard for the quadratic variance pass.
DEFAULT_MAX_BUTTERFLIES = 5_000

#: Guard for exact distribution enumeration (2^20 patterns).
DEFAULT_MAX_WORLDS = 1 << 20


def expected_butterfly_count(
    graph: UncertainBipartiteGraph,
    butterflies: Optional[List[Butterfly]] = None,
) -> float:
    """``E[X] = Σ_B Pr[E(B)]`` — exact, linear in the butterfly count.

    Args:
        graph: The uncertain bipartite network.
        butterflies: Pre-enumerated backbone butterflies (optional reuse).
    """
    if butterflies is None:
        butterflies = list(enumerate_butterflies(graph))
    return float(
        sum(b.existence_probability(graph) for b in butterflies)
    )


def butterfly_count_variance(
    graph: UncertainBipartiteGraph,
    butterflies: Optional[List[Butterfly]] = None,
    max_butterflies: int = DEFAULT_MAX_BUTTERFLIES,
) -> float:
    """``Var[X]`` — exact, quadratic in the butterfly count.

    ``Var[X] = Σ_B p_B(1-p_B) + Σ_{B≠B'} (Pr[both] − p_B p_B')`` where
    ``Pr[both]`` multiplies probabilities over the *union* of the two
    butterflies' edges; butterflies sharing no edge are independent and
    contribute nothing, so only same-neighbourhood pairs matter.

    Raises:
        IntractableError: If the butterfly inventory exceeds
            ``max_butterflies`` (use :func:`sample_butterfly_counts`).
    """
    if butterflies is None:
        butterflies = list(enumerate_butterflies(graph))
    n = len(butterflies)
    if n > max_butterflies:
        raise IntractableError(
            f"{n} butterflies exceed the exact-variance budget of "
            f"{max_butterflies}; use sample_butterfly_counts instead"
        )
    probs = graph.probs
    existence = [b.existence_probability(graph) for b in butterflies]
    variance = sum(p * (1.0 - p) for p in existence)

    # Group butterflies by edge so only overlapping pairs are visited.
    by_edge: Dict[int, List[int]] = {}
    for index, butterfly in enumerate(butterflies):
        for edge in butterfly.edges:
            by_edge.setdefault(edge, []).append(index)
    seen_pairs = set()
    for indices in by_edge.values():
        for i_pos, i in enumerate(indices):
            for j in indices[i_pos + 1:]:
                pair = (i, j) if i < j else (j, i)
                if pair in seen_pairs:
                    continue
                seen_pairs.add(pair)
                union = butterflies[i].edge_set() | butterflies[j].edge_set()
                joint = 1.0
                for edge in union:
                    joint *= float(probs[edge])
                variance += 2.0 * (joint - existence[i] * existence[j])
    return float(variance)


def sample_butterfly_counts(
    graph: UncertainBipartiteGraph,
    n_trials: int,
    rng: RngLike = None,
    butterflies: Optional[List[Butterfly]] = None,
) -> np.ndarray:
    """Monte-Carlo samples of the butterfly count ``X``.

    Uses the backbone inventory once, then per trial checks each
    butterfly's four edges against a sampled mask — ``O(#butterflies)``
    per trial, no per-world re-enumeration.

    Returns:
        Integer array of length ``n_trials``.
    """
    if n_trials <= 0:
        raise ValueError(f"n_trials must be positive, got {n_trials}")
    if butterflies is None:
        butterflies = list(enumerate_butterflies(graph))
    sampler = WorldSampler(graph, ensure_rng(rng))
    if not butterflies:
        return np.zeros(n_trials, dtype=np.int64)
    edge_matrix = np.array(
        [b.edges for b in butterflies], dtype=np.int64
    )
    counts = np.empty(n_trials, dtype=np.int64)
    for trial in range(n_trials):
        mask = sampler.sample_mask()
        counts[trial] = int(mask[edge_matrix].all(axis=1).sum())
    return counts


def exact_count_distribution(
    graph: UncertainBipartiteGraph,
    max_worlds: int = DEFAULT_MAX_WORLDS,
) -> Dict[int, float]:
    """The exact probability mass function of the butterfly count.

    Enumerates presence patterns of the relevant edges (those on some
    butterfly); all other edges marginalise out.  For validation on small
    graphs — the distribution problem is #P-hard in general.

    Returns:
        ``{count: probability}`` with probabilities summing to 1.

    Raises:
        IntractableError: If ``2^|relevant edges|`` exceeds the budget.
    """
    butterflies = list(enumerate_butterflies(graph))
    if not butterflies:
        return {0: 1.0}
    relevant = sorted({e for b in butterflies for e in b.edges})
    k = len(relevant)
    if k >= 63 or (1 << k) > max_worlds:
        raise IntractableError(
            f"{k} relevant edges imply 2^{k} patterns over the budget "
            f"of {max_worlds}"
        )
    position = {edge: i for i, edge in enumerate(relevant)}
    bits = np.arange(1 << k, dtype=np.uint64)
    pattern_probs = np.ones(1 << k)
    for edge, pos in position.items():
        present = (bits >> np.uint64(pos)) & np.uint64(1)
        p = float(graph.probs[edge])
        pattern_probs *= np.where(present == 1, p, 1.0 - p)
    counts = np.zeros(1 << k, dtype=np.int64)
    for butterfly in butterflies:
        mask = np.uint64(sum(1 << position[e] for e in butterfly.edges))
        counts += ((bits & mask) == mask).astype(np.int64)
    distribution = Counter()
    for count, probability in zip(counts.tolist(), pattern_probs.tolist()):
        distribution[count] += probability
    return dict(sorted(distribution.items()))
