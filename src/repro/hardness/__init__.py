"""The Lemma III.1 #P-hardness machinery: Monotone #2-SAT and the
reduction to MPMB probability computation."""

from .monotone_2sat import (
    Clause,
    Monotone2SAT,
    random_formula,
)
from .reduction import (
    ReductionInstance,
    build_reduction,
    clean_random_instance,
    has_spurious_butterflies,
)

__all__ = [
    "Clause",
    "Monotone2SAT",
    "random_formula",
    "ReductionInstance",
    "build_reduction",
    "has_spurious_butterflies",
    "clean_random_instance",
]
