"""Monotone #2-SAT formulas and a brute-force model counter.

Monotone #2-SAT — counting satisfying assignments of a 2-CNF whose
literals are all positive — is #P-hard [Valiant], and is the source
problem of the paper's Lemma III.1 reduction.  The brute-force counter
here is the oracle the reduction is validated against.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import FrozenSet, Iterable, List, Sequence, Tuple

from ..errors import IntractableError
from ..sampling.rng import RngLike, ensure_rng

#: A clause (y_a ∨ y_b); a == b encodes the unit clause (y_a).
Clause = Tuple[int, int]

#: Guard for brute-force counting (2^24 assignments).
DEFAULT_MAX_ASSIGNMENTS = 1 << 24


@dataclass(frozen=True)
class Monotone2SAT:
    """A monotone 2-CNF formula over variables ``y_1 .. y_n``.

    Attributes:
        n_vars: Number of variables (1-based indices).
        clauses: Clauses as index pairs; ``(a, a)`` is the unit clause
            ``(y_a)``.
    """

    n_vars: int
    clauses: Tuple[Clause, ...]

    def __post_init__(self) -> None:
        if self.n_vars < 0:
            raise ValueError(f"n_vars must be non-negative, got {self.n_vars}")
        for a, b in self.clauses:
            if not (1 <= a <= self.n_vars and 1 <= b <= self.n_vars):
                raise ValueError(
                    f"clause ({a}, {b}) references a variable outside "
                    f"1..{self.n_vars}"
                )

    @classmethod
    def from_clauses(
        cls, n_vars: int, clauses: Iterable[Sequence[int]]
    ) -> "Monotone2SAT":
        """Build a formula, normalising each clause to a sorted pair."""
        normalised: List[Clause] = []
        for clause in clauses:
            a, b = clause
            normalised.append((min(a, b), max(a, b)))
        return cls(n_vars, tuple(normalised))

    @property
    def n_clauses(self) -> int:
        """Number of clauses ``r``."""
        return len(self.clauses)

    def evaluate(self, assignment: Sequence[bool]) -> bool:
        """Whether ``assignment`` (0-based, length ``n_vars``) satisfies F."""
        if len(assignment) != self.n_vars:
            raise ValueError(
                f"assignment length {len(assignment)} != n_vars {self.n_vars}"
            )
        return all(
            assignment[a - 1] or assignment[b - 1] for a, b in self.clauses
        )

    def count_models(
        self, max_assignments: int = DEFAULT_MAX_ASSIGNMENTS
    ) -> int:
        """``|{x : F(x) = 1}|`` by brute force.

        Raises:
            IntractableError: If ``2^n_vars`` exceeds the budget.
        """
        if self.n_vars >= 63 or (1 << self.n_vars) > max_assignments:
            raise IntractableError(
                f"counting over {self.n_vars} variables needs "
                f"2^{self.n_vars} assignments"
            )
        count = 0
        for bits in range(1 << self.n_vars):
            satisfied = True
            for a, b in self.clauses:
                if not ((bits >> (a - 1)) & 1 or (bits >> (b - 1)) & 1):
                    satisfied = False
                    break
            if satisfied:
                count += 1
        return count

    def variable_pairs(self) -> FrozenSet[Clause]:
        """The distinct two-variable clauses (unit clauses excluded)."""
        return frozenset(
            (a, b) for a, b in self.clauses if a != b
        )


def random_formula(
    n_vars: int,
    n_clauses: int,
    rng: RngLike = None,
    allow_units: bool = True,
) -> Monotone2SAT:
    """A random monotone 2-CNF with distinct clauses.

    Args:
        n_vars: Variable count.
        n_clauses: Clause count; capped at the number of distinct clauses
            available.
        rng: Seed or generator, coerced via
            :func:`repro.sampling.rng.ensure_rng`.
        allow_units: Whether unit clauses ``(y_a)`` may appear.
    """
    rng = ensure_rng(rng)
    pool: List[Clause] = list(combinations(range(1, n_vars + 1), 2))
    if allow_units:
        pool.extend((a, a) for a in range(1, n_vars + 1))
    n_clauses = min(n_clauses, len(pool))
    chosen = rng.choice(len(pool), size=n_clauses, replace=False)
    return Monotone2SAT(
        n_vars, tuple(pool[int(i)] for i in sorted(chosen))
    )
