"""The Lemma III.1 reduction: Monotone #2-SAT → MPMB probability.

Given a monotone 2-CNF ``F`` over ``y_1 .. y_n``, the paper constructs an
uncertain bipartite network ``G#`` such that for a designated target
butterfly ``B``:

    ``P(B) = |{x : F(x) = 1}| / 2^n``

Construction (Section III-B):

* Left vertices ``u_0 .. u_{n+2}``, right vertices ``v_0 .. v_{n+2}``.
* Per variable ``y_i``: edge ``(u_i, v_i)`` with ``p = 0.5, w = 1``
  (``y_i`` is *true* iff this edge is **absent**).
* Per clause ``(y_a ∨ y_b), a ≠ b``: edges ``(u_a, v_b)`` and
  ``(u_b, v_a)`` with ``p = 1, w = 1`` — together with the two variable
  edges they complete the *clause butterfly* ``B(u_a, u_b, v_a, v_b)`` of
  weight 4, which exists iff both variables are false (clause violated).
* Per unit clause ``(y_a)``: edges ``(u_a, v_0)`` and ``(u_0, v_a)`` with
  ``p = 1, w = 1``; the clause butterfly ``B(u_0, u_a, v_0, v_a)``
  requires edge ``(u_0, v_0)`` too, which we add with ``p = 1, w = 1``
  whenever a unit clause exists (the paper treats ``u_0/v_0`` as the
  constant *true* — i.e. the "variable edge" of the constant is always
  present, making the unit-clause butterfly exist iff ``y_a`` is false).
* The target ``B(u_{n+1}, u_{n+2}, v_{n+1}, v_{n+2})``: four certain
  edges of weight 0.5 (total weight 2 < 4).

**Faithfulness note.** As literally stated, the construction can create
*spurious* weight-4 butterflies the paper does not account for — e.g.
clauses ``(a,c), (a,d), (b,c), (b,d)`` complete the all-certain butterfly
``B(u_a, u_b, v_c, v_d)``, and clause triples sharing variables create
mixed ones.  On such formulas ``P(B) ≠ count/2^n``.
:func:`has_spurious_butterflies` detects the condition so callers (and
the test suite) can restrict the equivalence claim to clean instances,
which is how the reduction is exercised here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from ..butterfly import Butterfly, butterfly_from_labels, enumerate_butterflies
from ..graph import GraphBuilder, UncertainBipartiteGraph
from .monotone_2sat import Monotone2SAT


@dataclass(frozen=True)
class ReductionInstance:
    """Output of the Lemma III.1 construction.

    Attributes:
        formula: The source formula.
        graph: The constructed uncertain bipartite network ``G#``.
        target: The designated butterfly ``B`` whose maximum-probability
            equals ``count(F)/2^n`` on clean instances.
        clause_butterflies: One butterfly per clause, aligned with
            ``formula.clauses``.
    """

    formula: Monotone2SAT
    graph: UncertainBipartiteGraph
    target: Butterfly
    clause_butterflies: Tuple[Butterfly, ...]

    def expected_target_probability(self) -> float:
        """``count(F) / 2^n`` — the value ``P(B)`` should take."""
        return self.formula.count_models() / (2 ** self.formula.n_vars)


def build_reduction(formula: Monotone2SAT) -> ReductionInstance:
    """Construct the Section III-B gadget network for ``formula``."""
    n = formula.n_vars
    builder = GraphBuilder(name=f"2sat-reduction-n{n}-r{formula.n_clauses}")

    # (i) one uncertain edge per variable.
    for i in range(1, n + 1):
        builder.add_edge(f"u{i}", f"v{i}", weight=1.0, prob=0.5)

    # (ii)/(iii) certain clause edges; deduplicate shared gadget edges.
    added: Set[Tuple[str, str]] = set()

    def add_certain(left: str, right: str, weight: float) -> None:
        if (left, right) not in added:
            added.add((left, right))
            builder.add_edge(left, right, weight=weight, prob=1.0)

    has_unit = any(a == b for a, b in formula.clauses)
    if has_unit:
        # The constant-true "variable edge" of u0/v0 is always present.
        add_certain("u0", "v0", 1.0)
    for a, b in formula.clauses:
        if a == b:
            add_certain(f"u{a}", "v0", 1.0)
            add_certain("u0", f"v{a}", 1.0)
        else:
            add_certain(f"u{a}", f"v{b}", 1.0)
            add_certain(f"u{b}", f"v{a}", 1.0)

    # (iv) the independent target butterfly (certain, weight 2 < 4).
    for left, right in (
        (f"u{n + 1}", f"v{n + 1}"),
        (f"u{n + 1}", f"v{n + 2}"),
        (f"u{n + 2}", f"v{n + 1}"),
        (f"u{n + 2}", f"v{n + 2}"),
    ):
        builder.add_edge(left, right, weight=0.5, prob=1.0)

    graph = builder.build()
    target = butterfly_from_labels(
        graph, f"u{n + 1}", f"u{n + 2}", f"v{n + 1}", f"v{n + 2}"
    )
    assert target is not None  # the four edges were just added

    clause_butterflies: List[Butterfly] = []
    for a, b in formula.clauses:
        if a == b:
            butterfly = butterfly_from_labels(
                graph, "u0", f"u{a}", "v0", f"v{a}"
            )
        else:
            butterfly = butterfly_from_labels(
                graph, f"u{a}", f"u{b}", f"v{a}", f"v{b}"
            )
        assert butterfly is not None
        clause_butterflies.append(butterfly)

    return ReductionInstance(
        formula=formula,
        graph=graph,
        target=target,
        clause_butterflies=tuple(clause_butterflies),
    )


def has_spurious_butterflies(instance: ReductionInstance) -> bool:
    """Whether ``G#`` contains butterflies beyond the intended gadgets.

    The intended inventory is exactly the clause butterflies plus the
    target; anything else (certain 4-cycles among clause edges, mixed
    cycles through shared variables) breaks the ``P(B) = count/2^n``
    identity — see the module docstring.
    """
    expected = {b.key for b in instance.clause_butterflies}
    expected.add(instance.target.key)
    for butterfly in enumerate_butterflies(instance.graph):
        if butterfly.key not in expected:
            return True
    return False


def clean_random_instance(
    formula_factory,
    attempts: int = 50,
) -> Optional[ReductionInstance]:
    """Draw reduction instances until one has no spurious butterflies.

    Args:
        formula_factory: Zero-argument callable producing a
            :class:`Monotone2SAT` (e.g. a seeded
            :func:`~repro.hardness.monotone_2sat.random_formula` closure).
        attempts: Maximum draws before giving up.

    Returns:
        A clean :class:`ReductionInstance`, or ``None`` when every
        attempt produced spurious butterflies.
    """
    for _ in range(attempts):
        instance = build_reduction(formula_factory())
        if not has_spurious_butterflies(instance):
            return instance
    return None
