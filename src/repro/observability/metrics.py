"""A lightweight, dependency-free metrics registry.

Three instrument kinds, matching what the sampling stack actually needs
to reproduce the paper's Section VIII measurements per run:

* :class:`Counter` — monotone totals (trials completed, edges sampled,
  checkpoints written).  Counters *sum* when runs merge, which is what
  makes per-worker metrics consistent with the trial-weighted result
  merge of :func:`repro.core.results.merge_results`.
* :class:`Gauge` — last-written point values (trials/sec, prune rate,
  candidate-set size).  Gauges take the *maximum* when runs merge — a
  deliberate, documented convention: the merged value answers "what was
  the largest value any contributing run observed".
* :class:`Histogram` — fixed-bucket-edge distributions (per-candidate
  trial counts, winners per trial).  Fixed edges make bucket counts
  mergeable by element-wise addition across workers.

Everything is JSON-round-trippable (:meth:`MetricsRegistry.to_dict` /
:meth:`MetricsRegistry.from_dict`) with a stable schema asserted by the
test suite, and renderable as an aligned text table for humans.

Metric *names* are governed by :mod:`repro.observability.catalog` — the
registry itself accepts any name (workers deserialize registries whose
names it cannot predict), but :meth:`MetricsRegistry.unknown_names`
reports names that fall outside the catalog, and the MET001 static
analysis rule rejects call sites recording uncataloged names.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

#: Default histogram bucket edges: a geometric ladder wide enough for
#: trial counts (1 … 10^6) and small enough for per-trial work counts.
DEFAULT_BUCKET_EDGES: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1_000.0, 2_000.0, 5_000.0, 10_000.0, 20_000.0, 50_000.0,
    100_000.0, 1_000_000.0,
)


class Counter:
    """A monotone non-negative total."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative — counters never go down)."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = float(value)

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """A fixed-bucket-edge distribution.

    ``edges`` are the inclusive upper bounds of the first
    ``len(edges)`` buckets; one final overflow bucket catches values
    above the last edge.  Fixed edges keep histograms mergeable across
    workers by element-wise bucket addition.
    """

    __slots__ = ("edges", "counts", "total", "count")

    def __init__(self, edges: Sequence[float] = DEFAULT_BUCKET_EDGES) -> None:
        ordered = tuple(float(e) for e in edges)
        if not ordered:
            raise ValueError("histogram needs at least one bucket edge")
        if list(ordered) != sorted(set(ordered)):
            raise ValueError(
                f"bucket edges must be strictly increasing, got {ordered}"
            )
        self.edges = ordered
        self.counts: List[int] = [0] * (len(ordered) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        if math.isnan(value):
            raise ValueError("cannot observe NaN")
        # Edges are inclusive upper bounds: bisect_right moves a value
        # equal to an edge one bucket too far, so step back in that case.
        index = bisect_right(self.edges, value)
        if index > 0 and self.edges[index - 1] == value:
            index -= 1
        self.counts[index] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Named counters, gauges, and histograms for one run.

    Instruments are created on first use (``registry.counter("x")``)
    and addressed by dotted names; the convenience methods
    (:meth:`inc`, :meth:`set`, :meth:`observe`) combine lookup and
    update in one call.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- get-or-create accessors ---------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created at 0 on first access."""
        instrument = self._counters.get(name)
        if instrument is None:
            self._ensure_unused(name, self._counters)
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created at 0 on first access."""
        instrument = self._gauges.get(name)
        if instrument is None:
            self._ensure_unused(name, self._gauges)
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(
        self, name: str, edges: Sequence[float] = DEFAULT_BUCKET_EDGES
    ) -> Histogram:
        """The histogram called ``name``; ``edges`` apply on creation only.

        Raises:
            ValueError: If the histogram exists with different edges.
        """
        instrument = self._histograms.get(name)
        if instrument is None:
            self._ensure_unused(name, self._histograms)
            instrument = self._histograms[name] = Histogram(edges)
        elif instrument.edges != tuple(float(e) for e in edges):
            raise ValueError(
                f"histogram {name!r} already exists with different edges"
            )
        return instrument

    def _ensure_unused(self, name: str, own: Dict) -> None:
        for kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if table is not own and name in table:
                raise ValueError(
                    f"metric name {name!r} already used by a {kind}"
                )

    # -- convenience updates -------------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment the counter ``name`` by ``amount``."""
        self.counter(name).inc(amount)

    def set(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value``."""
        self.gauge(name).set(value)

    def observe(
        self,
        name: str,
        value: float,
        edges: Sequence[float] = DEFAULT_BUCKET_EDGES,
    ) -> None:
        """Record ``value`` into the histogram ``name``."""
        self.histogram(name, edges).observe(value)

    # -- export / merge ------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-serialisable snapshot (stable schema, sorted names)."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: {
                    "edges": list(hist.edges),
                    "counts": list(hist.counts),
                    "sum": hist.total,
                    "count": hist.count,
                }
                for name, hist in sorted(self._histograms.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "MetricsRegistry":
        """Rebuild a registry serialized by :meth:`to_dict`."""
        registry = cls()
        for name, value in payload.get("counters", {}).items():
            registry.counter(name).value = float(value)
        for name, value in payload.get("gauges", {}).items():
            registry.gauge(name).set(value)
        for name, record in payload.get("histograms", {}).items():
            hist = registry.histogram(name, record["edges"])
            hist.counts = [int(c) for c in record["counts"]]
            hist.total = float(record["sum"])
            hist.count = int(record["count"])
        return registry

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one, in place.

        Counters add, gauges keep the maximum, histograms add bucket
        counts (requiring identical edges).  These rules make a merge
        of per-worker registries consistent with the trial-weighted
        result merge: summed ``*.trials`` counters equal the pooled
        result's ``n_trials``, and dropped workers (which never ship a
        registry) contribute nothing — exactly like their trials.

        Raises:
            ValueError: When a histogram exists on both sides with
                different bucket edges.
        """
        for name, counter in other._counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other._gauges.items():
            mine = self.gauge(name)
            mine.set(max(mine.value, gauge.value))
        for name, hist in other._histograms.items():
            mine = self.histogram(name, hist.edges)
            if mine.edges != hist.edges:
                raise ValueError(
                    f"cannot merge histogram {name!r}: bucket edges differ"
                )
            mine.counts = [
                a + b for a, b in zip(mine.counts, hist.counts)
            ]
            mine.total += hist.total
            mine.count += hist.count

    def unknown_names(self) -> List[str]:
        """Instrument names outside the canonical catalog, sorted.

        Kind mismatches count as unknown too (e.g. a gauge recorded
        under a name the catalog declares as a counter).
        """
        from .catalog import is_canonical_metric

        unknown = [
            name for name in self._counters
            if not is_canonical_metric(name, "counter")
        ]
        unknown.extend(
            name for name in self._gauges
            if not is_canonical_metric(name, "gauge")
        )
        unknown.extend(
            name for name in self._histograms
            if not is_canonical_metric(name, "histogram")
        )
        return sorted(unknown)

    # -- human-readable summary ----------------------------------------

    def summary_table(self) -> str:
        """Aligned text table of every instrument (sorted by name)."""
        rows: List[Tuple[str, str, str]] = []
        for name in sorted(self._counters):
            rows.append((name, "counter", f"{self._counters[name].value:g}"))
        for name in sorted(self._gauges):
            rows.append((name, "gauge", f"{self._gauges[name].value:g}"))
        for name, hist in sorted(self._histograms.items()):
            rows.append((
                name, "histogram",
                f"n={hist.count} mean={hist.mean:g} sum={hist.total:g}",
            ))
        return render_table(("metric", "kind", "value"), rows)


def render_table(
    header: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: Optional[str] = None,
) -> str:
    """Minimal aligned text table (kept local: this package sits below
    :mod:`repro.experiments` and must not import from it)."""
    cells = [list(map(str, header))] + [list(map(str, r)) for r in rows]
    widths = [
        max(len(row[col]) for row in cells)
        for col in range(len(header))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(
        cell.ljust(width) for cell, width in zip(cells[0], widths)
    ).rstrip())
    lines.append("  ".join("-" * width for width in widths))
    for row in cells[1:]:
        lines.append("  ".join(
            cell.ljust(width) for cell, width in zip(row, widths)
        ).rstrip())
    return "\n".join(lines)
