"""Structured observability for the sampling stack.

The paper's own evaluation (Section VIII) is built on per-phase timing,
trial-count curves, and per-method work counters; reproducing it per run
requires the same visibility.  This package provides it as one
lightweight, dependency-free layer that every estimator routes through:

* :mod:`~repro.observability.metrics` — a metrics registry of counters,
  gauges, and fixed-bucket histograms, exportable as JSON and as a
  human-readable summary table.
* :mod:`~repro.observability.tracing` — nested phase-tracing spans
  (graph load → edge ordering → candidate generation → sampling →
  merge, mirroring the structure of Algorithms 1-5), timed with
  :func:`time.perf_counter_ns`.
* :mod:`~repro.observability.profiling` — opt-in :mod:`cProfile` and
  wall-clock helpers for the hot paths.
* :mod:`~repro.observability.observer` — the :class:`Observer` bundle
  the rest of the codebase passes around, plus the shared no-op
  :data:`NULL_OBSERVER` so uninstrumented runs pay (almost) nothing.

The package sits at the very bottom of the layering (it imports nothing
from :mod:`repro` beyond the standard library), so every other layer —
runtime engine, worker pool, core estimators, experiments, CLI — can
depend on it without cycles.  See ``docs/observability.md`` for metric
names, span semantics, and the export schema.
"""

from .catalog import (
    METRICS,
    SPANS,
    MetricSpec,
    SpanSpec,
    is_canonical_metric,
    is_canonical_span,
)
from .metrics import (
    DEFAULT_BUCKET_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .observer import (
    METRICS_FORMAT,
    METRICS_KIND,
    NULL_OBSERVER,
    NullObserver,
    Observer,
    ensure_observer,
)
from .profiling import ProfileCapture, maybe_cprofile, stopwatch
from .tracing import PhaseTracer, Span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKET_EDGES",
    "PhaseTracer",
    "Span",
    "Observer",
    "NullObserver",
    "NULL_OBSERVER",
    "ensure_observer",
    "METRICS_FORMAT",
    "METRICS_KIND",
    "ProfileCapture",
    "maybe_cprofile",
    "stopwatch",
    "MetricSpec",
    "SpanSpec",
    "METRICS",
    "SPANS",
    "is_canonical_metric",
    "is_canonical_span",
]
