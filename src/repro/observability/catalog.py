"""The canonical catalog of metric and span names.

Single source of truth for every name the stack records: the table in
``docs/observability.md`` mirrors this module, and the static analyzer's
MET001 rule (see ``docs/static-analysis.md``) rejects any call site that
records a name not declared here.  Adding an instrument therefore means
adding a spec below *and* a row to the docs table — the analyzer's
catalog-sync rule keeps the two from drifting.

Names may contain ``<placeholder>`` segments for families recorded with
dynamic names (``<method>.<stat>``, ``worker-<id>``); a placeholder
matches one dot-free (for metrics) or slash-free (for spans) token.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

#: Instrument kinds a metric spec may declare.
METRIC_KINDS = ("counter", "gauge", "histogram")

#: ``<placeholder>`` segment inside a catalog name.
_PLACEHOLDER = re.compile(r"<[a-z_]+>")


@dataclass(frozen=True)
class MetricSpec:
    """One canonical metric name (or name family).

    Attributes:
        name: Dotted name, possibly with ``<placeholder>`` segments.
        kind: ``"counter"``, ``"gauge"``, or ``"histogram"``.
        description: One-line meaning, mirrored in the docs table.
    """

    name: str
    kind: str
    description: str


@dataclass(frozen=True)
class SpanSpec:
    """One canonical phase-span name (or name family)."""

    name: str
    description: str


#: Every metric the stack records, sorted roughly by layer.
METRICS: Tuple[MetricSpec, ...] = (
    MetricSpec("engine.trials.completed", "counter",
               "trials executed by the runtime engine"),
    MetricSpec("engine.trials.resumed", "counter",
               "trials restored from a --resume checkpoint"),
    MetricSpec("engine.checkpoints.written", "counter",
               "snapshots written"),
    MetricSpec("engine.checkpoints.errors", "counter",
               "snapshot writes that failed (injected or real)"),
    MetricSpec("sampling.trials", "counter",
               "trials contributing to the returned estimate"),
    MetricSpec("sampling.trials_per_second", "gauge",
               "achieved trial rate of the sampling phase"),
    MetricSpec("sampling.target_trials", "gauge",
               "planned budget (per worker, in pooled runs)"),
    MetricSpec("trial.winners", "histogram",
               "maximum-butterfly set size per trial"),
    MetricSpec("kernel.block_size", "gauge",
               "trials per vectorised kernel call (batched runs only)"),
    MetricSpec("kernel.trials_vectorized", "counter",
               "trials executed through the batched kernel layer"),
    MetricSpec("kernel.bytes_budget", "gauge",
               "peak working-set bytes one kernel block may use"),
    MetricSpec("kernel.block_bytes", "gauge",
               "estimated working-set bytes of the resolved block"),
    MetricSpec("kernel.wedges", "gauge",
               "backbone wedges in the vectorised kernel's index"),
    MetricSpec("prepare.trials", "counter",
               "OLS preparing-phase trials (Alg. 3)"),
    MetricSpec("candidates.listed", "gauge",
               "|C_MB| after the preparing phase"),
    MetricSpec("<method>.<stat>", "counter",
               "every entry of result.stats (e.g. os.trials_pruned)"),
    MetricSpec("<method>.prune_rate", "gauge",
               "fraction of trials ended by the early-exit bound "
               "(Alg. 2, line 5)"),
    MetricSpec("<method>.lazy_cache.hit_rate", "gauge",
               "1 - edges_sampled / edges_queried of Alg. 5's lazy "
               "memoised edge sampling"),
    MetricSpec("ols-kl.trials_per_candidate", "histogram",
               "dynamic Lemma VI.4 budgets spent per candidate (Alg. 4)"),
    MetricSpec("adaptive.trials_saved", "counter",
               "trials the anytime racing stop avoided, measured "
               "against the static budget"),
    MetricSpec("adaptive.candidates_eliminated", "counter",
               "candidates removed by pre-screen or racing elimination"),
    MetricSpec("adaptive.realized_epsilon", "gauge",
               "relative half-width the winner's interval certified at "
               "the stop"),
    MetricSpec("adaptive.prescreen.samples", "counter",
               "wedge-pair samples the sublinear pre-screen drew"),
    MetricSpec("pool.workers.total", "counter",
               "worker pool size"),
    MetricSpec("pool.workers.dropped", "counter",
               "workers dropped permanently"),
    MetricSpec("pool.worker.attempts", "counter",
               "total worker attempts including retries"),
    MetricSpec("worker.shm.published", "counter",
               "shared-memory graph/index segments created"),
    MetricSpec("worker.shm.attached", "counter",
               "worker attachments to a shared-memory segment"),
    MetricSpec("worker.shm.reused", "counter",
               "pooled runs that reused an already-published segment"),
    MetricSpec("worker.shm.bytes", "gauge",
               "size of the published shared-memory segment"),
    MetricSpec("harness.<method>.seconds", "gauge",
               "experiment-harness wall time of the full call"),
    MetricSpec("harness.<method>.peak_bytes", "gauge",
               "experiment-harness peak allocation of the full call"),
    MetricSpec("service.requests.total", "counter",
               "query requests received by the broker"),
    MetricSpec("service.requests.ok", "counter",
               "requests answered with a full-budget result"),
    MetricSpec("service.requests.degraded", "counter",
               "requests answered with a degraded (re-widened) result"),
    MetricSpec("service.requests.rejected", "counter",
               "requests rejected (admission or breaker)"),
    MetricSpec("service.requests.failed", "counter",
               "requests that resolved to an explicit failure response"),
    MetricSpec("service.admission.rejected", "counter",
               "requests shed by token-bucket admission control"),
    MetricSpec("service.queue.depth", "gauge",
               "requests currently admitted and in flight"),
    MetricSpec("service.breaker.rejected", "counter",
               "requests refused by an open circuit breaker"),
    MetricSpec("service.breaker.opened", "counter",
               "circuit-breaker open transitions"),
    MetricSpec("service.breaker.state", "gauge",
               "breaker state of the last routed dataset "
               "(0 closed / 1 half-open / 2 open)"),
    MetricSpec("service.deadline.degraded", "counter",
               "requests degraded by deadline expiry"),
    MetricSpec("service.retries", "counter",
               "transient worker-pool failures retried by the broker"),
    MetricSpec("service.cache.hits", "counter",
               "result-cache hits"),
    MetricSpec("service.cache.misses", "counter",
               "result-cache misses"),
    MetricSpec("service.cache.hit_rate", "gauge",
               "hits / (hits + misses) over the service lifetime"),
    MetricSpec("service.registry.loads", "counter",
               "graph artifacts loaded (including reloads)"),
    MetricSpec("service.registry.quarantined", "counter",
               "graph artifacts quarantined by checksum validation"),
)

#: Every phase-span name the stack records.
SPANS: Tuple[SpanSpec, ...] = (
    SpanSpec("graph-load", "dataset/graph construction"),
    SpanSpec("edge-ordering", "Alg. 2 weight-ordered edge index build"),
    SpanSpec("wedge-index",
             "vectorised kernel wedge-CSR build (or shared reuse)"),
    SpanSpec("candidate-generation",
             "OLS preparing phase (Alg. 3 lines 2-4)"),
    SpanSpec("sampling", "the Monte-Carlo trial phase"),
    SpanSpec("trial-loop", "the runtime engine's checkpointable loop"),
    SpanSpec("exact-solve", "exponential oracle methods"),
    SpanSpec("fan-out", "worker-pool dispatch"),
    SpanSpec("merge", "worker-pool result/metric merge"),
    SpanSpec("worker-<id>", "synthetic header grafted per worker"),
    SpanSpec("registry-load", "graph registry artifact load + warmup"),
    SpanSpec("service-request", "one query request through the broker"),
)


def _compile(name: str, separator: str) -> "re.Pattern[str]":
    """Regex matching concrete instances of a catalog ``name``."""
    parts: List[str] = []
    last = 0
    for match in _PLACEHOLDER.finditer(name):
        parts.append(re.escape(name[last:match.start()]))
        parts.append(f"[^{separator}]+")
        last = match.end()
    parts.append(re.escape(name[last:]))
    return re.compile("^" + "".join(parts) + "$")


_METRIC_PATTERNS = tuple(
    (spec, _compile(spec.name, ".")) for spec in METRICS
)
_SPAN_PATTERNS = tuple(
    (spec, _compile(spec.name, "/")) for spec in SPANS
)


def find_metric(
    name: str, kind: Optional[str] = None
) -> Optional[MetricSpec]:
    """The catalog spec matching a concrete metric ``name``, if any.

    Args:
        name: Concrete dotted name (``"os.trials_pruned"``).
        kind: Restrict the match to one instrument kind.
    """
    for spec, pattern in _METRIC_PATTERNS:
        if kind is not None and spec.kind != kind:
            continue
        if pattern.match(name):
            return spec
    return None


def is_canonical_metric(name: str, kind: Optional[str] = None) -> bool:
    """Whether ``name`` instantiates a cataloged metric."""
    return find_metric(name, kind) is not None


def is_canonical_span(name: str) -> bool:
    """Whether ``name`` instantiates a cataloged span name."""
    return any(pattern.match(name) for _, pattern in _SPAN_PATTERNS)


def unknown_metric_names(names: Iterable[str]) -> List[str]:
    """The subset of ``names`` missing from the catalog, sorted."""
    return sorted(n for n in set(names) if not is_canonical_metric(n))


def unknown_span_names(names: Iterable[str]) -> List[str]:
    """The subset of span ``names`` missing from the catalog, sorted."""
    return sorted(n for n in set(names) if not is_canonical_span(n))


def sample_names() -> Dict[str, str]:
    """One concrete instantiation per metric spec (placeholders filled).

    Used by tests and by MET001's f-string compatibility check to prove
    that a dynamic call-site template can produce cataloged names.
    """
    concrete = {}
    for spec in METRICS:
        concrete[_PLACEHOLDER.sub("x", spec.name)] = spec.kind
    return concrete
