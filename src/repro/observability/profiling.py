"""Opt-in profiling hooks: cProfile capture and wall-clock stopwatches.

Profiling is strictly opt-in because it distorts the numbers it
measures: :func:`maybe_cprofile` is a context manager that profiles only
when asked (``--profile-out`` on the CLI), and :func:`stopwatch` wraps
:func:`time.perf_counter_ns` so callers can time a block and feed the
duration straight into a :class:`~repro.observability.metrics.Gauge`
without repeating the two-line timing idiom everywhere (that idiom used
to live, duplicated, in ``repro.experiments.instrument``).
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..errors import ConfigurationError
from .metrics import MetricsRegistry


@dataclass
class StopwatchHandle:
    """Elapsed time of a :func:`stopwatch` block.

    Attributes:
        elapsed_ns: Nanoseconds from block entry to exit (grows until
            the block exits; final afterwards).
    """

    elapsed_ns: int = 0

    @property
    def seconds(self) -> float:
        """Elapsed wall-clock seconds."""
        return self.elapsed_ns / 1e9


@contextmanager
def stopwatch(
    metrics: Optional[MetricsRegistry] = None,
    gauge_name: Optional[str] = None,
) -> Iterator[StopwatchHandle]:
    """Time a block with :func:`time.perf_counter_ns`.

    Args:
        metrics: Optional registry receiving the duration on exit.
        gauge_name: Gauge to set to the elapsed seconds (required when
            ``metrics`` is given).

    Yields:
        A :class:`StopwatchHandle` whose ``seconds`` is valid after the
        block exits (exceptions included).
    """
    if (metrics is None) != (gauge_name is None):
        raise ConfigurationError(
            "metrics and gauge_name must be given together"
        )
    handle = StopwatchHandle()
    start = time.perf_counter_ns()
    try:
        yield handle
    finally:
        handle.elapsed_ns = time.perf_counter_ns() - start
        if metrics is not None and gauge_name is not None:
            metrics.set(gauge_name, handle.seconds)


@dataclass
class ProfileCapture:
    """Output slot of :func:`maybe_cprofile`.

    Attributes:
        report: The formatted profile (top functions by cumulative
            time); empty string when profiling was disabled.
    """

    report: str = ""
    enabled: bool = False
    _profiler: Optional[cProfile.Profile] = field(
        default=None, repr=False, compare=False
    )


@contextmanager
def maybe_cprofile(
    enabled: bool, top: int = 30
) -> Iterator[ProfileCapture]:
    """Profile the block with :mod:`cProfile` — only when ``enabled``.

    The capture's ``report`` holds the ``pstats`` text (sorted by
    cumulative time, truncated to ``top`` rows) after the block exits;
    with ``enabled=False`` the block runs undisturbed and the report
    stays empty, so call sites need no conditional.
    """
    capture = ProfileCapture(enabled=enabled)
    if not enabled:
        yield capture
        return
    profiler = cProfile.Profile()
    capture._profiler = profiler
    profiler.enable()
    try:
        yield capture
    finally:
        profiler.disable()
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats("cumulative").print_stats(top)
        capture.report = buffer.getvalue()
