"""Nested phase-tracing spans for the sampling pipeline.

A run of any MPMB method decomposes into the phases of Algorithms 1-5:
graph load → edge ordering → candidate generation (OLS preparing phase,
Alg. 3 lines 2-4) → sampling (the trial loop) → merge (worker pooling).
:class:`PhaseTracer` records those phases as *spans* — named intervals
timed with :func:`time.perf_counter_ns`, nested via a context-manager
stack so each span knows its parent path and depth.

Spans export as a JSON list (stable schema, see ``docs/observability.md``)
and as an aligned text tree for ``--trace`` terminal output.  The tracer
is deliberately not thread-safe: one tracer belongs to one run on one
thread, and worker processes get their own.

Span *names* are governed by :mod:`repro.observability.catalog`:
:meth:`PhaseTracer.unknown_span_names` reports recorded names outside
the catalog, and the MET001 static analysis rule rejects call sites
opening spans under uncataloged names.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from .metrics import render_table

#: Path separator between nested span names.
PATH_SEPARATOR = "/"


@dataclass
class Span:
    """One completed (or in-flight) phase interval.

    Attributes:
        name: Phase name (``"sampling"``, ``"candidate-generation"``...).
        path: Slash-joined names from the root span to this one.
        depth: Nesting depth (0 for root spans).
        start_ns: :func:`time.perf_counter_ns` at entry.  Monotonic and
            only meaningful relative to other spans of the same process.
        duration_ns: Nanoseconds from entry to exit; ``None`` while the
            span is still open.
        meta: Optional small JSON-serialisable annotations
            (e.g. ``{"method": "ols"}``).
    """

    name: str
    path: str
    depth: int
    start_ns: int
    duration_ns: Optional[int] = None
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        """Duration in seconds (0.0 while the span is open)."""
        return (self.duration_ns or 0) / 1e9

    def to_dict(self) -> Dict:
        """JSON-serialisable form (stable key set)."""
        return {
            "name": self.name,
            "path": self.path,
            "depth": self.depth,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "meta": dict(self.meta),
        }


class PhaseTracer:
    """Collects nested spans for one run.

    Usage::

        tracer = PhaseTracer()
        with tracer.span("sampling", method="os"):
            with tracer.span("trial-loop"):
                ...
        tracer.to_list()   # JSON-ready, in start order
    """

    def __init__(self, clock_ns=time.perf_counter_ns) -> None:
        self._clock_ns = clock_ns
        self._stack: List[Span] = []
        self.spans: List[Span] = []

    @contextmanager
    def span(self, name: str, **meta: object) -> Iterator[Span]:
        """Open a span named ``name`` nested under the current one.

        The span is appended to :attr:`spans` immediately (in start
        order) and its duration is filled in on exit — including exits
        via exceptions, so a deadline abort still yields a closed span.
        """
        if PATH_SEPARATOR in name:
            raise ValueError(
                f"span names must not contain {PATH_SEPARATOR!r}: {name!r}"
            )
        parent = self._stack[-1] if self._stack else None
        path = (
            f"{parent.path}{PATH_SEPARATOR}{name}" if parent else name
        )
        record = Span(
            name=name,
            path=path,
            depth=len(self._stack),
            start_ns=self._clock_ns(),
            meta=dict(meta),
        )
        self.spans.append(record)
        self._stack.append(record)
        try:
            yield record
        finally:
            record.duration_ns = self._clock_ns() - record.start_ns
            self._stack.pop()

    def to_list(self) -> List[Dict]:
        """Every span as a JSON-ready dict, in start order."""
        return [span.to_dict() for span in self.spans]

    def merge(self, spans: List[Dict], prefix: str = "") -> None:
        """Append externally recorded spans (e.g. from a worker process).

        ``prefix`` is prepended to each span's path (and depth is
        shifted under a synthesised ``prefix`` header span, whose
        duration sums the merged top-level spans) so per-worker phases
        stay distinguishable after the merge.  Raw ``start_ns`` values
        are process-local and are kept verbatim — only durations are
        comparable across processes.
        """
        if prefix and spans:
            top_level = [r for r in spans if int(r["depth"]) == 0]
            self.spans.append(Span(
                name=prefix,
                path=prefix,
                depth=0,
                start_ns=min(int(r["start_ns"]) for r in spans),
                duration_ns=sum(
                    int(r["duration_ns"]) for r in top_level
                    if r.get("duration_ns") is not None
                ),
                meta={"merged": True},
            ))
        for record in spans:
            path = record["path"]
            depth = int(record["depth"])
            if prefix:
                path = f"{prefix}{PATH_SEPARATOR}{path}"
                depth += 1
            self.spans.append(Span(
                name=record["name"],
                path=path,
                depth=depth,
                start_ns=int(record["start_ns"]),
                duration_ns=(
                    None if record.get("duration_ns") is None
                    else int(record["duration_ns"])
                ),
                meta=dict(record.get("meta", {})),
            ))

    def unknown_span_names(self) -> List[str]:
        """Recorded span names outside the canonical catalog, sorted."""
        from .catalog import unknown_span_names

        return unknown_span_names(span.name for span in self.spans)

    def summary_table(self) -> str:
        """Aligned text tree of spans with durations, in start order."""
        rows = []
        for span in self.spans:
            label = "  " * span.depth + span.name
            duration = (
                f"{span.seconds * 1e3:.3f} ms"
                if span.duration_ns is not None else "(open)"
            )
            annotations = " ".join(
                f"{key}={value}" for key, value in sorted(span.meta.items())
            )
            rows.append((label, duration, annotations))
        return render_table(("phase", "duration", "meta"), rows)
