"""The :class:`Observer` bundle threaded through the sampling stack.

Every instrumented layer — the runtime engine, the worker pool, the four
estimators, the experiments harness, the CLI — accepts an optional
``observer=``.  An :class:`Observer` carries one
:class:`~repro.observability.metrics.MetricsRegistry` and one
:class:`~repro.observability.tracing.PhaseTracer`; passing ``None``
resolves to the shared :data:`NULL_OBSERVER`, whose instruments are
no-ops, so uninstrumented runs keep their exact previous behaviour and
hot loops pay only a dead attribute access.

The export side (:meth:`Observer.export_document`) wraps the registry
and spans in one JSON document with a versioned, discriminated schema —
this is what ``--metrics-out`` writes and what the schema-stability
tests pin down.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Sequence

from .metrics import DEFAULT_BUCKET_EDGES, MetricsRegistry
from .tracing import PhaseTracer

#: Version of the metrics/trace export document layout.
METRICS_FORMAT = 1

#: Discriminator so arbitrary JSON files are rejected early.
METRICS_KIND = "repro-metrics"


class Observer:
    """Metrics registry + phase tracer for one run."""

    enabled = True

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[PhaseTracer] = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else PhaseTracer()

    # Convenience pass-throughs so call sites read naturally.

    def span(self, name: str, **meta: object):
        """Open a nested phase span (see :meth:`PhaseTracer.span`)."""
        return self.tracer.span(name, **meta)

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name``."""
        self.metrics.inc(name, amount)

    def set(self, name: str, value: float) -> None:
        """Set gauge ``name``."""
        self.metrics.set(name, value)

    def observe(
        self,
        name: str,
        value: float,
        edges: Sequence[float] = DEFAULT_BUCKET_EDGES,
    ) -> None:
        """Record ``value`` into histogram ``name``."""
        self.metrics.observe(name, value, edges)

    def export_document(
        self,
        method: Optional[str] = None,
        graph_name: Optional[str] = None,
    ) -> Dict:
        """The full ``--metrics-out`` JSON document.

        Top-level keys (the schema the tests pin): ``format``, ``kind``,
        ``method``, ``graph``, ``counters``, ``gauges``, ``histograms``,
        ``spans``.
        """
        snapshot = self.metrics.to_dict()
        return {
            "format": METRICS_FORMAT,
            "kind": METRICS_KIND,
            "method": method,
            "graph": graph_name,
            "counters": snapshot["counters"],
            "gauges": snapshot["gauges"],
            "histograms": snapshot["histograms"],
            "spans": self.tracer.to_list(),
        }

    def summary(self) -> str:
        """Phase tree plus metric table, for ``--trace`` terminal output."""
        return "\n\n".join(
            part for part in (
                self.tracer.summary_table() if self.tracer.spans else "",
                self.metrics.summary_table(),
            ) if part
        )


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram stand-in."""

    __slots__ = ()
    value = 0.0
    edges: tuple = ()
    counts: list = []
    total = 0.0
    count = 0
    mean = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class _NullMetrics(MetricsRegistry):
    """Registry whose instruments discard every update."""

    def counter(self, name):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def gauge(self, name):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def histogram(self, name, edges=DEFAULT_BUCKET_EDGES):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def merge(self, other) -> None:  # type: ignore[override]
        pass


class _NullTracer(PhaseTracer):
    """Tracer whose spans cost one generator frame and record nothing."""

    @contextmanager
    def span(self, name: str, **meta: object) -> Iterator[None]:  # type: ignore[override]
        yield None

    def merge(self, spans, prefix: str = "") -> None:  # type: ignore[override]
        pass


class NullObserver(Observer):
    """The do-nothing observer uninstrumented runs resolve to."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(metrics=_NullMetrics(), tracer=_NullTracer())


#: Shared no-op observer — safe to reuse across runs (it keeps no state).
NULL_OBSERVER = NullObserver()


def ensure_observer(observer: Optional[Observer]) -> Observer:
    """``observer`` itself, or the shared :data:`NULL_OBSERVER`."""
    return observer if observer is not None else NULL_OBSERVER
